"""Minimal rigid-body dynamics for the animation-loop examples.

Figure 7 of the paper: the game loop runs Collision Detection, then
Collision Response, then issues GPU commands.  This module supplies the
*response* half so the examples can close the loop with either CD
backend (software ``CollisionWorld`` or the GPU's RBCD unit): impulse
resolution along the contact normal plus positional correction, with
semi-implicit Euler integration.

The model is deliberately small — scalar (sphere-of-gyration) inertia,
no friction cone solver — because it exists to exercise the CD APIs,
not to be a physics engine.  Bodies with a non-zero ``inverse_inertia``
pick up spin from off-centre impacts; the default of 0 reproduces the
purely linear response.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4, Vec3
from repro.physics.epa import epa_penetration
from repro.physics.shapes import ConvexShape


@dataclass
class RigidBody:
    """A dynamic (or static, ``inverse_mass == 0``) rigid body.

    ``inverse_inertia`` is the scalar inverse moment of inertia
    (sphere-of-gyration approximation; for a solid sphere of mass m and
    radius r it is ``1 / (0.4 * m * r**2)``).  Zero disables rotation.
    """

    body_id: int
    mesh: TriangleMesh
    position: Vec3
    velocity: Vec3 = Vec3.zero()
    inverse_mass: float = 1.0
    restitution: float = 0.3
    inverse_inertia: float = 0.0
    angular_velocity: Vec3 = Vec3.zero()
    orientation: Mat4 = field(default_factory=Mat4.identity)

    def __post_init__(self) -> None:
        if self.inverse_mass < 0:
            raise ValueError("inverse_mass must be >= 0")
        if self.inverse_inertia < 0:
            raise ValueError("inverse_inertia must be >= 0")

    @property
    def is_static(self) -> bool:
        return self.inverse_mass == 0.0

    def model_matrix(self) -> Mat4:
        return Mat4.translation(self.position) @ self.orientation

    def velocity_at(self, world_point: Vec3) -> Vec3:
        """Velocity of the body's material point at a world position."""
        r = world_point - self.position
        return self.velocity + self.angular_velocity.cross(r)

    @staticmethod
    def sphere_inverse_inertia(inverse_mass: float, radius: float) -> float:
        """Scalar inverse inertia of a solid sphere."""
        if radius <= 0:
            raise ValueError("radius must be positive")
        if inverse_mass == 0:
            return 0.0
        return inverse_mass / (0.4 * radius * radius)


class PhysicsWorld:
    """Bodies + gravity + impulse contact response."""

    def __init__(self, gravity: Vec3 = Vec3(0.0, -9.81, 0.0)) -> None:
        self.gravity = gravity
        self._bodies: dict[int, RigidBody] = {}
        self._shapes: dict[int, ConvexShape] = {}

    def add_body(self, body: RigidBody) -> RigidBody:
        if body.body_id in self._bodies:
            raise ValueError(f"body id {body.body_id} already registered")
        self._bodies[body.body_id] = body
        self._shapes[body.body_id] = ConvexShape(body.mesh.vertices)
        return body

    def body(self, body_id: int) -> RigidBody:
        return self._bodies[body_id]

    def bodies(self) -> list[RigidBody]:
        return list(self._bodies.values())

    def integrate(self, dt: float) -> None:
        """Semi-implicit Euler step for every dynamic body."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        for body in self._bodies.values():
            if body.is_static:
                continue
            body.velocity = body.velocity + self.gravity * dt
            body.position = body.position + body.velocity * dt
            spin = body.angular_velocity.length()
            if spin > 1e-12:
                axis = body.angular_velocity / spin
                body.orientation = (
                    Mat4.rotation_axis(axis, spin * dt) @ body.orientation
                )

    def resolve_pairs(self, pairs: list[tuple[int, int]]) -> int:
        """Impulse-resolve each colliding pair (ids from any CD backend).

        Contact normal and depth come from EPA on the bodies' convex
        shapes; pairs that EPA finds separated (CD false positives from
        a coarse backend) are skipped.  Returns the number of contacts
        actually resolved.
        """
        resolved = 0
        for id_a, id_b in pairs:
            a = self._bodies[id_a]
            b = self._bodies[id_b]
            shape_a = self._shapes[id_a]
            shape_b = self._shapes[id_b]
            shape_a.update_transform(a.model_matrix())
            shape_b.update_transform(b.model_matrix())
            contact = epa_penetration(shape_a, shape_b)
            if contact is None or contact.depth <= 0.0:
                continue
            # EPA's normal points from A toward B; the direction that
            # pushes A out of B is its negation.
            normal = Vec3.from_array(-contact.normal)
            inv_mass_sum = a.inverse_mass + b.inverse_mass
            if inv_mass_sum == 0.0:
                continue
            # Contact point: midpoint of the two deepest supporting
            # *patches* (patch centroids smooth tessellation noise).
            sup_a = shape_a.support_patch(contact.normal, tol=0.02)
            sup_b = shape_b.support_patch(-contact.normal, tol=0.02)
            point = Vec3.from_array((sup_a + sup_b) * 0.5)
            r_a = point - a.position
            r_b = point - b.position

            # Relative velocity of the contact material points.
            rel = a.velocity_at(point) - b.velocity_at(point)
            vel_n = rel.dot(normal)
            if vel_n < 0.0:
                restitution = min(a.restitution, b.restitution)
                ang_a = a.inverse_inertia * r_a.cross(normal).length_squared()
                ang_b = b.inverse_inertia * r_b.cross(normal).length_squared()
                denom = inv_mass_sum + ang_a + ang_b
                impulse = -(1.0 + restitution) * vel_n / denom
                j = normal * impulse
                a.velocity = a.velocity + j * a.inverse_mass
                b.velocity = b.velocity - j * b.inverse_mass
                a.angular_velocity = a.angular_velocity + r_a.cross(j) * a.inverse_inertia
                b.angular_velocity = b.angular_velocity - r_b.cross(j) * b.inverse_inertia
            # Positional correction to resolve the interpenetration.
            correction = normal * (contact.depth / inv_mass_sum)
            a.position = a.position + correction * a.inverse_mass
            b.position = b.position - correction * b.inverse_mass
            resolved += 1
        return resolved

    def resolve_manifolds(self, manifolds) -> int:
        """Impulse-resolve RBCD contact manifolds directly — no EPA.

        This is the paper's full data path: the GPU reports contact
        points and depths; the CPU only runs the response arithmetic.
        The manifold's patch normal carries no orientation, so it is
        signed to push body A away from body B's centre.  Returns the
        number of manifolds resolved.
        """
        resolved = 0
        for manifold in manifolds:
            if manifold.is_degenerate():
                continue
            a = self._bodies[manifold.id_a]
            b = self._bodies[manifold.id_b]
            inv_mass_sum = a.inverse_mass + b.inverse_mass
            if inv_mass_sum == 0.0:
                continue
            normal = Vec3.from_array(manifold.normal)
            separation = a.position - b.position
            if separation.dot(normal) < 0.0:
                normal = -normal
            point = Vec3.from_array(manifold.centroid)
            r_a = point - a.position
            r_b = point - b.position
            rel = a.velocity_at(point) - b.velocity_at(point)
            vel_n = rel.dot(normal)
            if vel_n < 0.0:
                restitution = min(a.restitution, b.restitution)
                ang_a = a.inverse_inertia * r_a.cross(normal).length_squared()
                ang_b = b.inverse_inertia * r_b.cross(normal).length_squared()
                impulse = -(1.0 + restitution) * vel_n / (
                    inv_mass_sum + ang_a + ang_b
                )
                j = normal * impulse
                a.velocity = a.velocity + j * a.inverse_mass
                b.velocity = b.velocity - j * b.inverse_mass
                a.angular_velocity = a.angular_velocity + r_a.cross(j) * a.inverse_inertia
                b.angular_velocity = b.angular_velocity - r_b.cross(j) * b.inverse_inertia
            # Positional correction along the (image-estimated) normal.
            # The screen-space penetration estimate runs along the view
            # ray, which can exceed the true separation depth; damp it.
            depth = min(manifold.penetration, 0.5)
            correction = normal * (0.4 * depth / inv_mass_sum)
            a.position = a.position + correction * a.inverse_mass
            b.position = b.position - correction * b.inverse_mass
            resolved += 1
        return resolved

    def step(self, dt: float, pairs: list[tuple[int, int]]) -> int:
        """One Figure-7 time step: response for last frame's CD, then
        integration.  Returns the number of contacts resolved."""
        resolved = self.resolve_pairs(pairs)
        self.integrate(dt)
        return resolved

    def step_with_manifolds(self, dt: float, manifolds) -> int:
        """Figure-7 step using GPU-provided manifolds for the response."""
        resolved = self.resolve_manifolds(manifolds)
        self.integrate(dt)
        return resolved
