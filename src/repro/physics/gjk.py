"""GJK boolean intersection test.

The paper's narrow-phase baseline is "the GJK algorithm implemented in
Bullet" run on each pair the AABB broad phase lets through.  This is a
standard simplex-evolution GJK over the Minkowski difference of two
convex shapes: at each iteration the simplex is reduced to the feature
closest to the origin and a new support point is fetched along the
direction toward the origin; containment of the origin in a tetrahedron
means intersection.

Operation tallies: the support calls dominate (O(vertices) each) and
are counted inside :class:`~repro.physics.shapes.ConvexShape`; the
fixed per-iteration simplex arithmetic is charged per case below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physics.counters import CROSS3_FLOPS, DOT3_FLOPS, OpCounter
from repro.physics.shapes import ConvexShape, minkowski_support

_EPS = 1e-12
# Simplex-case arithmetic costs (dot/cross products of the region tests).
_LINE_CASE = dict(flop=2 * DOT3_FLOPS + 2 * CROSS3_FLOPS + 6, cmp=2, branch=2)
_TRIANGLE_CASE = dict(flop=6 * DOT3_FLOPS + 3 * CROSS3_FLOPS + 12, cmp=5, branch=5)
_TETRA_CASE = dict(flop=9 * DOT3_FLOPS + 3 * CROSS3_FLOPS + 12, cmp=4, branch=4)


@dataclass
class GJKResult:
    """Outcome of one GJK query."""

    intersecting: bool
    iterations: int
    simplex: list[np.ndarray] = field(default_factory=list)
    simplex_witnesses: list[tuple[int, int]] = field(default_factory=list)
    converged: bool = True


def _triple(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """(a x b) x c."""
    return np.cross(np.cross(a, b), c)


def _do_simplex(simplex, witnesses, ops: OpCounter):
    """Reduce the simplex to the feature nearest the origin.

    Returns ``(contains_origin, new_direction)``.  ``simplex`` holds
    Minkowski points newest-last; it is mutated in place.
    """
    if len(simplex) == 2:
        ops.add_all(**_LINE_CASE)
        b, a = simplex[0], simplex[1]
        ab = b - a
        ao = -a
        if ab @ ao > 0:
            return False, _triple(ab, ao, ab)
        del simplex[0], witnesses[0]
        return False, ao

    if len(simplex) == 3:
        ops.add_all(**_TRIANGLE_CASE)
        c, b, a = simplex[0], simplex[1], simplex[2]
        ab = b - a
        ac = c - a
        ao = -a
        abc = np.cross(ab, ac)
        if np.cross(abc, ac) @ ao > 0:
            if ac @ ao > 0:
                del simplex[1], witnesses[1]  # keep [c, a]
                return False, _triple(ac, ao, ac)
            # AB edge region via the fallthrough below.
            del simplex[0], witnesses[0]  # keep [b, a]
            return _do_simplex(simplex, witnesses, ops)
        if np.cross(ab, abc) @ ao > 0:
            del simplex[0], witnesses[0]  # keep [b, a]
            return _do_simplex(simplex, witnesses, ops)
        if abc @ ao > 0:
            return False, abc
        # Origin below the triangle: flip winding so the normal faces it.
        simplex[0], simplex[1] = simplex[1], simplex[0]
        witnesses[0], witnesses[1] = witnesses[1], witnesses[0]
        return False, -abc

    # Tetrahedron: test the three faces containing the newest vertex.
    ops.add_all(**_TETRA_CASE)
    d, c, b, a = simplex[0], simplex[1], simplex[2], simplex[3]
    ab = b - a
    ac = c - a
    ad = d - a
    ao = -a
    abc = np.cross(ab, ac)
    acd = np.cross(ac, ad)
    adb = np.cross(ad, ab)
    if abc @ ao > 0:
        del simplex[0], witnesses[0]  # keep [c, b, a]
        return _do_simplex(simplex, witnesses, ops)
    if acd @ ao > 0:
        del simplex[2], witnesses[2]  # keep [d, c, a]
        return _do_simplex(simplex, witnesses, ops)
    if adb @ ao > 0:
        del simplex[1], witnesses[1]  # keep [d, b, a]
        simplex[0], simplex[1] = simplex[1], simplex[0]
        witnesses[0], witnesses[1] = witnesses[1], witnesses[0]
        return _do_simplex(simplex, witnesses, ops)
    return True, np.zeros(3)


def gjk_intersect(
    shape_a: ConvexShape,
    shape_b: ConvexShape,
    ops: OpCounter | None = None,
    max_iterations: int = 64,
) -> GJKResult:
    """Boolean intersection of two convex shapes.

    ``max_iterations`` bounds pathological cycling on near-touching
    configurations; hitting the bound reports non-intersection with
    ``converged=False`` (matching Bullet's degenerate-case bail-out).
    """
    if ops is None:
        ops = OpCounter()

    direction = shape_b.center() - shape_a.center()
    ops.add_all(flop=3)
    if float(direction @ direction) < _EPS:
        direction = np.array([1.0, 0.0, 0.0])

    point, wa, wb = minkowski_support(shape_a, shape_b, direction, ops)
    simplex = [point]
    witnesses = [(wa, wb)]
    direction = -point

    for iteration in range(1, max_iterations + 1):
        if float(direction @ direction) < _EPS:
            # Origin sits on the current feature: touching counts as hit.
            return GJKResult(True, iteration, simplex, witnesses)
        point, wa, wb = minkowski_support(shape_a, shape_b, direction, ops)
        ops.add_all(flop=DOT3_FLOPS, cmp=1, branch=1)
        if float(point @ direction) < 0.0:
            return GJKResult(False, iteration, simplex, witnesses)
        simplex.append(point)
        witnesses.append((wa, wb))
        contains, direction = _do_simplex(simplex, witnesses, ops)
        if contains:
            return GJKResult(True, iteration, simplex, witnesses)

    return GJKResult(False, max_iterations, simplex, witnesses, converged=False)
