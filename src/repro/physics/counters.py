"""Operation counting for the CPU cost model.

The software CD baselines tally the dynamic operations they execute in
four classes; ``repro.cpu.model`` prices a tally into cycles, seconds
and joules.  Counting is *analytic per step*: vectorized code adds the
operation counts the equivalent scalar loop would have executed, so the
Python implementation speed does not distort the model.

Classes:

``flop``
    Floating-point add/sub/mul/div (and sqrt, counted as several).
``cmp``
    Comparisons / min / max.
``mem``
    Data memory accesses (reads and writes of operands that would not
    sit in registers — array elements, object fields).
``branch``
    Conditional branches taken or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.counters import (
    CounterAlgebra,
    CounterRegistry,
    registry_from_counters,
)

OP_KINDS = ("flop", "cmp", "mem", "branch")


@dataclass
class OpCounter(CounterAlgebra):
    """A tally of dynamic operations by class.

    Merging (``a + b``, ``sum``) comes from the shared
    :class:`~repro.observability.counters.CounterAlgebra`;
    :meth:`registry` exposes the tally under ``cpu.ops.*`` names.
    """

    flop: float = 0.0
    cmp: float = 0.0
    mem: float = 0.0
    branch: float = 0.0

    def add(self, kind: str, n: float = 1.0) -> None:
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}; expected one of {OP_KINDS}")
        setattr(self, kind, getattr(self, kind) + n)

    def add_all(self, flop: float = 0.0, cmp: float = 0.0, mem: float = 0.0,
                branch: float = 0.0) -> None:
        self.flop += flop
        self.cmp += cmp
        self.mem += mem
        self.branch += branch

    @property
    def total(self) -> float:
        return self.flop + self.cmp + self.mem + self.branch

    def scaled(self, factor: float) -> "OpCounter":
        return OpCounter(
            flop=self.flop * factor,
            cmp=self.cmp * factor,
            mem=self.mem * factor,
            branch=self.branch * factor,
        )

    def registry(self) -> CounterRegistry:
        """Named counter view: ``cpu.ops.flop`` etc., all "ops"-unit."""
        return registry_from_counters(
            self, "cpu.ops", units={k: "ops" for k in OP_KINDS}
        )

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={getattr(self, k):,.0f}" for k in OP_KINDS)
        return f"OpCounter({parts})"


# Cost constants for composite operations, in ops of each class.
# A 3-D point through a 3x4 affine transform: 9 mul + 9 add.
TRANSFORM_POINT_FLOPS = 18
# dot(a, b) for 3-vectors: 3 mul + 2 add.
DOT3_FLOPS = 5
# cross(a, b): 6 mul + 3 sub.
CROSS3_FLOPS = 9
# min/max fold of a 3-vector into an accumulator: 3 compares (+3 writes).
AABB_FOLD_CMPS = 3
