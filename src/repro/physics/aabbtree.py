"""Dynamic AABB tree (DBVT) broad phase.

Bullet's default broad phase is the dynamic bounding-volume tree
(``btDbvtBroadphase``): leaves hold fattened object AABBs, interior
nodes their unions; moved objects are re-inserted only when they escape
their fat box, and the colliding-pair set comes from a tree-vs-self
traversal.  This is the third broad-phase backend (after brute force
and sweep-and-prune), used by the broad-phase ablation bench.

The implementation follows the classic incremental algorithm: best
sibling selected by minimal surface-area growth, refit on the way up,
and a (node, node) descent for the self-query.  Operation counting
covers the node visits and box tests the scalar algorithm executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3
from repro.physics.counters import OpCounter

DEFAULT_MARGIN = 0.1


@dataclass
class _Node:
    box: AABB
    parent: "_Node | None" = None
    child1: "_Node | None" = None
    child2: "_Node | None" = None
    object_id: int | None = None  # leaves only

    @property
    def is_leaf(self) -> bool:
        return self.child1 is None


class DynamicAABBTree:
    """Incremental AABB tree over fat boxes."""

    def __init__(self, margin: float = DEFAULT_MARGIN) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin
        self._root: _Node | None = None
        self._leaves: dict[int, _Node] = {}

    def __len__(self) -> int:
        return len(self._leaves)

    # -- maintenance -----------------------------------------------------

    def insert(self, object_id: int, box: AABB, ops: OpCounter | None = None) -> None:
        if object_id in self._leaves:
            raise ValueError(f"object {object_id} already in the tree")
        leaf = _Node(box=box.expanded(self.margin), object_id=object_id)
        self._leaves[object_id] = leaf
        self._insert_leaf(leaf, ops)

    def remove(self, object_id: int) -> None:
        leaf = self._leaves.pop(object_id)
        self._remove_leaf(leaf)

    def update(self, object_id: int, box: AABB, ops: OpCounter | None = None) -> bool:
        """Refresh an object's box; returns True when it was re-inserted
        (it escaped its fat box), False when the fat box still covers it."""
        leaf = self._leaves[object_id]
        if ops is not None:
            ops.add_all(cmp=6, mem=12, branch=1)
        if leaf.box.contains_aabb(box):
            return False
        self._remove_leaf(leaf)
        leaf.box = box.expanded(self.margin)
        leaf.parent = leaf.child1 = leaf.child2 = None
        self._insert_leaf(leaf, ops)
        return True

    def _insert_leaf(self, leaf: _Node, ops: OpCounter | None) -> None:
        if self._root is None:
            self._root = leaf
            return
        # Descend to the sibling whose union grows least.
        node = self._root
        while not node.is_leaf:
            if ops is not None:
                ops.add_all(flop=24, cmp=2, mem=12, branch=1)
            grow1 = node.child1.box.union(leaf.box).surface_area()
            grow2 = node.child2.box.union(leaf.box).surface_area()
            node = node.child1 if grow1 <= grow2 else node.child2
        sibling = node
        old_parent = sibling.parent
        new_parent = _Node(
            box=sibling.box.union(leaf.box),
            parent=old_parent,
            child1=sibling,
            child2=leaf,
        )
        sibling.parent = new_parent
        leaf.parent = new_parent
        if old_parent is None:
            self._root = new_parent
        else:
            if old_parent.child1 is sibling:
                old_parent.child1 = new_parent
            else:
                old_parent.child2 = new_parent
        self._refit_upward(new_parent, ops)

    def _remove_leaf(self, leaf: _Node) -> None:
        if leaf is self._root:
            self._root = None
            return
        parent = leaf.parent
        sibling = parent.child1 if parent.child2 is leaf else parent.child2
        grandparent = parent.parent
        sibling.parent = grandparent
        if grandparent is None:
            self._root = sibling
        else:
            if grandparent.child1 is parent:
                grandparent.child1 = sibling
            else:
                grandparent.child2 = sibling
            self._refit_upward(grandparent, None)

    def _refit_upward(self, node: _Node | None, ops: OpCounter | None) -> None:
        while node is not None:
            node.box = node.child1.box.union(node.child2.box)
            if ops is not None:
                ops.add_all(flop=6, cmp=6, mem=12)
            node = node.parent

    # -- queries -----------------------------------------------------------

    def query(self, box: AABB, ops: OpCounter | None = None) -> list[int]:
        """Object ids whose fat boxes overlap ``box``."""
        found: list[int] = []
        if self._root is None:
            return found
        stack = [self._root]
        while stack:
            node = stack.pop()
            if ops is not None:
                ops.add_all(cmp=6, mem=12, branch=1)
            if not node.box.overlaps(box):
                continue
            if node.is_leaf:
                found.append(node.object_id)
            else:
                stack.append(node.child1)
                stack.append(node.child2)
        return found

    def query_pairs(self, ops: OpCounter | None = None) -> list[tuple[int, int]]:
        """All pairs of objects whose fat boxes overlap (self traversal)."""
        pairs: list[tuple[int, int]] = []
        if self._root is None or self._root.is_leaf:
            return pairs
        stack = [(self._root, self._root)]
        while stack:
            n1, n2 = stack.pop()
            if ops is not None:
                ops.add_all(cmp=6, mem=12, branch=2)
            if n1 is n2:
                if n1.is_leaf:
                    continue
                stack.append((n1.child1, n1.child1))
                stack.append((n1.child2, n1.child2))
                stack.append((n1.child1, n1.child2))
                continue
            if not n1.box.overlaps(n2.box):
                continue
            if n1.is_leaf and n2.is_leaf:
                a, b = n1.object_id, n2.object_id
                pairs.append((a, b) if a <= b else (b, a))
            elif n1.is_leaf:
                stack.append((n1, n2.child1))
                stack.append((n1, n2.child2))
            else:
                stack.append((n1.child1, n2))
                stack.append((n1.child2, n2))
        return sorted(set(pairs))


def tree_broadphase_pairs(
    boxes: list[AABB],
    ids: list[int],
    ops: OpCounter,
    tree: DynamicAABBTree | None = None,
) -> tuple[list[tuple[int, int]], DynamicAABBTree]:
    """One broad-phase pass through a (possibly persistent) tree.

    Builds the tree on first use; afterwards only moved objects are
    re-inserted.  Fat-box pairs are narrowed with the exact 6-compare
    test so the result matches brute force exactly.
    """
    if len(boxes) != len(ids):
        raise ValueError("need one id per box")
    if tree is None:
        tree = DynamicAABBTree()
    by_id = dict(zip(ids, boxes))
    for object_id, box in by_id.items():
        if object_id in tree._leaves:
            tree.update(object_id, box, ops)
        else:
            tree.insert(object_id, box, ops)
    for stale in set(tree._leaves) - set(by_id):
        tree.remove(stale)

    pairs = []
    for a, b in tree.query_pairs(ops):
        ops.add_all(cmp=6, mem=12, branch=6)
        if by_id[a].overlaps(by_id[b]):
            pairs.append((a, b))
    return sorted(pairs), tree
