"""EPA: penetration depth for intersecting convex shapes.

Used by the rigid-body dynamics example (collision *response* needs a
contact normal and depth; detection alone does not).  Standard
Expanding Polytope Algorithm: starting from GJK's terminal simplex
(inflated to a tetrahedron when degenerate), repeatedly expand the face
of the Minkowski-difference polytope closest to the origin until the
support distance stops improving.

Faces are kept consistently outward-wound from the initial tetrahedron
on; horizon stitching preserves the winding, so normals never need the
ambiguous "flip toward/away from origin" step (which breaks down when
the origin lies on a face).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.counters import CROSS3_FLOPS, DOT3_FLOPS, OpCounter
from repro.physics.gjk import GJKResult, gjk_intersect
from repro.physics.shapes import ConvexShape, minkowski_support

_EPS = 1e-9
_GROWTH_EPS = 1e-7
_FACE_COST = dict(flop=2 * CROSS3_FLOPS + DOT3_FLOPS + 8, cmp=1)


@dataclass
class EPAResult:
    """Penetration information for an intersecting pair."""

    normal: np.ndarray   # unit vector from A toward B; moving A by
    #                      -normal*depth (or B by +normal*depth) separates
    depth: float
    iterations: int
    converged: bool


def _inflate_to_tetrahedron(simplex, shape_a, shape_b, ops):
    """Grow a degenerate terminal simplex into a tetrahedron with volume."""
    axes = [np.eye(3)[i] for i in range(3)]
    pts = [np.asarray(p, dtype=np.float64) for p in simplex]

    def try_add(direction):
        p, _, _ = minkowski_support(shape_a, shape_b, direction, ops)
        if not any(np.allclose(p, q, atol=1e-12) for q in pts):
            pts.append(p)
            return True
        return False

    if len(pts) == 1:
        for d in axes + [-a for a in axes]:
            if try_add(d):
                break
    if len(pts) == 2:
        ab = pts[1] - pts[0]
        least = int(np.argmin(np.abs(ab)))
        ortho = np.cross(ab, np.eye(3)[least])
        for d in (ortho, -ortho, np.cross(ab, ortho), -np.cross(ab, ortho)):
            if try_add(d):
                break
    if len(pts) == 3:
        n = np.cross(pts[1] - pts[0], pts[2] - pts[0])
        norm = np.linalg.norm(n)
        if norm < _EPS:
            return None
        for d in (n, -n):
            if try_add(d):
                v = np.array(pts)
                if abs(np.linalg.det(v[1:] - v[0])) > 1e-12:
                    break
                pts.pop()
    if len(pts) != 4:
        return None
    v = np.array(pts)
    if abs(np.linalg.det(v[1:] - v[0])) <= 1e-12:
        return None
    return pts


class _Face:
    """An outward-wound polytope face with its plane."""

    __slots__ = ("a", "b", "c", "normal", "distance", "valid")

    def __init__(self, a: int, b: int, c: int, vertices, ops: OpCounter) -> None:
        self.a, self.b, self.c = a, b, c
        ops.add_all(**_FACE_COST)
        n = np.cross(vertices[b] - vertices[a], vertices[c] - vertices[a])
        norm = float(np.linalg.norm(n))
        if norm < _EPS:
            self.normal = np.zeros(3)
            self.distance = np.inf
            self.valid = False
            return
        self.normal = n / norm
        self.distance = float(self.normal @ vertices[a])
        self.valid = True

    def edges(self):
        return ((self.a, self.b), (self.b, self.c), (self.c, self.a))


def epa_penetration(
    shape_a: ConvexShape,
    shape_b: ConvexShape,
    gjk_result: GJKResult | None = None,
    ops: OpCounter | None = None,
    max_iterations: int = 96,
) -> EPAResult | None:
    """Penetration normal/depth of an intersecting pair.

    Returns ``None`` when the shapes do not intersect (a fresh GJK is
    run when no terminal ``gjk_result`` is supplied).  The normal
    points from A toward B: translating B by ``normal * depth`` (or A
    by the negation) separates the shapes.
    """
    if ops is None:
        ops = OpCounter()
    if gjk_result is None:
        gjk_result = gjk_intersect(shape_a, shape_b, ops)
    if not gjk_result.intersecting:
        return None

    pts = _inflate_to_tetrahedron(list(gjk_result.simplex), shape_a, shape_b, ops)
    if pts is None:
        # Flat Minkowski difference: touching contact, no usable normal.
        return EPAResult(np.array([0.0, 0.0, 1.0]), 0.0, 0, False)

    vertices: list[np.ndarray] = pts
    # Orient the initial tetrahedron outward: a face is outward when the
    # remaining vertex is behind its plane.
    faces: list[_Face] = []
    for a, b, c, opposite in ((0, 1, 2, 3), (0, 1, 3, 2), (0, 2, 3, 1), (1, 2, 3, 0)):
        face = _Face(a, b, c, vertices, ops)
        if not face.valid:
            return EPAResult(np.array([0.0, 0.0, 1.0]), 0.0, 0, False)
        if float(face.normal @ (vertices[opposite] - vertices[a])) > 0:
            face = _Face(a, c, b, vertices, ops)
        faces.append(face)

    best_face = min(faces, key=lambda f: f.distance)
    for iteration in range(1, max_iterations + 1):
        best_face = min(faces, key=lambda f: f.distance)
        ops.add_all(cmp=len(faces))
        p, _, _ = minkowski_support(shape_a, shape_b, best_face.normal, ops)
        growth = float(best_face.normal @ p) - best_face.distance
        ops.add_all(flop=DOT3_FLOPS + 1, cmp=1, branch=1)
        if growth < _GROWTH_EPS:
            return EPAResult(
                best_face.normal.copy(), max(best_face.distance, 0.0), iteration, True
            )

        # Faces visible from the new support point get replaced.
        vertices.append(p)
        new_idx = len(vertices) - 1
        visible = []
        kept = []
        for face in faces:
            ops.add_all(flop=DOT3_FLOPS + 3, cmp=1, branch=1)
            if float(face.normal @ (p - vertices[face.a])) > _EPS:
                visible.append(face)
            else:
                kept.append(face)
        if not visible:
            return EPAResult(
                best_face.normal.copy(), max(best_face.distance, 0.0), iteration, True
            )
        # Horizon: directed edges of visible faces not shared between two
        # visible faces; stitching (u, v, new) preserves outward winding.
        edge_set: dict[tuple[int, int], tuple[int, int]] = {}
        for face in visible:
            for u, v in face.edges():
                key = (min(u, v), max(u, v))
                if key in edge_set:
                    del edge_set[key]
                else:
                    edge_set[key] = (u, v)
        new_faces = []
        for u, v in edge_set.values():
            face = _Face(u, v, new_idx, vertices, ops)
            if face.valid:
                new_faces.append(face)
        if not new_faces:
            return EPAResult(
                best_face.normal.copy(), max(best_face.distance, 0.0), iteration, False
            )
        faces = kept + new_faces

    return EPAResult(
        best_face.normal.copy(), max(best_face.distance, 0.0), max_iterations, False
    )
