"""CollisionWorld: the CPU-side CD pipelines (Bullet-equivalent).

Two configurations, exactly the two baselines of Section 4.3:

``mode="broad"``
    Per-frame world-AABB recompute over every collisionable mesh plus
    the all-pairs AABB overlap test.
``mode="broad+narrow"``
    The broad phase above, then GJK (on convex hulls, transformed to
    world space per frame) for every surviving pair.
``mode="broad+exact"``
    The broad phase, then the exact O(n*n) triangle-triangle narrow
    phase — the unsimplified CD the paper's Section 2 describes as
    "often the most computationally-intensive task".  Kept as a third
    baseline/oracle; it is far costlier than GJK.

Every frame returns the detected pairs *and* the operation tally, which
``repro.cpu`` prices into Cortex-A9 time and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4
from repro.physics.broadphase import aabb_bruteforce_pairs, sweep_and_prune_pairs, world_aabbs
from repro.physics.counters import OpCounter
from repro.physics.epa import epa_penetration
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape

MODES = ("broad", "broad+narrow", "broad+exact")
BROAD_ALGOS = ("bruteforce", "sap", "tree", "lbvh")


@dataclass
class CDResult:
    """One frame of software collision detection."""

    broad_pairs: list[tuple[int, int]]
    narrow_pairs: list[tuple[int, int]]
    ops: OpCounter
    mode: str

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """The pipeline's final answer for its mode."""
        if self.mode == "broad":
            return self.broad_pairs
        return self.narrow_pairs


class CollisionObject:
    """One collisionable object registered with the world."""

    def __init__(self, object_id: int, mesh: TriangleMesh) -> None:
        if object_id < 0:
            raise ValueError("object_id must be non-negative")
        self.object_id = object_id
        self.mesh = mesh
        self.model = Mat4.identity()
        # GJK treats the (possibly concave) mesh as its convex hull —
        # the Figure 2 setup.  Support queries over the raw vertex set
        # are identical to queries over the hull, and scanning all
        # points per query is exactly what Bullet's btConvexHullShape
        # does without preprocessing, so the op tally matches the
        # paper's baseline.
        self.shape = ConvexShape(mesh.vertices)

    def set_model(self, model: Mat4) -> None:
        self.model = model


class CollisionWorld:
    """Software CD over a set of collisionable objects."""

    def __init__(self, broad_algorithm: str = "bruteforce") -> None:
        if broad_algorithm not in BROAD_ALGOS:
            raise ValueError(f"broad_algorithm must be one of {BROAD_ALGOS}")
        self.broad_algorithm = broad_algorithm
        self._objects: dict[int, CollisionObject] = {}
        self._tree = None  # persistent DBVT for the "tree" backend

    def add_object(self, object_id: int, mesh: TriangleMesh) -> CollisionObject:
        if object_id in self._objects:
            raise ValueError(f"object id {object_id} already registered")
        obj = CollisionObject(object_id, mesh)
        self._objects[object_id] = obj
        return obj

    def remove_object(self, object_id: int) -> None:
        del self._objects[object_id]

    def set_transform(self, object_id: int, model: Mat4) -> None:
        self._objects[object_id].set_model(model)

    def __len__(self) -> int:
        return len(self._objects)

    def objects(self) -> list[CollisionObject]:
        return list(self._objects.values())

    def detect(self, mode: str = "broad") -> CDResult:
        """Run one frame of CD; returns pairs plus the op tally."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        ops = OpCounter()
        objs = self.objects()
        ids = [o.object_id for o in objs]

        boxes = world_aabbs([o.mesh.vertices for o in objs], [o.model for o in objs], ops)
        if self.broad_algorithm == "sap":
            broad = sweep_and_prune_pairs(boxes, ids, ops)
        elif self.broad_algorithm == "tree":
            from repro.physics.aabbtree import tree_broadphase_pairs
            from repro.physics.broadphase import BroadPhaseResult

            pairs, self._tree = tree_broadphase_pairs(boxes, ids, ops, self._tree)
            broad = BroadPhaseResult(pairs=pairs, ops=ops)
        elif self.broad_algorithm == "lbvh":
            from repro.physics.lbvh import lbvh_broadphase_pairs

            broad = lbvh_broadphase_pairs(boxes, ids, ops)
        else:
            broad = aabb_bruteforce_pairs(boxes, ids, ops)

        narrow_pairs: list[tuple[int, int]] = []
        if mode == "broad+exact":
            from repro.physics.tritri import mesh_pair_intersect

            by_id = {o.object_id: o for o in objs}
            for id_a, id_b in broad.pairs:
                a, b = by_id[id_a], by_id[id_b]
                if mesh_pair_intersect(a.mesh, a.model, b.mesh, b.model, ops):
                    narrow_pairs.append((id_a, id_b))
        elif mode == "broad+narrow":
            by_id = {o.object_id: o for o in objs}
            # Bullet refreshes every collision object's world transform
            # each step, then runs the convex pair algorithm per broad-
            # phase candidate: GJK, plus penetration-depth/contact
            # computation (EPA) for intersecting pairs — games need the
            # contact, not just the boolean.
            for obj in objs:
                obj.shape.update_transform(obj.model, ops)
            for id_a, id_b in broad.pairs:
                result = gjk_intersect(by_id[id_a].shape, by_id[id_b].shape, ops)
                if result.intersecting:
                    narrow_pairs.append((id_a, id_b))
                    epa_penetration(
                        by_id[id_a].shape, by_id[id_b].shape, result, ops
                    )

        return CDResult(
            broad_pairs=broad.pairs,
            narrow_pairs=sorted(narrow_pairs),
            ops=ops,
            mode=mode,
        )
