"""Linear BVH broad phase: Morton codes + radix sort + radix tree.

The fourth broad-phase backend (after brute force, sweep-and-prune and
the dynamic AABB tree), and the default oracle broad phase.  The LBVH
is the standard GPU-friendly decomposition of broad-phase CD — build a
spatial tree in three data-parallel passes instead of incremental
insertion:

1. Quantize each object's AABB centroid onto a ``2^10``-per-axis grid
   over the scene bounds and interleave the bits into a 30-bit
   **Morton code** (``z-order``), so spatial proximity becomes numeric
   proximity.
2. **Radix-sort** the codes (stable LSD counting sort, 8-bit digits) —
   the sorted order is the leaf order.
3. Build the **binary radix tree** over the sorted codes (Karras 2012):
   each internal node splits its range at the highest differing Morton
   bit.  Ties between duplicate codes are broken by leaf index
   (equivalent to appending the index below the code bits), which keeps
   the tree well-formed for degenerate clouds where every centroid
   lands on one grid cell.  A bottom-up pass then refits exact AABB
   unions onto every node.

Pair query: for every leaf, descend from the root, pruning subtrees
whose boxes miss the leaf's box *or whose leaf range lies entirely at
or before the query leaf* (each unordered pair is visited exactly
once).  Because internal boxes are exact unions and the leaf-vs-leaf
test is the same closed-interval 6-compare as brute force, the pair
set equals :func:`~repro.physics.broadphase.aabb_bruteforce_pairs`
exactly — a property the LBVH suite asserts on randomized and
degenerate clouds.

Operation counting mirrors the scalar algorithm the counters price
elsewhere: per-element quantize/encode flops, per-pass radix loads and
stores, one counted delta evaluation per binary-search probe, and the
same 6-compare/12-load node visit cost as the DBVT traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.physics.broadphase import BroadPhaseResult, _overlap_counted
from repro.physics.counters import OpCounter

MORTON_BITS_PER_AXIS = 10
MORTON_BITS = 3 * MORTON_BITS_PER_AXIS
GRID_MAX = (1 << MORTON_BITS_PER_AXIS) - 1  # 1023
RADIX_BITS = 8

__all__ = [
    "MORTON_BITS",
    "MORTON_BITS_PER_AXIS",
    "GRID_MAX",
    "LBVH",
    "expand_bits_3",
    "compact_bits_3",
    "morton_encode",
    "morton_decode",
    "quantize_centroids",
    "radix_argsort",
    "build_lbvh",
    "lbvh_broadphase_pairs",
]


# ---------------------------------------------------------------------------
# Morton codes
# ---------------------------------------------------------------------------


def expand_bits_3(v: np.ndarray) -> np.ndarray:
    """Spread the low 10 bits of each value 3 apart (b -> 0b00b00b...)."""
    v = np.asarray(v, dtype=np.uint64) & np.uint64(0x3FF)
    v = (v | (v << np.uint64(16))) & np.uint64(0xFF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x0F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0xC30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x49249249)
    return v


def compact_bits_3(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`expand_bits_3`: gather every third bit."""
    v = np.asarray(v, dtype=np.uint64) & np.uint64(0x49249249)
    v = (v | (v >> np.uint64(2))) & np.uint64(0xC30C30C3)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x0F00F00F)
    v = (v | (v >> np.uint64(8))) & np.uint64(0xFF0000FF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x3FF)
    return v


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave three 10-bit grid coordinates into 30-bit codes."""
    return (
        (expand_bits_3(ix) << np.uint64(2))
        | (expand_bits_3(iy) << np.uint64(1))
        | expand_bits_3(iz)
    )


def morton_decode(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the (ix, iy, iz) grid coordinates of Morton codes."""
    codes = np.asarray(codes, dtype=np.uint64)
    return (
        compact_bits_3(codes >> np.uint64(2)),
        compact_bits_3(codes >> np.uint64(1)),
        compact_bits_3(codes),
    )


def quantize_centroids(
    centers: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Map (N, 3) centroids within [lo, hi] to integer grid coords.

    Degenerate axes (zero scene extent) collapse to grid coordinate 0,
    which is what makes all-identical clouds legal inputs.
    """
    centers = np.asarray(centers, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    extent = np.asarray(hi, dtype=np.float64) - lo
    safe = np.where(extent > 0.0, extent, 1.0)
    unit = np.clip((centers - lo) / safe, 0.0, 1.0)
    return np.minimum(
        np.floor(unit * (GRID_MAX + 1)).astype(np.int64), GRID_MAX
    )


# ---------------------------------------------------------------------------
# Radix sort
# ---------------------------------------------------------------------------


def radix_argsort(
    keys: np.ndarray,
    key_bits: int = MORTON_BITS,
    ops: OpCounter | None = None,
) -> np.ndarray:
    """Stable LSD radix argsort of unsigned integer keys.

    Counting-sort passes over 8-bit digits; each pass is stable, so
    equal keys keep their input order (verified against
    ``np.argsort(kind="stable")`` by the property suite).  The scatter
    loop is scalar on purpose: it is the executable spec the op tally
    prices (object counts in the broad phase are small).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    n = keys.shape[0]
    order = np.arange(n, dtype=np.int64)
    if n < 2:
        return order
    mask = np.uint64((1 << RADIX_BITS) - 1)
    passes = -(-key_bits // RADIX_BITS)  # ceil
    for p in range(passes):
        shift = np.uint64(p * RADIX_BITS)
        digits = ((keys[order] >> shift) & mask).astype(np.int64)
        counts = np.bincount(digits, minlength=1 << RADIX_BITS)
        offsets = np.cumsum(counts) - counts
        out = np.empty_like(order)
        for i in range(n):
            d = digits[i]
            out[offsets[d]] = order[i]
            offsets[d] += 1
        order = out
        if ops is not None:
            # Per element: key load, digit extract, histogram rmw,
            # ordered store.
            ops.add_all(flop=n, mem=4 * n, branch=n)
    return order


# ---------------------------------------------------------------------------
# Binary radix tree (Karras 2012)
# ---------------------------------------------------------------------------


@dataclass
class LBVH:
    """A built LBVH over ``num_leaves`` sorted leaves.

    Node index space: internal nodes ``0 .. num_leaves-2``, leaves
    ``num_leaves-1 .. 2*num_leaves-2`` (leaf ``i`` of the sorted order
    is node ``(num_leaves - 1) + i``).  The root is node 0 (or the
    single leaf when ``num_leaves == 1``).  ``leaf_order[i]`` is the
    original object index of sorted leaf ``i``; ``first``/``last`` give
    the inclusive sorted-leaf range each internal node covers.
    """

    num_leaves: int
    leaf_order: np.ndarray   # (N,) original object index per sorted leaf
    codes: np.ndarray        # (N,) sorted Morton codes (uint64)
    left: np.ndarray         # (max(N-1, 0),) child node index
    right: np.ndarray        # (max(N-1, 0),)
    parent: np.ndarray       # (2N-1,) parent node index, -1 at the root
    first: np.ndarray        # (max(N-1, 0),) first sorted leaf covered
    last: np.ndarray         # (max(N-1, 0),) last sorted leaf covered
    node_lo: np.ndarray      # (2N-1, 3) exact AABB union per node
    node_hi: np.ndarray      # (2N-1, 3)

    @property
    def num_internal(self) -> int:
        return self.num_leaves - 1 if self.num_leaves > 1 else 0

    @property
    def root(self) -> int:
        return 0 if self.num_leaves > 1 else self.num_internal

    def leaf_node(self, sorted_leaf: int) -> int:
        return self.num_internal + sorted_leaf

    def is_leaf_node(self, node: int) -> bool:
        return node >= self.num_internal


def _make_delta(codes: np.ndarray, n: int, ops: OpCounter | None):
    """Common-prefix length over index-augmented keys.

    Duplicate Morton codes are disambiguated by the leaf index below
    the code bits (Karras's tie-break), so ``delta`` is well defined
    and the tree stays binary for fully degenerate clouds.
    """
    augmented = (codes.astype(np.uint64) << np.uint64(32)) | np.arange(
        n, dtype=np.uint64
    )

    def delta(i: int, j: int) -> int:
        if j < 0 or j >= n:
            return -1
        if ops is not None:
            ops.add_all(flop=1, cmp=2, mem=2)
        return 64 - int(augmented[i] ^ augmented[j]).bit_length()

    return delta


def build_lbvh(
    boxes: list[AABB], ops: OpCounter | None = None
) -> LBVH:
    """Build the tree over a list of world AABBs (original order kept
    in ``leaf_order``)."""
    n = len(boxes)
    if n == 0:
        raise ValueError("cannot build an LBVH over zero boxes")
    lo = np.array([b.lo.to_array() for b in boxes], dtype=np.float64)
    hi = np.array([b.hi.to_array() for b in boxes], dtype=np.float64)
    centers = (lo + hi) * 0.5
    scene_lo = lo.min(axis=0)
    scene_hi = hi.max(axis=0)
    grid = quantize_centroids(centers, scene_lo, scene_hi)
    codes = morton_encode(grid[:, 0], grid[:, 1], grid[:, 2])
    if ops is not None:
        # Per object: centroid (3 adds, 3 muls), normalize (3 subs,
        # 3 divs), clip (6 compares), 3x expand-bits (4 mask rounds
        # each) + interleave.
        ops.add_all(flop=n * (6 + 6 + 14), cmp=n * 6, mem=n * 8)

    order = radix_argsort(codes, ops=ops)
    sorted_codes = codes[order]

    num_internal = n - 1 if n > 1 else 0
    total_nodes = num_internal + n
    left = np.full(num_internal, -1, dtype=np.int64)
    right = np.full(num_internal, -1, dtype=np.int64)
    parent = np.full(total_nodes, -1, dtype=np.int64)
    first = np.full(num_internal, -1, dtype=np.int64)
    last = np.full(num_internal, -1, dtype=np.int64)

    delta = _make_delta(sorted_codes, n, ops)

    for i in range(num_internal):
        # Direction of this node's range: towards the longer prefix.
        d = 1 if delta(i, i + 1) > delta(i, i - 1) else -1
        delta_min = delta(i, i - d)

        # Exponential then binary search for the range's other end.
        l_max = 2
        while delta(i, i + l_max * d) > delta_min:
            l_max *= 2
        length = 0
        t = l_max // 2
        while t >= 1:
            if delta(i, i + (length + t) * d) > delta_min:
                length += t
            t //= 2
        j = i + length * d

        # Split position: highest differing bit within [i, j].
        delta_node = delta(i, j)
        s = 0
        t = length
        while True:
            t = (t + 1) // 2
            if delta(i, i + (s + t) * d) > delta_node:
                s += t
            if t == 1:
                break
        gamma = i + s * d + min(d, 0)

        lo_i, hi_i = min(i, j), max(i, j)
        first[i], last[i] = lo_i, hi_i
        left_child = num_internal + gamma if lo_i == gamma else gamma
        right_child = (
            num_internal + gamma + 1 if hi_i == gamma + 1 else gamma + 1
        )
        left[i] = left_child
        right[i] = right_child
        parent[left_child] = i
        parent[right_child] = i

    # Exact AABB refit, bottom-up: a node's box is computed on the
    # second arrival from below, when both children are final.
    node_lo = np.empty((total_nodes, 3), dtype=np.float64)
    node_hi = np.empty((total_nodes, 3), dtype=np.float64)
    node_lo[num_internal:] = lo[order]
    node_hi[num_internal:] = hi[order]
    arrivals = np.zeros(max(num_internal, 1), dtype=np.int64)
    for leaf in range(n):
        node = parent[num_internal + leaf]
        while node != -1:
            arrivals[node] += 1
            if arrivals[node] < 2:
                break
            lc, rc = left[node], right[node]
            node_lo[node] = np.minimum(node_lo[lc], node_lo[rc])
            node_hi[node] = np.maximum(node_hi[lc], node_hi[rc])
            if ops is not None:
                ops.add_all(flop=6, cmp=6, mem=12)
            node = parent[node]

    return LBVH(
        num_leaves=n,
        leaf_order=order,
        codes=sorted_codes,
        left=left,
        right=right,
        parent=parent,
        first=first,
        last=last,
        node_lo=node_lo,
        node_hi=node_hi,
    )


def _boxes_overlap(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> bool:
    """Closed-interval overlap (touching counts), as AABB.overlaps."""
    return bool(np.all(lo_a <= hi_b) and np.all(lo_b <= hi_a))


def lbvh_broadphase_pairs(
    boxes: list[AABB], ids: list[int], ops: OpCounter
) -> BroadPhaseResult:
    """LBVH build + self-query; pair set equals brute force exactly.

    For each sorted leaf ``l`` the traversal prunes every subtree whose
    covered leaf range ends at or before ``l`` — each unordered pair is
    examined from its lower sorted leaf only — and subtrees whose exact
    union box misses the leaf's box.  Surviving leaf-leaf candidates
    run the same counted 6-compare test as the brute-force baseline.
    """
    if len(boxes) != len(ids):
        raise ValueError("need one id per box")
    n = len(boxes)
    if n < 2:
        return BroadPhaseResult(pairs=[], ops=ops)

    tree = build_lbvh(boxes, ops)
    num_internal = tree.num_internal
    pairs: list[tuple[int, int]] = []
    for l in range(n):
        leaf_lo = tree.node_lo[num_internal + l]
        leaf_hi = tree.node_hi[num_internal + l]
        obj_a = int(tree.leaf_order[l])
        stack = [tree.root]
        while stack:
            node = stack.pop()
            ops.add_all(cmp=6, mem=12, branch=2)
            if node >= num_internal:  # leaf node
                j = node - num_internal
                if j <= l:
                    continue
                obj_b = int(tree.leaf_order[j])
                if _overlap_counted(boxes[obj_a], boxes[obj_b], ops):
                    a, b = ids[obj_a], ids[obj_b]
                    pairs.append((a, b) if a <= b else (b, a))
                continue
            if tree.last[node] <= l:
                continue  # every covered leaf is at or before l
            if not _boxes_overlap(
                leaf_lo, leaf_hi, tree.node_lo[node], tree.node_hi[node]
            ):
                continue
            stack.append(tree.left[node])
            stack.append(tree.right[node])
    return BroadPhaseResult(pairs=sorted(pairs), ops=ops)
