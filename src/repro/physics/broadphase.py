"""Broad-phase collision detection over axis-aligned bounding boxes.

Models the paper's CPU broad baseline ("the most simple broad phase, an
AABB overlap test", Section 5.1): every frame, each collisionable
object's world AABB is recomputed from its transformed mesh vertices —
exactly what Bullet does for mesh-backed collision shapes — and then
the pairwise overlap tests run, either brute force (all pairs, the
baseline) or sweep-and-prune (the classic O(n log n) refinement, kept
as an ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.vec import Mat4, Vec3, transform_points
from repro.physics.counters import AABB_FOLD_CMPS, TRANSFORM_POINT_FLOPS, OpCounter


@dataclass
class BroadPhaseResult:
    """Candidate pairs plus the operation tally that produced them."""

    pairs: list[tuple[int, int]]
    ops: OpCounter


def world_aabb_of_mesh(
    vertices: np.ndarray, model: Mat4, ops: OpCounter
) -> AABB:
    """World AABB of a mesh: transform every vertex, fold min/max.

    This is the per-frame AABB *recompute* cost of a mesh-backed
    collision shape; the op tally reflects the scalar loop (one
    transform + one min/max fold per vertex).
    """
    world = transform_points(model, vertices)
    n = vertices.shape[0]
    ops.add_all(
        flop=n * TRANSFORM_POINT_FLOPS,
        cmp=n * 2 * AABB_FOLD_CMPS,          # min fold + max fold
        mem=n * (3 + 3 + 6),                 # read vertex, write point, rmw bounds
    )
    return AABB.from_points(world)


def world_aabbs(
    meshes: list[np.ndarray], models: list[Mat4], ops: OpCounter
) -> list[AABB]:
    """Per-frame world AABBs for every collisionable object."""
    if len(meshes) != len(models):
        raise ValueError("need one model matrix per mesh")
    return [world_aabb_of_mesh(v, m, ops) for v, m in zip(meshes, models)]


def _overlap_counted(a: AABB, b: AABB, ops: OpCounter) -> bool:
    """Six-compare AABB test with early out (the tally counts the
    average-case 6 compares and loads, like the scalar code would)."""
    ops.add_all(cmp=6, mem=12, branch=6)
    return a.overlaps(b)


def aabb_bruteforce_pairs(
    boxes: list[AABB], ids: list[int], ops: OpCounter
) -> BroadPhaseResult:
    """All-pairs AABB overlap: the paper's broad-CD baseline."""
    if len(boxes) != len(ids):
        raise ValueError("need one id per box")
    pairs: list[tuple[int, int]] = []
    n = len(boxes)
    for i in range(n):
        for j in range(i + 1, n):
            if _overlap_counted(boxes[i], boxes[j], ops):
                a, b = ids[i], ids[j]
                pairs.append((a, b) if a <= b else (b, a))
    return BroadPhaseResult(pairs=sorted(pairs), ops=ops)


def sweep_and_prune_pairs(
    boxes: list[AABB], ids: list[int], ops: OpCounter, axis: int = 0
) -> BroadPhaseResult:
    """Sweep-and-prune along one axis, full test on survivors.

    Endpoints are sorted (counted as the comparison cost of the sort),
    then a sweep keeps an active interval set; interval-overlapping
    pairs get the full 6-compare test.  Produces exactly the same pairs
    as brute force.
    """
    if len(boxes) != len(ids):
        raise ValueError("need one id per box")
    if not 0 <= axis <= 2:
        raise ValueError("axis must be 0, 1 or 2")
    n = len(boxes)
    if n < 2:
        return BroadPhaseResult(pairs=[], ops=ops)

    events: list[tuple[float, int, int]] = []  # (coord, is_end, index)
    for i, box in enumerate(boxes):
        events.append((box.lo[axis], 0, i))
        events.append((box.hi[axis], 1, i))
    events.sort()
    m = len(events)
    ops.add_all(
        cmp=m * np.log2(m) if m > 1 else 0,  # comparison sort
        mem=2 * m * np.log2(m) if m > 1 else 0,
        branch=m,
    )

    active: set[int] = set()
    pairs: list[tuple[int, int]] = []
    for _, is_end, i in events:
        ops.add_all(mem=2, branch=1)
        if is_end:
            active.discard(i)
            continue
        for j in active:
            if _overlap_counted(boxes[i], boxes[j], ops):
                a, b = ids[i], ids[j]
                pairs.append((a, b) if a <= b else (b, a))
        active.add(i)
    return BroadPhaseResult(pairs=sorted(pairs), ops=ops)
