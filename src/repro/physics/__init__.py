"""Software collision detection (the paper's CPU baselines).

From-scratch, instrumented equivalents of the Bullet-based baselines of
Section 4.3: an AABB broad phase (brute-force and sweep-and-prune) and
a GJK narrow phase (plus EPA penetration depth for the dynamics
examples).  Every implementation counts the arithmetic, comparison,
memory and branch operations it executes; the ``repro.cpu`` model
prices those counts into Cortex-A9-like cycles and energy.
"""

from repro.physics.counters import OpCounter
from repro.physics.broadphase import (
    BroadPhaseResult,
    aabb_bruteforce_pairs,
    sweep_and_prune_pairs,
    world_aabbs,
)
from repro.physics.shapes import ConvexShape, SupportPoint
from repro.physics.gjk import GJKResult, gjk_intersect
from repro.physics.epa import EPAResult, epa_penetration
from repro.physics.world import CollisionObject, CollisionWorld, CDResult
from repro.physics.dynamics import RigidBody, PhysicsWorld

__all__ = [
    "BroadPhaseResult",
    "CDResult",
    "CollisionObject",
    "CollisionWorld",
    "ConvexShape",
    "EPAResult",
    "GJKResult",
    "OpCounter",
    "PhysicsWorld",
    "RigidBody",
    "SupportPoint",
    "aabb_bruteforce_pairs",
    "epa_penetration",
    "gjk_intersect",
    "sweep_and_prune_pairs",
    "world_aabbs",
]
