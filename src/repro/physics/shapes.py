"""Convex support shapes for GJK/EPA.

A ``ConvexShape`` is a convex point cloud (typically the convex hull of
a render mesh, per the paper's Figure 2 discussion of running GJK on
hulls of concave models) with a world transform.  Support queries are
answered over the transformed points; the per-frame transform cost and
the per-query dot products are tallied on the caller's ``OpCounter``,
matching what Bullet's ``btConvexHullShape::localGetSupportingVertex``
executes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.vec import Mat4, transform_points
from repro.physics.counters import DOT3_FLOPS, TRANSFORM_POINT_FLOPS, OpCounter


class SupportPoint:
    """A support result: world point plus its vertex index (for EPA)."""

    __slots__ = ("point", "index")

    def __init__(self, point: np.ndarray, index: int) -> None:
        self.point = point
        self.index = index


class ConvexShape:
    """A convex point set with a world transform.

    The world-space points are recomputed lazily when the transform
    changes; the recompute cost (one affine transform per vertex) is
    charged to the counter passed to :meth:`update_transform` — this is
    the narrow phase's per-frame setup cost.
    """

    def __init__(self, local_points: np.ndarray) -> None:
        pts = np.asarray(local_points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise ValueError(f"need non-empty (N, 3) points, got {pts.shape}")
        self._local = pts.copy()
        self._world = pts.copy()
        self._transform = Mat4.identity()

    @property
    def vertex_count(self) -> int:
        return self._local.shape[0]

    @property
    def world_points(self) -> np.ndarray:
        return self._world

    @property
    def transform(self) -> Mat4:
        return self._transform

    def update_transform(self, model: Mat4, ops: OpCounter | None = None) -> None:
        """Set the world transform and refresh the cached world points."""
        self._transform = model
        self._world = transform_points(model, self._local)
        if ops is not None:
            n = self.vertex_count
            ops.add_all(flop=n * TRANSFORM_POINT_FLOPS, mem=n * 6)

    def support(self, direction: np.ndarray, ops: OpCounter | None = None) -> SupportPoint:
        """Farthest world point along ``direction`` (need not be unit)."""
        dots = self._world @ direction
        idx = int(dots.argmax())
        if ops is not None:
            n = self.vertex_count
            ops.add_all(flop=n * DOT3_FLOPS, cmp=n, mem=n * 3, branch=n)
        return SupportPoint(self._world[idx], idx)

    def support_patch(self, direction: np.ndarray, tol: float = 1e-3) -> np.ndarray:
        """Centroid of the supporting *patch* along ``direction``.

        All points within ``tol`` (relative to the shape's extent along
        the direction) of the extreme are averaged.  For tessellated
        round shapes this lands on the contact patch's centre instead
        of an arbitrary extreme vertex — the contact-point estimate the
        dynamics response uses.
        """
        dots = self._world @ direction
        spread = float(dots.max() - dots.min())
        cutoff = dots.max() - max(spread, 1e-12) * tol
        return self._world[dots >= cutoff].mean(axis=0)

    def center(self) -> np.ndarray:
        """Centroid of the world points (a cheap interior point)."""
        return self._world.mean(axis=0)


def minkowski_support(
    shape_a: ConvexShape,
    shape_b: ConvexShape,
    direction: np.ndarray,
    ops: OpCounter | None = None,
):
    """Support of the Minkowski difference A - B along ``direction``.

    Returns ``(point, index_a, index_b)``; the point is
    ``support_A(d) - support_B(-d)``.
    """
    sa = shape_a.support(direction, ops)
    sb = shape_b.support(-direction, ops)
    if ops is not None:
        ops.add_all(flop=3)
    return sa.point - sb.point, sa.index, sb.index
