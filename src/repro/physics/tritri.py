"""Exact mesh-mesh intersection via triangle-triangle tests.

The paper's Section 2: "The cost of CD for a given pair of objects is
typically O(n*n), where n is the number of polygons" — the exact
narrow phase that motivates both the hull-based GJK baseline and RBCD.
This module implements it: Möller's interval-overlap triangle-triangle
intersection test, wrapped in a mesh-level query with AABB prefilters.

It serves two roles:

* a third CPU baseline (``CollisionWorld`` mode ``"broad+exact"``) whose
  cost dwarfs GJK's, making the paper's complexity argument concrete;
* a geometric *oracle* for testing RBCD and GJK on concave shapes,
  since it makes no convexity assumption.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import TriangleMesh
from repro.physics.counters import OpCounter

_EPS = 1e-12


def _project_interval(tri, direction):
    dots = tri @ direction
    return dots.min(), dots.max()


def tri_tri_intersect(t1: np.ndarray, t2: np.ndarray) -> bool:
    """Möller-style triangle-triangle intersection (coplanar included).

    ``t1``/``t2`` are (3, 3) corner arrays.  Degenerate triangles are
    handled by the separating-axis fallback.
    """
    # Plane of t2: quick rejection if t1 is entirely on one side.
    n2 = np.cross(t2[1] - t2[0], t2[2] - t2[0])
    d1 = (t1 - t2[0]) @ n2
    if (d1 > _EPS).all() or (d1 < -_EPS).all():
        return False
    n1 = np.cross(t1[1] - t1[0], t1[2] - t1[0])
    d2 = (t2 - t1[0]) @ n1
    if (d2 > _EPS).all() or (d2 < -_EPS).all():
        return False

    # Separating axis test over the full axis set (robust for coplanar
    # and degenerate cases): 2 face normals + 9 edge cross products.
    axes = [n1, n2]
    edges1 = [t1[1] - t1[0], t1[2] - t1[1], t1[0] - t1[2]]
    edges2 = [t2[1] - t2[0], t2[2] - t2[1], t2[0] - t2[2]]
    for e1 in edges1:
        for e2 in edges2:
            axes.append(np.cross(e1, e2))
    # Coplanar case also needs in-plane edge normals.
    for e in edges1 + edges2:
        axes.append(np.cross(e, n1 if np.linalg.norm(n1) > _EPS else n2))

    for axis in axes:
        if float(axis @ axis) < _EPS:
            continue
        lo1, hi1 = _project_interval(t1, axis)
        lo2, hi2 = _project_interval(t2, axis)
        if hi1 < lo2 - _EPS or hi2 < lo1 - _EPS:
            return False
    return True


def _face_boxes(corners: np.ndarray):
    return corners.min(axis=1), corners.max(axis=1)


def meshes_intersect(
    verts_a: np.ndarray,
    faces_a: np.ndarray,
    verts_b: np.ndarray,
    faces_b: np.ndarray,
    ops: OpCounter | None = None,
    first_hit: bool = True,
) -> bool:
    """Exact surface-intersection test between two triangle meshes.

    Candidate triangle pairs are prefiltered with per-face AABB overlap
    (vectorized); survivors run the full tri-tri test.  The op tally
    models the scalar algorithm: 6 compares per box prefilter and ~150
    flops per exact test.
    """
    tri_a = verts_a[faces_a]  # (Fa, 3, 3)
    tri_b = verts_b[faces_b]
    lo_a, hi_a = _face_boxes(tri_a)
    lo_b, hi_b = _face_boxes(tri_b)

    # All-pairs face-box overlap, vectorized.
    overlap = (
        (lo_a[:, None, 0] <= hi_b[None, :, 0])
        & (hi_a[:, None, 0] >= lo_b[None, :, 0])
        & (lo_a[:, None, 1] <= hi_b[None, :, 1])
        & (hi_a[:, None, 1] >= lo_b[None, :, 1])
        & (lo_a[:, None, 2] <= hi_b[None, :, 2])
        & (hi_a[:, None, 2] >= lo_b[None, :, 2])
    )
    if ops is not None:
        n_pairs = tri_a.shape[0] * tri_b.shape[0]
        ops.add_all(cmp=6 * n_pairs, mem=6 * n_pairs, branch=n_pairs)

    candidates = np.argwhere(overlap)
    if ops is not None and candidates.size:
        ops.add_all(flop=150 * candidates.shape[0], mem=18 * candidates.shape[0],
                    branch=12 * candidates.shape[0])
    hit = False
    for ia, ib in candidates:
        if tri_tri_intersect(tri_a[ia], tri_b[ib]):
            hit = True
            if first_hit:
                return True
    return hit


def mesh_pair_intersect(
    mesh_a: TriangleMesh,
    model_a,
    mesh_b: TriangleMesh,
    model_b,
    ops: OpCounter | None = None,
) -> bool:
    """World-space exact test between two posed meshes.

    Note: this is a *surface* intersection test; full containment of
    one closed mesh inside another reports False (no surfaces cross),
    which matches what per-pixel z-interval analysis would see at the
    pixel level only for open surfaces — RBCD itself *does* detect
    containment via interval nesting, so the oracle is used on
    surface-contact configurations.
    """
    from repro.geometry.vec import transform_points
    from repro.physics.counters import TRANSFORM_POINT_FLOPS

    wa = transform_points(model_a, mesh_a.vertices)
    wb = transform_points(model_b, mesh_b.vertices)
    if ops is not None:
        n = mesh_a.vertex_count + mesh_b.vertex_count
        ops.add_all(flop=n * TRANSFORM_POINT_FLOPS, mem=n * 6)
    return meshes_intersect(wa, mesh_a.faces, wb, mesh_b.faces, ops)
