"""Tile-based-rendering GPU model (ARM Mali-400-MP4-like, Table 2).

The model is *functional* — exact fragments, depths, early-Z results —
and *cycle-approximate*: per-stage cycle counts with the Table-2
throughputs, composed by a tile-level pipeline timing model that
reproduces the stall behaviour the paper's 1-vs-2-ZEB experiments rest
on.
"""

from repro.gpu.config import GPUConfig, RBCDConfig
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.pipeline import GPU, FrameResult
from repro.gpu.stats import GPUStats

__all__ = [
    "GPU",
    "DrawCommand",
    "Frame",
    "FrameResult",
    "GPUConfig",
    "GPUStats",
    "RBCDConfig",
]
