"""Rasterizer: edge-function scan conversion with the top-left rule.

Produces the frame's *fragment soup*: flat arrays of pixel coordinates,
interpolated depth, object id, facing, and the tagged-to-be-culled bit,
in primitive-submission order (the arrival order at Early-Z and at the
RBCD unit's insertion-sort input).

Depth is the NDC z remapped to [0, 1]; it is interpolated linearly in
screen space, which is exact for the post-projection depth a real
Z-buffer stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.assembly import TriangleSoup
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats


# The dtype contract for every FragmentSoup field: both construction
# paths (empty frame and rasterized frame) coerce to these, so a frame
# with zero fragments concatenates/pickles identically to a populated
# one whatever dtypes the upstream TriangleSoup carried.
FRAGMENT_DTYPES: dict[str, np.dtype] = {
    "x": np.dtype(np.int32),
    "y": np.dtype(np.int32),
    "z": np.dtype(np.float64),
    "object_id": np.dtype(np.int64),
    "front": np.dtype(np.bool_),
    "tagged": np.dtype(np.bool_),
    "draw_index": np.dtype(np.int64),
    "tri_index": np.dtype(np.int64),
}


@dataclass
class FragmentSoup:
    """All fragments of a frame, in generation (arrival) order."""

    x: np.ndarray          # (N,) int32 pixel column
    y: np.ndarray          # (N,) int32 pixel row
    z: np.ndarray          # (N,) float64 depth in [0, 1]
    object_id: np.ndarray  # (N,) int64; -1 for non-collisionable
    front: np.ndarray      # (N,) bool
    tagged: np.ndarray     # (N,) bool (tagged-to-be-culled)
    draw_index: np.ndarray  # (N,) int64
    tri_index: np.ndarray  # (N,) int64 index into the triangle soup

    @property
    def count(self) -> int:
        return int(self.x.shape[0])

    def tile_index(self, config: GPUConfig) -> np.ndarray:
        """(N,) tile index of each fragment."""
        ts = config.tile_size
        return (self.y // ts).astype(np.int64) * config.tiles_x + (
            self.x // ts
        ).astype(np.int64)

    @staticmethod
    def empty() -> "FragmentSoup":
        return FragmentSoup(**{
            name: np.empty(0, dtype=dtype)
            for name, dtype in FRAGMENT_DTYPES.items()
        })


def _rasterize_triangle(xy: np.ndarray, z: np.ndarray, width: int, height: int):
    """Fragments of one screen triangle.

    Returns ``(px, py, pz)`` integer pixel coords and depths, or
    ``None`` when the triangle covers no pixel centre.  Boundary pixels
    follow the D3D/GL top-left fill rule so shared edges never double-
    generate fragments.
    """
    e1 = xy[1] - xy[0]
    e2 = xy[2] - xy[0]
    area2 = e1[0] * e2[1] - e1[1] * e2[0]
    if area2 == 0.0:
        return None
    sign = 1.0 if area2 > 0 else -1.0

    # Bbox widened to whole pixels; the edge tests decide inclusion, so
    # a slightly generous box only costs a few extra tests and keeps
    # shared edges watertight even at half-integer coordinates.
    x0 = max(int(np.floor(xy[:, 0].min())), 0)
    x1 = min(int(np.ceil(xy[:, 0].max())), width - 1)
    y0 = max(int(np.floor(xy[:, 1].min())), 0)
    y1 = min(int(np.ceil(xy[:, 1].max())), height - 1)
    if x1 < x0 or y1 < y0:
        return None

    px = np.arange(x0, x1 + 1, dtype=np.int32)
    py = np.arange(y0, y1 + 1, dtype=np.int32)
    cx = px.astype(np.float64) + 0.5
    cy = py.astype(np.float64) + 0.5
    gx, gy = np.meshgrid(cx, cy, indexing="xy")

    inside = np.ones(gx.shape, dtype=bool)
    f_values = []
    for i in range(3):
        ax, ay = xy[i]
        dx = xy[(i + 1) % 3][0] - ax
        dy = xy[(i + 1) % 3][1] - ay
        f = dx * (gy - ay) - dy * (gx - ax)
        f_signed = sign * f
        # Top-left rule (y-down): boundary belongs to horizontal edges
        # going +x and to edges going -y, for the orientation-normalized
        # triangle.
        dxn, dyn = sign * dx, sign * dy
        top_left = (dyn == 0.0 and dxn > 0.0) or dyn < 0.0
        if top_left:
            inside &= f_signed >= 0.0
        else:
            inside &= f_signed > 0.0
        f_values.append(f)
    if not inside.any():
        return None

    iy, ix = np.nonzero(inside)
    # Barycentric weights: F_i / area2 is the weight of vertex i+2.
    w2 = f_values[0][iy, ix] / area2
    w0 = f_values[1][iy, ix] / area2
    w1 = f_values[2][iy, ix] / area2
    pz = w0 * z[0] + w1 * z[1] + w2 * z[2]
    return px[ix], py[iy], pz


def rasterize(
    soup: TriangleSoup, config: GPUConfig, stats: GPUStats
) -> FragmentSoup:
    """Scan-convert the whole triangle soup in submission order."""
    if soup.count == 0:
        return FragmentSoup.empty()

    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    zs: list[np.ndarray] = []
    tri_ids: list[np.ndarray] = []
    width, height = config.screen_width, config.screen_height

    for t in range(soup.count):
        result = _rasterize_triangle(soup.xy[t], soup.z[t], width, height)
        if result is None:
            continue
        px, py, pz = result
        xs.append(px)
        ys.append(py)
        zs.append(pz)
        tri_ids.append(np.full(px.shape[0], t, dtype=np.int64))

    if not xs:
        return FragmentSoup.empty()

    x = np.concatenate(xs)
    y = np.concatenate(ys)
    z = np.concatenate(zs)
    tri = np.concatenate(tri_ids)

    d = FRAGMENT_DTYPES
    frags = FragmentSoup(
        x=x.astype(d["x"], copy=False),
        y=y.astype(d["y"], copy=False),
        z=np.clip(z, 0.0, 1.0).astype(d["z"], copy=False),
        object_id=soup.object_id[tri].astype(d["object_id"], copy=False),
        front=soup.front[tri].astype(d["front"], copy=False),
        tagged=soup.tagged[tri].astype(d["tagged"], copy=False),
        draw_index=soup.draw_index[tri].astype(d["draw_index"], copy=False),
        tri_index=tri.astype(d["tri_index"], copy=False),
    )
    stats.fragments_produced += frags.count
    stats.fragments_tagged_culled += int(frags.tagged.sum())
    return frags
