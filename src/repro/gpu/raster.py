"""Rasterizer: edge-function scan conversion with the top-left rule.

Produces the frame's *fragment soup*: flat arrays of pixel coordinates,
interpolated depth, object id, facing, and the tagged-to-be-culled bit,
in primitive-submission order (the arrival order at Early-Z and at the
RBCD unit's insertion-sort input).

Depth is the NDC z remapped to [0, 1]; it is interpolated linearly in
screen space, which is exact for the post-projection depth a real
Z-buffer stores.

The scan-conversion loop itself lives in the kernel layer
(:mod:`repro.gpu.kernels`): this module assembles the resulting
fragment soup and keeps the stats, while ``config.kernel_backend``
selects which (bit-identical) implementation runs the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.assembly import TriangleSoup
from repro.gpu.config import GPUConfig
from repro.gpu.kernels import get_backend
from repro.gpu.kernels.reference import rasterize_triangle as _rasterize_triangle  # noqa: F401  (back-compat re-export)
from repro.gpu.stats import GPUStats


# The dtype contract for every FragmentSoup field: both construction
# paths (empty frame and rasterized frame) coerce to these, so a frame
# with zero fragments concatenates/pickles identically to a populated
# one whatever dtypes the upstream TriangleSoup carried.
FRAGMENT_DTYPES: dict[str, np.dtype] = {
    "x": np.dtype(np.int32),
    "y": np.dtype(np.int32),
    "z": np.dtype(np.float64),
    "object_id": np.dtype(np.int64),
    "front": np.dtype(np.bool_),
    "tagged": np.dtype(np.bool_),
    "draw_index": np.dtype(np.int64),
    "tri_index": np.dtype(np.int64),
}


@dataclass
class FragmentSoup:
    """All fragments of a frame, in generation (arrival) order."""

    x: np.ndarray          # (N,) int32 pixel column
    y: np.ndarray          # (N,) int32 pixel row
    z: np.ndarray          # (N,) float64 depth in [0, 1]
    object_id: np.ndarray  # (N,) int64; -1 for non-collisionable
    front: np.ndarray      # (N,) bool
    tagged: np.ndarray     # (N,) bool (tagged-to-be-culled)
    draw_index: np.ndarray  # (N,) int64
    tri_index: np.ndarray  # (N,) int64 index into the triangle soup

    @property
    def count(self) -> int:
        return int(self.x.shape[0])

    def tile_index(self, config: GPUConfig) -> np.ndarray:
        """(N,) tile index of each fragment."""
        ts = config.tile_size
        return (self.y // ts).astype(np.int64) * config.tiles_x + (
            self.x // ts
        ).astype(np.int64)

    @staticmethod
    def empty() -> "FragmentSoup":
        return FragmentSoup(**{
            name: np.empty(0, dtype=dtype)
            for name, dtype in FRAGMENT_DTYPES.items()
        })


def rasterize(
    soup: TriangleSoup, config: GPUConfig, stats: GPUStats
) -> FragmentSoup:
    """Scan-convert the whole triangle soup in submission order."""
    if soup.count == 0:
        return FragmentSoup.empty()

    backend = get_backend(config.kernel_backend)
    x, y, z, tri = backend.rasterize_triangles(
        soup.xy, soup.z, config.screen_width, config.screen_height
    )
    if x.shape[0] == 0:
        return FragmentSoup.empty()

    d = FRAGMENT_DTYPES
    frags = FragmentSoup(
        x=x.astype(d["x"], copy=False),
        y=y.astype(d["y"], copy=False),
        z=np.clip(z, 0.0, 1.0).astype(d["z"], copy=False),
        object_id=soup.object_id[tri].astype(d["object_id"], copy=False),
        front=soup.front[tri].astype(d["front"], copy=False),
        tagged=soup.tagged[tri].astype(d["tagged"], copy=False),
        draw_index=soup.draw_index[tri].astype(d["draw_index"], copy=False),
        tri_index=tri.astype(d["tri_index"], copy=False),
    )
    stats.fragments_produced += frags.count
    stats.fragments_tagged_culled += int(frags.tagged.sum())
    return frags
