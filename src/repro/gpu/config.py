"""GPU and RBCD hardware parameters (the paper's Table 2).

Every number that appears in Table 2 of the paper is represented here;
parameters the paper leaves unspecified (tile-cache geometry, shader
cycles per vertex/fragment) are marked as assumptions in the field
comments and exercised by the sensitivity benches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

# Kernel-backend selection: the env var overrides the built-in default
# for freshly-constructed configs (explicit with_kernel_backend() /
# dataclass arguments always win).  The registry itself lives in
# repro.gpu.kernels, which imports this module — names are validated
# where they are resolved (GPU construction, tile compute), not here.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"
DEFAULT_KERNEL_BACKEND = "vectorized"

# Cross-frame tile-result cache (repro.gpu.tilecache): the env var
# flips the built-in default for freshly-constructed configs, exactly
# like the kernel-backend selection above (explicit with_tile_cache()
# / dataclass arguments always win).
TILE_CACHE_ENV = "REPRO_TILE_CACHE"
_TRUTHY = frozenset(("1", "true", "yes", "on"))


def _default_kernel_backend() -> str:
    return os.environ.get(KERNEL_BACKEND_ENV, DEFAULT_KERNEL_BACKEND)


def _default_tile_cache() -> bool:
    return os.environ.get(TILE_CACHE_ENV, "").strip().lower() in _TRUTHY


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """A set-associative cache with LRU replacement."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    ways: int = 2
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_bytes * self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True, slots=True)
class QueueConfig:
    """A bounded hardware queue between pipeline stages."""

    name: str
    entries: int
    bytes_per_entry: int


@dataclass(frozen=True, slots=True)
class RBCDConfig:
    """The RBCD unit (Section 3.4-3.5 and Table 2, "RBCD Unit")."""

    # ZEB geometry: per tile, one list per pixel.
    zeb_count: int = 2          # number of ZEB buffers (1 or 2 in the paper)
    list_length: int = 8        # M: elements per pixel list (4/8/16 swept)
    element_bits: int = 32      # total bits per element (Table 2)
    z_bits: int = 18            # assumption: z-depth field width
    id_bits: int = 13           # assumption: object-id field width
    # (z_bits + id_bits + 1 face bit == element_bits)
    ff_stack_entries: int = 8   # T: FF-Stack depth (assumption: == M)
    # Extension (Section 5.3): spare elements dynamically appended to
    # overflowing lists. 0 reproduces the paper's fixed-length design.
    spare_entries_per_tile: int = 0
    # Extension (Section 5.3): notify the CPU to run software CD for a
    # frame whose overflow rate exceeds this threshold (1.0 = never).
    cpu_fallback_overflow_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.zeb_count < 1:
            raise ValueError("need at least one ZEB")
        if self.list_length < 1:
            raise ValueError("ZEB list length must be >= 1")
        if self.z_bits + self.id_bits + 1 != self.element_bits:
            raise ValueError(
                f"element packing {self.z_bits}+{self.id_bits}+1 != "
                f"{self.element_bits} bits"
            )
        if self.ff_stack_entries < 1:
            raise ValueError("FF-Stack needs at least one entry")

    def zeb_size_bytes(self, tile_pixels: int) -> int:
        """On-chip size of one ZEB (8 KB for 256 lists x 8 x 32 bit)."""
        return tile_pixels * self.list_length * self.element_bits // 8


@dataclass(frozen=True, slots=True)
class GPUConfig:
    """The baseline GPU (Table 2) plus modelling assumptions."""

    # Tech specs
    frequency_hz: float = 400e6
    voltage_v: float = 1.0
    technology_nm: int = 32

    # Screen / tiles
    screen_width: int = 800
    screen_height: int = 480
    tile_size: int = 16

    # Queues (Table 2)
    vertex_queue: QueueConfig = QueueConfig("vertex", 16, 136)
    triangle_queue: QueueConfig = QueueConfig("triangle", 16, 388)
    fragment_queue: QueueConfig = QueueConfig("fragment", 64, 233)
    tile_queue: QueueConfig = QueueConfig("tile", 16, 388)

    # Caches (Table 2)
    vertex_cache: CacheConfig = CacheConfig("vertex", 4 * 1024, 64, 2, 1)
    texture_cache: CacheConfig = CacheConfig("texture", 8 * 1024, 64, 2, 1)
    num_texture_caches: int = 4
    l2_cache: CacheConfig = CacheConfig("l2", 128 * 1024, 64, 8, 2)
    color_buffer: CacheConfig = CacheConfig("color", 1024, 64, 1, 1)
    z_buffer_cache: CacheConfig = CacheConfig("z", 1024, 64, 1, 1)
    # Assumption: the Tile Cache (polygon lists in system memory) —
    # Table 2 does not size it; 16 KB 2-way matches the L2:TC traffic
    # ratios reported in Section 5.2.
    tile_cache: CacheConfig = CacheConfig("tile", 16 * 1024, 64, 2, 1)

    # Non-programmable stage throughputs (Table 2)
    primitive_assembly_tris_per_cycle: float = 1.0
    rasterizer_frags_per_cycle: float = 4.0
    early_z_quads_in_flight: int = 8

    # Programmable stages
    num_vertex_processors: int = 1
    num_fragment_processors: int = 4

    # Memory
    mem_latency_min_cycles: int = 50
    mem_latency_max_cycles: int = 100
    mem_bandwidth_bytes_per_cycle: float = 4.0

    # Modelling assumptions (not in Table 2): shader costs.  A Mali-400
    # fragment core sustains ~1 simple fragment per cycle; 4 cycles per
    # fragment across 4 cores keeps raster (4 frags/cycle peak) and
    # shading roughly balanced, which is what lets deferred-culling
    # raster overhead show through as the paper's few-percent time cost.
    cycles_per_vertex: float = 12.0     # vertex-shader cycles per vertex
    cycles_per_fragment: float = 4.0    # fragment-shader cycles per fragment
    raster_setup_cycles_per_tri: float = 1.0  # per-primitive raster setup
    binning_cycles_per_prim_tile: float = 1.0  # polygon-list-builder store rate
    # Record size of a binned primitive in the tile lists (Table 2 gives
    # 388-byte triangle/tile queue entries; the in-memory polygon-list
    # record is smaller).
    tile_list_record_bytes: int = 64

    # RBCD unit attached to this GPU (None-able at the pipeline level).
    rbcd: RBCDConfig = field(default_factory=RBCDConfig)

    # Host-side tile execution engine (simulation parallelism, not a
    # hardware parameter): per-tile RBCD work is independent across
    # tiles, so the simulator may fan tiles out to worker threads or
    # processes.  Results are merged in tile-schedule order, keeping
    # every output bit-identical to the serial path; simulated cycles
    # come from per-tile timings, so they are invariant too.
    executor_backend: str = "serial"   # "serial" | "thread" | "process"
    executor_workers: int = 1          # worker count for pooled backends
    executor_chunk_tiles: int = 16     # tiles per dispatched work item

    # Kernel backend running the per-pixel/per-tile hot loops
    # (rasterize / early-Z / ZEB insert / Z-Overlap).  All registered
    # backends are bit-identical (enforced by the conformance suite),
    # so the choice affects wall time only.  Resolved against the
    # repro.gpu.kernels registry at GPU construction and tile compute
    # time; the default honours REPRO_KERNEL_BACKEND.
    kernel_backend: str = field(default_factory=_default_kernel_backend)

    # Cross-frame tile redundancy elimination (repro.gpu.tilecache):
    # signature a tile's collisionable inputs and replay the previous
    # result on a match.  Replay is exact — every deterministic output
    # is bit-identical with the cache on or off (the differential suite
    # enforces it) — so the flag only moves modelled savings counters
    # and host wall time.  Default honours REPRO_TILE_CACHE.
    tile_cache_enabled: bool = field(default_factory=_default_tile_cache)

    def __post_init__(self) -> None:
        if self.screen_width <= 0 or self.screen_height <= 0:
            raise ValueError("screen dimensions must be positive")
        if not isinstance(self.kernel_backend, str) or not self.kernel_backend:
            raise ValueError("kernel_backend must be a non-empty string")
        if not isinstance(self.tile_cache_enabled, bool):
            raise ValueError("tile_cache_enabled must be a bool")
        if self.tile_size <= 0:
            raise ValueError("tile size must be positive")
        if self.executor_backend not in ("serial", "thread", "process"):
            raise ValueError(
                'executor_backend must be "serial", "thread" or "process"'
            )
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        if self.executor_chunk_tiles < 1:
            raise ValueError("executor_chunk_tiles must be >= 1")

    # -- derived geometry ---------------------------------------------------

    @property
    def tiles_x(self) -> int:
        return -(-self.screen_width // self.tile_size)  # ceil div

    @property
    def tiles_y(self) -> int:
        return -(-self.screen_height // self.tile_size)

    @property
    def tile_count(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def tile_pixels(self) -> int:
        return self.tile_size * self.tile_size

    @property
    def mem_latency_avg_cycles(self) -> float:
        return (self.mem_latency_min_cycles + self.mem_latency_max_cycles) / 2.0

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def with_rbcd(self, **kwargs) -> "GPUConfig":
        """Copy of this config with RBCD parameters replaced."""
        return replace(self, rbcd=replace(self.rbcd, **kwargs))

    def with_screen(self, width: int, height: int) -> "GPUConfig":
        """Copy with a different render resolution (tests use small ones)."""
        return replace(self, screen_width=width, screen_height=height)

    def with_kernel_backend(self, name: str) -> "GPUConfig":
        """Copy with a different kernel backend (see repro.gpu.kernels)."""
        return replace(self, kernel_backend=name)

    def with_tile_cache(self, enabled: bool = True) -> "GPUConfig":
        """Copy with the cross-frame tile cache switched on or off
        (see :mod:`repro.gpu.tilecache`)."""
        return replace(self, tile_cache_enabled=bool(enabled))

    def with_executor(
        self,
        workers: int = 1,
        backend: str | None = None,
        chunk_tiles: int | None = None,
    ) -> "GPUConfig":
        """Copy with the tile-execution engine reconfigured.

        When ``backend`` is omitted it is inferred from the worker
        count: one worker runs serially, more use a process pool (the
        only pooled backend that sidesteps the GIL for the numpy-light
        portions of tile work).
        """
        if backend is None:
            backend = "serial" if workers <= 1 else "process"
        return replace(
            self,
            executor_backend=backend,
            executor_workers=workers,
            executor_chunk_tiles=(
                self.executor_chunk_tiles if chunk_tiles is None else chunk_tiles
            ),
        )


# The WVGA Mali-400-like configuration used by all paper experiments.
DEFAULT_CONFIG = GPUConfig()
