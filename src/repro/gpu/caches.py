"""Functional set-associative cache model with LRU replacement.

Used for the vertex cache and the tile cache, whose hit/miss behaviour
feeds the activity factors of Figure 11 (tile-cache loads and misses)
and the energy model.  Addresses are synthetic byte addresses assigned
by the producing stage (e.g. polygon-list record offsets).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.config import CacheConfig


class Cache:
    """Set-associative LRU cache over 64-bit byte addresses.

    The implementation keeps per-set tag arrays and an LRU counter; it
    is deliberately simple (one access at a time) because the hot path
    batches accesses with :meth:`access_many`, which deduplicates
    consecutive same-line accesses first.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets = config.num_sets
        self._ways = config.ways
        # tags[set][way]; -1 = invalid
        self._tags = np.full((self._sets, self._ways), -1, dtype=np.int64)
        # Higher stamp = more recently used.
        self._stamps = np.zeros((self._sets, self._ways), dtype=np.int64)
        self._clock = 0
        self.accesses = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines (between frames, if desired)."""
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._clock = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def _line_of(self, address: int) -> int:
        return address // self.config.line_bytes

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        return self.access_line(self._line_of(address))

    def access_line(self, line: int) -> bool:
        """Touch one line number; returns True on hit."""
        self.accesses += 1
        self._clock += 1
        set_idx = line % self._sets
        tags = self._tags[set_idx]
        hit_ways = np.nonzero(tags == line)[0]
        if hit_ways.size:
            self._stamps[set_idx, hit_ways[0]] = self._clock
            return True
        self.misses += 1
        victim = int(self._stamps[set_idx].argmin())
        self._tags[set_idx, victim] = line
        self._stamps[set_idx, victim] = self._clock
        return False

    def access_range(self, address: int, length: int) -> int:
        """Touch every line of ``[address, address+length)``; returns misses."""
        if length <= 0:
            return 0
        first = self._line_of(address)
        last = self._line_of(address + length - 1)
        before = self.misses
        for line in range(first, last + 1):
            self.access_line(line)
        return self.misses - before

    def access_many(self, addresses: np.ndarray) -> int:
        """Touch a sequence of byte addresses in order; returns misses.

        Consecutive accesses to the same line are collapsed to one
        (they would all hit anyway), which keeps the Python loop short
        for streaming patterns.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.size == 0:
            return 0
        lines = addrs // self.config.line_bytes
        keep = np.ones(lines.size, dtype=bool)
        keep[1:] = lines[1:] != lines[:-1]
        collapsed = lines[keep]
        repeats = np.diff(np.append(np.nonzero(keep)[0], lines.size))
        before_miss = self.misses
        before_acc = self.accesses
        for line in collapsed:
            self.access_line(int(line))
        # The collapsed duplicates still count as (hit) accesses.
        extra = int(lines.size - collapsed.size)
        self.accesses += extra
        del before_acc, repeats
        return self.misses - before_miss
