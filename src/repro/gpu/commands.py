"""GPU command stream: draw commands with object-id markers.

Section 3.2 of the paper passes collisionable-object identifiers to the
GPU through a debug-marker-style OpenGL ES extension.  Here a
``DrawCommand`` carries the same information directly: a draw whose
``object_id`` is not ``None`` is a *collisionable* draw, and the id
flows with every primitive and fragment down the pipeline to the RBCD
unit, exactly as the extension's driver/hardware contract requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4


class CullMode(enum.Enum):
    """OpenGL-style face culling mode for a draw."""

    NONE = "none"
    BACK = "back"
    FRONT = "front"
    FRONT_AND_BACK = "front_and_back"


@dataclass(frozen=True, slots=True)
class DrawCommand:
    """One draw call: a mesh instance with its model transform.

    Parameters
    ----------
    mesh:
        Object-space geometry.
    model:
        Model-to-world transform.
    object_id:
        Collisionable-object identifier (the debug-marker payload), or
        ``None`` for non-collisionable geometry.  Ids must be unique per
        object within a frame and fit the RBCD element's id field.
    cull_mode:
        Which faces the Face Culling stage removes.  For collisionable
        draws the cull is *deferred*: culled primitives are rasterized,
        feed the RBCD unit, and are filtered before Early-Z
        (Section 3.3).
    color:
        Flat RGB in [0,1]^3 used by the (fixed-function) fragment stage;
        only affects the rendered image, never collision results.
    fragment_cycles:
        Per-fragment shader cost override; ``None`` uses the GPU
        config's default.  Lets workloads model cheap (unlit) versus
        expensive (textured/lit) materials.
    """

    mesh: TriangleMesh
    model: Mat4
    object_id: int | None = None
    cull_mode: CullMode = CullMode.BACK
    color: tuple[float, float, float] = (0.8, 0.8, 0.8)
    fragment_cycles: float | None = None

    def __post_init__(self) -> None:
        if self.object_id is not None and self.object_id < 0:
            raise ValueError("object_id must be non-negative")

    @property
    def collisionable(self) -> bool:
        return self.object_id is not None


@dataclass(frozen=True, slots=True)
class Frame:
    """One frame's worth of GPU commands.

    ``view`` and ``projection`` play the role of the per-frame camera
    uniforms; the vertex stage computes ``projection @ view @ model``
    per draw.

    ``raster_only`` marks the extra time-step submissions of
    Section 3.6: the commands are rasterized and fed to the RBCD unit
    but produce no fragment shading and no color output.
    """

    draws: tuple[DrawCommand, ...]
    view: Mat4
    projection: Mat4
    raster_only: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "draws", tuple(self.draws))
        ids = [d.object_id for d in self.draws if d.object_id is not None]
        if len(ids) != len(set(ids)):
            raise ValueError("collisionable object_ids must be unique in a frame")

    @property
    def collisionable_draws(self) -> tuple[DrawCommand, ...]:
        return tuple(d for d in self.draws if d.collisionable)

    def view_projection(self) -> Mat4:
        return self.projection @ self.view


@dataclass
class CommandStreamStats:
    """Counts describing a frame's command stream (driver-side view)."""

    draw_count: int = 0
    collisionable_draw_count: int = 0
    vertex_count: int = 0
    triangle_count: int = 0
    collisionable_triangle_count: int = 0

    @staticmethod
    def of(frame: Frame) -> "CommandStreamStats":
        stats = CommandStreamStats()
        stats.draw_count = len(frame.draws)
        for draw in frame.draws:
            stats.vertex_count += draw.mesh.vertex_count
            stats.triangle_count += draw.mesh.face_count
            if draw.collisionable:
                stats.collisionable_draw_count += 1
                stats.collisionable_triangle_count += draw.mesh.face_count
        return stats
