"""Early depth test over the fragment stream.

Functionally exact: each non-tagged fragment is tested LESS against the
Z-buffer value left by the fragments that arrived before it at the same
pixel (buffer cleared to 1.0 = far plane).  Tagged-to-be-culled
fragments never reach this stage (Section 3.3) — the caller filters
them.

The sequential per-pixel scan is vectorized with a segmented exclusive
prefix-min: fragments are stably sorted by pixel, then a scan over
*in-segment position* updates all segments' running minima in lockstep.
Each fragment is visited exactly once, comparisons are exact float
comparisons (no algebraic re-encoding), and iteration count is bounded
by the deepest per-pixel overdraw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.config import GPUConfig
from repro.gpu.raster import FragmentSoup
from repro.gpu.stats import GPUStats


@dataclass
class DepthTestResult:
    """Outcome of the early-Z pass for one frame."""

    passed: np.ndarray      # (N,) bool, aligned with the input soup
    z_buffer: np.ndarray    # (H, W) final depth, 1.0 where never written
    winner: np.ndarray      # (H, W) int64 fragment index of the visible
    #                         fragment, -1 where none


def depth_test(
    frags: FragmentSoup, config: GPUConfig, stats: GPUStats
) -> DepthTestResult:
    """Run early-Z over the non-tagged fragments of a frame.

    The returned ``passed`` mask is aligned with the *input* soup; a
    tagged fragment is always ``False`` (it was filtered before the
    test and is not counted as a test).
    """
    height, width = config.screen_height, config.screen_width
    z_buffer = np.ones((height, width), dtype=np.float64)
    winner = np.full((height, width), -1, dtype=np.int64)
    passed = np.zeros(frags.count, dtype=bool)
    if frags.count == 0:
        return DepthTestResult(passed, z_buffer, winner)

    tested_idx = np.flatnonzero(~frags.tagged)
    stats.early_z_tests += int(tested_idx.shape[0])
    if tested_idx.shape[0] == 0:
        return DepthTestResult(passed, z_buffer, winner)

    x = frags.x[tested_idx]
    y = frags.y[tested_idx]
    z = frags.z[tested_idx]
    pixel = y.astype(np.int64) * width + x.astype(np.int64)

    # Stable sort by pixel keeps arrival order within each segment.
    order = np.argsort(pixel, kind="stable")
    sp = pixel[order]
    sz = z[order]
    n = sp.shape[0]

    new_segment = np.r_[True, sp[1:] != sp[:-1]]
    starts = np.flatnonzero(new_segment)
    seg_ends = np.r_[starts[1:], n]
    seg_lengths = seg_ends - starts

    # Exclusive prefix min per segment: walk in-segment positions in
    # lockstep across all segments.  Total work is one visit per
    # fragment; the Python loop runs max-overdraw times.
    excl_min = np.empty(n, dtype=np.float64)
    running = np.full(starts.shape[0], 1.0)  # z-buffer clear value
    alive = np.arange(starts.shape[0])
    for k in range(int(seg_lengths.max())):
        alive = alive[k < seg_lengths[alive]]
        idx = starts[alive] + k
        excl_min[idx] = running[alive]
        running[alive] = np.minimum(running[alive], sz[idx])

    passes_sorted = sz < excl_min
    passed_idx = tested_idx[order[passes_sorted]]
    passed[passed_idx] = True

    stats.early_z_passes += int(passes_sorted.sum())

    # Final Z-buffer: per-pixel minimum of tested depths.
    # (minimum.at is unbuffered and handles duplicates.)
    flat_z = z_buffer.ravel()
    np.minimum.at(flat_z, pixel, z)

    # Winner per pixel: the passing fragment with the minimal depth —
    # i.e. the last passing fragment in arrival order.  Among sorted
    # passing fragments, that is the last one of each segment.
    if passes_sorted.any():
        pass_pos = np.flatnonzero(passes_sorted)
        pass_pixels = sp[pass_pos]
        last_of_pixel = np.r_[pass_pixels[1:] != pass_pixels[:-1], True]
        winners_sorted_pos = pass_pos[last_of_pixel]
        win_fragments = tested_idx[order[winners_sorted_pos]]
        winner.ravel()[sp[winners_sorted_pos]] = win_fragments

    return DepthTestResult(passed, z_buffer, winner)
