"""Early depth test over the fragment stream.

Functionally exact: each non-tagged fragment is tested LESS against the
Z-buffer value left by the fragments that arrived before it at the same
pixel (buffer cleared to 1.0 = far plane).  Tagged-to-be-culled
fragments never reach this stage (Section 3.3) — the caller filters
them.

The pass/fail decision is a kernel (:mod:`repro.gpu.kernels`): the
reference backend runs the literal per-fragment scan, the vectorized
backend a segmented exclusive prefix-min over the pixel-sorted stream.
Both visit each fragment once and compare exact floats (no algebraic
re-encoding), so the mask is bit-identical across backends; this module
derives the Z-buffer and per-pixel winner from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.config import GPUConfig
from repro.gpu.kernels import get_backend
from repro.gpu.raster import FragmentSoup
from repro.gpu.stats import GPUStats


@dataclass
class DepthTestResult:
    """Outcome of the early-Z pass for one frame."""

    passed: np.ndarray      # (N,) bool, aligned with the input soup
    z_buffer: np.ndarray    # (H, W) final depth, 1.0 where never written
    winner: np.ndarray      # (H, W) int64 fragment index of the visible
    #                         fragment, -1 where none


def depth_test(
    frags: FragmentSoup, config: GPUConfig, stats: GPUStats
) -> DepthTestResult:
    """Run early-Z over the non-tagged fragments of a frame.

    The returned ``passed`` mask is aligned with the *input* soup; a
    tagged fragment is always ``False`` (it was filtered before the
    test and is not counted as a test).
    """
    height, width = config.screen_height, config.screen_width
    z_buffer = np.ones((height, width), dtype=np.float64)
    winner = np.full((height, width), -1, dtype=np.int64)
    passed = np.zeros(frags.count, dtype=bool)
    if frags.count == 0:
        return DepthTestResult(passed, z_buffer, winner)

    tested_idx = np.flatnonzero(~frags.tagged)
    stats.early_z_tests += int(tested_idx.shape[0])
    if tested_idx.shape[0] == 0:
        return DepthTestResult(passed, z_buffer, winner)

    x = frags.x[tested_idx]
    y = frags.y[tested_idx]
    z = frags.z[tested_idx]
    pixel = y.astype(np.int64) * width + x.astype(np.int64)

    backend = get_backend(config.kernel_backend)
    mask = backend.earlyz_pass_mask(pixel, z)
    passed[tested_idx[mask]] = True
    stats.early_z_passes += int(mask.sum())

    # Final Z-buffer: per-pixel minimum of tested depths.
    # (minimum.at is unbuffered and handles duplicates.)
    flat_z = z_buffer.ravel()
    np.minimum.at(flat_z, pixel, z)

    # Winner per pixel: the passing fragment with the minimal depth.
    # Every later passing fragment at a pixel is strictly nearer than
    # all earlier ones, so the winner is the passing fragment with the
    # largest soup index — a per-pixel max reduction.
    if mask.any():
        np.maximum.at(winner.ravel(), pixel[mask], tested_idx[mask])

    return DepthTestResult(passed, z_buffer, winner)
