"""Geometry-pipeline vertex stage: fetch + transform.

Models the Vertex Fetcher (vertex-cache accesses over the mesh's vertex
buffer) and the programmable Vertex Processor (one MVP transform per
vertex at ``cycles_per_vertex``).  Output is clip-space positions, the
input to primitive assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Mat4, transform_points_homogeneous
from repro.gpu.caches import Cache
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats

# Bytes fetched per vertex: position (12) + normal (12) + uv (8).
_VERTEX_STRIDE_BYTES = 32


@dataclass
class ShadedDraw:
    """A draw command with its vertices taken to clip space."""

    draw: DrawCommand
    draw_index: int
    clip_positions: np.ndarray  # (V, 4)


def shade_draws(
    frame: Frame,
    config: GPUConfig,
    stats: GPUStats,
    vertex_cache: Cache | None = None,
) -> list[ShadedDraw]:
    """Run the vertex stage for every draw of a frame.

    The vertex cache persists across draws within the frame (it is the
    caller's choice whether to flush between frames); each draw's
    vertex buffer lives at a distinct synthetic base address so draws
    do not falsely alias.
    """
    if vertex_cache is None:
        vertex_cache = Cache(config.vertex_cache)

    shaded: list[ShadedDraw] = []
    base_address = 0
    for draw_index, draw in enumerate(frame.draws):
        mesh = draw.mesh
        mvp = frame.projection @ frame.view @ draw.model
        clip = transform_points_homogeneous(mvp, mesh.vertices)

        # Vertex fetch: indexed access through the vertex cache in face
        # order (the access pattern the post-transform cache sees).
        indices = mesh.faces.ravel()
        addresses = base_address + indices.astype(np.int64) * _VERTEX_STRIDE_BYTES
        misses = vertex_cache.access_many(addresses)

        stats.vertices_fetched += indices.size
        stats.vertices_shaded += mesh.vertex_count
        stats.vertex_cache_accesses += indices.size
        stats.vertex_cache_misses += misses

        shaded.append(ShadedDraw(draw, draw_index, clip))
        base_address += mesh.vertex_count * _VERTEX_STRIDE_BYTES
        # Keep draws line-aligned so the synthetic buffers stay disjoint.
        base_address = -(-base_address // 64) * 64

    return shaded


def vertex_stage_cycles(stats: GPUStats, config: GPUConfig) -> float:
    """Vertex-processor busy cycles for the counted activity."""
    shader = stats.vertices_shaded * config.cycles_per_vertex
    shader /= config.num_vertex_processors
    # Each vertex-cache miss stalls the fetcher for an L2 access; misses
    # overlap shading, so charge only the latency not hidden by it.
    miss_penalty = stats.vertex_cache_misses * config.l2_cache.latency_cycles
    return shader + miss_penalty
