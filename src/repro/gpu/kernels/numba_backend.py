"""Optional numba kernel backend: JIT-compiled scalar hot loops.

The kernel cores below are written in the numba-compatible subset of
Python/numpy (flat arrays, explicit loops, no object mode) and are
compiled with ``numba.njit`` when numba is importable.  Without numba
this module still imports cleanly — the backend registry reports the
backend as unavailable — and the *uncompiled* cores remain callable, so
the conformance suite can pin their semantics (via
:func:`make_backend` with ``force_python=True``) even on machines where
numba is not installed; the CI numba leg then covers the compiled path.

Rasterization uses the vectorized numpy kernel: it is already one flat
array pass, and the interesting scalar loops (sorted ZEB insertion and
the FF-Stack traversal) are where JIT compilation pays.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernels import KernelBackend, KernelUnavailableError
from repro.gpu.kernels import vectorized as _vectorized
from repro.rbcd.overlap import (
    CASE_CROSSING,
    CASE_NESTED,
    OverlapResult,
)
from repro.rbcd.zeb import ZEBTile

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit
except ImportError:
    _njit = None


# ---------------------------------------------------------------------------
# Kernel cores (numba-compatible subset; compiled when numba is present)
# ---------------------------------------------------------------------------


def _earlyz_core(pixel, z, max_pixel):
    n = pixel.shape[0]
    passed = np.zeros(n, dtype=np.bool_)
    z_buffer = np.full(max_pixel + 1, 1.0)
    for k in range(n):
        p = pixel[k]
        if z[k] < z_buffer[p]:
            passed[k] = True
            z_buffer[p] = z[k]
    return passed


def _zeb_core(pixel, z_codes, object_id, is_front, m, spare_pool, tile_pixels):
    """Per-fragment sorted insertion into fixed per-pixel arrays.

    Mirrors ``insert_sequential``: read list, compare, shift-insert,
    drop-farthest on overflow, spare-pool capacity grants in arrival
    order.  Lists live in dense (tile_pixels, m + spares + 1) arrays;
    the +1 column is slack for insert-then-drop.
    """
    n = pixel.shape[0]
    max_cap = m + spare_pool + 1
    list_z = np.zeros((tile_pixels, max_cap), dtype=np.int64)
    list_id = np.zeros((tile_pixels, max_cap), dtype=np.int64)
    list_front = np.zeros((tile_pixels, max_cap), dtype=np.bool_)
    length = np.zeros(tile_pixels, dtype=np.int64)
    capacity = np.full(tile_pixels, m, dtype=np.int64)
    spares = spare_pool
    overflow_events = 0
    spare_allocations = 0

    for k in range(n):
        p = pixel[k]
        zc = z_codes[k]
        if length[p] >= capacity[p]:
            if spares > 0:
                spares -= 1
                spare_allocations += 1
                capacity[p] += 1
            else:
                overflow_events += 1
                if length[p] > 0 and zc >= list_z[p, length[p] - 1]:
                    continue  # new element is the farthest: dropped
        pos = length[p]
        for i in range(length[p]):
            if zc < list_z[p, i]:
                pos = i
                break
        for i in range(length[p], pos, -1):
            list_z[p, i] = list_z[p, i - 1]
            list_id[p, i] = list_id[p, i - 1]
            list_front[p, i] = list_front[p, i - 1]
        list_z[p, pos] = zc
        list_id[p, pos] = object_id[k]
        list_front[p, pos] = is_front[k]
        length[p] += 1
        if length[p] > capacity[p]:
            length[p] -= 1  # farthest element falls off

    return (
        list_z, list_id, list_front, length,
        overflow_events, spare_allocations,
    )


def _overlap_core(z_codes, object_ids, is_front, counts, t_max):
    """Lock-step FF-Stack traversal over one tile's packed lists.

    Emits pairs in the canonical (element step, list row, stack slot)
    order into preallocated output arrays (bound: elements * t_max).
    """
    num_rows = counts.shape[0]
    max_len = z_codes.shape[1]
    total_elements = 0
    for r in range(num_rows):
        total_elements += counts[r]
    cap = total_elements * t_max

    out_row = np.empty(cap, dtype=np.int64)
    out_a = np.empty(cap, dtype=np.int64)
    out_b = np.empty(cap, dtype=np.int64)
    out_zf = np.empty(cap, dtype=np.int64)
    out_zb = np.empty(cap, dtype=np.int64)
    out_case = np.empty(cap, dtype=np.int64)
    out_depth = np.empty(cap, dtype=np.int64)

    stack_id = np.zeros((num_rows, t_max), dtype=np.int64)
    stack_z = np.zeros((num_rows, t_max), dtype=np.int64)
    stack_matched = np.zeros((num_rows, t_max), dtype=np.bool_)
    top = np.zeros(num_rows, dtype=np.int64)

    n_out = 0
    overflows = 0
    unmatched = 0
    disjoint = 0
    self_filtered = 0

    for j in range(max_len):
        for row in range(num_rows):
            if j >= counts[row]:
                continue
            oid = object_ids[row, j]
            zc = z_codes[row, j]
            if is_front[row, j]:
                if top[row] >= t_max:
                    overflows += 1
                    continue
                stack_id[row, top[row]] = oid
                stack_z[row, top[row]] = zc
                stack_matched[row, top[row]] = False
                top[row] += 1
                continue
            # Back face: bottommost unmatched entry with the same id.
            m = -1
            for i in range(top[row]):
                if stack_id[row, i] == oid and not stack_matched[row, i]:
                    m = i
                    break
            if m < 0:
                unmatched += 1
                continue
            emitted = 0
            for i in range(m + 1, top[row]):
                if stack_id[row, i] == oid:
                    self_filtered += 1
                    continue
                out_row[n_out] = row
                out_a[n_out] = stack_id[row, i]
                out_b[n_out] = oid
                out_zf[n_out] = stack_z[row, i]
                out_zb[n_out] = zc
                if stack_matched[row, i]:
                    out_case[n_out] = CASE_NESTED
                else:
                    out_case[n_out] = CASE_CROSSING
                out_depth[n_out] = top[row]
                n_out += 1
                emitted += 1
            if emitted == 0:
                disjoint += 1
            stack_matched[row, m] = True

    return (
        out_row[:n_out], out_a[:n_out], out_b[:n_out],
        out_zf[:n_out], out_zb[:n_out], out_case[:n_out], out_depth[:n_out],
        total_elements, overflows, unmatched, disjoint, self_filtered,
    )


if _njit is not None:  # pragma: no cover - compiled path needs numba
    _earlyz_compiled = _njit(cache=True)(_earlyz_core)
    _zeb_compiled = _njit(cache=True)(_zeb_core)
    _overlap_compiled = _njit(cache=True)(_overlap_core)
else:
    _earlyz_compiled = _earlyz_core
    _zeb_compiled = _zeb_core
    _overlap_compiled = _overlap_core


# ---------------------------------------------------------------------------
# Array packing wrappers (plain Python; shared by both paths)
# ---------------------------------------------------------------------------


def _make_earlyz(core):
    def earlyz_pass_mask(pixel: np.ndarray, z: np.ndarray) -> np.ndarray:
        if pixel.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        return np.asarray(
            core(
                np.ascontiguousarray(pixel, dtype=np.int64),
                np.ascontiguousarray(z, dtype=np.float64),
                int(pixel.max()),
            ),
            dtype=bool,
        )

    return earlyz_pass_mask


def _make_zeb_insert(core):
    def zeb_insert(pixel, z_codes, object_id, is_front, config, tile_pixels):
        pixel = np.ascontiguousarray(pixel, dtype=np.int64)
        n = pixel.shape[0]
        if n == 0:
            return ZEBTile.empty()
        if pixel.min() < 0 or pixel.max() >= tile_pixels:
            raise ValueError(
                f"pixel index outside tile of {tile_pixels}"
            )
        list_z, list_id, list_front, length, overflow, spare = core(
            pixel,
            np.ascontiguousarray(z_codes, dtype=np.int64),
            np.ascontiguousarray(object_id, dtype=np.int64),
            np.ascontiguousarray(is_front, dtype=np.bool_),
            config.list_length,
            config.spare_entries_per_tile,
            tile_pixels,
        )
        non_empty = np.flatnonzero(length > 0)
        if non_empty.shape[0] == 0:
            tile = ZEBTile.empty()
            tile.overflow_events = int(overflow)
            tile.spare_allocations = int(spare)
            return tile
        counts = length[non_empty]
        max_len = int(counts.max())
        cols = np.arange(max_len)
        valid = cols[None, :] < counts[:, None]
        # Slots past a list's count may hold stale shifted values: mask
        # them back to the canonical padding (z 0, id -1, front False).
        z_out = np.where(valid, list_z[non_empty, :max_len], 0)
        id_out = np.where(valid, list_id[non_empty, :max_len], -1)
        front_out = list_front[non_empty, :max_len] & valid
        return ZEBTile(
            pixel_index=non_empty.astype(np.int64),
            counts=counts.astype(np.int64),
            z_codes=z_out.astype(np.int64),
            object_ids=id_out.astype(np.int64),
            is_front=front_out,
            insertions=n,
            overflow_events=int(overflow),
            spare_allocations=int(spare),
        )

    return zeb_insert


def _make_zoverlap(core):
    def zoverlap_traverse(zeb: ZEBTile, config) -> OverlapResult:
        if zeb.non_empty_lists == 0:
            return OverlapResult.empty()
        (
            row, a, b, zf, zb, case, depth,
            elements, overflows, unmatched, disjoint, self_filtered,
        ) = core(
            np.ascontiguousarray(zeb.z_codes, dtype=np.int64),
            np.ascontiguousarray(zeb.object_ids, dtype=np.int64),
            np.ascontiguousarray(zeb.is_front, dtype=np.bool_),
            np.ascontiguousarray(zeb.counts, dtype=np.int64),
            config.ff_stack_entries,
        )
        return OverlapResult(
            pair_row=np.ascontiguousarray(row),
            pair_id_a=np.ascontiguousarray(a),
            pair_id_b=np.ascontiguousarray(b),
            pair_z_front=np.ascontiguousarray(zf),
            pair_z_back=np.ascontiguousarray(zb),
            pair_case=np.ascontiguousarray(case),
            pair_stack_depth=np.ascontiguousarray(depth),
            elements_read=int(elements),
            pair_records=int(row.shape[0]),
            stack_overflows=int(overflows),
            unmatched_backfaces=int(unmatched),
            disjoint_closures=int(disjoint),
            self_pairs_filtered=int(self_filtered),
        )

    return zoverlap_traverse


def available() -> bool:
    """True when numba is importable (the compiled path can run)."""
    return _njit is not None


def make_backend(force_python: bool = False) -> KernelBackend:
    """Build the numba backend.

    ``force_python=True`` returns the same kernels running their
    *uncompiled* cores — slow, but semantically the numba backend —
    which is how the conformance suite pins this backend's behaviour on
    machines without numba.
    """
    if force_python:
        earlyz, zebc, ovlc = _earlyz_core, _zeb_core, _overlap_core
        name = "numba-python"
    else:
        if not available():
            raise KernelUnavailableError(
                "numba is not installed (pip install numba)"
            )
        earlyz, zebc, ovlc = (
            _earlyz_compiled, _zeb_compiled, _overlap_compiled,
        )
        name = "numba"
    return KernelBackend(
        name=name,
        rasterize_triangles=_vectorized.rasterize_triangles,
        earlyz_pass_mask=_make_earlyz(earlyz),
        zeb_insert=_make_zeb_insert(zebc),
        zoverlap_traverse=_make_zoverlap(ovlc),
    )


def probe() -> KernelBackend:
    """Registry probe: the compiled backend, or unavailable."""
    return make_backend()
