"""Backend-agnostic kernel API for the per-pixel/per-tile hot loops.

The RBCD pipeline spends essentially all of its time in four loops:
edge-function rasterization, the early-Z depth test, ZEB sorted
insertion, and the Z-Overlap FF-Stack traversal.  This package lifts
them out of the pipeline stages into pure functions over typed arrays
so that interchangeable implementations ("backends") can be swapped in
without touching any stage logic:

``reference``
    The hardware-literal scalar loops — the executable specification.
``vectorized``
    Fully vectorized numpy, the default.  Bit-identical to the
    reference: same IEEE operations in the same per-element order.
``numba``
    Optional JIT-compiled loops; registered lazily and reported as
    unavailable (with the import error) when numba is not installed.

Every backend implements the same four kernels (see
:class:`KernelBackend`) and must produce **byte-identical** outputs —
fragments, ZEB contents, overlap pairs, counters — for any input; the
conformance suite (``tests/gpu/test_kernel_conformance.py``) enforces
this against the reference backend.  Backend choice therefore affects
wall time only, never results.

Selection: ``GPUConfig.kernel_backend`` names the backend; its default
comes from the ``REPRO_KERNEL_BACKEND`` environment variable, falling
back to ``"vectorized"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gpu.config import DEFAULT_KERNEL_BACKEND, KERNEL_BACKEND_ENV

__all__ = [
    "KernelBackend",
    "KernelUnavailableError",
    "register_backend",
    "register_optional_backend",
    "get_backend",
    "backend_names",
    "available_backends",
    "DEFAULT_KERNEL_BACKEND",
    "KERNEL_BACKEND_ENV",
]


class KernelUnavailableError(RuntimeError):
    """A registered backend cannot run in this environment."""


@dataclass(frozen=True)
class KernelBackend:
    """The four hot-loop kernels, as pure functions over typed arrays.

    ``rasterize_triangles(xy, z, width, height)``
        ``xy`` is ``(T, 3, 2)`` float64 screen coordinates, ``z`` is
        ``(T, 3)`` float64 vertex depths.  Returns ``(px, py, pz,
        tri)``: integer pixel coordinates, interpolated depths, and the
        producing triangle index, in canonical order (triangle
        ascending, row-major within each triangle's bounding box).
    ``earlyz_pass_mask(pixel, z)``
        ``pixel`` is ``(N,) int64`` flat pixel indices and ``z`` the
        matching depths, both in arrival order.  Returns the ``(N,)``
        bool mask of fragments passing a LESS test against the running
        per-pixel minimum (buffer cleared to 1.0).
    ``zeb_insert(pixel, z_codes, object_id, is_front, config,
    tile_pixels)``
        One tile's collisionable fragments in arrival order (depths
        already quantized to integer z codes); returns the final
        :class:`~repro.rbcd.zeb.ZEBTile`.
    ``zoverlap_traverse(zeb, config)``
        The Z-Overlap Test over one tile's ZEB; returns an
        :class:`~repro.rbcd.overlap.OverlapResult` with pairs in
        canonical lock-step order: ascending (element step, list row,
        FF-Stack slot).
    """

    name: str
    rasterize_triangles: Callable
    earlyz_pass_mask: Callable
    zeb_insert: Callable
    zoverlap_traverse: Callable


_REGISTRY: dict[str, KernelBackend] = {}
# Backends that may be unavailable (missing optional dependency): name
# -> zero-argument probe returning a KernelBackend or raising
# KernelUnavailableError.  Probed lazily and the outcome cached.
_OPTIONAL: dict[str, Callable[[], KernelBackend]] = {}
_OPTIONAL_ERRORS: dict[str, str] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register an always-available backend under ``backend.name``."""
    if backend.name in _REGISTRY or backend.name in _OPTIONAL:
        raise ValueError(f"kernel backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def register_optional_backend(
    name: str, probe: Callable[[], KernelBackend]
) -> None:
    """Register a backend that may fail to load (optional dependency).

    ``probe`` is called at most once, on first resolution; it returns
    the backend or raises :class:`KernelUnavailableError`.
    """
    if name in _REGISTRY or name in _OPTIONAL:
        raise ValueError(f"kernel backend {name!r} already registered")
    _OPTIONAL[name] = probe


def _resolve_optional(name: str) -> KernelBackend | None:
    probe = _OPTIONAL.pop(name, None)
    if probe is None:
        return None
    try:
        backend = probe()
    except KernelUnavailableError as exc:
        _OPTIONAL_ERRORS[name] = str(exc)
        return None
    if backend.name != name:
        raise ValueError(
            f"optional backend probe for {name!r} returned {backend.name!r}"
        )
    _REGISTRY[name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, available or not (sorted)."""
    return tuple(sorted({*_REGISTRY, *_OPTIONAL, *_OPTIONAL_ERRORS}))


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run here (sorted)."""
    for name in list(_OPTIONAL):
        _resolve_optional(name)
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Resolve a backend by name.

    Raises ``ValueError`` for unknown names and
    :class:`KernelUnavailableError` for registered backends whose
    optional dependency is missing (the numba backend without numba).
    """
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    if name in _OPTIONAL:
        backend = _resolve_optional(name)
        if backend is not None:
            return backend
    if name in _OPTIONAL_ERRORS:
        raise KernelUnavailableError(
            f"kernel backend {name!r} is registered but unavailable: "
            f"{_OPTIONAL_ERRORS[name]}"
        )
    raise ValueError(
        f"unknown kernel backend {name!r}; registered: "
        f"{', '.join(backend_names())}"
    )


# Backend modules are imported *after* the registry API is defined so
# that modules reached through their imports (repro.rbcd.unit and
# repro.gpu.raster both import this package) can resolve kernels at
# call time even while this module is still initializing.
from repro.gpu.kernels import reference as _reference  # noqa: E402
from repro.gpu.kernels import vectorized as _vectorized  # noqa: E402
from repro.gpu.kernels import numba_backend as _numba_backend  # noqa: E402

register_backend(_reference.BACKEND)
register_backend(_vectorized.BACKEND)
register_optional_backend("numba", _numba_backend.probe)
