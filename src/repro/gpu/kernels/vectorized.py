"""The vectorized (default) kernel backend: batched numpy hot loops.

Bit-identical to the reference backend by construction, not by luck:

* The batched rasterizer evaluates the *same* IEEE-754 expressions as
  the per-triangle scalar loop — same subtractions, same products, same
  divisions, elementwise — over a flat array of bounding-box candidate
  pixels, then compresses with a boolean mask.  Candidates are laid out
  triangle-ascending, row-major per triangle, which is exactly the
  reference emission order, so equal values arrive in equal order.
* Early-Z replaces the sequential per-fragment scan with a segmented
  exclusive prefix-min over the pixel-sorted stream; comparisons are
  the same exact float LESS, each fragment is visited once.
* ZEB insertion and the Z-Overlap traversal reuse the proven
  lock-step builders (:func:`repro.rbcd.zeb.build_zeb_tile`,
  :func:`repro.rbcd.overlap.analyze_tile`).

Triangle batches are processed in bounded chunks (~1M candidate pixels)
so peak memory stays flat on large frames.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernels import KernelBackend
from repro.rbcd.overlap import analyze_tile
from repro.rbcd.zeb import build_zeb_tile

# Upper bound on bounding-box candidate pixels materialized per chunk.
_MAX_CANDIDATES = 1 << 20

_EMPTY = (
    np.empty(0, dtype=np.int32),
    np.empty(0, dtype=np.int32),
    np.empty(0, dtype=np.float64),
    np.empty(0, dtype=np.int64),
)


def _raster_chunk(xy, z, tri_sel, counts, x0, y0, bw, area2, sign):
    """Rasterize one chunk of triangles over flat candidate arrays."""
    tri_of = np.repeat(tri_sel, counts)
    starts = np.cumsum(counts) - counts
    rank = np.arange(tri_of.shape[0], dtype=np.int64) - np.repeat(starts, counts)
    w = bw[tri_of]
    cx = x0[tri_of] + rank % w
    cy = y0[tri_of] + rank // w
    gx = cx.astype(np.float64) + 0.5
    gy = cy.astype(np.float64) + 0.5

    vx = xy[:, :, 0]
    vy = xy[:, :, 1]
    s = sign[tri_of]
    inside = np.ones(tri_of.shape[0], dtype=bool)
    f_values = []
    for i in range(3):
        j = (i + 1) % 3
        # Per-triangle edge setup, then gathered per candidate — the
        # same subtractions the scalar loop performs once per triangle.
        dx_t = vx[:, j] - vx[:, i]
        dy_t = vy[:, j] - vy[:, i]
        dxn = sign * dx_t
        dyn = sign * dy_t
        top_left_t = ((dyn == 0.0) & (dxn > 0.0)) | (dyn < 0.0)

        ax = vx[tri_of, i]
        ay = vy[tri_of, i]
        f = dx_t[tri_of] * (gy - ay) - dy_t[tri_of] * (gx - ax)
        f_signed = s * f
        on_edge_ok = np.where(top_left_t[tri_of], f_signed >= 0.0, f_signed > 0.0)
        inside &= on_edge_ok
        f_values.append(f)

    keep = np.flatnonzero(inside)
    if keep.shape[0] == 0:
        return None
    kt = tri_of[keep]
    a2 = area2[kt]
    # Barycentric weights: F_i / area2 is the weight of vertex i+2.
    w2 = f_values[0][keep] / a2
    w0 = f_values[1][keep] / a2
    w1 = f_values[2][keep] / a2
    pz = w0 * z[kt, 0] + w1 * z[kt, 1] + w2 * z[kt, 2]
    return (
        cx[keep].astype(np.int32),
        cy[keep].astype(np.int32),
        pz,
        kt,
    )


def rasterize_triangles(
    xy: np.ndarray, z: np.ndarray, width: int, height: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Scan-convert a whole triangle batch with flat candidate arrays."""
    num_tris = xy.shape[0]
    if num_tris == 0:
        return _EMPTY

    e1 = xy[:, 1, :] - xy[:, 0, :]
    e2 = xy[:, 2, :] - xy[:, 0, :]
    area2 = e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0]
    sign = np.where(area2 > 0.0, 1.0, -1.0)

    vx = xy[:, :, 0]
    vy = xy[:, :, 1]
    x0 = np.maximum(np.floor(vx.min(axis=1)), 0.0).astype(np.int64)
    x1 = np.minimum(np.ceil(vx.max(axis=1)), float(width - 1)).astype(np.int64)
    y0 = np.maximum(np.floor(vy.min(axis=1)), 0.0).astype(np.int64)
    y1 = np.minimum(np.ceil(vy.max(axis=1)), float(height - 1)).astype(np.int64)
    bw = x1 - x0 + 1
    bh = y1 - y0 + 1
    live = (area2 != 0.0) & (bw > 0) & (bh > 0)
    counts = np.where(live, bw * bh, 0)
    if not counts.any():
        return _EMPTY

    cum = np.cumsum(counts)
    pieces = []
    start = 0
    while start < num_tris:
        base = int(cum[start - 1]) if start else 0
        stop = int(np.searchsorted(cum, base + _MAX_CANDIDATES, side="right"))
        stop = min(max(stop, start + 1), num_tris)
        tri_sel = start + np.flatnonzero(live[start:stop])
        if tri_sel.shape[0]:
            piece = _raster_chunk(
                xy, z, tri_sel, counts[tri_sel], x0, y0, bw, area2, sign
            )
            if piece is not None:
                pieces.append(piece)
        start = stop

    if not pieces:
        return _EMPTY
    if len(pieces) == 1:
        return pieces[0]
    return tuple(np.concatenate(parts) for parts in zip(*pieces))


def earlyz_pass_mask(pixel: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Segmented exclusive prefix-min LESS test, one visit per fragment.

    Fragments are stably sorted by pixel (keeping arrival order within
    each segment), then a lock-step walk over in-segment positions
    updates all segments' running minima; the Python-level loop runs
    max-overdraw times.
    """
    n = pixel.shape[0]
    passed = np.zeros(n, dtype=bool)
    if n == 0:
        return passed

    order = np.argsort(pixel, kind="stable")
    sp = pixel[order]
    sz = z[order]

    new_segment = np.r_[True, sp[1:] != sp[:-1]]
    starts = np.flatnonzero(new_segment)
    seg_ends = np.r_[starts[1:], n]
    seg_lengths = seg_ends - starts

    excl_min = np.empty(n, dtype=np.float64)
    running = np.full(starts.shape[0], 1.0)  # z-buffer clear value
    alive = np.arange(starts.shape[0])
    for k in range(int(seg_lengths.max())):
        alive = alive[k < seg_lengths[alive]]
        idx = starts[alive] + k
        excl_min[idx] = running[alive]
        running[alive] = np.minimum(running[alive], sz[idx])

    passed[order] = sz < excl_min
    return passed


def zeb_insert(pixel, z_codes, object_id, is_front, config, tile_pixels):
    """Whole-tile ZEB build (rank-based keep-the-M-nearest filter)."""
    del tile_pixels  # the packed tile stores only non-empty lists
    return build_zeb_tile(
        pixel, z_codes, object_id, is_front, config, depths_are_codes=True
    )


BACKEND = KernelBackend(
    name="vectorized",
    rasterize_triangles=rasterize_triangles,
    earlyz_pass_mask=earlyz_pass_mask,
    zeb_insert=zeb_insert,
    zoverlap_traverse=analyze_tile,
)
