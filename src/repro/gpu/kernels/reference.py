"""The reference kernel backend: hardware-literal scalar loops.

This backend is the executable specification every other backend is
conformance-tested against.  Each kernel mirrors what the paper's
hardware does one element at a time: the rasterizer scan-converts one
triangle at a time, early-Z tests one fragment at a time against the
running Z-buffer, ZEB insertion runs the 3-step sorted insert per
fragment (:func:`repro.rbcd.zeb.insert_sequential`), and the Z-Overlap
Test steps all of a tile's FF-Stacks in lock-step
(:func:`repro.rbcd.overlap.traverse_lists_sequential`).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernels import KernelBackend
from repro.rbcd.overlap import traverse_lists_sequential
from repro.rbcd.zeb import insert_sequential


def rasterize_triangle(xy: np.ndarray, z: np.ndarray, width: int, height: int):
    """Fragments of one screen triangle.

    Returns ``(px, py, pz)`` integer pixel coords and depths, or
    ``None`` when the triangle covers no pixel centre.  Boundary pixels
    follow the D3D/GL top-left fill rule so shared edges never double-
    generate fragments.
    """
    e1 = xy[1] - xy[0]
    e2 = xy[2] - xy[0]
    area2 = e1[0] * e2[1] - e1[1] * e2[0]
    if area2 == 0.0:
        return None
    sign = 1.0 if area2 > 0 else -1.0

    # Bbox widened to whole pixels; the edge tests decide inclusion, so
    # a slightly generous box only costs a few extra tests and keeps
    # shared edges watertight even at half-integer coordinates.
    x0 = max(int(np.floor(xy[:, 0].min())), 0)
    x1 = min(int(np.ceil(xy[:, 0].max())), width - 1)
    y0 = max(int(np.floor(xy[:, 1].min())), 0)
    y1 = min(int(np.ceil(xy[:, 1].max())), height - 1)
    if x1 < x0 or y1 < y0:
        return None

    px = np.arange(x0, x1 + 1, dtype=np.int32)
    py = np.arange(y0, y1 + 1, dtype=np.int32)
    cx = px.astype(np.float64) + 0.5
    cy = py.astype(np.float64) + 0.5
    gx, gy = np.meshgrid(cx, cy, indexing="xy")

    inside = np.ones(gx.shape, dtype=bool)
    f_values = []
    for i in range(3):
        ax, ay = xy[i]
        dx = xy[(i + 1) % 3][0] - ax
        dy = xy[(i + 1) % 3][1] - ay
        f = dx * (gy - ay) - dy * (gx - ax)
        f_signed = sign * f
        # Top-left rule (y-down): boundary belongs to horizontal edges
        # going +x and to edges going -y, for the orientation-normalized
        # triangle.
        dxn, dyn = sign * dx, sign * dy
        top_left = (dyn == 0.0 and dxn > 0.0) or dyn < 0.0
        if top_left:
            inside &= f_signed >= 0.0
        else:
            inside &= f_signed > 0.0
        f_values.append(f)
    if not inside.any():
        return None

    iy, ix = np.nonzero(inside)
    # Barycentric weights: F_i / area2 is the weight of vertex i+2.
    w2 = f_values[0][iy, ix] / area2
    w0 = f_values[1][iy, ix] / area2
    w1 = f_values[2][iy, ix] / area2
    pz = w0 * z[0] + w1 * z[1] + w2 * z[2]
    return px[ix], py[iy], pz


def rasterize_triangles(
    xy: np.ndarray, z: np.ndarray, width: int, height: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Scan-convert a triangle batch one triangle at a time."""
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    zs: list[np.ndarray] = []
    tris: list[np.ndarray] = []
    for t in range(xy.shape[0]):
        result = rasterize_triangle(xy[t], z[t], width, height)
        if result is None:
            continue
        px, py, pz = result
        xs.append(px)
        ys.append(py)
        zs.append(pz)
        tris.append(np.full(px.shape[0], t, dtype=np.int64))
    if not xs:
        return (
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.concatenate(xs),
        np.concatenate(ys),
        np.concatenate(zs),
        np.concatenate(tris),
    )


def earlyz_pass_mask(pixel: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Sequential LESS test against the running per-pixel minimum."""
    n = pixel.shape[0]
    passed = np.zeros(n, dtype=bool)
    z_buffer: dict[int, float] = {}
    for k in range(n):
        p = int(pixel[k])
        depth = float(z[k])
        if depth < z_buffer.get(p, 1.0):
            passed[k] = True
            z_buffer[p] = depth
    return passed


def zeb_insert(pixel, z_codes, object_id, is_front, config, tile_pixels):
    """One sorted insertion per fragment, in arrival order."""
    fragments = list(
        zip(
            np.asarray(pixel).tolist(),
            np.asarray(z_codes).tolist(),
            np.asarray(object_id).tolist(),
            np.asarray(is_front).tolist(),
        )
    )
    return insert_sequential(fragments, config, tile_pixels)


BACKEND = KernelBackend(
    name="reference",
    rasterize_triangles=rasterize_triangles,
    earlyz_pass_mask=earlyz_pass_mask,
    zeb_insert=zeb_insert,
    zoverlap_traverse=traverse_lists_sequential,
)
