"""Top-level GPU: geometry pipeline + raster pipeline + RBCD unit.

``GPU.render_frame`` runs the whole TBR flow of Figure 3 for one frame
and returns the image, the Z-buffer, the activity statistics, the
collision report (when RBCD is enabled) and the cycle timings.

Timing model
------------
The geometry pipeline and the raster pipeline are decoupled phases (the
raster phase starts when binning has finished), so

``gpu_cycles = geometry_cycles + raster_pipeline_cycles``.

Geometry throughput is the max of its pipelined stages (vertex
processing, primitive assembly, polygon-list building).

The raster phase processes tiles in order through three units — the
Rasterizer, the fragment processors, and (when present) the RBCD unit's
Z-Overlap Test — with these constraints, directly from Section 3.5:

* one Rasterizer: tile ``t`` starts after tile ``t-1`` finishes
  rasterizing **and** a ZEB is free, i.e. the Z-Overlap Test of tile
  ``t - zeb_count`` has completed;
* one Z-Overlap unit: analyses tiles in order, each starting once its
  tile is fully rasterized;
* fragment processors consume a tile's shading work only after the tile
  is rasterized.

The recurrence yields exactly the paper's stall behaviour: with one ZEB
the Rasterizer blocks whenever overlap analysis lags, and the fragment
processors go idle when their queue drains during the block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.gpu import kernels
from repro.gpu.assembly import TriangleSoup, assemble
from repro.gpu.caches import Cache
from repro.gpu.commands import Frame
from repro.gpu.config import GPUConfig
from repro.gpu.earlyz import DepthTestResult, depth_test
from repro.gpu.fragment import (
    ShadingResult,
    fragment_shader_cycles_per_draw,
    shade_fragments,
)
from repro.gpu.parallel import (
    TileExecutor,
    gather_tile_tasks,
    make_executor,
    run_with_tile_cache,
)
from repro.gpu.raster import FragmentSoup, rasterize
from repro.gpu.shading import shade_draws, vertex_stage_cycles
from repro.gpu.stats import GPUStats
from repro.gpu.tilecache import TileResultCache, frame_tile_keys
from repro.gpu.tiling import bin_triangles, fetch_tile_lists
from repro.observability.counters import CounterRegistry
from repro.observability.tracer import ensure_tracer
from repro.rbcd.pairs import CollisionReport
from repro.rbcd.unit import RBCDUnit

if TYPE_CHECKING:  # repro.energy imports repro.gpu; break the cycle here
    from repro.energy.report import EnergyAccount, FrameEnergyReport


@dataclass
class TileTiming:
    """Per-tile cycle inputs and the resolved schedule."""

    raster_cycles: np.ndarray
    fragment_cycles: np.ndarray
    overlap_cycles: np.ndarray
    raster_start: np.ndarray
    raster_end: np.ndarray
    overlap_end: np.ndarray
    fragment_end: np.ndarray
    stall_cycles: float
    total_cycles: float


@dataclass
class FrameResult:
    """Everything one frame produced."""

    color: np.ndarray              # (H, W, 3)
    z_buffer: np.ndarray           # (H, W)
    stats: GPUStats
    collisions: CollisionReport | None
    cpu_fallback: bool = False     # Section 5.3 overflow fallback fired
    tile_timing: TileTiming | None = None
    fragments: FragmentSoup | None = None  # kept on request (M sweeps)
    energy: FrameEnergyReport | None = None  # modelled joules + EDP
    # Per-frame gpu.tilecache.* counters when the cross-frame tile
    # cache is enabled (None otherwise).  Additive-only: nothing in
    # stats/energy/collisions depends on it.
    tilecache: CounterRegistry | None = None

    @property
    def gpu_cycles(self) -> float:
        return self.stats.gpu_cycles


# How far (in cycles) the Rasterizer may run ahead of fragment
# consumption: the 64-entry fragment queue at 4 fragments/cycle.
_QUEUE_COVERAGE_CYCLES = 16.0


def _tile_schedule(
    raster: np.ndarray,
    fragment: np.ndarray,
    overlap: np.ndarray,
    zeb_count: int,
) -> TileTiming:
    """Resolve the per-tile pipeline recurrence (see module docstring).

    The Rasterizer-to-fragment-processor queue holds 64 entries
    (Table 2), which is a fraction of one tile's fragments — so the
    two stages run in near lock-step (a blocking flow shop): the
    Rasterizer can produce at most ``_QUEUE_COVERAGE_CYCLES`` worth of
    fragments beyond what the fragment processors have consumed, and
    the fragment processors cannot finish a tile before the Rasterizer
    has finished producing it.  Extra raster work (deferred culling,
    ZEB stalls) is therefore hidden exactly where the paper says it is:
    in tiles whose fragment-shading work exceeds their raster work.
    """
    n = raster.shape[0]
    raster_start = np.zeros(n)
    raster_end = np.zeros(n)
    overlap_end = np.zeros(n)
    fragment_end = np.zeros(n)
    stall = 0.0
    prev_raster_end = 0.0
    prev_overlap_end = 0.0
    prev_fragment_end = 0.0
    for t in range(n):
        zeb_free_at = overlap_end[t - zeb_count] if t >= zeb_count else 0.0
        queue_limit = prev_fragment_end - _QUEUE_COVERAGE_CYCLES
        start = max(prev_raster_end, queue_limit, zeb_free_at)
        stall += max(0.0, zeb_free_at - max(prev_raster_end, queue_limit))
        end = start + raster[t]
        o_end = max(end, prev_overlap_end) + overlap[t]
        # Fragments stream into the processors as they are rasterized;
        # the tile cannot finish shading before it finishes rasterizing.
        f_start = max(prev_fragment_end, start)
        f_end = max(f_start + fragment[t], end)
        raster_start[t] = start
        raster_end[t] = end
        overlap_end[t] = o_end
        fragment_end[t] = f_end
        prev_raster_end = end
        prev_overlap_end = o_end
        prev_fragment_end = f_end
    total = float(max(prev_raster_end, prev_overlap_end, prev_fragment_end))
    return TileTiming(
        raster_cycles=raster,
        fragment_cycles=fragment,
        overlap_cycles=overlap,
        raster_start=raster_start,
        raster_end=raster_end,
        overlap_end=overlap_end,
        fragment_end=fragment_end,
        stall_cycles=stall,
        total_cycles=total,
    )


class GPU:
    """A tile-based GPU instance, optionally with an RBCD unit.

    ``rbcd_enabled=False`` models the paper's baseline GPU
    (conventional early face culling, no ZEB/overlap hardware).
    """

    def __init__(
        self,
        config: GPUConfig | None = None,
        rbcd_enabled: bool = True,
        rendering_mode: str = "tbr",
        executor: TileExecutor | None = None,
        tracer=None,
        provenance=None,
        monitor=None,
        tile_profiler=None,
    ) -> None:
        """``rendering_mode``:

        * "tbr" — the Mali-400-like tile-based baseline (the paper's);
        * "tbdr" — PowerVR-style deferred shading (Section 3.1): the
          fragment processors run only for visible pixels;
        * "imr" — immediate-mode rendering (Tegra-style, Section 3.1):
          no tiling, overdraw writes to the off-chip color buffer.  The
          paper scopes RBCD to tile-based GPUs, so IMR is baseline-only
          (``rbcd_enabled`` must be False); it exists to quantify the
          TBR-vs-IMR memory-traffic trade the paper describes.

        ``executor`` injects a :class:`~repro.gpu.parallel.TileExecutor`
        for the RBCD tile fan-out; by default one is built lazily from
        the config's ``executor_*`` fields (and owned — closed — by
        this GPU).  Parallel execution changes nothing observable:
        results merge deterministically in tile-schedule order.

        ``tracer`` accepts a :class:`repro.observability.Tracer`; every
        frame then records stage spans (frame → geometry/raster/rbcd →
        per-tile) carrying host wall time and simulated cycles.  Tracing
        is purely observational — it changes no result and no cycle
        count — and defaults to the zero-overhead null tracer.

        ``provenance`` accepts a
        :class:`repro.observability.provenance.ProvenanceRecorder`;
        every RBCD frame then records per-pair evidence (witness pixel,
        ZEB elements, FF-Stack depth, Figure-5 case).  Like the tracer
        it is strictly observational and off by default.

        ``monitor`` accepts a
        :class:`repro.observability.live.LiveMonitor`; every rendered
        frame is then turned into a streaming
        :class:`~repro.observability.live.MetricSnapshot` (counters,
        energy, cycle and wall timings) feeding the live windows and
        watchdogs.  Strictly observational, like the tracer and the
        provenance recorder.

        ``tile_profiler`` accepts a
        :class:`repro.observability.tileprofile.TileProfiler`; every
        RBCD frame then accumulates per-tile cycle/energy/activity/
        cache-hit grids, recorded at absorb time in tile-schedule order
        (so the grids are identical at any worker count).  Strictly
        observational, same contract as the recorders above.
        """
        if rendering_mode not in ("tbr", "tbdr", "imr"):
            raise ValueError('rendering_mode must be "tbr", "tbdr" or "imr"')
        if rendering_mode == "imr" and rbcd_enabled:
            raise ValueError(
                "RBCD requires a tile-based pipeline (the per-tile ZEB); "
                "IMR mode is baseline-only, as in the paper's Section 3.1"
            )
        self.config = config if config is not None else GPUConfig()
        # Fail fast on unknown/unavailable kernel backends: resolving
        # here surfaces a typo'd REPRO_KERNEL_BACKEND at construction
        # instead of mid-frame (workers re-resolve by name from the
        # pickled config, so the instance itself is not stored).
        kernels.get_backend(self.config.kernel_backend)
        self.rbcd_enabled = rbcd_enabled
        self.rendering_mode = rendering_mode
        self.tracer = ensure_tracer(tracer)
        self.provenance = provenance
        self.monitor = monitor
        self.tile_profiler = tile_profiler
        self._executor = executor
        self._owns_executor = executor is None
        self._energy_account: EnergyAccount | None = None
        # Cross-frame tile-result cache (repro.gpu.tilecache): persists
        # across render_frame calls so frame N+1 can replay frame N's
        # unchanged tiles.  Collision-path only, hence gated on RBCD.
        self._tile_cache: TileResultCache | None = (
            TileResultCache(self.config)
            if rbcd_enabled and self.config.tile_cache_enabled
            else None
        )

    @property
    def energy_account(self) -> "EnergyAccount":
        """The energy pricing models for this GPU's configuration."""
        if self._energy_account is None:
            from repro.energy.report import EnergyAccount

            self._energy_account = EnergyAccount(self.config)
        return self._energy_account

    @property
    def executor(self) -> TileExecutor:
        """The tile-execution engine (built from the config on first use)."""
        if self._executor is None:
            self._executor = make_executor(self.config)
        return self._executor

    @property
    def tile_cache(self) -> TileResultCache | None:
        """The cross-frame tile cache (None when disabled)."""
        return self._tile_cache

    def reset_tile_cache(self) -> None:
        """Cold-start the tile cache (no-op when disabled).

        Use between independent sequences (e.g. benchmark runs) so the
        first frame of each sequence misses deterministically instead
        of hitting against the previous sequence's last frame.
        """
        if self._tile_cache is not None:
            self._tile_cache.reset()

    def close(self) -> None:
        """Shut down an owned worker pool (serial backend: no-op)."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "GPU":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def render_frame(
        self,
        frame: Frame,
        keep_tile_timing: bool = False,
        keep_fragments: bool = False,
    ) -> FrameResult:
        """Render one frame; returns image, stats and collisions."""
        if self.rendering_mode == "imr":
            return self._render_frame_imr(frame)
        wall_t0 = time.perf_counter()
        tracer = self.tracer
        config = self.config
        stats = GPUStats(frames=1)
        vertex_cache = Cache(config.vertex_cache)
        tile_cache = Cache(config.tile_cache)

        frame_span = tracer.start("frame", category="frame", draws=len(frame.draws))

        # -- geometry pipeline --------------------------------------------
        with tracer.span("geometry") as geometry_span:
            with tracer.span("geometry.shade") as shade_span:
                shaded = shade_draws(frame, config, stats, vertex_cache)
            with tracer.span("geometry.assemble") as assemble_span:
                soup = assemble(
                    shaded, config, stats, deferred_culling=self.rbcd_enabled
                )
            with tracer.span("geometry.bin") as bin_span:
                binning = bin_triangles(soup, config, stats, tile_cache)

            # Tile signatures are computed where the hardware would
            # compute them: at binning time, from the binned primitive
            # stream, before any raster work is spent.
            tile_keys: dict[int, bytes] | None = None
            if self._tile_cache is not None:
                self._tile_cache.begin_frame()
                tile_keys = frame_tile_keys(soup, binning, config)

            vertex_cycles = vertex_stage_cycles(stats, config)
            assembly_cycles = (
                stats.triangles_assembled / config.primitive_assembly_tris_per_cycle
            )
            binning_cycles = (
                stats.prim_tile_pairs * config.binning_cycles_per_prim_tile
                + stats.tile_cache_store_misses * config.l2_cache.latency_cycles
            )
            stats.geometry_cycles = max(vertex_cycles, assembly_cycles, binning_cycles)
            shade_span.cycles = vertex_cycles
            assemble_span.cycles = assembly_cycles
            bin_span.cycles = binning_cycles
            geometry_span.cycles = stats.geometry_cycles

        # -- raster pipeline: functional pass ------------------------------
        raster_span = tracer.start("raster")
        with tracer.span("raster.fetch"):
            tile_load_misses = fetch_tile_lists(binning, config, stats, tile_cache)
        with tracer.span("raster.rasterize"):
            frags = rasterize(soup, config, stats)

        if frame.raster_only:
            depth = DepthTestResult(
                passed=np.zeros(frags.count, dtype=bool),
                z_buffer=np.ones((config.screen_height, config.screen_width)),
                winner=np.full(
                    (config.screen_height, config.screen_width), -1, dtype=np.int64
                ),
            )
            shading = ShadingResult(
                color=np.zeros((config.screen_height, config.screen_width, 3)),
                shaded_mask=np.zeros(frags.count, dtype=bool),
                shader_cycles_total=0.0,
            )
        else:
            with tracer.span("raster.early-z"):
                depth = depth_test(frags, config, stats)
            with tracer.span("raster.shade"):
                shading = shade_fragments(
                    frame, frags, depth, config, stats,
                    deferred_shading=self.rendering_mode == "tbdr",
                )
        tracer.end(raster_span)

        # -- RBCD unit -----------------------------------------------------------
        report: CollisionReport | None = None
        overlap_cycles = np.zeros(config.tile_count)
        insertion_limit = np.zeros(config.tile_count)
        cpu_fallback = False
        if self.rbcd_enabled:
            with tracer.span("rbcd") as rbcd_span:
                if self.provenance is not None:
                    self.provenance.begin_frame()
                unit = RBCDUnit(config, provenance=self.provenance)
                report = self._run_rbcd(
                    unit, frags, stats, overlap_cycles, insertion_limit,
                    tile_keys=tile_keys,
                )
                cpu_fallback = unit.wants_cpu_fallback()
                if cpu_fallback:
                    stats.cpu_fallback_frames += 1
                rbcd_span.cycles = float(overlap_cycles.sum())
                rbcd_span.annotate(
                    pairs=report.pair_records_written,
                    cpu_fallback=cpu_fallback,
                )
                if self._tile_cache is not None:
                    rbcd_span.annotate(
                        tiles_replayed=unit.tiles_replayed,
                        tilecache_hit_rate=self._tile_cache.frame_hit_rate,
                    )

        # -- raster pipeline: timing --------------------------------------------
        with tracer.span("schedule") as schedule_span:
            tile_idx = frags.tile_index(config)
            frags_per_tile = np.bincount(tile_idx, minlength=config.tile_count)

            shader_cycles_tile = np.zeros(config.tile_count)
            if frags.count and not frame.raster_only:
                per_draw = fragment_shader_cycles_per_draw(frame, config)
                shaded_idx = np.flatnonzero(shading.shaded_mask)
                np.add.at(
                    shader_cycles_tile,
                    tile_idx[shaded_idx],
                    per_draw[frags.draw_index[shaded_idx]],
                )

            prims_per_tile = np.diff(binning.tile_offsets).astype(np.float64)
            raster_busy_cycles = (
                prims_per_tile * config.raster_setup_cycles_per_tri
                + frags_per_tile / config.rasterizer_frags_per_cycle
                + tile_load_misses * config.l2_cache.latency_cycles
            )
            # The insertion-sort unit accepts one fragment per cycle; a tile
            # whose collisionable fragments outnumber raster slots *blocks*
            # the Rasterizer.  The delay enters the schedule, but it is not
            # Rasterizer busy work (the Figure 11 activity factor counts
            # busy cycles only).
            raster_effective = np.maximum(raster_busy_cycles, insertion_limit)
            fragment_cycles = shader_cycles_tile / config.num_fragment_processors

            active = (prims_per_tile > 0) | (frags_per_tile > 0)
            timing = _tile_schedule(
                raster_effective[active],
                fragment_cycles[active],
                overlap_cycles[active],
                config.rbcd.zeb_count if self.rbcd_enabled else 1,
            )

            stats.tiles_processed = int(active.sum())
            stats.raster_cycles = float(raster_busy_cycles[active].sum())
            stats.rbcd_cycles = float(overlap_cycles.sum())
            stats.raster_stall_cycles = timing.stall_cycles
            stats.raster_pipeline_cycles = timing.total_cycles
            stats.fragment_idle_cycles = timing.total_cycles - float(
                fragment_cycles[active].sum()
            )
            stats.gpu_cycles = stats.geometry_cycles + stats.raster_pipeline_cycles
            schedule_span.cycles = timing.stall_cycles
        raster_span.cycles = stats.raster_pipeline_cycles

        # Off-chip traffic (TBR: polygon lists both ways, vertex fetch
        # misses, one color write per covered pixel at tile flush).
        line = config.l2_cache.line_bytes
        stats.dram_bytes_read = float(
            (stats.vertex_cache_misses + stats.tile_cache_load_misses) * line
        )
        stats.dram_bytes_written = float(
            stats.tile_cache_store_misses * line + stats.color_writes * 4
        )

        energy = self.energy_account.frame_report(stats)
        frame_span.cycles = stats.gpu_cycles
        frame_span.annotate(
            fragments=stats.fragments_produced, energy_j=energy.total_j
        )
        tracer.end(frame_span)

        result = FrameResult(
            color=shading.color,
            z_buffer=depth.z_buffer,
            stats=stats,
            collisions=report,
            cpu_fallback=cpu_fallback,
            tile_timing=timing if keep_tile_timing else None,
            fragments=frags if keep_fragments else None,
            energy=energy,
            tilecache=(
                self._tile_cache.frame_registry()
                if self._tile_cache is not None else None
            ),
        )
        if self.monitor is not None:
            self.monitor.observe(result, wall_s=time.perf_counter() - wall_t0)
        return result

    def _render_frame_imr(self, frame: Frame) -> FrameResult:
        """Immediate-mode baseline: no tiling, off-chip overdraw.

        Primitives stream straight from assembly to the rasterizer in
        submission order; the color and depth buffers live in system
        memory, so every early-Z pass writes off-chip (the overdraw
        traffic TBR avoids), while the polygon-list traffic of the
        tiling engine disappears entirely.
        """
        wall_t0 = time.perf_counter()
        tracer = self.tracer
        config = self.config
        stats = GPUStats(frames=1)
        vertex_cache = Cache(config.vertex_cache)

        frame_span = tracer.start("frame", category="frame", draws=len(frame.draws))

        with tracer.span("geometry") as geometry_span:
            with tracer.span("geometry.shade"):
                shaded = shade_draws(frame, config, stats, vertex_cache)
            with tracer.span("geometry.assemble"):
                soup = assemble(shaded, config, stats, deferred_culling=False)
            stats.triangles_binned = soup.count  # pass-through, no binning

            vertex_cycles = vertex_stage_cycles(stats, config)
            assembly_cycles = (
                stats.triangles_assembled / config.primitive_assembly_tris_per_cycle
            )
            stats.geometry_cycles = max(vertex_cycles, assembly_cycles)
            geometry_span.cycles = stats.geometry_cycles

        raster_span = tracer.start("raster")
        with tracer.span("raster.rasterize"):
            frags = rasterize(soup, config, stats)
        stats.prims_rasterized = soup.count
        with tracer.span("raster.early-z"):
            depth = depth_test(frags, config, stats)
        with tracer.span("raster.shade"):
            shading = shade_fragments(frame, frags, depth, config, stats)
        tracer.end(raster_span)

        # Streaming pipeline: raster and shading overlap; the longer
        # stage sets the pace.
        raster_cycles = (
            soup.count * config.raster_setup_cycles_per_tri
            + frags.count / config.rasterizer_frags_per_cycle
        )
        stats.raster_cycles = raster_cycles
        stats.raster_pipeline_cycles = max(raster_cycles, stats.fragment_cycles)
        stats.fragment_idle_cycles = (
            stats.raster_pipeline_cycles - stats.fragment_cycles
        )
        stats.gpu_cycles = stats.geometry_cycles + stats.raster_pipeline_cycles

        # Off-chip traffic: every surviving fragment writes color+depth
        # to memory (overdraw included), every test reads depth.
        stats.dram_bytes_read = float(
            stats.vertex_cache_misses * config.l2_cache.line_bytes
            + stats.early_z_tests * 4
        )
        stats.dram_bytes_written = float(stats.early_z_passes * 8)

        energy = self.energy_account.frame_report(stats)
        raster_span.cycles = stats.raster_pipeline_cycles
        frame_span.cycles = stats.gpu_cycles
        frame_span.annotate(
            fragments=stats.fragments_produced, energy_j=energy.total_j
        )
        tracer.end(frame_span)

        result = FrameResult(
            color=shading.color,
            z_buffer=depth.z_buffer,
            stats=stats,
            collisions=None,
            energy=energy,
        )
        if self.monitor is not None:
            self.monitor.observe(result, wall_s=time.perf_counter() - wall_t0)
        return result

    def _run_rbcd(
        self,
        unit: RBCDUnit,
        frags: FragmentSoup,
        stats: GPUStats,
        overlap_cycles: np.ndarray,
        insertion_limit: np.ndarray,
        tile_keys: dict[int, bytes] | None = None,
    ) -> CollisionReport:
        """Feed every collisionable fragment, tile by tile, to the unit.

        Tiles are dispatched through the configured
        :class:`~repro.gpu.parallel.TileExecutor` and the results are
        absorbed back in tile-schedule order, so the report, counters,
        and cycle arrays are identical whatever the backend or worker
        count.

        When the cross-frame tile cache is enabled, ``tile_keys``
        carries the canonical signature keys and only signature misses
        reach the executor; hits replay the cached result in place,
        which keeps the absorbed stream — and therefore every output —
        bit-identical to a cache-off run at any worker count.

        Per-tile spans are recorded at absorb time (the merge is where
        the main process first sees a tile), carrying the simulated
        insertion/overlap cycles the worker computed; their wall time is
        the host-side merge cost, not the worker compute time.
        """
        tracer = self.tracer
        tasks = gather_tile_tasks(frags, self.config)
        stats.rbcd_fragments_in += sum(t.fragment_count for t in tasks)
        if self._tile_cache is not None and tile_keys is not None:
            stream = run_with_tile_cache(
                self.executor, self.config, tasks, self._tile_cache, tile_keys
            )
        else:
            stream = ((r, False) for r in self.executor.run(self.config, tasks))
        profiler = self.tile_profiler
        rbcd_energy_model = None
        if profiler is not None:
            profiler.begin_frame(self.config)
            rbcd_energy_model = self.energy_account.rbcd_model
        for result, replayed in stream:
            with tracer.span(
                "rbcd.tile", category="tile", tile=result.tile_index
            ) as tile_span:
                with tracer.span("rbcd.zeb-insert") as insert_span:
                    insert_span.cycles = result.insertion_cycles
                    insert_span.annotate(insertions=result.zeb.insertions)
                with tracer.span("rbcd.z-overlap") as overlap_span:
                    overlap_span.cycles = result.overlap_cycles
                    overlap_span.annotate(
                        lists=result.analyzed_lists,
                        elements=result.analyzed_elements,
                    )
                unit.absorb(result, replayed=replayed)
                tile_span.cycles = result.insertion_cycles + result.overlap_cycles
            if profiler is not None:
                # Absorb time is where the main process first sees the
                # tile, in tile-schedule order — recording here makes
                # the grids deterministic at any worker count, exactly
                # like the provenance hook inside absorb().
                profiler.record_tile(
                    result, replayed=replayed, energy_model=rbcd_energy_model
                )
            overlap_cycles[result.tile_index] = result.overlap_cycles
            insertion_limit[result.tile_index] = result.insertion_cycles

        stats.zeb_insertions += unit.insertions
        stats.zeb_overflow_events += unit.overflow_events
        stats.zeb_spare_allocations += unit.spare_allocations
        stats.zeb_lists_analyzed += unit.lists_analyzed
        stats.overlap_elements_read += unit.elements_read
        stats.ff_stack_overflows += unit.stack_overflows
        stats.unmatched_backfaces += unit.unmatched_backfaces
        stats.collision_pairs_emitted += unit.report.pair_records_written
        return unit.report
