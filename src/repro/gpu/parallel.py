"""Parallel tile-execution engine with a deterministic merge.

The paper's core observation is that per-tile RBCD work — ZEB sorted
insertion plus the Z-Overlap Test — is fully independent across the
tiles of a TBR GPU: each tile owns its ZEB, its spare pool, and its
slice of the output buffer.  The simulator exploits the same
independence on the host CPU: a :class:`TileExecutor` fans per-tile
work (:func:`repro.rbcd.unit.compute_tile`) out to a pool of workers
and hands the results back **in tile-schedule order**, so the caller's
merge — :meth:`RBCDUnit.absorb` tile by tile — produces collision
reports, counters, and cycle numbers bit-identical to the serial path
regardless of worker count or completion order.

Three backends, selected by :class:`~repro.gpu.config.GPUConfig`:

* ``serial`` — in-process loop, zero dispatch overhead (the default);
* ``thread`` — ``ThreadPoolExecutor``; cheap dispatch, shared memory,
  but insertion/overlap kernels hold the GIL between numpy calls;
* ``process`` — ``ProcessPoolExecutor``; true CPU parallelism, paying
  one config pickle per chunk and one result pickle per tile.

Tiles are batched into chunks (``executor_chunk_tiles``) to amortize
dispatch overhead: most tiles of a real frame carry a handful of
collisionable fragments, far too little work to justify one IPC round
trip each.

Determinism argument (tested by ``tests/gpu/test_parallel.py`` and
``tests/rbcd/test_differential.py``):

1. :func:`compute_tile` is a pure function of ``(config, tile
   fragments)`` — no shared state, and numpy kernels are deterministic
   across threads and processes.
2. ``Executor.map`` returns results in submission order, which is the
   tile-schedule order produced by :func:`gather_tile_tasks`.
3. The merge (absorbing results and summing stats) runs serially over
   that order, so contact-record ordering, counters and the
   per-tile cycle arrays fed to the stall model are identical to a
   serial run.  Simulated ``gpu_cycles`` are computed from those
   per-tile timings — never from wall clock — so they are invariant
   under the worker count.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.gpu.config import GPUConfig
from repro.gpu.stats import TileStats
from repro.observability.counters import CounterRegistry
from repro.observability.log import get_logger, log_event
from repro.rbcd.unit import RBCDTileResult, RBCDUnit, compute_tile

__all__ = [
    "TileTask",
    "TileExecutor",
    "SerialTileExecutor",
    "ThreadPoolTileExecutor",
    "ProcessPoolTileExecutor",
    "make_executor",
    "gather_tile_tasks",
    "chunk_tasks",
    "run_with_tile_cache",
    "merge_tile_results",
    "tile_stats_of",
    "tile_registry_of",
    "tile_energy_registry",
    "tile_profile_of",
]


_LOG = get_logger(__name__)


@dataclass(frozen=True)
class TileTask:
    """One tile's collisionable fragments, in arrival order.

    Coordinates are global pixel coordinates, exactly what
    :func:`repro.rbcd.unit.compute_tile` expects.  Frozen and
    array-valued so tasks pickle cheaply to process workers.
    """

    tile_index: int
    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    object_id: np.ndarray
    front: np.ndarray

    @property
    def fragment_count(self) -> int:
        return int(self.x.shape[0])


def gather_tile_tasks(frags, config: GPUConfig) -> list[TileTask]:
    """Group a frame's collisionable fragments into per-tile tasks.

    Tasks come back in tile-schedule order (ascending tile index, the
    order the Tile Scheduler visits them) with each tile's fragments in
    their original arrival order — the ordering contract every executor
    backend preserves.
    """
    coll = np.flatnonzero(frags.object_id >= 0)
    if coll.shape[0] == 0:
        return []
    tiles = frags.tile_index(config)[coll]
    order = np.lexsort((coll, tiles))  # per tile, arrival order
    sorted_idx = coll[order]
    sorted_tiles = tiles[order]
    boundaries = np.flatnonzero(np.r_[True, sorted_tiles[1:] != sorted_tiles[:-1]])
    boundaries = np.r_[boundaries, sorted_tiles.shape[0]]
    tasks: list[TileTask] = []
    for b in range(boundaries.shape[0] - 1):
        lo, hi = boundaries[b], boundaries[b + 1]
        idx = sorted_idx[lo:hi]
        tasks.append(
            TileTask(
                tile_index=int(sorted_tiles[lo]),
                x=frags.x[idx],
                y=frags.y[idx],
                z=frags.z[idx],
                object_id=frags.object_id[idx],
                front=frags.front[idx],
            )
        )
    return tasks


def chunk_tasks(
    tasks: Sequence[TileTask], chunk_size: int
) -> list[tuple[TileTask, ...]]:
    """Split a task list into dispatch chunks, preserving order."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        tuple(tasks[i : i + chunk_size]) for i in range(0, len(tasks), chunk_size)
    ]


def _run_chunk(
    payload: tuple[GPUConfig, tuple[TileTask, ...]]
) -> list[RBCDTileResult]:
    """Worker entry point: compute every tile of one chunk in order.

    Top-level so it pickles for the process backend.
    """
    config, chunk = payload
    return [
        compute_tile(config, t.tile_index, t.x, t.y, t.z, t.object_id, t.front)
        for t in chunk
    ]


class TileExecutor:
    """Maps per-tile RBCD work over a frame's tile tasks.

    Subclasses implement :meth:`_map_chunks`; :meth:`run` guarantees the
    result list is in task order (tile-schedule order) whatever the
    completion order underneath.  Executors are reusable across frames
    and configs — pass the config per call — and pooled backends keep
    their pool alive until :meth:`close`.
    """

    backend = "serial"

    def run(
        self, config: GPUConfig, tasks: Sequence[TileTask]
    ) -> list[RBCDTileResult]:
        """Compute all tasks; results ordered exactly like ``tasks``."""
        if not tasks:
            return []
        chunks = chunk_tasks(tasks, config.executor_chunk_tiles)
        results: list[RBCDTileResult] = []
        for chunk_results in self._map_chunks(config, chunks):
            results.extend(chunk_results)
        return results

    def _map_chunks(
        self, config: GPUConfig, chunks: list[tuple[TileTask, ...]]
    ) -> Iterable[list[RBCDTileResult]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (no-op for the serial backend)."""

    def __enter__(self) -> "TileExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialTileExecutor(TileExecutor):
    """The reference backend: compute tiles inline, one at a time."""

    backend = "serial"

    def _map_chunks(self, config, chunks):
        for chunk in chunks:
            yield _run_chunk((config, chunk))


class _PooledTileExecutor(TileExecutor):
    """Shared machinery for the thread/process backends: a lazily
    created ``concurrent.futures`` pool whose ``map`` (order-preserving
    by contract) runs chunks concurrently."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: Executor | None = None
        # Guards lazy pool creation: an executor shared across host
        # threads (the serving frontend injects one pool into every
        # tenant's GPU) must not double-create or leak a pool when two
        # first frames race.
        self._pool_lock = threading.Lock()

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _map_chunks(self, config, chunks):
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
                log_event(
                    _LOG, "executor.pool.started", level=logging.DEBUG,
                    backend=self.backend, workers=self.workers,
                )
            pool = self._pool
        return pool.map(_run_chunk, [(config, chunk) for chunk in chunks])

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
            log_event(
                _LOG, "executor.pool.closed", level=logging.DEBUG,
                backend=self.backend, workers=self.workers,
            )


class ThreadPoolTileExecutor(_PooledTileExecutor):
    """Thread-pool backend: cheap dispatch, GIL-limited speedup."""

    backend = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="rbcd-tile"
        )


class ProcessPoolTileExecutor(_PooledTileExecutor):
    """Process-pool backend: true CPU parallelism across tiles."""

    backend = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


def make_executor(config: GPUConfig) -> TileExecutor:
    """Build the executor a config asks for (see ``executor_backend``)."""
    if config.executor_backend == "serial" or config.executor_workers == 1:
        executor: TileExecutor = SerialTileExecutor()
    elif config.executor_backend == "thread":
        executor = ThreadPoolTileExecutor(config.executor_workers)
    else:
        executor = ProcessPoolTileExecutor(config.executor_workers)
    log_event(
        _LOG, "executor.created", level=logging.DEBUG,
        backend=executor.backend, workers=config.executor_workers,
        chunk_tiles=config.executor_chunk_tiles,
    )
    return executor


def run_with_tile_cache(
    executor: TileExecutor,
    config: GPUConfig,
    tasks: Sequence[TileTask],
    cache,
    tile_keys: dict[int, bytes],
) -> Iterable[tuple[RBCDTileResult, bool]]:
    """Run tile tasks through ``executor`` behind a signature cache.

    Yields ``(result, replayed)`` in tile-schedule order: the full task
    list is first planned against the cache (lookups happen serially,
    in task order, so the hit/miss pattern is deterministic), then only
    the misses are dispatched to the executor — at any worker count —
    and the replayed hits are interleaved back in place.  Because
    replayed results are the very objects a previous frame computed,
    the merged stream is bit-identical to a cache-off run; only the
    host work (and the modelled savings the cache accounts) changes.

    ``cache`` is a :class:`~repro.gpu.tilecache.TileResultCache` (duck
    typed to avoid a tiling→parallel import knot); ``tile_keys`` maps
    tile index → canonical signature key, from
    :func:`~repro.gpu.tilecache.frame_tile_keys`.  Every task's tile
    must have a key: a tile with collisionable fragments necessarily
    has collisionable primitives binned to it.
    """
    plan: list[tuple[TileTask, RBCDTileResult | None]] = []
    miss_tasks: list[TileTask] = []
    for task in tasks:
        key = tile_keys.get(task.tile_index)
        if key is None:
            raise KeyError(
                f"tile {task.tile_index} has RBCD work but no signature "
                f"key: the signature layer and the binning disagree"
            )
        cached = cache.lookup(task.tile_index, key)
        plan.append((task, cached))
        if cached is None:
            miss_tasks.append(task)
    miss_results = iter(executor.run(config, miss_tasks))
    for task, cached in plan:
        if cached is not None:
            yield cached, True
        else:
            result = next(miss_results)
            cache.store(task.tile_index, tile_keys[task.tile_index], result)
            yield result, False


def merge_tile_results(
    unit: RBCDUnit, results: Iterable[RBCDTileResult]
) -> list[RBCDTileResult]:
    """Deterministic reduction: absorb results in the given order.

    The caller passes results in tile-schedule order (what
    :meth:`TileExecutor.run` returns); absorbing serially makes the
    unit's report and counters bit-identical to a serial run.
    """
    absorbed = []
    for result in results:
        unit.absorb(result)
        absorbed.append(result)
    return absorbed


def tile_stats_of(result: RBCDTileResult) -> TileStats:
    """Per-tile activity record for one computed tile."""
    return TileStats(
        tile_index=result.tile_index,
        collisionable_fragments=result.zeb.insertions,
        overlap_cycles=result.overlap_cycles,
    )


def tile_registry_of(result: RBCDTileResult) -> CounterRegistry:
    """Named-counter view of one tile's RBCD activity.

    Registries merge by plain per-name sums, so any shard grouping of a
    frame's tile results merges to the same totals the serial absorb
    loop produces — the property that lets per-tile counters survive
    the parallel executor's deterministic merge.
    """
    registry = CounterRegistry()
    for name, kind, value in (
        ("rbcd.zeb_insertions", "int", result.zeb.insertions),
        ("rbcd.zeb_overflow_events", "int", result.zeb.overflow_events),
        ("rbcd.zeb_spare_allocations", "int", result.zeb.spare_allocations),
        ("rbcd.overlap_lists_analyzed", "int", result.analyzed_lists),
        ("rbcd.overlap_elements_read", "int", result.analyzed_elements),
        ("rbcd.ff_stack_overflows", "int", result.overlap.stack_overflows),
        ("rbcd.unmatched_backfaces", "int", result.overlap.unmatched_backfaces),
        ("rbcd.pair_records_written", "int", result.overlap.pair_records),
    ):
        registry.counter(name, kind=kind)
        registry.set(name, value)
    registry.counter("rbcd.insertion_cycles", kind="float", unit="cycles")
    registry.set("rbcd.insertion_cycles", result.insertion_cycles)
    registry.counter("rbcd.overlap_cycles", kind="float", unit="cycles")
    registry.set("rbcd.overlap_cycles", result.overlap_cycles)
    return registry


def tile_evidence_of(result: RBCDTileResult, config, frame: int = 0):
    """Pair-evidence records for one tile's result (shard view).

    ``config`` is the :class:`~repro.gpu.config.GPUConfig` the tile was
    computed under.  Evidence records carry a total order
    ``(frame, tile, record)``, so shards collected from any worker
    interleaving sort to exactly the sequence a serial
    :class:`~repro.observability.provenance.ProvenanceRecorder`
    observes — the provenance analogue of the counter-merge property
    above, asserted by ``tests/observability/test_provenance.py``.
    """
    from repro.observability.provenance import evidence_from_tile

    return evidence_from_tile(result, config, frame=frame)


def tile_energy_registry(result: RBCDTileResult, model) -> CounterRegistry:
    """Named-counter view of one tile's *dynamic* RBCD energy.

    ``model`` is a :class:`~repro.energy.rbcd_power.RBCDEnergyModel`
    (duck-typed to avoid a gpu→energy→gpu import cycle at module
    level).  Every energy term is linear in the tile counters it is
    priced from, so these registries merge across any shard grouping
    to exactly the frame's dynamic RBCD energy — static leakage is
    frame-time-based and excluded, see
    :meth:`~repro.energy.rbcd_power.RBCDEnergyModel.tile_breakdown`.
    """
    return model.tile_breakdown(result).registry()


def tile_profile_of(result: RBCDTileResult, config: GPUConfig, model=None,
                    replayed: bool = False):
    """Single-tile spatial-profile shard for one computed tile.

    Returns a one-frame
    :class:`~repro.observability.tileprofile.TileProfiler` holding just
    this tile's contribution.  Every grid cell is a per-tile sum, so
    shards collected from any worker interleaving
    :meth:`~repro.observability.tileprofile.TileProfiler.merge` to
    exactly the grids the serial absorb loop records — the spatial
    analogue of :func:`tile_registry_of`'s counter-merge property.
    ``model`` is an optional
    :class:`~repro.energy.rbcd_power.RBCDEnergyModel` (duck-typed) for
    the dynamic-energy grid.
    """
    from repro.observability.tileprofile import TileProfiler

    shard = TileProfiler()
    shard.begin_frame(config)
    shard.record_tile(result, replayed=replayed, energy_model=model)
    return shard
