"""Per-frame GPU activity counters.

These are the "activity factors" behind the paper's Figures 9-11: tile
cache loads/stores and misses, primitives before/after deferred culling,
fragments produced, raster/fragment/geometry cycles, and the RBCD
unit's own activity.  ``GPUStats`` instances add together so multi-frame
runs can accumulate.

The merge algebra (``a + b``, ``sum``-compatibility, ``Cls.sum``) comes
from :class:`repro.observability.counters.CounterAlgebra` — the one
shared implementation the parallel executor's deterministic reduction
relies on — and :meth:`GPUStats.registry` exposes the same numbers as a
named :class:`~repro.observability.counters.CounterRegistry`
(``gpu.geometry.*`` / ``gpu.raster.*`` / ``gpu.rbcd.*`` / ``gpu.mem.*``)
for exporters and the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.observability.counters import (
    CounterAlgebra,
    CounterRegistry,
    registry_from_counters,
)

# Field -> namespace for the registry view.  Fields not listed fall in
# the "gpu" root namespace (currently only ``frames`` and the whole-GPU
# cycle totals).
_GPU_NAMESPACES = {
    "gpu.geometry": (
        "vertices_fetched", "vertices_shaded", "vertex_cache_accesses",
        "vertex_cache_misses", "triangles_assembled", "triangles_clipped",
        "triangles_frustum_culled", "triangles_face_culled",
        "triangles_tagged_to_be_culled", "triangles_degenerate",
        "triangles_binned", "prim_tile_pairs", "tile_cache_stores",
        "tile_cache_store_misses", "geometry_cycles",
    ),
    "gpu.raster": (
        "tiles_processed", "prims_rasterized", "tile_cache_loads",
        "tile_cache_load_misses", "fragments_produced",
        "fragments_tagged_culled", "early_z_tests", "early_z_passes",
        "fragments_shaded", "texture_accesses", "color_writes",
        "raster_cycles", "fragment_cycles", "fragment_idle_cycles",
        "raster_pipeline_cycles", "raster_stall_cycles",
    ),
    "gpu.rbcd": (
        "rbcd_fragments_in", "zeb_insertions", "zeb_overflow_events",
        "zeb_spare_allocations", "zeb_lists_analyzed",
        "overlap_elements_read", "ff_stack_overflows",
        "unmatched_backfaces", "collision_pairs_emitted", "rbcd_cycles",
        "cpu_fallback_frames",
    ),
    "gpu.mem": ("dram_bytes_read", "dram_bytes_written"),
}

_FIELD_PREFIX = {
    name: prefix for prefix, names in _GPU_NAMESPACES.items() for name in names
}


@dataclass
class GPUStats(CounterAlgebra):
    """Counters for one rendered frame (or an accumulation of frames)."""

    frames: int = 0

    # -- geometry pipeline ---------------------------------------------------
    vertices_fetched: int = 0
    vertices_shaded: int = 0
    vertex_cache_accesses: int = 0
    vertex_cache_misses: int = 0
    triangles_assembled: int = 0
    triangles_clipped: int = 0          # produced by the clipper
    triangles_frustum_culled: int = 0
    triangles_face_culled: int = 0      # actually removed at FC
    triangles_tagged_to_be_culled: int = 0  # deferred FC (collisionable)
    triangles_degenerate: int = 0
    triangles_binned: int = 0           # survived geometry pipeline
    prim_tile_pairs: int = 0            # polygon-list entries written
    tile_cache_stores: int = 0
    tile_cache_store_misses: int = 0
    geometry_cycles: float = 0.0

    # -- raster pipeline ------------------------------------------------------
    tiles_processed: int = 0
    prims_rasterized: int = 0           # tile-fetcher reads (per tile visit)
    tile_cache_loads: int = 0
    tile_cache_load_misses: int = 0
    fragments_produced: int = 0
    fragments_tagged_culled: int = 0    # dropped after raster (deferred FC)
    early_z_tests: int = 0
    early_z_passes: int = 0
    fragments_shaded: int = 0
    texture_accesses: int = 0
    color_writes: int = 0
    raster_cycles: float = 0.0          # rasterizer busy cycles
    fragment_cycles: float = 0.0        # fragment-processor busy cycles
    fragment_idle_cycles: float = 0.0   # fragment processors starved
    raster_pipeline_cycles: float = 0.0  # wall-clock of the raster pipeline
    raster_stall_cycles: float = 0.0    # rasterizer blocked on ZEB

    # -- RBCD unit --------------------------------------------------------------
    rbcd_fragments_in: int = 0          # collisionable fragments received
    zeb_insertions: int = 0
    zeb_overflow_events: int = 0
    zeb_spare_allocations: int = 0
    zeb_lists_analyzed: int = 0         # non-empty lists scanned
    overlap_elements_read: int = 0
    ff_stack_overflows: int = 0         # FF-Stack pushes past capacity
    unmatched_backfaces: int = 0        # back faces with no open front
    collision_pairs_emitted: int = 0    # pair records written out
    rbcd_cycles: float = 0.0            # Z-overlap test busy cycles
    cpu_fallback_frames: int = 0        # frames punted to software CD

    # -- memory traffic ----------------------------------------------------------
    dram_bytes_read: float = 0.0
    dram_bytes_written: float = 0.0

    # -- whole GPU -----------------------------------------------------------------
    gpu_cycles: float = 0.0             # geometry + raster wall clock

    # Merge algebra (``+``, ``__radd__``, ``sum``, ``as_dict``) is
    # inherited from CounterAlgebra: every field is a plain sum.

    def registry(self) -> CounterRegistry:
        """Named counter view (``gpu.<stage>.<field>`` namespacing)."""
        out = CounterRegistry()
        for f in fields(self):
            prefix = _FIELD_PREFIX.get(f.name, "gpu")
            name = f"{prefix}.{f.name}"
            value = getattr(self, f.name)
            unit = "cycles" if "cycles" in f.name else (
                "bytes" if "bytes" in f.name else ""
            )
            kind = "float" if isinstance(value, float) else "int"
            out.counter(name, kind=kind, unit=unit)
            out.set(name, value)
        return out

    # -- derived ratios (used by the figures) -----------------------------------

    @property
    def zeb_overflow_rate(self) -> float:
        """Fraction of insertion attempts that found a full list (Table 3).

        ``zeb_insertions`` counts *attempts* (every collisionable
        fragment reaching the unit); ``zeb_overflow_events`` is the
        subset that found its pixel list already full.
        """
        if self.zeb_insertions == 0:
            return 0.0
        return self.zeb_overflow_events / self.zeb_insertions

    @property
    def ff_stack_overflow_rate(self) -> float:
        """FF-Stack overflow events per analyzed ZEB list."""
        if self.zeb_lists_analyzed == 0:
            return 0.0
        return self.ff_stack_overflows / self.zeb_lists_analyzed

    @property
    def early_z_pass_rate(self) -> float:
        if self.early_z_tests == 0:
            return 0.0
        return self.early_z_passes / self.early_z_tests

    @property
    def dram_bytes_total(self) -> float:
        return self.dram_bytes_read + self.dram_bytes_written

    def bandwidth_utilization(self, bytes_per_cycle: float) -> float:
        """Fraction of the memory interface's capacity this frame used.

        Above 1.0 the frame would be bandwidth-bound and the computed
        cycle counts optimistic; the Table-2 interface (4 B/cycle) has
        ample headroom for these workloads, which this property lets
        tests assert.
        """
        if self.gpu_cycles <= 0:
            return 0.0
        return self.dram_bytes_total / (self.gpu_cycles * bytes_per_cycle)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        d = self.as_dict()
        width = max(len(k) for k in d)
        lines = [f"{k:<{width}} : {v:,.0f}" if isinstance(v, int) else
                 f"{k:<{width}} : {v:,.1f}" for k, v in d.items() if v]
        return "\n".join(lines)


@dataclass
class TileStats(CounterAlgebra):
    """Per-tile activity used by the tile-pipeline timing model.

    Adding two tiles' stats aggregates their activity; ``tile_index``
    becomes the earlier one's (an accumulation is no longer one tile),
    declared as a ``min``-combined field in the shared merge algebra.
    """

    _MERGE_SPECIAL = {"tile_index": min}

    tile_index: int = 0
    prims: int = 0
    fragments: int = 0
    collisionable_fragments: int = 0
    shaded_fragments: int = 0
    shader_cycles: float = 0.0          # total fragment-shader cycles
    raster_cycles: float = 0.0
    overlap_cycles: float = 0.0
    tc_load_lines: int = 0
    tc_load_misses: int = 0

    def registry(self) -> CounterRegistry:
        """Named counter view (``tile.<field>``; ``tile_index`` skipped —
        an aggregated registry is not one tile)."""
        return registry_from_counters(self, "tile", skip=("tile_index",))
