"""Primitive assembly: clipping, viewport transform, face culling.

This stage turns each draw's clip-space vertices into a *screen-space
triangle soup* — flat numpy arrays carrying, per triangle, its pixel
coordinates, depths, object id, facing, and the paper's
``tagged-to-be-culled`` bit.

Face culling follows Section 3.3: for non-collisionable draws, culled
faces are removed here (conventional early FC); for collisionable draws
the cull is *deferred* — the face is kept, tagged, rasterized into the
RBCD unit, and filtered out before Early-Z.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.commands import CullMode
from repro.gpu.config import GPUConfig
from repro.gpu.shading import ShadedDraw
from repro.gpu.stats import GPUStats

# Minimum w kept by the clipper (guards the perspective divide).
_W_EPS = 1e-6
# Screen-space triangles smaller than this (in squared pixels of doubled
# area) are dropped as degenerate.
_DEGENERATE_AREA2 = 1e-12

# The six frustum planes in homogeneous coordinates: dot(plane, v) >= 0
# keeps the vertex.  v = (x, y, z, w).
_CLIP_PLANES = np.array(
    [
        [1.0, 0.0, 0.0, 1.0],   # x >= -w
        [-1.0, 0.0, 0.0, 1.0],  # x <= w
        [0.0, 1.0, 0.0, 1.0],   # y >= -w
        [0.0, -1.0, 0.0, 1.0],  # y <= w
        [0.0, 0.0, 1.0, 1.0],   # z >= -w
        [0.0, 0.0, -1.0, 1.0],  # z <= w
    ]
)


@dataclass
class TriangleSoup:
    """Screen-space triangles ready for binning and rasterization.

    All arrays share the leading triangle dimension ``T`` and preserve
    submission order (the order primitives enter the raster pipeline).
    """

    xy: np.ndarray        # (T, 3, 2) pixel coordinates (x right, y down)
    z: np.ndarray         # (T, 3) depth in [0, 1] (0 = near plane)
    object_id: np.ndarray  # (T,) int64; -1 for non-collisionable
    front: np.ndarray     # (T,) bool — front-facing (CCW before y-flip)
    tagged: np.ndarray    # (T,) bool — tagged-to-be-culled (deferred FC)
    draw_index: np.ndarray  # (T,) int64

    @property
    def count(self) -> int:
        return self.xy.shape[0]

    @staticmethod
    def empty() -> "TriangleSoup":
        return TriangleSoup(
            xy=np.empty((0, 3, 2)),
            z=np.empty((0, 3)),
            object_id=np.empty(0, dtype=np.int64),
            front=np.empty(0, dtype=bool),
            tagged=np.empty(0, dtype=bool),
            draw_index=np.empty(0, dtype=np.int64),
        )

    @staticmethod
    def concatenate(parts: list["TriangleSoup"]) -> "TriangleSoup":
        parts = [p for p in parts if p.count]
        if not parts:
            return TriangleSoup.empty()
        return TriangleSoup(
            xy=np.concatenate([p.xy for p in parts]),
            z=np.concatenate([p.z for p in parts]),
            object_id=np.concatenate([p.object_id for p in parts]),
            front=np.concatenate([p.front for p in parts]),
            tagged=np.concatenate([p.tagged for p in parts]),
            draw_index=np.concatenate([p.draw_index for p in parts]),
        )


def _clip_polygon_homogeneous(poly: np.ndarray) -> np.ndarray:
    """Sutherland-Hodgman clip of a homogeneous polygon to the frustum.

    ``poly`` is (N, 4); returns (M, 4) with M possibly 0.  Clipping in
    homogeneous space handles w <= 0 vertices correctly.
    """
    # First clip against w >= eps so the later divides are safe.
    out = []
    n = poly.shape[0]
    for i in range(n):
        cur, nxt = poly[i], poly[(i + 1) % n]
        cur_in = cur[3] >= _W_EPS
        nxt_in = nxt[3] >= _W_EPS
        if cur_in:
            out.append(cur)
        if cur_in != nxt_in:
            t = (_W_EPS - cur[3]) / (nxt[3] - cur[3])
            out.append(cur + t * (nxt - cur))
    poly = np.array(out)
    for plane in _CLIP_PLANES:
        if poly.shape[0] == 0:
            return poly
        dots = poly @ plane
        out = []
        n = poly.shape[0]
        for i in range(n):
            cur_d, nxt_d = dots[i], dots[(i + 1) % n]
            if cur_d >= 0:
                out.append(poly[i])
            if (cur_d >= 0) != (nxt_d >= 0):
                t = cur_d / (cur_d - nxt_d)
                out.append(poly[i] + t * (poly[(i + 1) % n] - poly[i]))
        poly = np.array(out) if out else np.empty((0, 4))
    return poly


def _to_screen(clip: np.ndarray, config: GPUConfig) -> np.ndarray:
    """Clip coords (N, 4) -> screen (N, 3): x, y in pixels, z in [0,1].

    y grows downward (raster convention); z = 0 at the near plane.
    """
    w = clip[:, 3]
    ndc = clip[:, :3] / w[:, None]
    out = np.empty((clip.shape[0], 3))
    out[:, 0] = (ndc[:, 0] + 1.0) * 0.5 * config.screen_width
    out[:, 1] = (1.0 - ndc[:, 1]) * 0.5 * config.screen_height
    out[:, 2] = (ndc[:, 2] + 1.0) * 0.5
    return out


def _facing_and_validity(xy: np.ndarray):
    """Per-triangle doubled signed area (screen space) and facing.

    In screen space (y down) a triangle that was CCW in NDC has
    *negative* doubled area, so front-facing == area2 < 0.
    """
    e1 = xy[:, 1] - xy[:, 0]
    e2 = xy[:, 2] - xy[:, 0]
    area2 = e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0]
    front = area2 < 0
    degenerate = np.abs(area2) <= _DEGENERATE_AREA2
    return area2, front, degenerate


def _cull_decision(front: np.ndarray, mode: CullMode):
    """Boolean mask of faces the FC stage would cull."""
    if mode is CullMode.NONE:
        return np.zeros(front.shape, dtype=bool)
    if mode is CullMode.BACK:
        return ~front
    if mode is CullMode.FRONT:
        return front
    return np.ones(front.shape, dtype=bool)  # FRONT_AND_BACK


def assemble(
    shaded_draws: list[ShadedDraw],
    config: GPUConfig,
    stats: GPUStats,
    deferred_culling: bool = True,
) -> TriangleSoup:
    """Primitive assembly for a whole frame.

    With ``deferred_culling=False`` the pipeline behaves like the
    baseline GPU: collisionable draws get conventional early face
    culling (used to measure the paper's overhead figures).
    """
    parts: list[TriangleSoup] = []
    for shaded in shaded_draws:
        draw = shaded.draw
        clip = shaded.clip_positions
        face_clip = clip[draw.mesh.faces]  # (F, 3, 4)
        stats.triangles_assembled += face_clip.shape[0]

        # Outcodes: plane x vertex "outside" tests, vectorized.
        dots = np.einsum("pk,fvk->fpv", _CLIP_PLANES, face_clip)
        outside = dots < 0.0
        any_plane_all_out = outside.all(axis=2).any(axis=1)
        needs_clip = outside.any(axis=(1, 2)) & ~any_plane_all_out
        w_bad = (face_clip[:, :, 3] < _W_EPS).any(axis=1)
        needs_clip |= w_bad & ~any_plane_all_out
        inside = ~needs_clip & ~any_plane_all_out

        stats.triangles_frustum_culled += int(any_plane_all_out.sum())

        tri_clip_list = []
        if inside.any():
            tri_clip_list.append(face_clip[inside])
        for f_idx in np.nonzero(needs_clip)[0]:
            poly = _clip_polygon_homogeneous(face_clip[f_idx])
            if poly.shape[0] < 3:
                stats.triangles_frustum_culled += 1
                continue
            fan = np.stack(
                [
                    np.broadcast_to(poly[0], (poly.shape[0] - 2, 4)),
                    poly[1:-1],
                    poly[2:],
                ],
                axis=1,
            )
            tri_clip_list.append(fan)
            stats.triangles_clipped += fan.shape[0]
        if not tri_clip_list:
            continue
        tri_clip = np.concatenate(tri_clip_list)

        screen = _to_screen(tri_clip.reshape(-1, 4), config).reshape(-1, 3, 3)
        xy = screen[:, :, :2]
        z = screen[:, :, 2]
        area2, front, degenerate = _facing_and_validity(xy)

        keep = ~degenerate
        stats.triangles_degenerate += int(degenerate.sum())
        xy, z, front = xy[keep], z[keep], front[keep]
        if xy.shape[0] == 0:
            continue

        to_cull = _cull_decision(front, draw.cull_mode)
        if draw.collisionable and deferred_culling:
            tagged = to_cull
            stats.triangles_tagged_to_be_culled += int(to_cull.sum())
            keep2 = np.ones(xy.shape[0], dtype=bool)
        else:
            tagged = np.zeros(xy.shape[0], dtype=bool)
            stats.triangles_face_culled += int(to_cull.sum())
            keep2 = ~to_cull

        xy, z, front, tagged = xy[keep2], z[keep2], front[keep2], tagged[keep2]
        if xy.shape[0] == 0:
            continue

        count = xy.shape[0]
        oid = draw.object_id if draw.object_id is not None else -1
        parts.append(
            TriangleSoup(
                xy=xy,
                z=z,
                object_id=np.full(count, oid, dtype=np.int64),
                front=front,
                tagged=tagged,
                draw_index=np.full(count, shaded.draw_index, dtype=np.int64),
            )
        )

    soup = TriangleSoup.concatenate(parts)
    stats.triangles_binned += soup.count
    return soup
