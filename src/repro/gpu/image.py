"""Minimal image output: binary PPM (P6) writer + ASCII preview.

Keeps the rendered framebuffers inspectable without any imaging
dependency: PPM opens in every viewer, and the ASCII preview drops
straight into a terminal.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

_ASCII_SHADES = " .:-=+*#%@"


def to_ppm_bytes(color: np.ndarray) -> bytes:
    """Encode an (H, W, 3) float [0,1] image as binary PPM."""
    img = np.asarray(color, dtype=np.float64)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {img.shape}")
    data = (np.clip(img, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    header = f"P6\n{img.shape[1]} {img.shape[0]}\n255\n".encode("ascii")
    return header + data.tobytes()


def save_ppm(color: np.ndarray, path) -> Path:
    """Write an (H, W, 3) float image to ``path`` as binary PPM."""
    path = Path(path)
    path.write_bytes(to_ppm_bytes(color))
    return path


def load_ppm(path) -> np.ndarray:
    """Read back a binary PPM written by :func:`save_ppm`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise ValueError("not a binary PPM (P6) file")
    parts = raw.split(b"\n", 3)
    width, height = map(int, parts[1].split())
    maxval = int(parts[2])
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=width * height * 3)
    return pixels.reshape(height, width, 3).astype(np.float64) / maxval


def ascii_preview(color: np.ndarray, width: int = 72, height: int = 24) -> str:
    """Luma-based ASCII thumbnail of an (H, W, 3) image."""
    img = np.asarray(color, dtype=np.float64)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {img.shape}")
    luma = img @ np.array([0.299, 0.587, 0.114])
    ys = np.linspace(0, luma.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, luma.shape[1] - 1, width).astype(int)
    small = np.clip(luma[np.ix_(ys, xs)], 0.0, 1.0)
    idx = (small * (len(_ASCII_SHADES) - 1) + 0.5).astype(int)
    return "\n".join("".join(_ASCII_SHADES[v] for v in row) for row in idx)
