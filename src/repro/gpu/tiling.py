"""Tiling engine: the Polygon List Builder.

Bins every assembled triangle to the 16x16-pixel tiles its screen
bounding box covers, writing one polygon-list record per
(primitive, tile) pair through the Tile Cache.  The Raster Pipeline's
Tile Fetcher later reads those records back — both directions are
simulated so the Figure 11 activity factors (tile-cache loads/stores and
their misses) come out of a real access stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.assembly import TriangleSoup
from repro.gpu.caches import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats


@dataclass
class TileBinning:
    """Per-tile primitive lists plus the flat (prim, tile) pair arrays."""

    # Sorted by (tile, submission order): index arrays into the soup.
    pair_tile: np.ndarray       # (P,) tile index of each pair
    pair_prim: np.ndarray       # (P,) triangle index of each pair
    tile_offsets: np.ndarray    # (tiles+1,) CSR offsets into the pair arrays
    record_addresses: np.ndarray  # (P,) synthetic byte address of each record

    def prims_of_tile(self, tile: int) -> np.ndarray:
        lo, hi = self.tile_offsets[tile], self.tile_offsets[tile + 1]
        return self.pair_prim[lo:hi]

    def pairs_of_tile(self, tile: int) -> slice:
        return slice(int(self.tile_offsets[tile]), int(self.tile_offsets[tile + 1]))

    @property
    def pair_count(self) -> int:
        return int(self.pair_prim.shape[0])


def bin_triangles(
    soup: TriangleSoup,
    config: GPUConfig,
    stats: GPUStats,
    tile_cache: Cache | None = None,
) -> TileBinning:
    """Bin a frame's triangle soup into per-tile polygon lists.

    Binning is bounding-box conservative (like real tilers): a triangle
    is listed in every tile its screen bbox touches, even if no covered
    pixel falls there; the rasterizer later pays setup for such empty
    visits, which is part of the deferred-culling overhead story.
    """
    ts = config.tile_size
    tiles_x, tiles_y = config.tiles_x, config.tiles_y

    if soup.count == 0:
        empty = np.empty(0, dtype=np.int64)
        offsets = np.zeros(config.tile_count + 1, dtype=np.int64)
        return TileBinning(empty, empty, offsets, empty)

    xs = soup.xy[:, :, 0]
    ys = soup.xy[:, :, 1]
    # Pixel-center sampling means a bbox touching a tile by less than
    # half a pixel can't produce fragments, but hardware bins by raw
    # bbox; we follow the hardware.
    tx0 = np.clip(np.floor(xs.min(axis=1) / ts), 0, tiles_x - 1).astype(np.int64)
    tx1 = np.clip(np.floor(xs.max(axis=1) / ts), 0, tiles_x - 1).astype(np.int64)
    ty0 = np.clip(np.floor(ys.min(axis=1) / ts), 0, tiles_y - 1).astype(np.int64)
    ty1 = np.clip(np.floor(ys.max(axis=1) / ts), 0, tiles_y - 1).astype(np.int64)

    spans_x = tx1 - tx0 + 1
    spans_y = ty1 - ty0 + 1
    counts = spans_x * spans_y
    total = int(counts.sum())

    pair_prim = np.repeat(np.arange(soup.count, dtype=np.int64), counts)
    # Enumerate each prim's covered tiles row-major within its tile bbox.
    local = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
    )
    sx = np.repeat(spans_x, counts)
    lx = local % sx
    ly = local // sx
    pair_tile = (np.repeat(ty0, counts) + ly) * tiles_x + np.repeat(tx0, counts) + lx

    # Polygon-list records are appended in submission order; the record
    # address stream is what the tile cache sees on the store side.
    record_bytes = config.tile_list_record_bytes
    record_addresses = np.arange(total, dtype=np.int64) * record_bytes

    if tile_cache is None:
        tile_cache = Cache(config.tile_cache)
    store_misses = tile_cache.access_many(record_addresses)

    stats.prim_tile_pairs += total
    stats.tile_cache_stores += total
    stats.tile_cache_store_misses += store_misses

    # CSR by tile, stable in submission order.
    order = np.argsort(pair_tile, kind="stable")
    pair_tile_sorted = pair_tile[order]
    pair_prim_sorted = pair_prim[order]
    record_sorted = record_addresses[order]
    tile_counts = np.bincount(pair_tile_sorted, minlength=config.tile_count)
    offsets = np.zeros(config.tile_count + 1, dtype=np.int64)
    np.cumsum(tile_counts, out=offsets[1:])

    return TileBinning(pair_tile_sorted, pair_prim_sorted, offsets, record_sorted)


def fetch_tile_lists(
    binning: TileBinning,
    config: GPUConfig,
    stats: GPUStats,
    tile_cache: Cache,
) -> np.ndarray:
    """Simulate the Tile Fetcher reading every tile's polygon list.

    Returns per-tile load-miss counts (tiles,) for the timing model.
    Tiles are visited in raster order (tile index order); each record
    read is one tile-cache load.
    """
    misses = np.zeros(config.tile_count, dtype=np.int64)
    for tile in range(config.tile_count):
        sl = binning.pairs_of_tile(tile)
        addresses = binning.record_addresses[sl]
        if addresses.size == 0:
            continue
        m = tile_cache.access_many(addresses)
        misses[tile] = m
        stats.tile_cache_loads += addresses.size
        stats.tile_cache_load_misses += m
        stats.prims_rasterized += addresses.size
    return misses
