"""Command-stream traces: record frames, store them, replay them.

The paper's methodology is trace-driven: Teapot intercepts the GL
command stream of a running game and replays it through the simulator
(Section 4.1).  This module provides the same workflow for this model:

* :func:`record_trace` — serialize a sequence of :class:`Frame` objects
  (meshes deduplicated by content) into a JSON document;
* :func:`save_trace` / :func:`load_trace` — persist to disk
  (JSON + base64-packed float arrays, no external dependencies);
* :func:`replay_trace` — rebuild the frames and render them through a
  GPU instance, collecting per-frame results.

Traces make workloads portable: a scene authored with the full
`repro.scenes` machinery can be captured once and re-simulated under
different GPU/RBCD configurations without the scene code.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4
from repro.gpu.commands import CullMode, DrawCommand, Frame
from repro.gpu.pipeline import GPU, FrameResult

TRACE_FORMAT_VERSION = 1


def _pack_array(array: np.ndarray, dtype) -> dict:
    arr = np.asarray(array, dtype=dtype)
    return {
        "dtype": np.dtype(dtype).str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _unpack_array(blob: dict) -> np.ndarray:
    raw = base64.b64decode(blob["data"])
    return np.frombuffer(raw, dtype=np.dtype(blob["dtype"])).reshape(blob["shape"]).copy()


def _mesh_key(mesh: TriangleMesh) -> bytes:
    """Content hash: identical geometry stores once even across objects."""
    import hashlib

    h = hashlib.sha256()
    h.update(mesh.vertices.tobytes())
    h.update(mesh.faces.tobytes())
    return h.digest()


def record_trace(frames: list[Frame]) -> dict:
    """Serialize frames to a JSON-compatible trace document.

    Meshes referenced by several draws (or several frames) are stored
    once and referenced by index, mirroring how a GL trace stores vertex
    buffers separately from draw calls.
    """
    meshes: list[TriangleMesh] = []
    mesh_index: dict[int, int] = {}
    frame_docs = []
    for frame in frames:
        draw_docs = []
        for draw in frame.draws:
            key = _mesh_key(draw.mesh)
            if key not in mesh_index:
                mesh_index[key] = len(meshes)
                meshes.append(draw.mesh)
            draw_docs.append(
                {
                    "mesh": mesh_index[key],
                    "model": draw.model.a.tolist(),
                    "object_id": draw.object_id,
                    "cull_mode": draw.cull_mode.value,
                    "color": list(draw.color),
                    "fragment_cycles": draw.fragment_cycles,
                }
            )
        frame_docs.append(
            {
                "draws": draw_docs,
                "view": frame.view.a.tolist(),
                "projection": frame.projection.a.tolist(),
                "raster_only": frame.raster_only,
            }
        )
    return {
        "format": "rbcd-trace",
        "version": TRACE_FORMAT_VERSION,
        "meshes": [
            {
                "vertices": _pack_array(mesh.vertices, np.float64),
                "faces": _pack_array(mesh.faces, np.int64),
            }
            for mesh in meshes
        ],
        "frames": frame_docs,
    }


def decode_trace(document: dict) -> list[Frame]:
    """Rebuild the frames of a trace document."""
    if document.get("format") != "rbcd-trace":
        raise ValueError("not an rbcd-trace document")
    if document.get("version") != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace version {document.get('version')!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    meshes = [
        TriangleMesh(_unpack_array(m["vertices"]), _unpack_array(m["faces"]))
        for m in document["meshes"]
    ]
    frames = []
    for frame_doc in document["frames"]:
        draws = tuple(
            DrawCommand(
                mesh=meshes[d["mesh"]],
                model=Mat4(np.array(d["model"])),
                object_id=d["object_id"],
                cull_mode=CullMode(d["cull_mode"]),
                color=tuple(d["color"]),
                fragment_cycles=d["fragment_cycles"],
            )
            for d in frame_doc["draws"]
        )
        frames.append(
            Frame(
                draws=draws,
                view=Mat4(np.array(frame_doc["view"])),
                projection=Mat4(np.array(frame_doc["projection"])),
                raster_only=frame_doc["raster_only"],
            )
        )
    return frames


def save_trace(frames: list[Frame], path) -> Path:
    """Record and write a trace file."""
    path = Path(path)
    path.write_text(json.dumps(record_trace(frames)))
    return path


def load_trace(path) -> list[Frame]:
    """Load a trace file back into frames."""
    return decode_trace(json.loads(Path(path).read_text()))


@dataclass
class ReplayResult:
    """Per-frame outcomes of a trace replay."""

    results: list[FrameResult]

    @property
    def frame_count(self) -> int:
        return len(self.results)

    @property
    def total_stats(self):
        return sum(r.stats for r in self.results)

    @property
    def pairs_per_frame(self) -> list[set]:
        return [
            {(p.id_a, p.id_b) for p in r.collisions.pairs}
            if r.collisions is not None
            else set()
            for r in self.results
        ]


def replay_trace(trace, gpu: GPU | None = None) -> ReplayResult:
    """Render every frame of a trace (document, path, or frame list)."""
    if isinstance(trace, (str, Path)):
        frames = load_trace(trace)
    elif isinstance(trace, dict):
        frames = decode_trace(trace)
    else:
        frames = list(trace)
    if gpu is None:
        gpu = GPU()
    return ReplayResult(results=[gpu.render_frame(frame) for frame in frames])
