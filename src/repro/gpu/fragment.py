"""Fragment-processor stage: shading cost model and color output.

The four fragment processors are "the most consuming part of the
graphics hardware pipeline" (Section 3.3); their cost model is simple
but load-bearing: every early-Z-passing fragment costs its draw's
``fragment_cycles`` (defaulting to the GPU config's
``cycles_per_fragment``), spread across ``num_fragment_processors``.

The color output is flat per-draw shading — enough to validate
visibility and to give the examples something to look at; it has no
effect on collision detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.commands import Frame
from repro.gpu.config import GPUConfig
from repro.gpu.earlyz import DepthTestResult
from repro.gpu.raster import FragmentSoup
from repro.gpu.stats import GPUStats

# Texture fetches per shaded fragment (one bilinear tap).
_TEXTURE_ACCESSES_PER_FRAGMENT = 1


def fragment_shader_cycles_per_draw(frame: Frame, config: GPUConfig) -> np.ndarray:
    """(D,) per-fragment shader cost for each draw of the frame."""
    return np.array(
        [
            d.fragment_cycles if d.fragment_cycles is not None else config.cycles_per_fragment
            for d in frame.draws
        ],
        dtype=np.float64,
    )


@dataclass
class ShadingResult:
    """Per-frame fragment-stage outputs."""

    color: np.ndarray            # (H, W, 3) float RGB, black where unwritten
    shaded_mask: np.ndarray      # (N,) fragments that were shaded
    shader_cycles_total: float   # summed single-processor cycles


def shade_fragments(
    frame: Frame,
    frags: FragmentSoup,
    depth: DepthTestResult,
    config: GPUConfig,
    stats: GPUStats,
    deferred_shading: bool = False,
) -> ShadingResult:
    """Shade the early-Z survivors and resolve the color buffer.

    ``deferred_shading=True`` models a PowerVR-style TBDR (Section 3.1):
    hidden-surface removal guarantees the fragment processors run only
    for the fragments that reach the final image — exactly one per
    covered pixel — instead of every early-Z pass.
    """
    height, width = config.screen_height, config.screen_width
    color = np.zeros((height, width, 3), dtype=np.float64)
    if frags.count == 0 or frame.raster_only:
        return ShadingResult(color, np.zeros(frags.count, dtype=bool), 0.0)

    if deferred_shading:
        shaded = np.zeros(frags.count, dtype=bool)
        winners = depth.winner[depth.winner >= 0]
        shaded[winners] = True
    else:
        shaded = depth.passed
    per_draw = fragment_shader_cycles_per_draw(frame, config)
    cycles = float(per_draw[frags.draw_index[shaded]].sum())

    stats.fragments_shaded += int(shaded.sum())
    stats.texture_accesses += int(shaded.sum()) * _TEXTURE_ACCESSES_PER_FRAGMENT
    stats.fragment_cycles += cycles / config.num_fragment_processors

    # Resolve visible colors from the per-pixel winners.
    win = depth.winner
    covered = win >= 0
    if covered.any():
        draw_of_winner = frags.draw_index[win[covered]]
        palette = np.array([d.color for d in frame.draws], dtype=np.float64)
        color[covered] = palette[draw_of_winner]
        stats.color_writes += int(covered.sum())

    return ShadingResult(color, shaded, cycles)
