"""Cross-frame tile redundancy elimination (the signature cache).

*Rendering Elimination: Early Discard of Redundant Tiles* (same group
as the source paper) observes that animated scenes keep large screen
regions bit-identical from frame to frame: if a tile's *inputs* are
unchanged, its outputs are too, so the tile's work can be skipped and
the previous frame's result replayed.  This module applies the idea to
the collision path of the simulated GPU.

Scope
-----
The cache covers exactly the work whose inputs the signature captures:
the RBCD unit's per-tile pipeline (ZEB sorted insertion + Z-Overlap
Test), which consumes only the tile's **collisionable** fragments.
Those fragments are a pure function of

* the ordered set of collisionable primitives binned to the tile —
  their transformed vertex bits (``xy``/``z``), object ids, facing and
  tagged-to-be-culled bits, in submission order — and
* the GPU/RBCD configuration fields that shape fragments and ZEB
  behaviour (tile geometry, screen clip bounds, the full RBCD config).

:func:`frame_tile_keys` serialises precisely that per tile into a
canonical byte string; :func:`tile_signature` hashes it (blake2b,
256 bit) into the on-chip signature register the hardware would keep
per tile.  On a signature match the cached
:class:`~repro.rbcd.unit.RBCDTileResult` is replayed instead of
recomputed, so every downstream consumer — the deterministic merge,
counters, pair records with evidence fields, per-tile energy, live
telemetry — sees bit-identical outputs versus cache-off.

Exactness
---------
A wrong hit is impossible by construction, not just improbable: on a
digest match the cache additionally compares the stored *full key
bytes* (the hardware analogue: signatures make the compare cheap, the
paranoid compare makes it sound).  A digest collision is therefore
counted (``gpu.tilecache.collisions``) and treated as a miss.  The
forced-collision harness in ``tests/gpu/test_tilecache_properties.py``
degrades the digest to a constant and proves results stay exact.

Energy/cycle model for hits
---------------------------
The functional simulator still rasterises and shades every tile (the
image must be produced either way); what a hit skips is the per-tile
RBCD compute, and what the *hardware* would save is modelled in a
separate ``gpu.tilecache.*`` counter namespace so the baseline
deterministic outputs stay untouched:

* ``cycles_saved`` / ``joules_saved`` — the replayed tile's insertion +
  overlap cycles and its dynamic RBCD energy
  (:meth:`~repro.energy.rbcd_power.RBCDEnergyModel.tile_breakdown`);
* ``signature_cycles`` / ``signature_j`` — the cost a signature scheme
  pays on *every* lookup and store: one cycle to compare (one to write),
  and per 32-bit signature word an SRAM read + equality compare
  (write: an SRAM write), priced from
  :class:`~repro.energy.components.ComponentEnergies`.

Net savings (``cycles_saved - signature_cycles``) feed the bench
document's ``tilecache.effective_gpu_cycles`` / ``effective_total_j``
metrics (schema v5), which the regression gate holds like any other
deterministic metric.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.energy.components import ComponentEnergies
from repro.energy.rbcd_power import RBCDEnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.tiling import TileBinning
from repro.observability.counters import CounterRegistry
from repro.rbcd.unit import RBCDTileResult

__all__ = [
    "SIGNATURE_BYTES",
    "config_token",
    "frame_tile_keys",
    "tile_signature",
    "TileResultCache",
]

# Signature width: 256 bits = eight 32-bit signature words on chip.
SIGNATURE_BYTES = 32
_SIGNATURE_WORDS = SIGNATURE_BYTES * 8 // 32

# Serialization version: bump to invalidate every stored signature when
# the key layout changes.
_KEY_VERSION = b"rbcd-tilesig-v1"


@lru_cache(maxsize=None)
def config_token(config: GPUConfig) -> bytes:
    """Canonical bytes of every config field that shapes a tile's
    collisionable fragment stream or its RBCD processing.

    The kernel backend and the executor fields are deliberately
    excluded: all kernel backends are bit-identical (enforced by the
    conformance suite) and the executor only reorders host work, so
    including them would cost hits without buying exactness.  The
    fragment-shading fields (``cycles_per_fragment`` etc.) are excluded
    too — they never reach the RBCD unit.
    """
    r = config.rbcd
    return repr((
        _KEY_VERSION,
        config.tile_size,
        config.screen_width,
        config.screen_height,
        r.zeb_count,
        r.list_length,
        r.element_bits,
        r.z_bits,
        r.id_bits,
        r.ff_stack_entries,
        r.spare_entries_per_tile,
        r.cpu_fallback_overflow_rate,
    )).encode("ascii")


def _tile_key(
    soup, prim_idx: np.ndarray, tile_index: int, token: bytes
) -> bytes:
    """Canonical key of one tile's ordered collisionable primitive set.

    Every segment has a length determined by ``len(prim_idx)`` (written
    first), so the encoding is injective: two different primitive sets
    can never serialise to the same bytes.
    """
    return b"".join((
        token,
        int(tile_index).to_bytes(8, "little"),
        int(prim_idx.shape[0]).to_bytes(8, "little"),
        np.ascontiguousarray(soup.xy[prim_idx]).tobytes(),
        np.ascontiguousarray(soup.z[prim_idx]).tobytes(),
        np.ascontiguousarray(soup.object_id[prim_idx]).tobytes(),
        np.ascontiguousarray(soup.front[prim_idx]).tobytes(),
        np.ascontiguousarray(soup.tagged[prim_idx]).tobytes(),
    ))


def tile_signature(key: bytes) -> bytes:
    """The on-chip signature of one canonical tile key."""
    return hashlib.blake2b(key, digest_size=SIGNATURE_BYTES).digest()


def frame_tile_keys(
    soup, binning: TileBinning, config: GPUConfig
) -> dict[int, bytes]:
    """Canonical keys for every tile with at least one collisionable
    primitive binned to it.

    Tiles without collisionable primitives produce no RBCD work and
    therefore need no key.  Primitive order within a tile is submission
    order (what :func:`~repro.gpu.tiling.bin_triangles` stores), which
    is also the order the tile's fragments reach the RBCD unit — the
    property that makes the key determine the tile result exactly.
    """
    token = config_token(config)
    if binning.pair_count == 0:
        return {}
    coll = soup.object_id[binning.pair_prim] >= 0
    tiles = binning.pair_tile[coll]
    prims = binning.pair_prim[coll]
    if tiles.shape[0] == 0:
        return {}
    boundaries = np.flatnonzero(np.r_[True, tiles[1:] != tiles[:-1]])
    boundaries = np.r_[boundaries, tiles.shape[0]]
    keys: dict[int, bytes] = {}
    for b in range(boundaries.shape[0] - 1):
        lo, hi = boundaries[b], boundaries[b + 1]
        tile = int(tiles[lo])
        keys[tile] = _tile_key(soup, prims[lo:hi], tile, token)
    return keys


@dataclass
class _Entry:
    """One cached tile: signature, full key (paranoia), and result."""

    digest: bytes
    key: bytes
    result: RBCDTileResult


class TileResultCache:
    """Per-tile previous-result cache keyed by canonical signatures.

    One entry per tile index, overwritten on every miss and kept
    forever otherwise — a tile whose collisionable content reappears
    unchanged after any number of frames still hits, because the key
    alone determines the result.

    All tallies are **per frame** (reset by :meth:`begin_frame`) so the
    pipeline can attach one registry snapshot per
    :class:`~repro.gpu.pipeline.FrameResult`; lifetime totals are kept
    alongside for quick inspection.
    """

    def __init__(
        self,
        gpu_config: GPUConfig,
        rbcd_model: RBCDEnergyModel | None = None,
        components: ComponentEnergies | None = None,
    ) -> None:
        self.gpu_config = gpu_config
        # Savings are priced from the *dynamic* tile breakdown, which
        # is independent of the static-power wiring — a default model
        # is exactly equivalent to the pipeline's own.
        self.rbcd_model = (
            rbcd_model if rbcd_model is not None
            else RBCDEnergyModel(gpu_config, components=components)
        )
        c = self.rbcd_model.components
        # One wide compare per lookup, one wide write per store.
        self.signature_compare_cycles = 1.0
        self.signature_store_cycles = 1.0
        self.signature_compare_j = _SIGNATURE_WORDS * (
            c.sram_word_read_j + c.eq_comparator_j
        )
        self.signature_store_j = _SIGNATURE_WORDS * c.sram_word_write_j
        self._entries: dict[int, _Entry] = {}
        self.total_lookups = 0
        self.total_hits = 0
        self.total_collisions = 0
        self._zero_frame()

    def _zero_frame(self) -> None:
        self.frame_lookups = 0
        self.frame_hits = 0
        self.frame_misses = 0
        self.frame_collisions = 0
        self.frame_stores = 0
        self.frame_cycles_saved = 0.0
        self.frame_joules_saved = 0.0
        self.frame_signature_cycles = 0.0
        self.frame_signature_j = 0.0
        self.frame_hit_tiles: list[int] = []
        self.frame_miss_tiles: list[int] = []

    # -- lifecycle --------------------------------------------------------

    def reset(self) -> None:
        """Drop every entry and tally (cold cache, fresh counters)."""
        self._entries.clear()
        self.total_lookups = 0
        self.total_hits = 0
        self.total_collisions = 0
        self._zero_frame()

    def begin_frame(self) -> None:
        """Start a new frame: per-frame tallies to zero, entries kept."""
        self._zero_frame()

    @property
    def entries(self) -> int:
        return len(self._entries)

    # -- the cache protocol ----------------------------------------------

    def lookup(self, tile_index: int, key: bytes) -> RBCDTileResult | None:
        """Return the cached result when the tile's signature matches.

        A digest match with differing key bytes is a hash collision:
        counted, and handled as a miss — the replayed-result contract
        is exactness, never probability.
        """
        self.frame_lookups += 1
        self.total_lookups += 1
        self.frame_signature_cycles += self.signature_compare_cycles
        self.frame_signature_j += self.signature_compare_j
        entry = self._entries.get(tile_index)
        digest = tile_signature(key)
        if entry is not None and entry.digest == digest:
            if entry.key != key:
                self.frame_collisions += 1
                self.total_collisions += 1
            else:
                result = entry.result
                self.frame_hits += 1
                self.total_hits += 1
                self.frame_hit_tiles.append(tile_index)
                self.frame_cycles_saved += (
                    result.insertion_cycles + result.overlap_cycles
                )
                self.frame_joules_saved += self.rbcd_model.tile_breakdown(
                    result
                ).total_j
                return result
        self.frame_misses += 1
        self.frame_miss_tiles.append(tile_index)
        return None

    def store(self, tile_index: int, key: bytes, result: RBCDTileResult) -> None:
        """Install a freshly computed tile result under its signature."""
        self._entries[tile_index] = _Entry(tile_signature(key), key, result)
        self.frame_stores += 1
        self.frame_signature_cycles += self.signature_store_cycles
        self.frame_signature_j += self.signature_store_j

    # -- observability ----------------------------------------------------

    @property
    def frame_hit_rate(self) -> float:
        if self.frame_lookups == 0:
            return 0.0
        return self.frame_hits / self.frame_lookups

    def frame_registry(self) -> CounterRegistry:
        """Named-counter snapshot of this frame's cache activity.

        The namespace is additive-only: nothing here touches the
        ``gpu.*`` stats counters, so every pre-existing deterministic
        output is bit-identical with the cache on or off.
        """
        registry = CounterRegistry()
        for name, value in (
            ("gpu.tilecache.lookups", self.frame_lookups),
            ("gpu.tilecache.hits", self.frame_hits),
            ("gpu.tilecache.misses", self.frame_misses),
            ("gpu.tilecache.collisions", self.frame_collisions),
            ("gpu.tilecache.stores", self.frame_stores),
        ):
            registry.counter(name, kind="int")
            registry.set(name, value)
        for name, unit, value in (
            ("gpu.tilecache.cycles_saved", "cycles", self.frame_cycles_saved),
            ("gpu.tilecache.signature_cycles", "cycles",
             self.frame_signature_cycles),
            ("gpu.tilecache.joules_saved", "J", self.frame_joules_saved),
            ("gpu.tilecache.signature_j", "J", self.frame_signature_j),
        ):
            registry.counter(name, kind="float", unit=unit)
            registry.set(name, value)
        return registry
