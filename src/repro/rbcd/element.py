"""ZEB element packing.

Table 2 gives 32 bits per ZEB element; each element carries the
fragment's z-depth, its object id, and the front/back orientation tag
(Section 3.4).  The paper does not give the field split; we use
18-bit z + 13-bit id + 1 face bit and verify in tests that the split is
wide enough for WVGA workloads (id space 8192, z granularity ~4e-6 of
the depth range).

Depth is quantized *before* insertion, so the sorted order and the
overlap analysis operate on exactly the values the hardware would hold.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.config import RBCDConfig


def quantize_depth(z, config: RBCDConfig):
    """Map depth(s) in [0, 1] to the ZEB's fixed-point grid.

    Accepts scalars or arrays; returns integer codes in
    ``[0, 2**z_bits - 1]``.  Values outside [0, 1] are clamped — the
    rasterizer already clips, so this only guards float noise.
    """
    levels = (1 << config.z_bits) - 1
    codes = np.rint(np.clip(z, 0.0, 1.0) * levels)
    return codes.astype(np.int64)


def dequantize_depth(codes, config: RBCDConfig):
    """Inverse of :func:`quantize_depth` (centre of the code's cell)."""
    levels = (1 << config.z_bits) - 1
    return np.asarray(codes, dtype=np.float64) / levels


def pack_element(z_code: int, object_id: int, is_front: bool, config: RBCDConfig) -> int:
    """Pack one element into its ``element_bits``-wide word.

    Layout (MSB to LSB): z | id | face.  Placing z in the high bits
    means packed words sort in the same order as depths, mirroring how
    the comparator array only examines the z field.
    """
    if not 0 <= z_code < (1 << config.z_bits):
        raise ValueError(f"z code {z_code} out of {config.z_bits}-bit range")
    if not 0 <= object_id < (1 << config.id_bits):
        raise ValueError(f"object id {object_id} out of {config.id_bits}-bit range")
    return (z_code << (config.id_bits + 1)) | (object_id << 1) | int(is_front)


def unpack_element(word: int, config: RBCDConfig) -> tuple[int, int, bool]:
    """Unpack a word into ``(z_code, object_id, is_front)``."""
    if not 0 <= word < (1 << config.element_bits):
        raise ValueError(f"word {word} out of {config.element_bits}-bit range")
    is_front = bool(word & 1)
    object_id = (word >> 1) & ((1 << config.id_bits) - 1)
    z_code = word >> (config.id_bits + 1)
    return z_code, object_id, is_front


def max_object_id(config: RBCDConfig) -> int:
    """Largest representable collisionable object id."""
    return (1 << config.id_bits) - 1
