"""World-space contact manifolds from RBCD's screen-space records.

The RBCD unit reports colliding pairs with their *coordinates*
(Section 3.5): pixel position plus the overlapping depth interval.
Those live in screen space; collision *response* needs world space.
This module unprojects the records through the frame's inverse
view-projection and condenses them into a contact manifold the physics
solver can consume — centroid, approximate penetration depth, and a
contact normal estimated from the contact patch.

The unprojection is exact (the same matrices the vertex stage applied);
the manifold is an estimate, as any image-based contact is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Mat4
from repro.rbcd.pairs import ContactPoint


def unproject_contacts(
    contacts: list[ContactPoint],
    view_projection: Mat4,
    screen_width: int,
    screen_height: int,
) -> np.ndarray:
    """World-space positions of contact records, (N, 2, 3).

    Each record yields two points: the front and back ends of the
    overlapping depth interval at that pixel (``[..., 0, :]`` front,
    ``[..., 1, :]`` back).
    """
    if not contacts:
        return np.empty((0, 2, 3))
    inverse = view_projection.inverse()
    n = len(contacts)
    ndc = np.empty((2 * n, 4))
    for i, c in enumerate(contacts):
        x_ndc = 2.0 * (c.x + 0.5) / screen_width - 1.0
        y_ndc = 1.0 - 2.0 * (c.y + 0.5) / screen_height
        ndc[2 * i] = (x_ndc, y_ndc, 2.0 * c.z_front - 1.0, 1.0)
        ndc[2 * i + 1] = (x_ndc, y_ndc, 2.0 * c.z_back - 1.0, 1.0)
    world = ndc @ inverse.a.T
    w = world[:, 3:4]
    if np.any(np.abs(w) < 1e-12):
        raise ValueError("unprojection hit w ~= 0 (contact at infinity?)")
    return (world[:, :3] / w).reshape(n, 2, 3)


@dataclass(frozen=True)
class ContactManifold:
    """Condensed world-space contact between two objects."""

    id_a: int
    id_b: int
    centroid: np.ndarray        # (3,) mean of all contact points
    normal: np.ndarray          # (3,) unit estimate (patch plane normal)
    penetration: float          # mean front-to-back interval length
    point_count: int            # contact records condensed
    points: np.ndarray          # (N, 3) interval midpoints

    def is_degenerate(self) -> bool:
        return self.point_count == 0


def build_manifold(
    id_a: int,
    id_b: int,
    contacts: list[ContactPoint],
    view_projection: Mat4,
    screen_width: int,
    screen_height: int,
) -> ContactManifold:
    """Condense a pair's contact records into one manifold.

    The normal is the smallest-variance axis of the contact patch (the
    patch is a sliver of the interpenetration volume, so its plane's
    normal approximates the separating direction).  With fewer than
    three distinct points the normal falls back to the view direction
    implied by the interval (front -> back).
    """
    ends = unproject_contacts(
        contacts, view_projection, screen_width, screen_height
    )
    if ends.shape[0] == 0:
        return ContactManifold(
            id_a=id_a, id_b=id_b,
            centroid=np.zeros(3), normal=np.array([0.0, 0.0, 1.0]),
            penetration=0.0, point_count=0, points=np.empty((0, 3)),
        )
    midpoints = ends.mean(axis=1)           # (N, 3)
    centroid = midpoints.mean(axis=0)
    depths = np.linalg.norm(ends[:, 1] - ends[:, 0], axis=1)
    penetration = float(depths.mean())

    spread = midpoints - centroid
    if midpoints.shape[0] >= 3 and np.linalg.matrix_rank(spread) >= 2:
        # Patch plane: normal = least-variance principal axis.
        _, _, vt = np.linalg.svd(spread, full_matrices=False)
        normal = vt[-1]
    else:
        direction = (ends[:, 1] - ends[:, 0]).mean(axis=0)
        norm = np.linalg.norm(direction)
        normal = direction / norm if norm > 1e-12 else np.array([0.0, 0.0, 1.0])
    norm = np.linalg.norm(normal)
    normal = normal / norm if norm > 1e-12 else np.array([0.0, 0.0, 1.0])

    return ContactManifold(
        id_a=id_a, id_b=id_b,
        centroid=centroid, normal=normal,
        penetration=penetration,
        point_count=len(contacts),
        points=midpoints,
    )
