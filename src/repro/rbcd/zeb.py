"""Z-depth Extended Buffer (ZEB) with hardware sorted insertion.

Section 3.4: the ZEB holds, per pixel of the current tile, a list of up
to M elements kept front-to-back ordered by a comparator-array
insertion.  When an insertion finds a full list, the element that would
fall off the far end is dropped (the new element, if it is the
farthest) — so after any arrival sequence the list holds the M
*nearest* fragments seen, which is what the vectorized builder exploits.

Two implementations are provided:

* :func:`insert_sequential` — the literal 3-step hardware algorithm
  (read list, parallel compare + mux shift, write back), one fragment at
  a time.  Used as the executable specification in tests.
* :func:`build_zeb_tile` — a numpy builder that produces bit-identical
  final lists for a whole tile at once, plus the overflow statistics.

The Section 5.3 extension (a pool of spare entries dynamically
lengthening overflowing lists) is supported by both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.config import RBCDConfig
from repro.rbcd.element import quantize_depth


@dataclass
class ZEBTile:
    """Final ZEB contents for one tile (only non-empty lists stored).

    ``lists_*`` arrays are (P, L) where P is the number of non-empty
    pixel lists and L is the longest list (M, or more when spare
    entries were granted).  Entries at positions >= ``counts[p]`` are
    padding.  Lists are sorted front-to-back (ascending z code), ties
    in arrival order.
    """

    pixel_index: np.ndarray   # (P,) local pixel index within the tile
    counts: np.ndarray        # (P,) valid elements per list
    z_codes: np.ndarray       # (P, L) quantized depths
    object_ids: np.ndarray    # (P, L)
    is_front: np.ndarray      # (P, L) bool
    insertions: int = 0       # insertion attempts (fragments received)
    overflow_events: int = 0  # attempts that found a full list (no spare)
    spare_allocations: int = 0

    @property
    def non_empty_lists(self) -> int:
        return int(self.pixel_index.shape[0])

    @property
    def elements(self) -> int:
        return int(self.counts.sum())

    @staticmethod
    def empty() -> "ZEBTile":
        z = np.empty(0, dtype=np.int64)
        return ZEBTile(
            pixel_index=z,
            counts=z.copy(),
            z_codes=np.empty((0, 0), dtype=np.int64),
            object_ids=np.empty((0, 0), dtype=np.int64),
            is_front=np.empty((0, 0), dtype=bool),
        )


# ---------------------------------------------------------------------------
# Reference (hardware-literal) path
# ---------------------------------------------------------------------------


@dataclass
class _PixelList:
    """One pixel's sorted list, as the hardware holds it."""

    z: list[int] = field(default_factory=list)
    oid: list[int] = field(default_factory=list)
    front: list[bool] = field(default_factory=list)
    capacity: int = 0


def insert_sequential(
    fragments: list[tuple[int, int, int, bool]],
    config: RBCDConfig,
    tile_pixels: int,
) -> ZEBTile:
    """Insert fragments one at a time, exactly as the hardware would.

    ``fragments`` is a list of ``(pixel_index, z_code, object_id,
    is_front)`` in arrival order.  Returns the final tile contents and
    statistics.  This is the executable specification; use
    :func:`build_zeb_tile` for speed.
    """
    m = config.list_length
    spare_pool = config.spare_entries_per_tile
    lists: dict[int, _PixelList] = {}
    insertions = 0
    overflow_events = 0
    spare_allocations = 0

    for pixel, z_code, oid, front in fragments:
        if not 0 <= pixel < tile_pixels:
            raise ValueError(f"pixel index {pixel} outside tile of {tile_pixels}")
        insertions += 1  # every fragment triggers the read/compare step
        lst = lists.setdefault(pixel, _PixelList(capacity=m))
        if len(lst.z) >= lst.capacity:
            if spare_pool > 0:
                spare_pool -= 1
                spare_allocations += 1
                lst.capacity += 1
            else:
                overflow_events += 1
                if lst.z and z_code >= lst.z[-1]:
                    continue  # new element is the farthest: dropped
                # otherwise the current farthest element falls off below
        # Parallel less-than compare: position = first i with z < z[i];
        # equal depths keep arrival order (strict compare).
        pos = len(lst.z)
        for i, existing in enumerate(lst.z):
            if z_code < existing:
                pos = i
                break
        lst.z.insert(pos, z_code)
        lst.oid.insert(pos, oid)
        lst.front.insert(pos, front)
        if len(lst.z) > lst.capacity:
            lst.z.pop()
            lst.oid.pop()
            lst.front.pop()

    non_empty = sorted(p for p, lst in lists.items() if lst.z)
    if not non_empty:
        tile = ZEBTile.empty()
        tile.overflow_events = overflow_events
        tile.spare_allocations = spare_allocations
        return tile
    max_len = max(len(lists[p].z) for p in non_empty)
    count_p = len(non_empty)
    z = np.zeros((count_p, max_len), dtype=np.int64)
    oid_arr = np.full((count_p, max_len), -1, dtype=np.int64)
    front_arr = np.zeros((count_p, max_len), dtype=bool)
    counts = np.zeros(count_p, dtype=np.int64)
    for row, pixel in enumerate(non_empty):
        lst = lists[pixel]
        n = len(lst.z)
        counts[row] = n
        z[row, :n] = lst.z
        oid_arr[row, :n] = lst.oid
        front_arr[row, :n] = lst.front
    return ZEBTile(
        pixel_index=np.array(non_empty, dtype=np.int64),
        counts=counts,
        z_codes=z,
        object_ids=oid_arr,
        is_front=front_arr,
        insertions=insertions,
        overflow_events=overflow_events,
        spare_allocations=spare_allocations,
    )


# ---------------------------------------------------------------------------
# Vectorized path
# ---------------------------------------------------------------------------


def build_zeb_tile(
    pixel: np.ndarray,
    z: np.ndarray,
    object_id: np.ndarray,
    is_front: np.ndarray,
    config: RBCDConfig,
    depths_are_codes: bool = False,
) -> ZEBTile:
    """Build one tile's final ZEB contents from its fragment arrays.

    Inputs are parallel arrays in *arrival order*: local pixel index,
    depth (raw in [0,1], or already-quantized codes when
    ``depths_are_codes``), object id, and front/back flag.

    Equivalent to :func:`insert_sequential` because sorted insertion
    with drop-farthest is a streaming "keep the M nearest" filter; the
    spare-pool extension grants capacity to the earliest overflow
    arrivals, which is reproduced here by ranking arrivals.
    """
    pixel = np.asarray(pixel, dtype=np.int64)
    n = pixel.shape[0]
    if n == 0:
        return ZEBTile.empty()
    z_codes = np.asarray(z, dtype=np.int64) if depths_are_codes else quantize_depth(z, config)
    object_id = np.asarray(object_id, dtype=np.int64)
    is_front = np.asarray(is_front, dtype=bool)

    m = config.list_length
    arrival = np.arange(n, dtype=np.int64)

    # Arrival rank within each pixel (0-based): how many earlier
    # fragments hit the same pixel.
    order_by_pixel = np.lexsort((arrival, pixel))
    sorted_pixel = pixel[order_by_pixel]
    starts = np.flatnonzero(np.r_[True, sorted_pixel[1:] != sorted_pixel[:-1]])
    seg_id = np.cumsum(np.r_[True, sorted_pixel[1:] != sorted_pixel[:-1]]) - 1
    rank_sorted = np.arange(n) - starts[seg_id]
    rank = np.empty(n, dtype=np.int64)
    rank[order_by_pixel] = rank_sorted

    # Spare-pool allocation: every arrival with rank >= M finds a full
    # list; the first `spare_entries_per_tile` of them (in arrival
    # order) get a spare, growing their pixel's capacity by one each.
    overflow_attempts = rank >= m
    total_overflow = int(overflow_attempts.sum())
    spares = min(config.spare_entries_per_tile, total_overflow)
    capacity = np.full(n, m, dtype=np.int64)  # per-fragment view of pixel cap
    spare_allocations = 0
    if spares > 0:
        spared_idx = np.flatnonzero(overflow_attempts)[:spares]
        spare_allocations = int(spared_idx.shape[0])
        extra = np.bincount(pixel[spared_idx], minlength=int(pixel.max()) + 1)
        capacity = m + extra[pixel]
    overflow_events = total_overflow - spare_allocations

    # Keep, per pixel, the nearest `capacity` fragments (ties by arrival).
    order = np.lexsort((arrival, z_codes, pixel))
    sp = pixel[order]
    starts2 = np.flatnonzero(np.r_[True, sp[1:] != sp[:-1]])
    seg2 = np.cumsum(np.r_[True, sp[1:] != sp[:-1]]) - 1
    pos_in_list = np.arange(n) - starts2[seg2]
    keep = pos_in_list < capacity[order]

    kept = order[keep]
    kp = pixel[kept]
    # kept is already sorted by (pixel, z, arrival): ready to pack.
    uniq_pixels, counts = np.unique(kp, return_counts=True)
    max_len = int(counts.max())
    rows = np.searchsorted(uniq_pixels, kp)
    row_starts = np.r_[0, np.cumsum(counts)[:-1]]
    cols = np.arange(kept.shape[0]) - row_starts[rows]

    num_rows = uniq_pixels.shape[0]
    z_out = np.zeros((num_rows, max_len), dtype=np.int64)
    id_out = np.full((num_rows, max_len), -1, dtype=np.int64)
    front_out = np.zeros((num_rows, max_len), dtype=bool)
    z_out[rows, cols] = z_codes[kept]
    id_out[rows, cols] = object_id[kept]
    front_out[rows, cols] = is_front[kept]

    return ZEBTile(
        pixel_index=uniq_pixels,
        counts=counts.astype(np.int64),
        z_codes=z_out,
        object_ids=id_out,
        is_front=front_out,
        insertions=n,
        overflow_events=overflow_events,
        spare_allocations=spare_allocations,
    )


def overflow_events_by_pixel(
    pixel: np.ndarray, config: RBCDConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel ZEB overflow events for one tile's arrival stream.

    Mirrors :func:`build_zeb_tile`'s accounting — the k-th arrival at a
    pixel overflows when ``k >= M`` and no spare entry is left (spares
    go to the earliest overflow arrivals in arrival order) — but keeps
    the *location* instead of summing.  Returns ``(pixels, events)``
    arrays covering only pixels with at least one overflow event; used
    by the forensics engine to test whether a divergence's witness
    pixel ever dropped an element.
    """
    pixel = np.asarray(pixel, dtype=np.int64)
    n = pixel.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return empty, empty.copy()

    arrival = np.arange(n, dtype=np.int64)
    order_by_pixel = np.lexsort((arrival, pixel))
    sorted_pixel = pixel[order_by_pixel]
    new_seg = np.r_[True, sorted_pixel[1:] != sorted_pixel[:-1]]
    starts = np.flatnonzero(new_seg)
    seg_id = np.cumsum(new_seg) - 1
    rank_sorted = np.arange(n) - starts[seg_id]
    rank = np.empty(n, dtype=np.int64)
    rank[order_by_pixel] = rank_sorted

    overflow_attempts = rank >= config.list_length
    spares = min(config.spare_entries_per_tile, int(overflow_attempts.sum()))
    if spares > 0:
        overflow_attempts[np.flatnonzero(overflow_attempts)[:spares]] = False
    if not overflow_attempts.any():
        return empty, empty.copy()
    events = np.bincount(pixel[overflow_attempts])
    pixels = np.flatnonzero(events)
    return pixels.astype(np.int64), events[pixels].astype(np.int64)
