"""Z-Overlap Test: FF-Stack traversal of sorted per-pixel lists.

Implements Section 3.5 / Figures 5-6 exactly:

* Each list is traversed front to back.
* A *front* face pushes its object id onto the FF-Stack with a cleared
  matched bit.
* A *back* face searches the stack for the **bottommost** entry with a
  matching id and a cleared matched bit (``Idm``).  Every entry strictly
  above ``Idm`` — matched or not — lies inside the interval
  ``(Idm, Ecur)``, so a pair ``<Idi, Idcur>`` is reported for each; then
  ``Idm``'s matched bit is set (entries are tagged, never popped, which
  lets later back-faces still see them).

Model decisions the paper leaves open (documented here and exercised by
tests):

* Pairs with ``Idi == Idcur`` (nested layers of one concave object) are
  filtered — the unit reports collisions *between different objects*.
* A back face with no unmatched matching front face (its front was
  clipped or lost to ZEB overflow) reports nothing.
* A push onto a full FF-Stack is dropped and counted.

Three implementations: :func:`analyze_pixel_list` is the hardware-
literal reference for a single list; :func:`traverse_lists_sequential`
runs the same algorithm over all of a tile's lists in lock-step (the
reference ``zoverlap_traverse`` kernel, defining the canonical pair
emission order); :func:`analyze_tile` is a numpy version of the same
lock-step traversal, verified bit-identical by the conformance suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.config import RBCDConfig
from repro.rbcd.zeb import ZEBTile

# Figure-5 interference case ids, collapsed to what is observable at a
# single pair emission.  The six pictured configurations of two depth
# intervals A and B reduce to three outcomes per emitted (or absent)
# pair:
#
# * cases 1/6 (disjoint intervals) never emit — they are visible only
#   as a back-face *closure* that reports no pair (``disjoint_closures``
#   also counts the inner closure of a nested configuration, which
#   likewise emits nothing);
# * cases 2/5 (partially crossing intervals) emit at the close of the
#   interval that opened *first*, so the partner's front entry is still
#   unmatched on the FF-Stack;
# * cases 3/4 (one interval nested in the other) emit at the close of
#   the *outer* interval, after the inner one already closed, so the
#   partner's entry carries a set matched bit.
CASE_DISJOINT = 1
CASE_CROSSING = 2
CASE_NESTED = 3
CASE_NAMES = {
    CASE_DISJOINT: "disjoint",
    CASE_CROSSING: "crossing",
    CASE_NESTED: "nested",
}


@dataclass
class OverlapResult:
    """Pairs and activity from analyzing one pixel list or one tile.

    Pair arrays are parallel: ``pair_row[k]`` is the index of the list
    (within the analyzed tile) that produced pair k.  ``pair_case`` and
    ``pair_stack_depth`` are evidence for provenance recording; they are
    always computed (cheaply) so that enabling a recorder can never
    change detection behaviour.
    """

    pair_row: np.ndarray      # (K,) row index into the analyzed lists
    pair_id_a: np.ndarray     # (K,) the stacked front-face object (Idi)
    pair_id_b: np.ndarray     # (K,) the current back-face object (Idcur)
    pair_z_front: np.ndarray  # (K,) z code where Idi's surface starts
    pair_z_back: np.ndarray   # (K,) z code of Ecur
    pair_case: np.ndarray     # (K,) Figure-5 case id (CASE_*)
    pair_stack_depth: np.ndarray  # (K,) FF-Stack occupancy at emission
    elements_read: int = 0
    pair_records: int = 0     # output-buffer writes (== K)
    stack_overflows: int = 0  # dropped pushes (FF-Stack full)
    unmatched_backfaces: int = 0
    disjoint_closures: int = 0     # matched closures that emitted no pair
    self_pairs_filtered: int = 0   # Idi == Idcur emissions suppressed

    @staticmethod
    def empty() -> "OverlapResult":
        z = np.empty(0, dtype=np.int64)
        return OverlapResult(
            z, z.copy(), z.copy(), z.copy(), z.copy(), z.copy(), z.copy()
        )


def analyze_pixel_list(
    z_codes,
    object_ids,
    is_front,
    config: RBCDConfig,
) -> OverlapResult:
    """Reference implementation for a single pixel's sorted list."""
    stack_id: list[int] = []
    stack_z: list[int] = []
    stack_matched: list[bool] = []
    t_max = config.ff_stack_entries

    rows, id_a, id_b, zf, zb = [], [], [], [], []
    cases: list[int] = []
    depths: list[int] = []
    overflows = 0
    unmatched = 0
    disjoint = 0
    self_filtered = 0

    n = len(z_codes)
    for k in range(n):
        oid = int(object_ids[k])
        if is_front[k]:
            if len(stack_id) >= t_max:
                overflows += 1
                continue
            stack_id.append(oid)
            stack_z.append(int(z_codes[k]))
            stack_matched.append(False)
            continue
        # Back face: bottommost unmatched entry with the same id.
        m = -1
        for i, (sid, sm) in enumerate(zip(stack_id, stack_matched)):
            if sid == oid and not sm:
                m = i
                break
        if m < 0:
            unmatched += 1
            continue
        emitted_before = len(id_a)
        for i in range(m + 1, len(stack_id)):
            if stack_id[i] == oid:
                self_filtered += 1
                continue  # self-pair filtered
            rows.append(0)
            id_a.append(stack_id[i])
            id_b.append(oid)
            zf.append(stack_z[i])
            zb.append(int(z_codes[k]))
            cases.append(
                CASE_NESTED if stack_matched[i] else CASE_CROSSING
            )
            depths.append(len(stack_id))
        if len(id_a) == emitted_before:
            disjoint += 1
        stack_matched[m] = True

    return OverlapResult(
        pair_row=np.array(rows, dtype=np.int64),
        pair_id_a=np.array(id_a, dtype=np.int64),
        pair_id_b=np.array(id_b, dtype=np.int64),
        pair_z_front=np.array(zf, dtype=np.int64),
        pair_z_back=np.array(zb, dtype=np.int64),
        pair_case=np.array(cases, dtype=np.int64),
        pair_stack_depth=np.array(depths, dtype=np.int64),
        elements_read=n,
        pair_records=len(id_a),
        stack_overflows=overflows,
        unmatched_backfaces=unmatched,
        disjoint_closures=disjoint,
        self_pairs_filtered=self_filtered,
    )


def traverse_lists_sequential(zeb: ZEBTile, config: RBCDConfig) -> OverlapResult:
    """Hardware-literal Z-Overlap Test over every list of one tile.

    Each list owns its FF-Stack and is traversed exactly as
    :func:`analyze_pixel_list` traverses one list, but the tile's lists
    advance *in lock-step*: step ``j`` processes element ``j`` of every
    list that still has one (the hardware walks all lists of a tile in
    parallel).  Pairs are therefore emitted in the canonical tile order
    — ascending ``(element step, list row, FF-Stack slot)`` — which is
    the order :func:`analyze_tile` produces and the order the RBCD
    unit's output buffer records.  This is the reference
    ``zoverlap_traverse`` kernel.
    """
    num_rows = zeb.non_empty_lists
    if num_rows == 0:
        return OverlapResult.empty()

    t_max = config.ff_stack_entries
    counts = zeb.counts
    max_len = zeb.z_codes.shape[1]

    stack_id: list[list[int]] = [[] for _ in range(num_rows)]
    stack_z: list[list[int]] = [[] for _ in range(num_rows)]
    stack_matched: list[list[bool]] = [[] for _ in range(num_rows)]

    rows, id_a, id_b, zf, zb = [], [], [], [], []
    cases: list[int] = []
    depths: list[int] = []
    overflows = 0
    unmatched = 0
    disjoint = 0
    self_filtered = 0

    for j in range(max_len):
        for row in range(num_rows):
            if j >= int(counts[row]):
                continue
            oid = int(zeb.object_ids[row, j])
            z_code = int(zeb.z_codes[row, j])
            sid = stack_id[row]
            smatched = stack_matched[row]
            if zeb.is_front[row, j]:
                if len(sid) >= t_max:
                    overflows += 1
                    continue
                sid.append(oid)
                stack_z[row].append(z_code)
                smatched.append(False)
                continue
            # Back face: bottommost unmatched entry with the same id.
            m = -1
            for i in range(len(sid)):
                if sid[i] == oid and not smatched[i]:
                    m = i
                    break
            if m < 0:
                unmatched += 1
                continue
            emitted_before = len(id_a)
            for i in range(m + 1, len(sid)):
                if sid[i] == oid:
                    self_filtered += 1
                    continue  # self-pair filtered
                rows.append(row)
                id_a.append(sid[i])
                id_b.append(oid)
                zf.append(stack_z[row][i])
                zb.append(z_code)
                cases.append(CASE_NESTED if smatched[i] else CASE_CROSSING)
                depths.append(len(sid))
            if len(id_a) == emitted_before:
                disjoint += 1
            smatched[m] = True

    return OverlapResult(
        pair_row=np.array(rows, dtype=np.int64),
        pair_id_a=np.array(id_a, dtype=np.int64),
        pair_id_b=np.array(id_b, dtype=np.int64),
        pair_z_front=np.array(zf, dtype=np.int64),
        pair_z_back=np.array(zb, dtype=np.int64),
        pair_case=np.array(cases, dtype=np.int64),
        pair_stack_depth=np.array(depths, dtype=np.int64),
        elements_read=int(counts.sum()),
        pair_records=len(id_a),
        stack_overflows=overflows,
        unmatched_backfaces=unmatched,
        disjoint_closures=disjoint,
        self_pairs_filtered=self_filtered,
    )


def analyze_tile(zeb: ZEBTile, config: RBCDConfig) -> OverlapResult:
    """Vectorized Z-Overlap Test over every list of one tile.

    Traverses all lists in lock-step: iteration ``j`` analyzes element
    ``j`` of every list that still has one, so the Python-level loop
    runs ``max(list length)`` times regardless of tile occupancy.
    """
    num_rows = zeb.non_empty_lists
    if num_rows == 0:
        return OverlapResult.empty()

    t_max = config.ff_stack_entries
    counts = zeb.counts
    max_len = zeb.z_codes.shape[1]

    stack_id = np.full((num_rows, t_max), -1, dtype=np.int64)
    stack_z = np.zeros((num_rows, t_max), dtype=np.int64)
    stack_matched = np.zeros((num_rows, t_max), dtype=bool)
    top = np.zeros(num_rows, dtype=np.int64)
    slot = np.arange(t_max, dtype=np.int64)

    out_row: list[np.ndarray] = []
    out_a: list[np.ndarray] = []
    out_b: list[np.ndarray] = []
    out_zf: list[np.ndarray] = []
    out_zb: list[np.ndarray] = []
    out_case: list[np.ndarray] = []
    out_depth: list[np.ndarray] = []
    overflows = 0
    unmatched = 0
    disjoint = 0
    self_filtered = 0

    for j in range(max_len):
        active = j < counts
        if not active.any():
            break
        ids = zeb.object_ids[:, j]
        fronts = zeb.is_front[:, j]
        zj = zeb.z_codes[:, j]

        push = active & fronts
        can_push = push & (top < t_max)
        overflows += int((push & ~can_push).sum())
        if can_push.any():
            rows = np.nonzero(can_push)[0]
            tops = top[rows]
            stack_id[rows, tops] = ids[rows]
            stack_z[rows, tops] = zj[rows]
            stack_matched[rows, tops] = False
            top[rows] += 1

        back = active & ~fronts
        if back.any():
            valid = slot[None, :] < top[:, None]
            eq = (
                (stack_id == ids[:, None])
                & ~stack_matched
                & valid
                & back[:, None]
            )
            found = eq.any(axis=1)
            unmatched += int((back & ~found).sum())
            if found.any():
                m = np.where(found, eq.argmax(axis=1), t_max)
                hit = found[:, None] & (slot[None, :] > m[:, None]) & valid
                hr, hs = np.nonzero(hit)
                emitted = np.zeros(num_rows, dtype=np.int64)
                if hr.size:
                    id_i = stack_id[hr, hs]
                    id_cur = ids[hr]
                    keep = id_i != id_cur
                    self_filtered += int((~keep).sum())
                    kr, ks = hr[keep], hs[keep]
                    out_row.append(kr)
                    out_a.append(id_i[keep])
                    out_b.append(id_cur[keep])
                    out_zf.append(stack_z[kr, ks])
                    out_zb.append(zj[kr])
                    # Evidence: matched bit of the partner entry must be
                    # read before this closure tags its own entry below.
                    out_case.append(
                        np.where(
                            stack_matched[kr, ks], CASE_NESTED, CASE_CROSSING
                        )
                    )
                    out_depth.append(top[kr])
                    emitted = np.bincount(kr, minlength=num_rows)
                fr = np.nonzero(found)[0]
                disjoint += int((emitted[fr] == 0).sum())
                stack_matched[fr, m[fr]] = True

    if out_row:
        pair_row = np.concatenate(out_row)
        pair_a = np.concatenate(out_a)
        pair_b = np.concatenate(out_b)
        pair_zf = np.concatenate(out_zf)
        pair_zb = np.concatenate(out_zb)
        pair_case = np.concatenate(out_case).astype(np.int64)
        pair_depth = np.concatenate(out_depth)
    else:
        pair_row = np.empty(0, dtype=np.int64)
        pair_a = pair_row.copy()
        pair_b = pair_row.copy()
        pair_zf = pair_row.copy()
        pair_zb = pair_row.copy()
        pair_case = pair_row.copy()
        pair_depth = pair_row.copy()

    return OverlapResult(
        pair_row=pair_row,
        pair_id_a=pair_a,
        pair_id_b=pair_b,
        pair_z_front=pair_zf,
        pair_z_back=pair_zb,
        pair_case=pair_case,
        pair_stack_depth=pair_depth,
        elements_read=int(counts.sum()),
        pair_records=int(pair_row.shape[0]),
        stack_overflows=overflows,
        unmatched_backfaces=unmatched,
        disjoint_closures=disjoint,
        self_pairs_filtered=self_filtered,
    )
