"""Collision pair records produced by the Z-Overlap Test.

The hardware writes each detected pair ``<Idi, Idcur>`` with its
coordinates to an output buffer headed for system memory (Section 3.5,
step 2).  ``CollisionReport`` is the software-visible aggregation the
CPU would read back: the set of colliding object pairs plus their
per-pixel contact points.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


def canonical_pair(id_a: int, id_b: int) -> tuple[int, int]:
    """Order-independent key for an object pair."""
    return (id_a, id_b) if id_a <= id_b else (id_b, id_a)


@dataclass(frozen=True, slots=True)
class ContactPoint:
    """One pair occurrence: screen pixel plus the overlapping depths.

    ``z_front`` / ``z_back`` bound the detected overlap interval at this
    pixel (quantized-depth units mapped back to [0, 1]).
    """

    x: int
    y: int
    z_front: float
    z_back: float


@dataclass(frozen=True, slots=True)
class CollisionPair:
    """An unordered pair of collisionable object ids."""

    id_a: int
    id_b: int

    def __post_init__(self) -> None:
        if self.id_a > self.id_b:
            raise ValueError("CollisionPair requires id_a <= id_b; use make()")
        if self.id_a == self.id_b:
            raise ValueError("an object cannot collide with itself")

    @staticmethod
    def make(id_a: int, id_b: int) -> "CollisionPair":
        a, b = canonical_pair(id_a, id_b)
        return CollisionPair(a, b)

    def involves(self, object_id: int) -> bool:
        return object_id in (self.id_a, self.id_b)


@dataclass
class CollisionReport:
    """All collisions detected in one frame."""

    contacts: dict[CollisionPair, list[ContactPoint]] = field(
        default_factory=lambda: defaultdict(list)
    )
    pair_records_written: int = 0  # raw output-buffer writes (with duplicates)

    @property
    def pairs(self) -> set[CollisionPair]:
        return set(self.contacts.keys())

    def add(self, id_a: int, id_b: int, contact: ContactPoint) -> None:
        self.contacts[CollisionPair.make(id_a, id_b)].append(contact)
        self.pair_records_written += 1

    def merge(self, other: "CollisionReport") -> None:
        for pair, points in other.contacts.items():
            self.contacts[pair].extend(points)
        self.pair_records_written += other.pair_records_written

    def contact_count(self, id_a: int, id_b: int) -> int:
        return len(self.contacts.get(CollisionPair.make(id_a, id_b), []))

    def colliding_with(self, object_id: int) -> set[int]:
        """Ids of every object in contact with ``object_id``."""
        out = set()
        for pair in self.contacts:
            if pair.involves(object_id):
                out.add(pair.id_b if pair.id_a == object_id else pair.id_a)
        return out

    def as_sorted_pairs(self) -> list[tuple[int, int]]:
        return sorted((p.id_a, p.id_b) for p in self.contacts)

    def __contains__(self, pair) -> bool:
        if isinstance(pair, CollisionPair):
            return pair in self.contacts
        id_a, id_b = pair
        return CollisionPair.make(id_a, id_b) in self.contacts

    def __len__(self) -> int:
        return len(self.contacts)
