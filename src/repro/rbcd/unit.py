"""The RBCD unit: ZEB buffers + Z-Overlap Test + output buffer.

Composes the pieces of Sections 3.4-3.5 into the block the Raster
Pipeline talks to.  The unit is fed one tile's collisionable fragments
at a time (the Rasterizer's output order), fills a ZEB, then runs the
Z-Overlap Test over it; the pipeline timing model uses the returned
per-tile cycle counts together with the configured number of ZEBs to
decide when the Tile Scheduler stalls (Section 3.5, last paragraph).

Cycle-model assumptions (the paper gives the structures, not the
per-operation latencies):

* Sorted insertion accepts one fragment per cycle (the 3-step
  read/compare/write is pipelined).
* The Z-Overlap Test scans a per-tile occupancy bitmap at 32 pixels per
  cycle, then spends 1 cycle per analyzed list plus 1 cycle per element
  read plus 1 cycle per pair record written.
* Lists whose elements all carry the same object id are skipped by the
  Z-Overlap Test: they cannot produce a pair (an object does not
  collide with itself), and the insertion hardware can mark them with
  one extra "multi-object" bit per pixel (set when an inserted id
  differs from the list's existing ids).  The skip changes no results;
  it only removes cycles for the interior pixels of each object's
  silhouette — the overwhelmingly common case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu import kernels as _kernels
from repro.gpu.config import GPUConfig, RBCDConfig
from repro.observability.counters import CounterRegistry
from repro.rbcd.element import dequantize_depth, max_object_id, quantize_depth
from repro.rbcd.overlap import OverlapResult
from repro.rbcd.pairs import CollisionReport, ContactPoint
from repro.rbcd.zeb import ZEBTile

_BITMAP_PIXELS_PER_CYCLE = 32


def _multi_object_lists(zeb: ZEBTile) -> np.ndarray:
    """(P,) mask of lists containing more than one distinct object id."""
    if zeb.non_empty_lists == 0:
        return np.zeros(0, dtype=bool)
    cols = np.arange(zeb.z_codes.shape[1])
    valid = cols[None, :] < zeb.counts[:, None]
    first = zeb.object_ids[:, 0]
    differs = (zeb.object_ids != first[:, None]) & valid
    return differs.any(axis=1)


@dataclass
class RBCDTileResult:
    """Everything the unit produced for one tile.

    Instances are self-contained (plain ints and numpy arrays), so they
    pickle cleanly across process boundaries: the parallel tile engine
    computes them in workers and the owning :class:`RBCDUnit` absorbs
    them afterwards, in tile-schedule order.
    """

    tile_index: int
    zeb: ZEBTile
    overlap: OverlapResult
    insertion_cycles: float
    overlap_cycles: float
    analyzed_lists: int = 0
    analyzed_elements: int = 0


def compute_tile(
    gpu_config: GPUConfig,
    tile_index: int,
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    object_id: np.ndarray,
    is_front: np.ndarray,
) -> RBCDTileResult:
    """Pure per-tile RBCD computation: ZEB insertion + Z-Overlap Test.

    This is the stateless core of :meth:`RBCDUnit.process_tile`: it
    touches no shared state, so any number of tiles may be computed
    concurrently (each tile has its own ZEB and its own spare pool).
    ``x``/``y`` are *global* pixel coordinates in arrival order; the
    tile-local pixel index is derived here, mirroring how the
    Rasterizer addresses the ZEB.  The insertion and traversal loops
    run on the kernel backend named by ``gpu_config.kernel_backend``
    (all backends are bit-identical; see :mod:`repro.gpu.kernels`).
    """
    config = gpu_config.rbcd
    ts = gpu_config.tile_size
    if x.shape[0] and int(object_id.max()) > max_object_id(config):
        raise ValueError(
            f"object id {int(object_id.max())} exceeds the "
            f"{config.id_bits}-bit ZEB id field"
        )
    backend = _kernels.get_backend(gpu_config.kernel_backend)
    local = (y % ts).astype(np.int64) * ts + (x % ts).astype(np.int64)
    codes = quantize_depth(z, config)
    zeb = backend.zeb_insert(
        local, codes, object_id, is_front, config, gpu_config.tile_pixels
    )
    overlap = backend.zoverlap_traverse(zeb, config)

    # The multi-object filter: lists whose entries all belong to one
    # object are skipped by the overlap hardware (they cannot yield a
    # pair).  Functionally a no-op; counted for the cycle model.
    multi_object = _multi_object_lists(zeb)
    analyzed_lists = int(multi_object.sum())
    analyzed_elements = int(zeb.counts[multi_object].sum())

    insertion_cycles = float(zeb.insertions)
    overlap_cycles = 0.0
    if zeb.insertions:
        overlap_cycles = (
            gpu_config.tile_pixels / _BITMAP_PIXELS_PER_CYCLE
            + analyzed_lists
            + analyzed_elements
            + overlap.pair_records
        )
    return RBCDTileResult(
        tile_index=tile_index,
        zeb=zeb,
        overlap=overlap,
        insertion_cycles=insertion_cycles,
        overlap_cycles=overlap_cycles,
        analyzed_lists=analyzed_lists,
        analyzed_elements=analyzed_elements,
    )


class RBCDUnit:
    """One RBCD unit attached to a GPU's raster pipeline.

    The unit accumulates a per-frame :class:`CollisionReport`; call
    :meth:`reset` between frames (the pipeline does this).

    ``provenance`` is an optional, strictly observational
    :class:`repro.observability.provenance.ProvenanceRecorder` (duck
    typed: anything with ``record_tile(result, gpu_config)``).  It is
    notified after each tile is absorbed — in tile-schedule order, in
    the owning process — so recordings are deterministic at any worker
    count and can never feed back into detection.
    """

    def __init__(self, gpu_config: GPUConfig, provenance=None) -> None:
        self.gpu_config = gpu_config
        self.config: RBCDConfig = gpu_config.rbcd
        self.provenance = provenance
        self.report = CollisionReport()
        self.insertions = 0
        self.overflow_events = 0
        self.spare_allocations = 0
        self.lists_analyzed = 0
        self.elements_read = 0
        self.stack_overflows = 0
        self.unmatched_backfaces = 0
        self.tiles_replayed = 0

    def reset(self) -> None:
        """Clear per-frame state (new frame, fresh report)."""
        self.report = CollisionReport()
        self.insertions = 0
        self.overflow_events = 0
        self.spare_allocations = 0
        self.lists_analyzed = 0
        self.elements_read = 0
        self.stack_overflows = 0
        self.unmatched_backfaces = 0
        self.tiles_replayed = 0

    def process_tile(
        self,
        tile_index: int,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        object_id: np.ndarray,
        is_front: np.ndarray,
    ) -> RBCDTileResult:
        """Insert one tile's collisionable fragments and analyze them.

        ``x``/``y`` are *global* pixel coordinates (in arrival order);
        the unit derives the tile-local pixel index itself, mirroring
        how the Rasterizer addresses the ZEB.  Equivalent to
        :func:`compute_tile` followed by :meth:`absorb`.
        """
        result = compute_tile(
            self.gpu_config, tile_index, x, y, z, object_id, is_front
        )
        self.absorb(result)
        return result

    def absorb(self, result: RBCDTileResult, replayed: bool = False) -> None:
        """Fold one tile's result into the per-frame counters and report.

        Results must be absorbed in tile-schedule order for the report's
        contact-record ordering to be bit-identical to the serial path;
        every counter is a plain sum, so the order affects only record
        layout, never values.

        ``replayed=True`` marks a result replayed from the cross-frame
        tile cache (:mod:`repro.gpu.tilecache`) rather than freshly
        computed.  Replay is exact, so the absorb path is *identical* —
        same counters, same pair records, same provenance — and the
        flag only feeds :attr:`tiles_replayed`, which lives outside
        :meth:`counters` precisely so cache-on output stays
        bit-identical to cache-off.
        """
        if replayed:
            self.tiles_replayed += 1
        self.insertions += result.zeb.insertions
        self.overflow_events += result.zeb.overflow_events
        self.spare_allocations += result.zeb.spare_allocations
        self.lists_analyzed += result.analyzed_lists
        self.elements_read += result.analyzed_elements
        self.stack_overflows += result.overlap.stack_overflows
        self.unmatched_backfaces += result.overlap.unmatched_backfaces
        self._record_pairs(result.tile_index, result.zeb, result.overlap)
        if self.provenance is not None:
            self.provenance.record_tile(result, self.gpu_config)

    def _record_pairs(
        self, tile_index: int, zeb: ZEBTile, overlap: OverlapResult
    ) -> None:
        if overlap.pair_records == 0:
            return
        ts = self.gpu_config.tile_size
        tiles_x = self.gpu_config.tiles_x
        tile_x0 = (tile_index % tiles_x) * ts
        tile_y0 = (tile_index // tiles_x) * ts
        local = zeb.pixel_index[overlap.pair_row]
        px = tile_x0 + (local % ts)
        py = tile_y0 + (local // ts)
        zf = dequantize_depth(overlap.pair_z_front, self.config)
        zb = dequantize_depth(overlap.pair_z_back, self.config)
        for k in range(overlap.pair_records):
            self.report.add(
                int(overlap.pair_id_a[k]),
                int(overlap.pair_id_b[k]),
                ContactPoint(int(px[k]), int(py[k]), float(zf[k]), float(zb[k])),
            )

    def counters(self) -> CounterRegistry:
        """Named counter view of the unit's per-frame tallies.

        Per-tile results absorbed in any grouping produce the same
        registry (each counter is a plain sum), so a registry merged
        from parallel shards equals the serial one — the property
        ``tests/gpu/test_parallel.py`` asserts over randomized shards.
        """
        registry = CounterRegistry()
        for name, value in (
            ("rbcd.zeb_insertions", self.insertions),
            ("rbcd.zeb_overflow_events", self.overflow_events),
            ("rbcd.zeb_spare_allocations", self.spare_allocations),
            ("rbcd.overlap_lists_analyzed", self.lists_analyzed),
            ("rbcd.overlap_elements_read", self.elements_read),
            ("rbcd.ff_stack_overflows", self.stack_overflows),
            ("rbcd.unmatched_backfaces", self.unmatched_backfaces),
            ("rbcd.pair_records_written", self.report.pair_records_written),
        ):
            registry.counter(name)
            registry.set(name, value)
        return registry

    @property
    def overflow_rate(self) -> float:
        """Fraction of insertion attempts finding a full list (Table 3)."""
        if self.insertions == 0:
            return 0.0
        return self.overflow_events / self.insertions

    def wants_cpu_fallback(self) -> bool:
        """Section 5.3 fallback: punt the frame to software CD when the
        overflow rate exceeds the configured threshold."""
        return self.overflow_rate > self.config.cpu_fallback_overflow_rate
