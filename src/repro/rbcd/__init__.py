"""The RBCD unit: the paper's contribution (Sections 3.4-3.5).

``ZEB`` models the Z-depth Extended Buffer with its hardware sorted
insertion; ``overlap`` implements the Z-Overlap Test's FF-Stack
traversal (Figure 5 semantics); ``RBCDUnit`` composes them with the
double-buffering and cycle/energy accounting used by the pipeline
timing model.
"""

from repro.rbcd.element import pack_element, unpack_element, quantize_depth
from repro.rbcd.zeb import ZEBTile, build_zeb_tile, insert_sequential
from repro.rbcd.overlap import (
    OverlapResult,
    analyze_pixel_list,
    analyze_tile,
)
from repro.rbcd.manifold import ContactManifold, build_manifold, unproject_contacts
from repro.rbcd.pairs import CollisionPair, ContactPoint, CollisionReport
from repro.rbcd.unit import RBCDUnit, RBCDTileResult

__all__ = [
    "CollisionPair",
    "ContactManifold",
    "CollisionReport",
    "ContactPoint",
    "OverlapResult",
    "RBCDTileResult",
    "RBCDUnit",
    "ZEBTile",
    "analyze_pixel_list",
    "analyze_tile",
    "build_manifold",
    "build_zeb_tile",
    "insert_sequential",
    "pack_element",
    "quantize_depth",
    "unpack_element",
    "unproject_contacts",
]
