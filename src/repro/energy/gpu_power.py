"""GPU energy from per-frame activity factors.

``E_frame = sum(activity_k * E_k) + P_static * t_frame``

Per-event energies are 32 nm magnitudes chosen so that (a) fragment
processing dominates, as the paper's Section 3.3 notes ("the most
consuming part of the graphics hardware pipeline"), and (b) a typical
WVGA frame lands at a Mali-400-class power level (a few hundred mW).
The RBCD unit's energy is priced separately in
:mod:`repro.energy.rbcd_power` and added by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats
from repro.observability.counters import CounterAlgebra, CounterRegistry


@dataclass(frozen=True, slots=True)
class GPUEnergyParams:
    """Joules per activity event, plus static power."""

    vertex_shaded_j: float = 400e-12
    triangle_assembled_j: float = 60e-12
    bin_store_j: float = 30e-12          # polygon-list record write
    tile_load_j: float = 20e-12          # polygon-list record read
    cache_miss_line_j: float = 1600e-12  # 64 B line from system memory
    fragment_rasterized_j: float = 15e-12
    early_z_test_j: float = 8e-12
    fragment_shaded_j: float = 700e-12   # dominant term
    texture_access_j: float = 120e-12
    color_write_j: float = 30e-12
    static_power_w: float = 0.12


@dataclass
class GPUEnergyBreakdown(CounterAlgebra):
    """Per-category energy of one frame (or an accumulation).

    The merge algebra (``a + b``, ``sum``-compatible ``__radd__``,
    ``Cls.sum``) comes from
    :class:`~repro.observability.counters.CounterAlgebra`: every field
    is a plain sum, so per-frame (or per-shard) breakdowns accumulate
    exactly like the counters they are priced from.
    """

    geometry_j: float = 0.0
    raster_j: float = 0.0
    fragment_j: float = 0.0
    memory_j: float = 0.0
    static_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.geometry_j
            + self.raster_j
            + self.fragment_j
            + self.memory_j
            + self.static_j
        )

    def registry(self) -> CounterRegistry:
        """Named counter view (``energy.gpu.*``, joules)."""
        out = CounterRegistry()
        for f in fields(self):
            name = f"energy.gpu.{f.name}"
            out.counter(name, kind="float", unit="J")
            out.set(name, getattr(self, f.name))
        out.counter("energy.gpu.total_j", kind="float", unit="J")
        out.set("energy.gpu.total_j", self.total_j)
        return out


class GPUEnergyModel:
    """Prices :class:`GPUStats` into joules."""

    def __init__(
        self,
        gpu_config: GPUConfig | None = None,
        params: GPUEnergyParams | None = None,
    ) -> None:
        self.gpu_config = gpu_config if gpu_config is not None else GPUConfig()
        self.params = params if params is not None else GPUEnergyParams()

    def breakdown(self, stats: GPUStats) -> GPUEnergyBreakdown:
        p = self.params
        geometry = (
            stats.vertices_shaded * p.vertex_shaded_j
            + stats.triangles_assembled * p.triangle_assembled_j
            + stats.tile_cache_stores * p.bin_store_j
        )
        raster = (
            stats.tile_cache_loads * p.tile_load_j
            + stats.fragments_produced * p.fragment_rasterized_j
            + stats.early_z_tests * p.early_z_test_j
        )
        fragment = (
            stats.fragments_shaded * p.fragment_shaded_j
            + stats.texture_accesses * p.texture_access_j
            + stats.color_writes * p.color_write_j
        )
        memory = (
            stats.vertex_cache_misses
            + stats.tile_cache_store_misses
            + stats.tile_cache_load_misses
        ) * p.cache_miss_line_j
        seconds = self.gpu_config.cycles_to_seconds(stats.gpu_cycles)
        static = p.static_power_w * seconds
        return GPUEnergyBreakdown(
            geometry_j=geometry,
            raster_j=raster,
            fragment_j=fragment,
            memory_j=memory,
            static_j=static,
        )

    def total_j(self, stats: GPUStats) -> float:
        return self.breakdown(stats).total_j
