"""Energy of the RBCD unit, from its McPAT-style components.

Per Section 3.4-3.5 the unit's work decomposes into:

* **sorted insertion**, per collisionable fragment: read the pixel's
  list (M words), M parallel less-than compares, an M-wide mux shift,
  write the list back (M words), plus List-Register traffic;
* **Z-overlap test**, per element read (one word + register), per
  back-face an FF-Stack search (T equality compares + the priority
  encoder), and per detected pair an output-buffer record write;
* **static leakage** of the ZEB SRAM(s), proportional to their size —
  under 1 % of GPU static power for two 8 KB ZEBs (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.energy.components import ComponentEnergies
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats
from repro.observability.counters import CounterAlgebra, CounterRegistry


@dataclass
class RBCDEnergyBreakdown(CounterAlgebra):
    """Per-component energy of the RBCD unit (one frame, one tile, or
    any accumulation — every field merges by plain sum via
    :class:`~repro.observability.counters.CounterAlgebra`)."""

    insertion_j: float = 0.0
    overlap_j: float = 0.0
    output_j: float = 0.0
    static_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.insertion_j + self.overlap_j + self.output_j + self.static_j

    def registry(self) -> CounterRegistry:
        """Named counter view (``energy.rbcd.*``, joules)."""
        out = CounterRegistry()
        for f in fields(self):
            name = f"energy.rbcd.{f.name}"
            out.counter(name, kind="float", unit="J")
            out.set(name, getattr(self, f.name))
        out.counter("energy.rbcd.total_j", kind="float", unit="J")
        out.set("energy.rbcd.total_j", self.total_j)
        return out


class RBCDEnergyModel:
    """Prices the RBCD counters of :class:`GPUStats` into joules."""

    def __init__(
        self,
        gpu_config: GPUConfig,
        components: ComponentEnergies | None = None,
        gpu_static_power_w: float = 0.12,
    ) -> None:
        self.gpu_config = gpu_config
        self.components = components if components is not None else ComponentEnergies()
        self.gpu_static_power_w = gpu_static_power_w

    def insertion_energy_per_fragment_j(self) -> float:
        """Energy of one sorted insertion (3-step read/compare/write)."""
        c = self.components
        m = self.gpu_config.rbcd.list_length
        return (
            m * c.sram_word_read_j          # list into List-Register
            + m * c.register_j
            + m * c.lt_comparator_j         # parallel compare
            + m * c.mux_j                   # shift network
            + m * c.sram_word_write_j       # write back
        )

    def overlap_energy_per_element_j(self) -> float:
        """Energy of analyzing one list element (front or back face)."""
        c = self.components
        t = self.gpu_config.rbcd.ff_stack_entries
        # Read the element, touch the stack; back faces additionally pay
        # the T-wide equality search + priority encode — charged to
        # every element here (halves of the list are back faces, and
        # the search cost dwarfs nothing else; keeping one rate keeps
        # the model monotone in elements read).
        return (
            c.sram_word_read_j
            + c.register_j
            + t * c.eq_comparator_j
            + c.priority_encoder_j
        )

    def static_power_w(self) -> float:
        """Leakage of the configured ZEBs (fraction of GPU static)."""
        cfg = self.gpu_config
        zeb_kb = cfg.rbcd.zeb_size_bytes(cfg.tile_pixels) / 1024.0
        fraction = cfg.rbcd.zeb_count * zeb_kb * self.components.static_fraction_per_kb
        return fraction * self.gpu_static_power_w

    def tile_breakdown(self, result) -> RBCDEnergyBreakdown:
        """Dynamic energy of one computed tile
        (:class:`~repro.rbcd.unit.RBCDTileResult`).

        Static leakage is excluded — it accrues with *frame* time, not
        per tile — so summing tile breakdowns over any shard grouping
        reproduces the frame's dynamic energy exactly
        (``breakdown(stats)`` minus its ``static_j``), which is what
        lets energy survive the parallel executor's merge.
        """
        return RBCDEnergyBreakdown(
            insertion_j=result.zeb.insertions
            * self.insertion_energy_per_fragment_j(),
            overlap_j=result.analyzed_elements
            * self.overlap_energy_per_element_j(),
            output_j=result.overlap.pair_records
            * self.components.pair_record_write_j,
        )

    def breakdown(self, stats: GPUStats) -> RBCDEnergyBreakdown:
        c = self.components
        insertion = stats.zeb_insertions * self.insertion_energy_per_fragment_j()
        overlap = stats.overlap_elements_read * self.overlap_energy_per_element_j()
        output = stats.collision_pairs_emitted * c.pair_record_write_j
        seconds = self.gpu_config.cycles_to_seconds(stats.gpu_cycles)
        static = self.static_power_w() * seconds
        return RBCDEnergyBreakdown(
            insertion_j=insertion,
            overlap_j=overlap,
            output_j=output,
            static_j=static,
        )

    def total_j(self, stats: GPUStats) -> float:
        return self.breakdown(stats).total_j
