"""End-to-end energy accounting: stats in, joules and EDP out.

:class:`EnergyAccount` bundles the two pricing models —
:class:`~repro.energy.gpu_power.GPUEnergyModel` for the graphics
pipeline and :class:`~repro.energy.rbcd_power.RBCDEnergyModel` for the
collision-detection unit — behind one call that turns a frame's
:class:`~repro.gpu.stats.GPUStats` into a :class:`FrameEnergyReport`:
the Figure-10/11-style per-component breakdown, the total, and the
energy-delay product against the *simulated* frame time.

Reports carry the :class:`~repro.observability.counters.CounterAlgebra`
merge algebra, so multi-frame runs accumulate with ``sum(reports)``;
because every energy term is linear in the counters it is priced from,
summing per-frame reports is bit-identical to pricing the summed stats
(asserted by ``tests/energy/test_energy_algebra.py``) — the same
linearity that lets per-tile energy survive the parallel executor's
shard merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.components import ComponentEnergies
from repro.energy.gpu_power import (
    GPUEnergyBreakdown,
    GPUEnergyModel,
    GPUEnergyParams,
)
from repro.energy.rbcd_power import RBCDEnergyBreakdown, RBCDEnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats
from repro.observability.counters import CounterAlgebra, CounterRegistry

__all__ = [
    "FrameEnergyReport",
    "EnergyAccount",
]


@dataclass
class FrameEnergyReport(CounterAlgebra):
    """Energy of one frame (or an accumulation of frames).

    ``delay_s`` is the modelled hardware time
    (``config.cycles_to_seconds(stats.gpu_cycles)``), not host wall
    time; accumulations sum it, so :attr:`edp_js` over a run is the
    run's total energy times its total simulated time.
    """

    gpu: GPUEnergyBreakdown = field(default_factory=GPUEnergyBreakdown)
    rbcd: RBCDEnergyBreakdown = field(default_factory=RBCDEnergyBreakdown)
    delay_s: float = 0.0

    @property
    def total_j(self) -> float:
        return self.gpu.total_j + self.rbcd.total_j

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J*s), the paper's efficiency metric."""
        return self.total_j * self.delay_s

    def registry(self) -> CounterRegistry:
        """Named counter view: ``energy.gpu.*`` + ``energy.rbcd.*``
        plus the combined ``energy.total_j`` / ``energy.delay_s`` /
        ``energy.edp_js`` roll-ups."""
        out = self.gpu.registry() + self.rbcd.registry()
        for name, unit, value in (
            ("energy.total_j", "J", self.total_j),
            ("energy.delay_s", "s", self.delay_s),
            ("energy.edp_js", "Js", self.edp_js),
        ):
            out.counter(name, kind="float", unit=unit)
            out.set(name, value)
        return out

    def as_dict(self) -> dict:
        """Nested JSON-ready view (the bench document's ``energy``)."""
        return {
            "gpu": {**self.gpu.as_dict(), "total_j": self.gpu.total_j},
            "rbcd": {**self.rbcd.as_dict(), "total_j": self.rbcd.total_j},
            "total_j": self.total_j,
            "delay_s": self.delay_s,
            "edp_js": self.edp_js,
        }


class EnergyAccount:
    """Both pricing models over one GPU configuration."""

    def __init__(
        self,
        config: GPUConfig,
        gpu_params: GPUEnergyParams | None = None,
        components: ComponentEnergies | None = None,
    ) -> None:
        self.config = config
        self.gpu_model = GPUEnergyModel(config, params=gpu_params)
        static_w = self.gpu_model.params.static_power_w
        self.rbcd_model = RBCDEnergyModel(
            config, components=components, gpu_static_power_w=static_w
        )

    def frame_report(self, stats: GPUStats) -> FrameEnergyReport:
        """Price one frame's (or an accumulated run's) counters."""
        return FrameEnergyReport(
            gpu=self.gpu_model.breakdown(stats),
            rbcd=self.rbcd_model.breakdown(stats),
            delay_s=self.config.cycles_to_seconds(stats.gpu_cycles),
        )
