"""Per-access energies of the hardware components at 32 nm / 1 V.

Section 4.2: "The RBCD unit has been modeled using McPAT's components
... the ZEBs (SRAM), LT-Comparators (ALU); EQ-Comparators (XOR);
List-Register, FF-Stack, list and stack pointers (registers); hit logic
(priority encoder); and MUXes (MUX)."

The values below are order-of-magnitude figures for small 32 nm
structures (a few pJ per small-SRAM access, fractions of a pJ per
narrow ALU/XOR/MUX operation); the paper reports only the resulting
ratios, which are insensitive to these absolutes because the RBCD unit
is orders of magnitude cheaper than CPU CD either way.  The
sensitivity bench sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ComponentEnergies:
    """Joules per access of each McPAT-style component class."""

    # 8 KB SRAM (one ZEB): per 32-bit word read or write.
    sram_word_read_j: float = 3.0e-12
    sram_word_write_j: float = 3.5e-12
    # 18-bit less-than comparator (insertion sort).
    lt_comparator_j: float = 0.25e-12
    # 13-bit XOR equality comparator (FF-Stack search).
    eq_comparator_j: float = 0.15e-12
    # 32-bit register read+write (List-Register, FF-Stack entries, ptrs).
    register_j: float = 0.2e-12
    # T-wide priority encoder (hit logic).
    priority_encoder_j: float = 0.4e-12
    # 32-bit 2:1 MUX (shift network), per element moved.
    mux_j: float = 0.1e-12
    # Output-buffer write per pair record (to the memory controller).
    pair_record_write_j: float = 12.0e-12
    # Static leakage of one ZEB's SRAM + the unit's logic, as a fraction
    # of GPU static power per KB of ZEB.  Calibrated to Section 5.3:
    # < 1 % of GPU static with two 8 KB ZEBs (2 x 8 x 0.0003 = 0.48 %),
    # < 5 % with 64-entry lists (2 x 64 x 0.0003 = 3.8 %).
    static_fraction_per_kb: float = 0.0003
