"""Energy models (McPAT substitute) for the GPU and the RBCD unit.

:class:`EnergyAccount` is the front door: it prices a frame's
:class:`~repro.gpu.stats.GPUStats` into a :class:`FrameEnergyReport`
(per-component joules, total, energy-delay product) that the GPU
pipeline attaches to every :class:`~repro.gpu.pipeline.FrameResult`
and the bench harness rolls into ``BENCH_rbcd.json``.
"""

from repro.energy.components import ComponentEnergies
from repro.energy.gpu_power import (
    GPUEnergyBreakdown,
    GPUEnergyModel,
    GPUEnergyParams,
)
from repro.energy.rbcd_power import RBCDEnergyBreakdown, RBCDEnergyModel
from repro.energy.report import EnergyAccount, FrameEnergyReport

__all__ = [
    "ComponentEnergies",
    "EnergyAccount",
    "FrameEnergyReport",
    "GPUEnergyBreakdown",
    "GPUEnergyModel",
    "GPUEnergyParams",
    "RBCDEnergyBreakdown",
    "RBCDEnergyModel",
]
