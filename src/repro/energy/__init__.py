"""Energy models (McPAT substitute) for the GPU and the RBCD unit."""

from repro.energy.components import ComponentEnergies
from repro.energy.gpu_power import GPUEnergyModel, GPUEnergyBreakdown
from repro.energy.rbcd_power import RBCDEnergyModel

__all__ = [
    "ComponentEnergies",
    "GPUEnergyBreakdown",
    "GPUEnergyModel",
    "RBCDEnergyModel",
]
