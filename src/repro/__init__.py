"""RBCD: Render-Based Collision Detection.

A reproduction of "Ultra-Low Power Render-Based Collision Detection for
CPU/GPU Systems" (de Lucas, Marcuello, Parcerisa, Gonzalez; MICRO-48, 2015).

The package provides:

``repro.geometry``
    Vector/matrix math, triangle meshes, and mesh primitives.
``repro.gpu``
    A functional, cycle-approximate model of a tile-based mobile GPU
    (ARM Mali-400-like) rendering pipeline.
``repro.rbcd``
    The paper's contribution: the RBCD hardware unit (Z-depth Extended
    Buffer, sorted insertion, Z-Overlap Test with FF-Stack).
``repro.physics``
    Software collision-detection baselines (AABB broad phase, GJK/EPA
    narrow phase) and a minimal rigid-body world.
``repro.cpu`` / ``repro.energy``
    Cost models that translate activity into cycles, seconds and joules
    for the CPU and GPU sides.
``repro.scenes``
    Scene/camera/animation substrate plus the four synthetic benchmark
    workloads standing in for the paper's Android games.
``repro.experiments``
    The harness that regenerates every figure and table of the paper's
    evaluation section.

``repro.observability``
    Tracing, typed counters, provenance, statistics, and the live
    telemetry service (OpenMetrics exposition + watchdog alerting).

The top-level module re-exports the high-level API from ``repro.core``
and makes ``repro.observability`` importable as an attribute.
"""

from repro.core import (
    CollisionPair,
    RBCDFrameResult,
    RBCDSystem,
    detect_collisions,
)

# Imported after repro.core: the core import fully initializes the
# gpu/rbcd module chain that repro.observability.provenance reaches
# into, so this order avoids a partial-initialization cycle.
from repro import observability

__version__ = "1.0.0"

__all__ = [
    "CollisionPair",
    "RBCDFrameResult",
    "RBCDSystem",
    "detect_collisions",
    "observability",
    "__version__",
]
