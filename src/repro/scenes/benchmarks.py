"""The four benchmark workloads (Table 1 stand-ins).

The paper evaluates on traces of four commercial Android games.  Those
traces are not redistributable, so each benchmark here is a procedural
scene engineered to match the *characteristics that drive the paper's
per-benchmark results*:

``cap`` (Captain America — beat'em up)
    Two high-detail fighters plus a few props in an arena; collisionable
    geometry is sparse and spread across the screen → low ZEB pressure
    (Table 3: 1.57 % overflow at M=4).

``crazy`` (Crazy Snowboard — arcade)
    A screen-filling, cheaply-shaded slope with a boarder and obstacles.
    Fragment-shader work is small, so the fragment queue drains easily:
    the benchmark most sensitive to 1-ZEB Tile-Scheduler stalls
    (Figure 9: ~7 % overhead with one ZEB, <1 % with two).

``sleepy`` (Sleepy Jack — action)
    Flying through a tunnel of objects concentrated around the view
    axis → collisionable surfaces start stacking per pixel (5.87 %
    overflow at M=4).

``temple`` (Temple Run — adventure arcade)
    A corridor with a long line of coins and obstacles receding straight
    ahead plus a collisionable lane → the deepest per-pixel stacking of
    the set (16.61 % overflow at M=4).

Every scene choreographs real collisions (objects approach, overlap for
a stretch of frames, separate) so both CD backends produce non-trivial
positives and negatives on each run.

Mesh detail: each collisionable object carries two meshes of the same
surface — a decimated render mesh (the pure-Python rasterizer is the
simulation bottleneck) and a full-detail ``cd_mesh`` whose vertex count
is in the range of commercial game models; the CPU baseline processes
the latter, as the paper's Bullet setup processed the full extracted
meshes.  See DESIGN.md, substitution table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.mesh import TriangleMesh
from repro.geometry.primitives import (
    make_box,
    make_capsule,
    make_cylinder,
    make_icosphere,
    make_plane,
    make_torus,
    make_uv_sphere,
)
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.commands import CullMode
from repro.scenes.animation import LinearPath, Orbit, Oscillate, Spin, Static
from repro.scenes.camera import Camera
from repro.scenes.scene import Scene


@dataclass(frozen=True, slots=True)
class Workload:
    """A named benchmark: scene + run length."""

    name: str
    alias: str
    description: str
    scene: Scene
    duration_s: float = 2.0
    default_frames: int = 12

    def times(self, frames: int | None = None) -> np.ndarray:
        n = frames if frames is not None else self.default_frames
        if n < 1:
            raise ValueError("need at least one frame")
        return np.linspace(0.0, self.duration_s, n)


# -- render/CD mesh pairs (same surface, two tessellations) -------------------


def _sphere_pair(radius: float, detail: int):
    render = make_icosphere(radius=radius, subdivisions=detail)
    cd = make_uv_sphere(radius=radius, rings=64 * detail, segments=96 * detail)
    return render, cd


def _capsule_pair(radius: float, height: float, detail: int):
    render = make_capsule(radius, height, rings=3 * detail, segments=8 * detail)
    cd = make_capsule(radius, height, rings=48 * detail, segments=96 * detail)
    return render, cd


def _torus_pair(major: float, minor: float, detail: int):
    render = make_torus(major, minor, 8 * detail, 6 * detail)
    cd = make_torus(major, minor, 128 * detail, 96 * detail)
    return render, cd


def _cylinder_pair(radius: float, height: float, detail: int):
    render = make_cylinder(radius, height, segments=6 * detail)
    cd = make_cylinder(radius, height, segments=192 * detail)
    return render, cd


def _box_pair(half: Vec3):
    # Boxes stay boxes on both sides (games use box colliders directly).
    mesh = make_box(half)
    return mesh, mesh


def _floor(scene: Scene, name: str, half: float, y: float, color, cpf: float,
           collisionable: bool = False) -> None:
    mesh = make_plane(half_size=half, subdivisions=4)
    # Lay the XY plane flat (facing +Y).
    model = Mat4.translation(Vec3(0.0, y, 0.0)) @ Mat4.rotation_x(-math.pi / 2.0)
    scene.add_object(
        name,
        mesh.transformed(model),
        Static(Mat4.identity()),
        collisionable=collisionable,
        color=color,
        cull_mode=CullMode.BACK,
        fragment_cycles=cpf,
    )


def make_cap(detail: int = 2) -> Workload:
    """Captain America: beat'em up arena."""
    camera = Camera(eye=Vec3(0.0, 2.2, 7.0), target=Vec3(0.0, 1.0, 0.0))
    scene = Scene(camera)

    _floor(scene, "arena_floor", 12.0, 0.0, (0.45, 0.4, 0.35), cpf=6.0)
    wall = make_box(Vec3(10.0, 3.0, 0.3))
    scene.add_object(
        "back_wall", wall, Static.at(Vec3(0.0, 3.0, -6.0)),
        color=(0.35, 0.35, 0.45), fragment_cycles=6.0,
    )
    # Non-collisionable detail: columns and a statue give the baseline a
    # realistic primitive load (most scene geometry is not tagged).
    column = make_cylinder(radius=0.3, height=4.5, segments=24 * detail)
    for i, x in enumerate((-6.0, -2.5, 2.5, 6.0)):
        scene.add_object(
            f"column_{i}",
            column.transformed(Mat4.rotation_x(-math.pi / 2.0)),
            Static.at(Vec3(x, 2.25, -5.0)),
            color=(0.5, 0.5, 0.55), fragment_cycles=6.0,
        )
    scene.add_object(
        "statue", make_icosphere(radius=0.8, subdivisions=detail + 1),
        Static.at(Vec3(0.0, 4.2, -5.5)), color=(0.6, 0.55, 0.4),
        fragment_cycles=6.0,
    )

    fighter_r, fighter_cd = _capsule_pair(0.35, 1.0, detail)
    # The fighters trade blows: they oscillate into each other twice per run.
    scene.add_object(
        "fighter_a", fighter_r,
        Oscillate(Vec3(-0.75, 1.0, 0.0), Vec3.unit_x(), amplitude=0.55, period=2.0),
        collisionable=True, color=(0.8, 0.2, 0.2), fragment_cycles=4.0,
        cd_mesh=fighter_cd,
    )
    scene.add_object(
        "fighter_b", fighter_r,
        Oscillate(Vec3(0.75, 1.0, 0.0), Vec3.unit_x(), amplitude=0.55, period=2.0,
                  phase=math.pi),
        collisionable=True, color=(0.2, 0.3, 0.8), fragment_cycles=4.0,
        cd_mesh=fighter_cd,
    )
    shield_r, shield_cd = _cylinder_pair(0.35, 0.08, detail)
    # The shield orbits fighter A and clips fighter B once per period.
    scene.add_object(
        "shield", shield_r,
        Orbit(Vec3(0.0, 1.4, 0.0), radius=1.1, period=2.0, axis=Vec3.unit_y()),
        collisionable=True, color=(0.85, 0.1, 0.1), fragment_cycles=4.0,
        cd_mesh=shield_cd,
    )
    prop_r, prop_cd = _sphere_pair(0.4, detail)
    positions = [(-4.0, 0.4, -2.0), (4.0, 0.4, -2.5), (-3.0, 0.4, 1.5), (3.2, 0.4, 2.0)]
    for i, (x, y, z) in enumerate(positions):
        scene.add_object(
            f"prop_{i}", prop_r, Static.at(Vec3(x, y, z)),
            collisionable=True, color=(0.6, 0.6, 0.2), fragment_cycles=4.0,
            cd_mesh=prop_cd,
        )
    crate_r, crate_cd = _box_pair(Vec3(0.35, 0.35, 0.35))
    # One crate slides into a prop and overlaps it near the end.
    scene.add_object(
        "crate", crate_r,
        LinearPath(Vec3(-5.2, 0.4, -2.0), Vec3(1.05, 0.0, 0.0)),
        collisionable=True, color=(0.5, 0.3, 0.1), fragment_cycles=4.0,
        cd_mesh=crate_cd,
    )
    return Workload(
        name="Captain America", alias="cap", description="beat'em up",
        scene=scene,
    )


def make_crazy(detail: int = 2) -> Workload:
    """Crazy Snowboard: raster-heavy slope, cheap shading."""
    camera = Camera(eye=Vec3(0.0, 2.4, 6.5), target=Vec3(0.0, 0.4, -4.0))
    scene = Scene(camera)

    # The slope fills the screen but shades almost for free (flat snow):
    # little fragment work to hide RBCD stalls behind (the 1-ZEB story).
    slope = make_plane(half_size=16.0, subdivisions=16)
    slope_model = (
        Mat4.translation(Vec3(0.0, 0.0, -6.0))
        @ Mat4.rotation_x(-math.pi / 2.0 + 0.12)
    )
    scene.add_object(
        "slope", slope.transformed(slope_model), Static(Mat4.identity()),
        color=(0.95, 0.95, 1.0), fragment_cycles=3.5,
    )
    # Background treeline: non-collisionable detail on the horizon.
    bg_trunk = make_cylinder(radius=0.15, height=1.6, segments=6 * detail)
    bg_crown = make_icosphere(radius=0.5, subdivisions=detail + 1)
    for i, x in enumerate((-6.0, -4.0, -1.5, 1.5, 4.0, 6.0)):
        scene.add_object(
            f"bg_trunk_{i}",
            bg_trunk.transformed(Mat4.rotation_x(-math.pi / 2.0)),
            Static.at(Vec3(x, 0.9, -9.0)),
            color=(0.4, 0.28, 0.15), fragment_cycles=3.5,
        )
        scene.add_object(
            f"bg_crown_{i}", bg_crown, Static.at(Vec3(x, 2.0, -9.0)),
            color=(0.12, 0.4, 0.18), fragment_cycles=3.5,
        )

    boarder_r, boarder_cd = _capsule_pair(0.3, 0.9, detail)
    # The boarder weaves left-right down the fall line, clipping obstacles.
    scene.add_object(
        "boarder", boarder_r,
        Oscillate(Vec3(0.0, 0.75, -1.2), Vec3.unit_x(), amplitude=2.4, period=2.0),
        collisionable=True, color=(0.9, 0.4, 0.1), fragment_cycles=4.0,
        cd_mesh=boarder_cd,
    )
    board_r, board_cd = _box_pair(Vec3(0.5, 0.05, 0.18))
    scene.add_object(
        "board", board_r,
        Oscillate(Vec3(0.0, 0.25, -1.2), Vec3.unit_x(), amplitude=2.4, period=2.0),
        collisionable=True, color=(0.2, 0.8, 0.3), fragment_cycles=4.0,
        cd_mesh=board_cd,
    )
    # Collisionable gates the boarder weaves through: concentrated
    # multi-object pixel overlap (the RBCD unit's stall pressure), while
    # the rest of the slope shades for almost nothing.
    gate_r = make_torus(0.7, 0.14, 5 * detail, 4 * detail)
    gate_cd = make_torus(0.7, 0.14, 128 * detail, 96 * detail)
    for i, (gx, gz) in enumerate(((-1.6, -1.2), (0.0, -1.2), (1.6, -1.2))):
        scene.add_object(
            f"gate_{i}", gate_r,
            Static.at(Vec3(gx, 0.8, gz)),
            collisionable=True, color=(0.9, 0.2, 0.6), fragment_cycles=4.0,
            cd_mesh=gate_cd,
        )
    trunk_r = make_cylinder(0.14, 1.1, segments=4 * detail)
    trunk_cd = make_cylinder(0.14, 1.1, segments=192 * detail)
    crown_r = make_icosphere(radius=0.38, subdivisions=max(detail - 1, 0))
    crown_cd = make_uv_sphere(radius=0.38, rings=64 * detail, segments=96 * detail)
    rock_r = make_icosphere(radius=0.3, subdivisions=max(detail - 1, 0))
    rock_cd = make_uv_sphere(radius=0.3, rings=64 * detail, segments=96 * detail)
    spots = [(-2.4, -2.5), (2.4, -3.5), (-1.2, -5.5), (3.4, -2.0), (-3.6, -2.2)]
    for i, (x, z) in enumerate(spots):
        scene.add_object(
            f"tree_trunk_{i}",
            trunk_r.transformed(Mat4.rotation_x(-math.pi / 2.0)),
            Static.at(Vec3(x, 0.8, z)),
            collisionable=True, color=(0.45, 0.3, 0.15), fragment_cycles=4.0,
            cd_mesh=trunk_cd.transformed(Mat4.rotation_x(-math.pi / 2.0)),
        )
        scene.add_object(
            f"tree_crown_{i}", crown_r, Static.at(Vec3(x, 1.6, z)),
            collisionable=True, color=(0.15, 0.5, 0.2), fragment_cycles=4.0,
            cd_mesh=crown_cd,
        )
    scene.add_object(
        "rock", rock_r, Static.at(Vec3(1.0, 0.3, -1.8)),
        collisionable=True, color=(0.5, 0.5, 0.5), fragment_cycles=4.0,
        cd_mesh=rock_cd,
    )
    return Workload(
        name="Crazy Snowboard", alias="crazy", description="arcade",
        scene=scene,
    )


def make_sleepy(detail: int = 2) -> Workload:
    """Sleepy Jack: flying through a tunnel of concentrated objects."""
    camera = Camera(eye=Vec3(0.0, 0.0, 8.0), target=Vec3(0.0, 0.0, -10.0))
    scene = Scene(camera)

    # Dim tunnel walls (non-collisionable, fragment-heavy).
    tube = make_cylinder(radius=4.5, height=40.0, segments=24 * detail)
    scene.add_object(
        "tunnel", tube.flipped(),  # inside-out: camera flies inside it
        Static.at(Vec3(0.0, 0.0, -8.0)),
        color=(0.25, 0.2, 0.4), cull_mode=CullMode.BACK, fragment_cycles=6.0,
    )
    # Decorative rings along the tunnel (non-collisionable detail).
    ring = make_torus(3.8, 0.25, 20 * detail, 10 * detail)
    for i in range(5):
        scene.add_object(
            f"ring_{i}", ring, Static.at(Vec3(0.0, 0.0, 2.0 - 4.0 * i)),
            color=(0.5, 0.4, 0.7), fragment_cycles=6.0,
        )

    jack_r, jack_cd = _capsule_pair(0.35, 0.8, detail)
    scene.add_object(
        "jack", jack_r, LinearPath(Vec3(0.0, 0.0, 4.0), Vec3(0.0, 0.0, -2.2)),
        collisionable=True, color=(0.9, 0.7, 0.2), fragment_cycles=4.0,
        cd_mesh=jack_cd,
    )
    # A swarm of toys concentrated near the view axis at many depths:
    # their projections pile onto the same central pixels.
    toy_sphere = _sphere_pair(0.36, detail)
    toy_torus = _torus_pair(0.36, 0.13, detail)
    toy_box = _box_pair(Vec3(0.26, 0.26, 0.26))
    rng = np.random.RandomState(7)
    for i in range(12):
        render, cd = (toy_sphere, toy_torus, toy_box)[i % 3]
        angle = rng.uniform(0, 2 * math.pi)
        radius = rng.uniform(0.3, 1.6)
        x, y = radius * math.cos(angle), radius * math.sin(angle)
        z = 3.0 - 1.3 * i
        scene.add_object(
            f"toy_{i}", render,
            Oscillate(Vec3(x, y, z), Vec3.unit_y(), amplitude=0.5,
                      period=2.0, phase=i * 0.7),
            collisionable=True, color=(0.3 + 0.05 * i % 0.7, 0.5, 0.8),
            fragment_cycles=4.0, cd_mesh=cd,
        )
    return Workload(
        name="Sleepy Jack", alias="sleepy", description="action",
        scene=scene,
    )


def make_temple(detail: int = 2) -> Workload:
    """Temple Run: corridor with deep stacks of collisionable geometry."""
    camera = Camera(eye=Vec3(0.0, 1.6, 6.0), target=Vec3(0.0, 0.8, -20.0))
    scene = Scene(camera)

    # The walkway: only the narrow lane under the runner is collisionable
    # (games tag the minimal geometry); the wide apron is scenery.
    _floor(scene, "apron", 14.0, -0.02, (0.5, 0.42, 0.3), cpf=6.0)
    lane_r, lane_cd = _box_pair(Vec3(0.9, 0.05, 8.0))
    scene.add_object(
        "lane", lane_r, Static.at(Vec3(0.0, 0.0, -4.0)),
        collisionable=True, color=(0.55, 0.45, 0.3), fragment_cycles=6.0,
        cd_mesh=lane_cd,
    )
    # Side walls and columns (non-collisionable decoration).
    wall = make_box(Vec3(0.4, 2.2, 18.0))
    scene.add_object(
        "wall_left", wall, Static.at(Vec3(-3.0, 2.0, -8.0)),
        color=(0.4, 0.35, 0.3), fragment_cycles=6.0,
    )
    scene.add_object(
        "wall_right", wall, Static.at(Vec3(3.0, 2.0, -8.0)),
        color=(0.4, 0.35, 0.3), fragment_cycles=6.0,
    )
    pillar = make_cylinder(radius=0.25, height=3.5, segments=28 * detail)
    for i in range(6):
        z = 2.0 - 4.0 * i
        for side in (-2.2, 2.2):
            scene.add_object(
                f"pillar_{i}_{'l' if side < 0 else 'r'}",
                pillar.transformed(Mat4.rotation_x(-math.pi / 2.0)),
                Static.at(Vec3(side, 1.75, z)),
                color=(0.45, 0.4, 0.32), fragment_cycles=6.0,
            )

    runner_r, runner_cd = _capsule_pair(0.32, 0.9, detail)
    # The runner bobs as it runs in place; the world streams past it.
    scene.add_object(
        "runner", runner_r,
        Oscillate(Vec3(0.0, 0.95, 2.0), Vec3.unit_y(), amplitude=0.35, period=0.7),
        collisionable=True, color=(0.8, 0.6, 0.3), fragment_cycles=4.0,
        cd_mesh=runner_cd,
    )
    # A long line of spinning coins dead ahead: from the camera they
    # stack onto the same pixels, many layers deep.
    coin_r, coin_cd = _torus_pair(0.4, 0.13, detail)
    for i in range(10):
        z = -2.0 - 1.8 * i
        # Lateral jitter that grows down the line keeps distant coins
        # from converging onto a single pixel column at the vanishing
        # point: stacks run 3-6 coins deep, not all ten.
        x = 0.1 * i * math.sin(1.7 * i)
        y = 1.2 + 0.08 * math.cos(2.3 * i) + 0.03 * i
        scene.add_object(
            f"coin_{i}", coin_r,
            Spin(Vec3(x, y, z), Vec3.unit_y(), period=1.2, scale=1.0),
            collisionable=True, color=(0.95, 0.8, 0.15), fragment_cycles=4.0,
            cd_mesh=coin_cd,
        )
    # Obstacles sliding toward the runner (the collisions of the run).
    log_r, log_cd = _cylinder_pair(0.3, 2.6, detail)
    scene.add_object(
        "log", log_r.transformed(Mat4.rotation_y(math.pi / 2.0)),
        LinearPath(Vec3(0.0, 0.75, -14.0), Vec3(0.0, 0.0, 8.0)),
        collisionable=True, color=(0.5, 0.35, 0.2), fragment_cycles=4.0,
        cd_mesh=log_cd.transformed(Mat4.rotation_y(math.pi / 2.0)),
    )
    boulder_r, boulder_cd = _sphere_pair(0.55, detail)
    scene.add_object(
        "boulder", boulder_r,
        LinearPath(Vec3(0.8, 0.55, -22.0), Vec3(-0.05, 0.0, 10.0)),
        collisionable=True, color=(0.5, 0.5, 0.55), fragment_cycles=4.0,
        cd_mesh=boulder_cd,
    )
    return Workload(
        name="Temple Run", alias="temple", description="adventure arcade",
        scene=scene,
    )


def make_stress(num_objects: int = 16, detail: int = 1, seed: int = 42) -> Workload:
    """Scalability stress scene: N orbiting collisionable spheres.

    Not part of the paper's Table 1 — used by the scalability bench to
    expose the complexity argument of Section 2: software CD grows with
    the object count (O(n^2) pair tests plus O(total vertices) AABB
    refits) while RBCD's marginal cost tracks the fixed pixel budget.
    """
    if num_objects < 2:
        raise ValueError("need at least two objects")
    camera = Camera(eye=Vec3(0.0, 0.0, 14.0), target=Vec3.zero(), far=100.0)
    scene = Scene(camera)
    scene.add_object(
        "backdrop", make_box(Vec3(9.0, 6.0, 0.3)),
        Static.at(Vec3(0.0, 0.0, -6.0)), color=(0.3, 0.3, 0.35),
        fragment_cycles=5.0,
    )
    rng = np.random.RandomState(seed)
    render, cd = _sphere_pair(0.45, detail)
    for i in range(num_objects):
        # Objects orbit a shared centre at staggered radii/phases so
        # neighbours keep meeting and separating.
        radius = 1.2 + 3.5 * (i % 5) / 4.0
        period = 2.0 + float(rng.uniform(-0.3, 0.3))
        phase = 2.0 * math.pi * i / num_objects
        axis = Vec3(0.0, 1.0, 0.0) if i % 2 == 0 else Vec3(0.3, 1.0, 0.1)
        scene.add_object(
            f"ball_{i}", render,
            Orbit(Vec3(0.0, 0.0, 0.0), radius=radius, period=period,
                  axis=axis, phase=phase),
            collisionable=True,
            color=(0.3 + 0.6 * (i / num_objects), 0.5, 0.7),
            fragment_cycles=4.0, cd_mesh=cd,
        )
    return Workload(
        name=f"Stress-{num_objects}", alias=f"stress{num_objects}",
        description="scalability stress", scene=scene,
    )


def all_workloads(detail: int = 2) -> list[Workload]:
    """The paper's Table 1 benchmark set."""
    return [make_cap(detail), make_crazy(detail), make_sleepy(detail), make_temple(detail)]


BENCHMARKS = ("cap", "crazy", "sleepy", "temple")

_FACTORIES = {
    "cap": make_cap,
    "crazy": make_crazy,
    "sleepy": make_sleepy,
    "temple": make_temple,
}


def workload_by_alias(alias: str, detail: int = 2) -> Workload:
    if alias not in _FACTORIES:
        raise ValueError(f"unknown benchmark {alias!r}; expected one of {BENCHMARKS}")
    return _FACTORIES[alias](detail)
