"""Animators: time-parameterized model transforms.

An :class:`Animator` maps simulation time (seconds) to a model matrix.
The benchmark scenes compose these to choreograph collisions: objects
approach, interpenetrate for a stretch of frames, and separate — giving
both CD backends positives and negatives in every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.geometry.vec import Mat4, Vec3


class Animator(Protocol):
    """Anything that yields a model matrix at time ``t``."""

    def transform(self, t: float) -> Mat4: ...


@dataclass(frozen=True, slots=True)
class Static:
    """A fixed transform."""

    model: Mat4

    @staticmethod
    def at(position: Vec3, scale: float = 1.0) -> "Static":
        return Static(Mat4.translation(position) @ Mat4.scaling(scale))

    def transform(self, t: float) -> Mat4:
        return self.model


@dataclass(frozen=True, slots=True)
class LinearPath:
    """Constant-velocity motion from ``start`` toward ``velocity``."""

    start: Vec3
    velocity: Vec3
    scale: float = 1.0

    def transform(self, t: float) -> Mat4:
        pos = self.start + self.velocity * t
        return Mat4.translation(pos) @ Mat4.scaling(self.scale)


@dataclass(frozen=True, slots=True)
class Oscillate:
    """Sinusoidal back-and-forth around ``center`` along ``axis``."""

    center: Vec3
    axis: Vec3
    amplitude: float
    period: float
    phase: float = 0.0
    scale: float = 1.0

    def transform(self, t: float) -> Mat4:
        s = self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        pos = self.center + self.axis * s
        return Mat4.translation(pos) @ Mat4.scaling(self.scale)


@dataclass(frozen=True, slots=True)
class Orbit:
    """Circular orbit in the plane orthogonal to ``axis``."""

    center: Vec3
    radius: float
    period: float
    axis: Vec3 = Vec3(0.0, 1.0, 0.0)
    phase: float = 0.0
    scale: float = 1.0

    def transform(self, t: float) -> Mat4:
        angle = 2.0 * math.pi * t / self.period + self.phase
        # Build an orthonormal frame around the axis.
        a = self.axis.normalized()
        ref = Vec3.unit_x() if abs(a.x) < 0.9 else Vec3.unit_y()
        u = a.cross(ref).normalized()
        v = a.cross(u)
        pos = self.center + u * (self.radius * math.cos(angle)) + v * (
            self.radius * math.sin(angle)
        )
        return Mat4.translation(pos) @ Mat4.scaling(self.scale)


@dataclass(frozen=True, slots=True)
class Spin:
    """Rotation in place about ``axis`` at ``position``."""

    position: Vec3
    axis: Vec3
    period: float
    scale: float = 1.0

    def transform(self, t: float) -> Mat4:
        angle = 2.0 * math.pi * t / self.period
        return (
            Mat4.translation(self.position)
            @ Mat4.rotation_axis(self.axis, angle)
            @ Mat4.scaling(self.scale)
        )


@dataclass(frozen=True, slots=True)
class Drop:
    """Ballistic fall from ``start`` that clamps at ``floor_y``."""

    start: Vec3
    floor_y: float
    gravity: float = 9.81
    scale: float = 1.0

    def transform(self, t: float) -> Mat4:
        y = self.start.y - 0.5 * self.gravity * t * t
        y = max(y, self.floor_y)
        return Mat4.translation(Vec3(self.start.x, y, self.start.z)) @ Mat4.scaling(
            self.scale
        )


@dataclass(frozen=True, slots=True)
class Compose:
    """Apply ``outer``'s transform after ``inner``'s."""

    outer: Animator
    inner: Animator

    def transform(self, t: float) -> Mat4:
        return self.outer.transform(t) @ self.inner.transform(t)
