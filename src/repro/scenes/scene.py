"""Scenes: named, animated objects that compile to GPU frames.

A ``Scene`` is the single source of truth both CD backends consume:

* ``frame_at(t)`` builds the GPU :class:`~repro.gpu.commands.Frame`
  (draw commands with object-id markers on collisionable objects);
* ``collision_world()`` / ``sync_world(world, t)`` drive the software
  :class:`~repro.physics.world.CollisionWorld` with the same meshes and
  the same world transforms (the paper's Section 4.3 setup, where the
  extracted GPU meshes feed Bullet directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.mesh import TriangleMesh
from repro.gpu.commands import CullMode, DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.physics.world import CollisionWorld
from repro.scenes.animation import Animator, Static
from repro.scenes.camera import Camera


@dataclass
class SceneObject:
    """One object: mesh + animator + render/CD attributes.

    ``cd_mesh`` is the mesh the *software* CD baseline processes.  In
    the paper both sides consume the same full-detail meshes extracted
    from the GPU traces; here the render mesh may be a decimated LOD of
    the same surface (the pure-Python rasterizer is the expensive
    part), while ``cd_mesh`` carries the full detail so the CPU
    baseline's per-frame vertex workload matches commercial-game mesh
    sizes.  When ``cd_mesh`` is None the render mesh is used for both.
    """

    name: str
    mesh: TriangleMesh
    animator: Animator
    collisionable: bool = False
    color: tuple[float, float, float] = (0.7, 0.7, 0.7)
    cull_mode: CullMode = CullMode.BACK
    fragment_cycles: float | None = None
    cd_mesh: TriangleMesh | None = None

    @property
    def collision_mesh(self) -> TriangleMesh:
        return self.cd_mesh if self.cd_mesh is not None else self.mesh


class Scene:
    """An animated scene with a (possibly moving) camera."""

    def __init__(
        self,
        camera: Camera,
        camera_animator=None,
    ) -> None:
        self._camera = camera
        self._camera_animator = camera_animator  # t -> Camera, optional
        self._objects: list[SceneObject] = []
        self._ids: dict[str, int] = {}

    # -- construction -----------------------------------------------------

    def add(self, obj: SceneObject) -> SceneObject:
        if any(o.name == obj.name for o in self._objects):
            raise ValueError(f"duplicate object name {obj.name!r}")
        self._objects.append(obj)
        if obj.collisionable:
            self._ids[obj.name] = len(self._ids)
        return obj

    def add_object(
        self,
        name: str,
        mesh: TriangleMesh,
        animator: Animator | None = None,
        collisionable: bool = False,
        color: tuple[float, float, float] = (0.7, 0.7, 0.7),
        cull_mode: CullMode = CullMode.BACK,
        fragment_cycles: float | None = None,
        cd_mesh: TriangleMesh | None = None,
    ) -> SceneObject:
        from repro.geometry.vec import Mat4

        if animator is None:
            animator = Static(Mat4.identity())
        return self.add(
            SceneObject(
                name=name,
                mesh=mesh,
                animator=animator,
                collisionable=collisionable,
                color=color,
                cull_mode=cull_mode,
                fragment_cycles=fragment_cycles,
                cd_mesh=cd_mesh,
            )
        )

    # -- queries ---------------------------------------------------------------

    @property
    def objects(self) -> list[SceneObject]:
        return list(self._objects)

    def object_id(self, name: str) -> int:
        """The collisionable object-id assigned to ``name``."""
        return self._ids[name]

    def name_of(self, object_id: int) -> str:
        for name, oid in self._ids.items():
            if oid == object_id:
                return name
        raise KeyError(object_id)

    @property
    def collisionable_names(self) -> list[str]:
        return list(self._ids.keys())

    def camera_at(self, t: float) -> Camera:
        if self._camera_animator is not None:
            return self._camera_animator(t)
        return self._camera

    # -- GPU side -------------------------------------------------------------------

    def frame_at(self, t: float, config: GPUConfig, raster_only: bool = False) -> Frame:
        """Compile the scene state at time ``t`` into a GPU frame."""
        camera = self.camera_at(t)
        aspect = config.screen_width / config.screen_height
        draws = []
        for obj in self._objects:
            draws.append(
                DrawCommand(
                    mesh=obj.mesh,
                    model=obj.animator.transform(t),
                    object_id=self._ids.get(obj.name),
                    cull_mode=obj.cull_mode,
                    color=obj.color,
                    fragment_cycles=obj.fragment_cycles,
                )
            )
        return Frame(
            draws=tuple(draws),
            view=camera.view(),
            projection=camera.projection(aspect),
            raster_only=raster_only,
        )

    # -- CPU side -----------------------------------------------------------------------

    def collision_world(self, broad_algorithm: str = "bruteforce") -> CollisionWorld:
        """A software CD world over this scene's collisionable objects."""
        world = CollisionWorld(broad_algorithm)
        for obj in self._objects:
            if obj.collisionable:
                world.add_object(self._ids[obj.name], obj.collision_mesh)
        return world

    def sync_world(self, world: CollisionWorld, t: float) -> None:
        """Push the transforms at time ``t`` into a collision world."""
        for obj in self._objects:
            if obj.collisionable:
                world.set_transform(self._ids[obj.name], obj.animator.transform(t))
