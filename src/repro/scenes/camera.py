"""Cameras for the benchmark scenes."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.geometry.vec import Mat4, Vec3


@dataclass(frozen=True, slots=True)
class Camera:
    """A perspective look-at camera."""

    eye: Vec3
    target: Vec3
    up: Vec3 = Vec3(0.0, 1.0, 0.0)
    fov_y_deg: float = 60.0
    near: float = 0.1
    far: float = 200.0

    def __post_init__(self) -> None:
        if not 0 < self.fov_y_deg < 180:
            raise ValueError("fov_y_deg must be in (0, 180)")
        if self.near <= 0 or self.far <= self.near:
            raise ValueError("require 0 < near < far")

    def view(self) -> Mat4:
        return Mat4.look_at(self.eye, self.target, self.up)

    def projection(self, aspect: float) -> Mat4:
        return Mat4.perspective(math.radians(self.fov_y_deg), aspect, self.near, self.far)

    def moved(self, eye: Vec3, target: Vec3 | None = None) -> "Camera":
        """Camera translated to a new eye (same target unless given)."""
        return replace(self, eye=eye, target=target if target is not None else self.target)

    def dollied(self, offset: Vec3) -> "Camera":
        """Camera with both eye and target shifted by ``offset`` (a
        follow-camera step)."""
        return replace(self, eye=self.eye + offset, target=self.target + offset)
