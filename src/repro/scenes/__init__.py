"""Scene substrate and the four synthetic benchmark workloads."""

from repro.scenes.camera import Camera
from repro.scenes.animation import (
    Animator,
    Compose,
    Drop,
    LinearPath,
    Orbit,
    Oscillate,
    Spin,
    Static,
)
from repro.scenes.scene import Scene, SceneObject
from repro.scenes.benchmarks import (
    BENCHMARKS,
    Workload,
    make_cap,
    make_crazy,
    make_sleepy,
    make_temple,
    workload_by_alias,
)

__all__ = [
    "Animator",
    "BENCHMARKS",
    "Camera",
    "Compose",
    "Drop",
    "LinearPath",
    "Orbit",
    "Oscillate",
    "Scene",
    "SceneObject",
    "Spin",
    "Static",
    "Workload",
    "make_cap",
    "make_crazy",
    "make_sleepy",
    "make_temple",
    "workload_by_alias",
]
