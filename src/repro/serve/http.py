"""HTTP exposition for the multi-tenant collision service.

The serving twin of :class:`~repro.observability.live.MetricsServer`:
a stdlib ``ThreadingHTTPServer`` on a background daemon thread, bound
to a :class:`~repro.serve.service.CollisionService` instead of a
single :class:`LiveMonitor`.  Endpoints:

* ``/metrics`` — the labelled OpenMetrics exposition (``tenant="..."``
  series, strictly valid);
* ``/healthz`` — global verdict (503 while any tenant is in breach);
* ``/healthz/<tenant>`` — one tenant's verdict (503 while breached,
  404 for unknown tenants);
* ``/snapshot.json`` — global + per-tenant state dump.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observability.live import OPENMETRICS_CONTENT_TYPE
from repro.observability.log import get_logger, log_event
from repro.serve.service import CollisionService

__all__ = ["ServiceMetricsServer"]

_LOG = get_logger(__name__)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes the serving endpoints to the bound CollisionService."""

    server_version = "repro-serve/1.0"
    service: CollisionService  # bound via the handler subclass

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        service = self.service
        if path == "/metrics":
            body = service.to_openmetrics().encode("utf-8")
            self._respond(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz" or path.startswith("/healthz/"):
            tenant = path[len("/healthz/"):] if path != "/healthz" else None
            try:
                health = service.health_dict(tenant)
            except KeyError:
                self._json(404, {"error": f"unknown tenant {tenant!r}"})
                return
            status = 200 if health["status"] == "ok" else 503
            self._json(status, health)
        elif path == "/snapshot.json":
            self._json(200, service.snapshot_dict())
        else:
            self._json(404, {
                "error": "not found",
                "endpoints": [
                    "/metrics", "/healthz", "/healthz/<tenant>",
                    "/snapshot.json",
                ],
            })

    def _json(self, status: int, doc) -> None:
        body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
        self._respond(status, "application/json; charset=utf-8", body)

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        log_event(
            _LOG, "http.request", level=logging.DEBUG,
            client=self.client_address[0], line=format % args,
        )


class ServiceMetricsServer:
    """Background-thread HTTP endpoint over a :class:`CollisionService`.

    Same lifecycle contract as
    :class:`~repro.observability.live.MetricsServer`: ``port=0`` binds
    an ephemeral port (read :attr:`port` after :meth:`start`), usable
    as a context manager, daemon server thread, clean :meth:`stop`.
    """

    def __init__(
        self,
        service: CollisionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceMetricsServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        handler = type(
            "BoundServiceHandler", (_ServiceHandler,),
            {"service": self.service},
        )
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-server",
            daemon=True,
        )
        self._thread.start()
        log_event(
            _LOG, "serve.server.started", host=self.host, port=self.port,
        )
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        log_event(_LOG, "serve.server.stopped", host=self.host)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ServiceMetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
