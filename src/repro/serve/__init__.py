"""Collision detection as a service: multi-tenant serving frontend.

``repro.serve`` turns the simulator into the thing the paper says the
hardware is — a collision service many clients offload queries to.
:class:`CollisionService` multiplexes N tenant scene streams onto one
shared tile-executor pool with watchdog-rule admission control;
:class:`ServiceMetricsServer` exposes the labelled OpenMetrics /
health endpoints; ``python -m repro.experiments.loadgen`` drives it
with simulated clients and measures the saturation point.

The two contracts everything here is tested against:

* **tenant isolation** — each tenant's per-frame results are
  bit-identical to running its stream solo, at any worker count
  (``tests/serve/test_tenant_isolation.py``);
* **exact telemetry merge** — per-tenant counter shards sum to the
  global registry through the associative/commutative
  ``CounterAlgebra``, whatever interleave the batching produced
  (``tests/observability/test_tenant_merge.py``).
"""

from repro.serve.http import ServiceMetricsServer
from repro.serve.service import (
    AdmissionError,
    CollisionService,
    ServedFrame,
    TenantSession,
)

__all__ = [
    "AdmissionError",
    "CollisionService",
    "ServedFrame",
    "TenantSession",
    "ServiceMetricsServer",
]
