"""Multi-tenant collision service over the shared tile-executor pool.

The paper frames RBCD as a service the CPU offloads collision queries
to; this module makes that literal for the simulator.  A
:class:`CollisionService` accepts frames from N independent tenant
scene streams, admission-controls each stream with the existing
watchdog rules, batches ready frames across tenants onto **one**
shared :class:`~repro.gpu.parallel.TileExecutor` pool (the "device"),
and demultiplexes the results back to per-tenant futures.

Isolation contract (the serving analogue of the zero-feedback
telemetry contract, asserted by
``tests/serve/test_tenant_isolation.py``): every tenant owns a private
:class:`~repro.core.RBCDSystem` — its own GPU state, ZEBs, tile cache
— and only the worker pool is shared.  Per-tile RBCD work is a pure
function of ``(config, fragments)`` and batches are rendered one frame
at a time, so each tenant's per-frame results (pairs, contacts,
counters, cycles, joules, provenance) are bit-identical to running
that tenant's stream solo, at any worker count, no matter how many
other tenants it shares the pool with.  Admission control only ever
rejects frames *before* they enter the pipeline; it never alters an
admitted frame's result.

Telemetry is tenant-scoped end to end:

* every tenant has its own :class:`~repro.observability.live.LiveMonitor`
  shard (sliding windows, p95 latency sketch, watchdog rules) and a
  ``serve.*`` counter shard; the global view is
  ``CounterRegistry.sum`` over the shards — the exact, associative and
  commutative :class:`~repro.observability.counters.CounterAlgebra`,
  so any merge order reproduces the same global registry bit for bit;
* a shared :class:`~repro.observability.tracer.Tracer` (optional)
  records every span of a served frame inside
  ``tracer.context(tenant=..., stream=..., frame_seq=...)``, so even
  the per-tile spans recorded after the executor shard merge are
  attributable to their tenant;
* :meth:`CollisionService.to_openmetrics` renders ``tenant="..."``
  labelled series, and per-tenant watchdog alerts flow through the
  structured JSON log layer under the tenant's logger.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core import RBCDFrameResult, RBCDSystem
from repro.gpu.config import GPUConfig
from repro.gpu.parallel import TileExecutor, make_executor
from repro.observability.counters import CounterRegistry
from repro.observability.live import (
    LiveMonitor,
    WatchdogRule,
    default_rules,
)
from repro.observability.log import get_logger, log_event
from repro.observability.openmetrics import (
    MetricFamily,
    metric_name_of,
    render_families,
)

__all__ = [
    "AdmissionError",
    "ServedFrame",
    "TenantSession",
    "CollisionService",
]

_LOG = get_logger(__name__)

# Label value charset for tenant ids: anything is escapable in
# OpenMetrics, but keeping ids conservative keeps logs, label sets and
# URL paths (/healthz/<tenant>) unambiguous.
_TENANT_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


class AdmissionError(RuntimeError):
    """A frame was refused at the door (backlog or unhealthy tenant).

    Carries the machine-readable ``reason``: ``"backlog"`` when the
    tenant's pending queue is full, ``"unhealthy"`` when a watchdog
    rule is in breach for the tenant.
    """

    def __init__(self, tenant: str, reason: str, detail: str = "") -> None:
        self.tenant = tenant
        self.reason = reason
        message = f"tenant {tenant!r} admission refused: {reason}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


@dataclass(frozen=True)
class ServedFrame:
    """One demultiplexed result: the envelope a tenant's future holds."""

    tenant: str
    stream: str
    frame_seq: int
    batch: int
    result: RBCDFrameResult


@dataclass
class TenantSession:
    """One tenant's private slice of the service.

    ``system`` is the tenant's own :class:`~repro.core.RBCDSystem`
    (sharing only the service's executor pool); ``monitor`` its
    telemetry shard; ``serve_counters`` the admission/batching shard
    merged into the global registry alongside the monitor totals.
    """

    tenant: str
    system: RBCDSystem
    monitor: LiveMonitor
    serve_counters: CounterRegistry
    pending: deque = field(default_factory=deque)
    frame_seq: int = 0

    def registry(self) -> CounterRegistry:
        """This tenant's full counter shard (monitor totals + serve)."""
        return self.monitor.totals_registry().merge(self.serve_counters)


def _serve_counters() -> CounterRegistry:
    registry = CounterRegistry()
    registry.counter(
        "serve.frames_submitted", description="Frames accepted for this tenant."
    )
    registry.counter(
        "serve.frames_completed", description="Frames rendered and demuxed."
    )
    registry.counter(
        "serve.frames_rejected",
        description="Frames refused by admission control.",
    )
    return registry


class CollisionService:
    """Admission-controlled, batching frontend over shared tile workers.

    Parameters
    ----------
    workers, executor_backend:
        The shared pool: every tenant's per-tile RBCD work runs on this
        one executor (``make_executor`` semantics — "thread" or
        "process"; workers=1 stays serial).
    base_config:
        Default :class:`~repro.gpu.config.GPUConfig` for tenants that
        do not bring their own (``register(config=...)`` overrides).
    window, rules:
        Defaults for each tenant's :class:`LiveMonitor` shard.
        ``rules=None`` uses :func:`default_rules`; pass a callable for
        per-tenant rule sets (called with the tenant id).
    tracer:
        Optional shared :class:`~repro.observability.tracer.Tracer`.
        Served frames run inside ``tracer.context(tenant=, stream=,
        frame_seq=)`` so every span — including per-tile spans — is
        tenant-attributable.
    max_pending:
        Admission bound: frames queued per tenant before ``submit``
        raises :class:`AdmissionError` ("backlog").
    admit_unhealthy:
        When False (default), a tenant whose watchdog rules are in
        breach has new frames refused ("unhealthy") until the stream
        recovers.  Rejection is the only feedback admission control is
        allowed: admitted frames are never altered.
    recorder:
        Optional :class:`~repro.observability.FlightRecorder` black
        box.  The service then records every tenant's completed spans
        (routed by the ``tenant`` span attribute), metric snapshots,
        watchdog transitions and admission rejections into the
        recorder's per-stream rings, fingerprints each tenant's
        config, and fires the recorder's triggers on watchdog alerts,
        rejections, and unhandled exceptions in :meth:`step` — so a
        post-mortem dump lands on disk the moment an incident starts.
        When no ``tracer`` was passed, a recorder-owned bounded tracer
        is created so span recording is on without unbounded growth.
        Strictly observational: results are bit-identical with the
        recorder attached or not.
    """

    def __init__(
        self,
        workers: int = 1,
        executor_backend: str | None = None,
        base_config: GPUConfig | None = None,
        window: int = 120,
        rules=None,
        tracer=None,
        max_pending: int = 8,
        admit_unhealthy: bool = False,
        recorder=None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.base_config = (
            base_config if base_config is not None else GPUConfig()
        )
        pool_config = self.base_config.with_executor(
            workers=workers, backend=executor_backend
        )
        self.workers = pool_config.executor_workers
        self.executor: TileExecutor = make_executor(pool_config)
        self.window = window
        self._rules = rules
        self.recorder = recorder
        if recorder is not None:
            tracer = recorder.attach_tracer(tracer)
        self.tracer = tracer
        self.max_pending = max_pending
        self.admit_unhealthy = admit_unhealthy
        self.batches = 0
        self._tenants: dict[str, TenantSession] = {}
        self._lock = threading.Lock()       # queues, counters, tenant map
        self._render_lock = threading.Lock()  # one batch in flight at a time
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Fail pending frames, close tenant systems and the pool."""
        with self._lock:
            self._closed = True
            sessions = list(self._tenants.values())
            for session in sessions:
                while session.pending:
                    _, _, _, future = session.pending.popleft()
                    future.set_exception(
                        AdmissionError(session.tenant, "shutdown")
                    )
        for session in sessions:
            session.system.close()
        self.executor.close()
        log_event(_LOG, "serve.closed", level=logging.DEBUG,
                  tenants=len(sessions))

    def __enter__(self) -> "CollisionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tenants -------------------------------------------------------------

    def register(
        self,
        tenant: str,
        config: GPUConfig | None = None,
        rules: list[WatchdogRule] | None = None,
        window: int | None = None,
        provenance=None,
        tile_profiler=None,
    ) -> TenantSession:
        """Create a tenant session (its own system + telemetry shards)."""
        if not tenant or not set(tenant) <= _TENANT_OK:
            raise ValueError(
                f"tenant id {tenant!r} must be non-empty [A-Za-z0-9._-]"
            )
        if rules is None:
            factory = self._rules
            if callable(factory):
                rules = factory(tenant)
            elif factory is not None:
                rules = list(factory)
            else:
                rules = default_rules()
        monitor = LiveMonitor(
            window=window if window is not None else self.window,
            rules=rules,
            logger=get_logger(f"repro.serve.tenant.{tenant}"),
        )
        system = RBCDSystem(
            config=config if config is not None else self.base_config,
            executor=self.executor,
            monitor=monitor,
            tracer=self.tracer,
            provenance=provenance,
            tile_profiler=tile_profiler,
        )
        if self.recorder is not None:
            self.recorder.attach_monitor(monitor, stream=tenant)
            self.recorder.attach_config(system.config, stream=tenant)
        session = TenantSession(
            tenant=tenant,
            system=system,
            monitor=monitor,
            serve_counters=_serve_counters(),
        )
        with self._lock:
            if self._closed:
                system.close()
                raise RuntimeError("service is closed")
            if tenant in self._tenants:
                system.close()
                raise ValueError(f"tenant {tenant!r} already registered")
            self._tenants[tenant] = session
        log_event(_LOG, "serve.tenant.registered", tenant=tenant,
                  workers=self.workers)
        return session

    def tenants(self) -> list[str]:
        """Registered tenant ids, in the deterministic batching order."""
        with self._lock:
            return sorted(self._tenants)

    def session(self, tenant: str) -> TenantSession:
        with self._lock:
            return self._tenants[tenant]

    # -- admission + submission ----------------------------------------------

    def submit(self, tenant: str, frame, stream: str = "0") -> Future:
        """Queue one prepared GPU frame for a tenant.

        Returns a future resolving to a :class:`ServedFrame`.  Raises
        :class:`AdmissionError` when the tenant's backlog is full or
        its watchdog rules are in breach — rejection happens strictly
        before the frame touches the pipeline, so admitted frames are
        never affected.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            session = self._tenants.get(tenant)
        if session is None:
            raise KeyError(f"unknown tenant {tenant!r}")
        healthy = session.monitor.healthy
        with self._lock:
            if len(session.pending) >= self.max_pending:
                session.serve_counters.add("serve.frames_rejected")
                reason, detail = "backlog", f"{len(session.pending)} pending"
            elif not healthy and not self.admit_unhealthy:
                session.serve_counters.add("serve.frames_rejected")
                reason = "unhealthy"
                detail = ",".join(session.monitor.active_alerts)
            else:
                future: Future = Future()
                seq = session.frame_seq
                session.frame_seq += 1
                session.pending.append((seq, stream, frame, future))
                session.serve_counters.add("serve.frames_submitted")
                return future
        log_event(
            _LOG, "serve.frame.rejected", level=logging.WARNING,
            tenant=tenant, stream=stream, reason=reason, detail=detail,
        )
        if self.recorder is not None:
            self.recorder.record_rejection(
                tenant, reason, detail=detail, stream_name=stream
            )
        raise AdmissionError(tenant, reason, detail)

    # -- batching ------------------------------------------------------------

    def step(self) -> int:
        """Render one batch: at most one ready frame per tenant.

        Tenants are visited in sorted-id order; each admitted frame is
        rendered through that tenant's own system (all tenants share
        the executor pool underneath) and its future resolved with the
        demultiplexed :class:`ServedFrame`.  Returns the number of
        frames rendered (0 = nothing pending).
        """
        with self._render_lock:
            with self._lock:
                batch: list[tuple[TenantSession, int, str, object, Future]] = []
                for tenant in sorted(self._tenants):
                    session = self._tenants[tenant]
                    if session.pending:
                        seq, stream, frame, future = session.pending.popleft()
                        batch.append((session, seq, stream, frame, future))
                if batch:
                    self.batches += 1
                    batch_index = self.batches
            if not batch:
                return 0
            for session, seq, stream, frame, future in batch:
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    if self.tracer is not None:
                        with self.tracer.context(
                            tenant=session.tenant, stream=stream,
                            frame_seq=seq,
                        ):
                            result = session.system.detect_frame(frame)
                    else:
                        result = session.system.detect_frame(frame)
                except BaseException as exc:  # demux failures per frame
                    if self.recorder is not None:
                        self.recorder.record_exception(
                            session.tenant, exc, frame_seq=seq
                        )
                    future.set_exception(exc)
                    continue
                with self._lock:
                    session.serve_counters.add("serve.frames_completed")
                future.set_result(ServedFrame(
                    tenant=session.tenant, stream=stream, frame_seq=seq,
                    batch=batch_index, result=result,
                ))
            return len(batch)

    def drain(self) -> int:
        """Step until every pending frame is served; returns the count."""
        total = 0
        while True:
            served = self.step()
            if served == 0:
                return total
            total += served

    # -- telemetry -----------------------------------------------------------

    def tenant_registry(self, tenant: str) -> CounterRegistry:
        """One tenant's merged counter shard (monitor totals + serve)."""
        return self.session(tenant).registry()

    def global_registry(self) -> CounterRegistry:
        """The global registry: the exact sum of every tenant shard.

        ``CounterRegistry.sum`` is the associative/commutative
        ``CounterAlgebra`` merge, so this equals merging the shards in
        any interleave the batching produced.
        """
        with self._lock:
            sessions = [self._tenants[t] for t in sorted(self._tenants)]
        return CounterRegistry.sum(session.registry() for session in sessions)

    def healthy(self, tenant: str | None = None) -> bool:
        if tenant is not None:
            return self.session(tenant).monitor.healthy
        with self._lock:
            sessions = list(self._tenants.values())
        return all(s.monitor.healthy for s in sessions)

    def alerts(self) -> dict[str, list]:
        """Per-tenant watchdog alerts fired so far."""
        with self._lock:
            sessions = [self._tenants[t] for t in sorted(self._tenants)]
        return {s.tenant: list(s.monitor.alerts) for s in sessions}

    def health_dict(self, tenant: str | None = None) -> dict:
        """The ``/healthz`` (or ``/healthz/<tenant>``) document."""
        if tenant is not None:
            doc = self.session(tenant).monitor.health_dict()
            doc["tenant"] = tenant
            return doc
        with self._lock:
            sessions = [self._tenants[t] for t in sorted(self._tenants)]
            batches = self.batches
        per_tenant = {s.tenant: s.monitor.health_dict() for s in sessions}
        healthy = all(d["status"] == "ok" for d in per_tenant.values())
        return {
            "status": "ok" if healthy else "failing",
            "batches": batches,
            "tenants": per_tenant,
        }

    def snapshot_dict(self) -> dict:
        """The ``/snapshot.json`` document: global + per-tenant state."""
        with self._lock:
            sessions = [self._tenants[t] for t in sorted(self._tenants)]
            batches = self.batches
        return {
            "batches": batches,
            "workers": self.workers,
            "tenants": {
                s.tenant: {
                    "pending": len(s.pending),
                    "snapshot": s.monitor.snapshot_dict(),
                    "serve": s.serve_counters.as_dict(),
                }
                for s in sessions
            },
            "totals": self.global_registry().as_dict(),
        }

    def metric_families(self) -> list[MetricFamily]:
        """Labelled metric families for the ``/metrics`` exposition."""
        with self._lock:
            sessions = [self._tenants[t] for t in sorted(self._tenants)]
            batches = self.batches
            pending = {s.tenant: len(s.pending) for s in sessions}
        families: list[MetricFamily] = []
        families.append(
            MetricFamily(
                "repro_serve_tenants", "gauge",
                help="Registered tenant sessions.",
            ).add(len(sessions))
        )
        families.append(
            MetricFamily(
                "repro_serve_batches", "counter",
                help="Cross-tenant batches dispatched to the shared pool.",
            ).add(batches, suffix="_total")
        )
        health = MetricFamily(
            "repro_tenant_health", "gauge",
            help="1 while the labelled tenant has no watchdog breach.",
        )
        alerts = MetricFamily(
            "repro_tenant_watchdog_alerts", "counter",
            help="Watchdog alerts fired for the labelled tenant.",
        )
        frames = MetricFamily(
            "repro_tenant_frames", "counter",
            help="Frames served for the labelled tenant.",
        )
        rejected = MetricFamily(
            "repro_tenant_rejected", "counter",
            help="Frames refused by admission control for the tenant.",
        )
        queue = MetricFamily(
            "repro_tenant_pending", "gauge",
            help="Frames queued (admitted, not yet served) per tenant.",
        )
        window = MetricFamily(
            "repro_tenant_window", "gauge",
            help="Per-tenant sliding-window aggregates and quantiles "
                 "(p95 frame latency lives at metric="
                 "\"quantile.frame.wall_ms.p95\").",
        )
        for session in sessions:
            tenant = session.tenant
            health.add(1 if session.monitor.healthy else 0, tenant=tenant)
            alerts.add(
                len(session.monitor.alerts), suffix="_total", tenant=tenant
            )
            frames.add(
                session.serve_counters["serve.frames_completed"],
                suffix="_total", tenant=tenant,
            )
            rejected.add(
                session.serve_counters["serve.frames_rejected"],
                suffix="_total", tenant=tenant,
            )
            queue.add(pending[tenant], tenant=tenant)
            for key, value in sorted(session.monitor.window_values().items()):
                window.add(value, tenant=tenant, metric=key)
        families.extend([health, alerts, frames, rejected, queue, window])

        # Registry counters: one family per counter name, one labelled
        # series per tenant.  The (unexposed) global value is the label
        # sum — exactly CounterAlgebra, which is why no separate global
        # family is needed.
        shards = [(s.tenant, s.registry().as_dict()) for s in sessions]
        names = sorted({name for _, counters in shards for name in counters})
        for name in names:
            family = MetricFamily(
                metric_name_of(name), "counter",
                help=f"Cumulative registry counter {name} by tenant.",
            )
            for tenant, counters in shards:
                if name in counters:
                    family.add(counters[name], suffix="_total", tenant=tenant)
            families.append(family)

        if self.recorder is not None:
            stats = self.recorder.stats()
            dumps = MetricFamily(
                "repro_flightrecorder_dumps", "counter",
                help="Post-mortem documents written by the flight recorder.",
            ).add(stats["dumps_written"], suffix="_total")
            suppressed = MetricFamily(
                "repro_flightrecorder_dumps_suppressed", "counter",
                help="Triggered dumps suppressed by the dump limit.",
            ).add(stats["dumps_suppressed"], suffix="_total")
            depth = MetricFamily(
                "repro_flightrecorder_ring_depth", "gauge",
                help="Events currently buffered per flight-recorder ring.",
            )
            for stream in sorted(stats["streams"]):
                for ring, depth_now in sorted(stats["streams"][stream].items()):
                    depth.add(depth_now, stream=stream, ring=ring)
            depth.add(stats["logs"], stream="_service", ring="logs")
            families.extend([dumps, suppressed, depth])
        return families

    def to_openmetrics(self) -> str:
        """Render the labelled multi-tenant exposition (strictly valid)."""
        return render_families(self.metric_families())
