"""Regression attribution CLI: explain the delta between two bench runs.

Diffs two bench documents (:mod:`repro.experiments.bench` JSON, any
supported schema version) through the hierarchical attribution engine
(:mod:`repro.observability.attribution`) and prints a ranked report:
every top-level cycle/joule/wall regression decomposed into
exactly-summing child contributions with explicit residuals, plus a
per-tile spatial localization when both documents carry schema-v6
``tile_profile`` grids::

    PYTHONPATH=src python -m repro.experiments.attribute BASE.json OTHER.json
    PYTHONPATH=src python -m repro.experiments.attribute BASE.json OTHER.json \
        --format json --top-k 20
    PYTHONPATH=src python -m repro.experiments.attribute BASE.json OTHER.json \
        --heatmap-dir out/heatmaps

Exit status: 0 on a successful attribution, 1 when ``--check-zero`` is
given and any metric delta is nonzero (CI's self-check: a document
diffed against itself must attribute to all-zero), 2 on structural
errors (unreadable/invalid documents, missing scenes, or a document
whose internal counter algebra fails its cross-checks).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.observability.attribution import attribute_documents
from repro.observability.export import render_heatmap_ascii, write_heatmap_csv


def _load(path: Path, errors: list[str]):
    try:
        with path.open() as handle:
            return json.load(handle)
    except OSError as exc:
        errors.append(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        errors.append(f"{path} is not valid JSON: {exc}")
    return None


def write_heatmaps(report, directory: Path) -> list[Path]:
    """One CSV per scene per delta grid, named ``<scene>_<grid>.csv``."""
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for scene, attribution in report.scenes.items():
        spatial = attribution.spatial
        if spatial is None:
            continue
        for name, grid in spatial.grids.items():
            written.append(write_heatmap_csv(
                grid, spatial.tiles_x, spatial.tiles_y,
                directory / f"{scene}_{name}.csv",
            ))
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.attribute",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("baseline", type=Path, help="baseline bench document")
    parser.add_argument("current", type=Path, help="bench document to explain")
    parser.add_argument(
        "--format", choices=("text", "json", "csv"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--top-k", type=int, default=10, metavar="K",
        help="ranked causes to print (default: 10)",
    )
    parser.add_argument(
        "--all-trees", action="store_true",
        help="text format: print unchanged trees too",
    )
    parser.add_argument(
        "--heatmap", action="store_true",
        help="text format: append ASCII tile heatmaps of the cycle delta",
    )
    parser.add_argument(
        "--heatmap-dir", type=Path, metavar="DIR",
        help="write per-scene per-grid delta heatmap CSVs into DIR",
    )
    parser.add_argument(
        "--check-zero", action="store_true",
        help="exit 1 unless every metric delta is zero (CI self-check)",
    )
    parser.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level for wall-time evidence (default: 0.05)",
    )
    args = parser.parse_args(argv)

    load_errors: list[str] = []
    baseline = _load(args.baseline, load_errors)
    current = _load(args.current, load_errors)
    if load_errors:
        for err in load_errors:
            print(f"error: {err}", file=sys.stderr)
        return 2

    report = attribute_documents(baseline, current, alpha=args.alpha)

    if args.format == "json":
        print(report.to_json())
    elif args.format == "csv":
        sys.stdout.write(report.to_csv())
    else:
        print(report.render_text(top_k=args.top_k, all_trees=args.all_trees))
        if args.heatmap:
            for scene, attribution in report.scenes.items():
                spatial = attribution.spatial
                if spatial is None or "cycles" not in spatial.grids:
                    continue
                print(f"\n{scene} cycles delta "
                      f"({spatial.tiles_x}x{spatial.tiles_y} tiles):")
                print(render_heatmap_ascii(
                    spatial.grids["cycles"], spatial.tiles_x, spatial.tiles_y
                ))

    if args.heatmap_dir is not None:
        written = write_heatmaps(report, args.heatmap_dir)
        print(f"wrote {len(written)} heatmap CSVs to {args.heatmap_dir}",
              file=sys.stderr)

    if not report.ok:
        for err in report.errors:
            print(f"error: {err}", file=sys.stderr)
        for check in report.checks:
            print(f"cross-check failed: {check}", file=sys.stderr)
        return 2
    if args.check_zero and not report.all_zero:
        print("check-zero: documents differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
