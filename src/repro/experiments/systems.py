"""Run a workload under every system of the paper's evaluation.

For each frame of a benchmark the harness runs:

* the **baseline GPU** (no RBCD hardware, conventional face culling) —
  the denominator of the overhead figures;
* the **RBCD GPU** (deferred culling, ZEB + Z-Overlap unit) — rendered
  once; the tile schedule is then re-solved for each requested ZEB
  count (the functional results are identical, only stalls change);
* **CPU broad CD** (per-frame AABB recompute + all-pairs test);
* **CPU broad+narrow CD** (the above + GJK per surviving pair).

Times and energies are aggregated over the frame sequence, ready for
the Equation 1-4 metrics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cpu.model import CPUConfig, CPUCost, CPUModel
from repro.energy.gpu_power import GPUEnergyModel, GPUEnergyParams
from repro.energy.rbcd_power import RBCDEnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU, FrameResult, _tile_schedule
from repro.gpu.stats import GPUStats
from repro.physics.counters import OpCounter
from repro.scenes.benchmarks import Workload


@dataclass
class SystemCosts:
    """Aggregate time and energy of one system over a run."""

    seconds: float = 0.0
    energy_j: float = 0.0

    def __add__(self, other: "SystemCosts") -> "SystemCosts":
        return SystemCosts(self.seconds + other.seconds, self.energy_j + other.energy_j)

    def __radd__(self, other):
        if other == 0:
            return self
        return self.__add__(other)


@dataclass
class WorkloadRun:
    """All systems' results for one benchmark run."""

    alias: str
    name: str
    frames: int
    gpu_config: GPUConfig
    baseline_stats: GPUStats
    baseline: SystemCosts
    rbcd_stats: dict[int, GPUStats]       # zeb_count -> accumulated stats
    rbcd: dict[int, SystemCosts]          # zeb_count -> GPU(+unit) cost
    cpu_broad: CPUCost
    cpu_narrow: CPUCost
    rbcd_pairs: list[set] = field(default_factory=list)       # per frame
    cpu_broad_pairs: list[set] = field(default_factory=list)
    cpu_narrow_pairs: list[set] = field(default_factory=list)
    overflow_rates: dict[int, float] = field(default_factory=dict)  # M -> rate

    def rbcd_extra_seconds(self, zeb_count: int) -> float:
        return self.rbcd[zeb_count].seconds - self.baseline.seconds

    def rbcd_extra_energy(self, zeb_count: int) -> float:
        return self.rbcd[zeb_count].energy_j - self.baseline.energy_j


def _reschedule_stats(
    result: FrameResult, zeb_count: int, config: GPUConfig
) -> GPUStats:
    """Stats of the same functional frame under a different ZEB count."""
    timing = result.tile_timing
    if timing is None:
        raise ValueError("render_frame must be called with keep_tile_timing=True")
    stats = dataclasses.replace(result.stats)
    new = _tile_schedule(
        timing.raster_cycles, timing.fragment_cycles, timing.overlap_cycles, zeb_count
    )
    stats.raster_pipeline_cycles = new.total_cycles
    stats.raster_stall_cycles = new.stall_cycles
    stats.fragment_idle_cycles = new.total_cycles - float(new.fragment_cycles.sum())
    stats.gpu_cycles = stats.geometry_cycles + new.total_cycles
    return stats


def run_workload(
    workload: Workload,
    gpu_config: GPUConfig | None = None,
    cpu_config: CPUConfig | None = None,
    energy_params: GPUEnergyParams | None = None,
    frames: int | None = None,
    zeb_counts: tuple[int, ...] = (1, 2),
) -> WorkloadRun:
    """Simulate one benchmark under every system."""
    gpu_config = gpu_config if gpu_config is not None else GPUConfig()
    cpu_model = CPUModel(cpu_config)
    gpu_energy = GPUEnergyModel(gpu_config, energy_params)

    baseline_gpu = GPU(gpu_config, rbcd_enabled=False)
    rbcd_gpu = GPU(gpu_config, rbcd_enabled=True)
    world = workload.scene.collision_world()

    baseline_total = GPUStats()
    rbcd_totals: dict[int, GPUStats] = {k: GPUStats() for k in zeb_counts}
    cpu_broad_ops = OpCounter()
    cpu_narrow_ops = OpCounter()
    rbcd_pairs: list[set] = []
    broad_pairs: list[set] = []
    narrow_pairs: list[set] = []

    # The multi-timestep loop reuses one GPU (and its tile-executor
    # pool) across every frame; close the pool when the run ends.
    with rbcd_gpu:
        for t in workload.times(frames):
            frame = workload.scene.frame_at(float(t), gpu_config)

            base = baseline_gpu.render_frame(frame)
            baseline_total += base.stats

            rb = rbcd_gpu.render_frame(frame, keep_tile_timing=True)
            rbcd_pairs.append({(p.id_a, p.id_b) for p in rb.collisions.pairs})
            for k in zeb_counts:
                rbcd_totals[k] += _reschedule_stats(rb, k, gpu_config)

            workload.scene.sync_world(world, float(t))
            broad = world.detect("broad")
            cpu_broad_ops += broad.ops
            broad_pairs.append(set(broad.pairs))
            narrow = world.detect("broad+narrow")
            cpu_narrow_ops += narrow.ops
            narrow_pairs.append(set(narrow.pairs))

    seconds = gpu_config.cycles_to_seconds
    baseline_cost = SystemCosts(
        seconds=seconds(baseline_total.gpu_cycles),
        energy_j=gpu_energy.total_j(baseline_total),
    )
    rbcd_costs: dict[int, SystemCosts] = {}
    for k in zeb_counts:
        stats_k = rbcd_totals[k]
        unit_energy = RBCDEnergyModel(
            gpu_config.with_rbcd(zeb_count=k),
            gpu_static_power_w=gpu_energy.params.static_power_w,
        ).total_j(stats_k)
        rbcd_costs[k] = SystemCosts(
            seconds=seconds(stats_k.gpu_cycles),
            energy_j=gpu_energy.total_j(stats_k) + unit_energy,
        )

    any_k = zeb_counts[0]
    return WorkloadRun(
        alias=workload.alias,
        name=workload.name,
        frames=len(workload.times(frames)),
        gpu_config=gpu_config,
        baseline_stats=baseline_total,
        baseline=baseline_cost,
        rbcd_stats=rbcd_totals,
        rbcd=rbcd_costs,
        cpu_broad=cpu_model.price(cpu_broad_ops),
        cpu_narrow=cpu_model.price(cpu_narrow_ops),
        rbcd_pairs=rbcd_pairs,
        cpu_broad_pairs=broad_pairs,
        cpu_narrow_pairs=narrow_pairs,
        overflow_rates={
            gpu_config.rbcd.list_length: rbcd_totals[any_k].zeb_overflow_rate
        },
    )
