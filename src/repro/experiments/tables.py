"""ASCII rendering of figure data (the harness's terminal output)."""

from __future__ import annotations

from repro.experiments.figures import FigureData


def format_value(value: float) -> str:
    """Compact numeric formatting across magnitudes."""
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render_figure(data: FigureData) -> str:
    """Render one figure's series as an aligned ASCII table."""
    label_width = max(len(label) for label in data.series)
    col_width = max(
        [len(c) for c in data.columns]
        + [
            len(format_value(v))
            for row in data.series.values()
            for v in row.values()
        ]
    ) + 2

    lines = [f"Figure {data.figure}: {data.title}"]
    header = " " * label_width + "".join(c.rjust(col_width) for c in data.columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in data.series.items():
        cells = "".join(format_value(row[c]).rjust(col_width) for c in data.columns)
        lines.append(label.ljust(label_width) + cells)
    if data.paper_reference:
        refs = ", ".join(
            f"{k}~{format_value(v)}" for k, v in data.paper_reference.items()
        )
        lines.append(f"(paper geo.mean reference: {refs})")
    return "\n".join(lines)


def render_comparison(
    data: FigureData, geomean_column: str = "geo.mean"
) -> str:
    """Paper-vs-measured one-liner for EXPERIMENTS.md style reporting."""
    lines = [f"Figure {data.figure}: {data.title}"]
    for label, row in data.series.items():
        measured = row.get(geomean_column)
        paper = data.paper_reference.get(label)
        if measured is None:
            continue
        if paper is not None:
            lines.append(
                f"  {label}: measured geo.mean {format_value(measured)} "
                f"(paper ~{format_value(paper)})"
            )
        else:
            lines.append(f"  {label}: measured geo.mean {format_value(measured)}")
    return "\n".join(lines)
