"""Reconstruct an incident timeline from flight-recorder dumps.

``python -m repro.experiments.postmortem`` loads one or more
``rbcd-postmortem`` documents (written by the
:class:`~repro.observability.FlightRecorder` on a watchdog alert,
admission rejection, crash, or explicit dump), validates them, and
renders a single correlated timeline: tracer spans, metric snapshots,
structured log events, watchdog transitions and admission rejections,
merged and ordered by the recorder's monotonic sequence numbers::

    $ PYTHONPATH=src python -m repro.experiments.postmortem \\
          postmortems/postmortem-0000-alert.json
    postmortem postmortems/postmortem-0000-alert.json (trigger: alert)
      stream t00-cap: 14 spans, 3 snapshots, 1 alert, 0 rejections
    timeline:
      [seq 000000] t00-cap    span      frame=0  frame (cycles=123456)
      ...
      [seq 000031] t00-cap    alert     frame=2  frame-latency-slo: ...
    alert cross-checks:
      [t00-cap] frame-latency-slo @ frame 2: reproduced (...)

Filter with ``--tenant`` and ``--frames A:B``; ``--format json`` emits
the merged timeline as one JSON document for scripting; ``--check``
validates the documents and exits.

Every alert in a dump is cross-checked by replaying the recorded
snapshot stream through the *same* window/EWMA/sketch aggregation the
live monitor ran (:func:`~repro.observability.flightrecorder.verify_alert_record`)
— the recomputed value must equal the recorded one exactly, by the
counter algebra.  A mismatch (tampered or corrupt dump) exits 3; a
ring that underran the metric's replay window is reported as
unverifiable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.observability.flightrecorder import (
    validate_postmortem_document,
    verify_alert_record,
)

__all__ = [
    "main",
    "load_document",
    "timeline_events",
    "frame_of",
    "stream_of",
    "verify_document_alerts",
]


def load_document(path: str | Path) -> dict:
    """Read + validate one dump; raises ``ValueError`` when invalid."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_postmortem_document(doc)
    return doc


def timeline_events(doc: Mapping[str, Any]) -> list[dict]:
    """Every recorded event of one dump, ordered by sequence number."""
    events: list[dict] = []
    for stream_name in sorted(doc["streams"]):
        stream = doc["streams"][stream_name]
        for ring in ("spans", "snapshots", "alerts", "rejections"):
            events.extend(stream[ring])
    events.extend(doc["logs"])
    events.sort(key=lambda record: record["seq"])
    return events


def frame_of(record: Mapping[str, Any]):
    """The frame an event correlates to, or None (e.g. service logs)."""
    if "frame" in record:
        return record["frame"]
    attrs = record.get("attrs")
    if isinstance(attrs, Mapping):
        for key in ("frame_seq", "frame"):
            if key in attrs:
                return attrs[key]
    if "frame_seq" in record:
        return record["frame_seq"]
    return None


def stream_of(record: Mapping[str, Any]):
    """The tenant/stream an event belongs to, or None (global logs)."""
    if "stream" in record:
        return record["stream"]
    # Log events carry the tenant as a structured field when the
    # serving frontend emitted them.
    return record.get("tenant")


def verify_document_alerts(doc: Mapping[str, Any]) -> list[dict]:
    """Replay-verify every alert in a dump; returns verdict dicts."""
    verdicts: list[dict] = []
    for stream_name in sorted(doc["streams"]):
        stream = doc["streams"][stream_name]
        meta = stream.get("monitor")
        for record in stream["alerts"]:
            if record["kind"] != "alert":
                continue
            if meta is None:
                verdicts.append({
                    "stream": stream_name,
                    "rule": record.get("rule"),
                    "metric": record.get("metric"),
                    "frame": record.get("frame"),
                    "expected": record.get("value"),
                    "recomputed": None,
                    "status": "unverifiable",
                    "reason": "dump carries no monitor parameters",
                })
                continue
            verdict = verify_alert_record(record, stream["snapshots"], meta)
            verdicts.append({"stream": stream_name, **verdict})
    return verdicts


def _describe(record: Mapping[str, Any]) -> str:
    kind = record["kind"]
    if kind == "span":
        attrs = record.get("attrs") or {}
        extra = f" stream={attrs['stream']}" if "stream" in attrs else ""
        return f"{record['name']} (cycles={record['cycles']:g}{extra})"
    if kind == "snapshot":
        counters = record.get("counters") or {}
        derived = record.get("derived") or {}
        return (
            f"gpu_cycles={record['gpu_cycles']:g} "
            f"pairs={counters.get('gpu.rbcd.collision_pairs_emitted', 0):g} "
            f"activity={derived.get('rbcd.activity_ratio', 0.0):.4g} "
            f"energy={derived.get('energy.joules', 0.0):.4g}J"
        )
    if kind == "alert":
        return (
            f"{record['rule']}: {record['metric']} = "
            f"{record['value']:.6g} {record['op']} {record['threshold']:.6g}"
        )
    if kind == "recovery":
        return f"{record['rule']} recovered ({record['metric']})"
    if kind == "rejection":
        detail = record.get("detail")
        suffix = f" ({detail})" if detail else ""
        return f"admission refused: {record['reason']}{suffix}"
    if kind == "log":
        return (
            f"{record['level']} {record['event']} ({record['logger']})"
        )
    return repr(record)  # pragma: no cover - validator forbids other kinds


def _parse_frames(spec: str) -> tuple[int, int]:
    try:
        lo_text, hi_text = spec.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise ValueError(
            f"--frames expects A:B (two integers), got {spec!r}"
        ) from None
    if hi < lo:
        raise ValueError(f"--frames window is empty: {lo} > {hi}")
    return lo, hi


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.postmortem",
        description="Render a correlated incident timeline from one or "
                    "more rbcd-postmortem flight-recorder dumps, and "
                    "cross-check every alert against the recorded "
                    "snapshots.",
    )
    parser.add_argument(
        "dumps", nargs="+", metavar="DUMP",
        help="rbcd-postmortem JSON file(s), merged in argument order",
    )
    parser.add_argument(
        "--tenant", default=None, metavar="ID",
        help="only events for this tenant/stream",
    )
    parser.add_argument(
        "--frames", default=None, metavar="A:B",
        help="only events correlated to frames A..B inclusive "
             "(events with no frame attribution are dropped)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the documents against the schema and exit",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the alert-replay cross-check",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    window = None
    if args.frames is not None:
        try:
            window = _parse_frames(args.frames)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    docs = [(path, load_document(path)) for path in args.dumps]
    if args.check:
        for path, doc in docs:
            print(
                f"valid rbcd-postmortem v{doc['version']}: {path}",
                flush=True,
            )
        return 0

    merged: list[tuple[int, dict]] = []
    for index, (_, doc) in enumerate(docs):
        for record in timeline_events(doc):
            merged.append((index, record))
    merged.sort(key=lambda item: (item[0], item[1]["seq"]))

    def keep(record: Mapping[str, Any]) -> bool:
        if args.tenant is not None and stream_of(record) != args.tenant:
            return False
        if window is not None:
            frame = frame_of(record)
            if frame is None or not (window[0] <= frame <= window[1]):
                return False
        return True

    selected = [(i, r) for i, r in merged if keep(r)]
    verdicts: list[dict] = []
    if not args.no_verify:
        for _, doc in docs:
            verdicts.extend(verify_document_alerts(doc))
    mismatches = [v for v in verdicts if v["status"] == "mismatch"]

    if args.format == "json":
        print(json.dumps({
            "dumps": [str(path) for path, _ in docs],
            "events": [
                {"dump": index, **record} for index, record in selected
            ],
            "verdicts": verdicts,
            "ok": not mismatches,
        }, indent=2, sort_keys=True, default=str))
        return 3 if mismatches else 0

    for path, doc in docs:
        trigger = doc["trigger"]
        print(f"postmortem {path} (trigger: {trigger['kind']})", flush=True)
        for stream_name in sorted(doc["streams"]):
            stream = doc["streams"][stream_name]
            alerts = sum(
                1 for r in stream["alerts"] if r["kind"] == "alert"
            )
            config = stream.get("config") or {}
            token = config.get("token")
            suffix = f" (config {token[:12]})" if token else ""
            print(
                f"  stream {stream_name}: {len(stream['spans'])} spans, "
                f"{len(stream['snapshots'])} snapshots, {alerts} alerts, "
                f"{len(stream['rejections'])} rejections{suffix}",
                flush=True,
            )
    print("timeline:", flush=True)
    for index, record in selected:
        prefix = f"dump{index} " if len(docs) > 1 else ""
        stream = stream_of(record) or "-"
        frame = frame_of(record)
        frame_text = f"frame={frame}" if frame is not None else "-"
        print(
            f"  {prefix}[seq {record['seq']:06d}] {stream:<12} "
            f"{record['kind']:<9} {frame_text:<9} {_describe(record)}",
            flush=True,
        )
    if not selected:
        print("  (no events match the filters)", flush=True)
    if verdicts:
        print("alert cross-checks:", flush=True)
        for verdict in verdicts:
            line = (
                f"  [{verdict['stream']}] {verdict['rule']} @ frame "
                f"{verdict['frame']}: {verdict['status']}"
            )
            if verdict["status"] == "reproduced":
                line += f" (value {verdict['recomputed']:.6g})"
            else:
                line += f" ({verdict.get('reason')})"
            print(line, flush=True)
    if mismatches:
        print(
            f"error: {len(mismatches)} alert(s) failed replay "
            f"verification — the dump does not reproduce its own "
            f"window stats",
            file=sys.stderr, flush=True,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
