"""Figure/table generators: the paper's evaluation, row by row.

Each function takes the simulated :class:`WorkloadRun` results and
returns a :class:`FigureData`: labelled series over the benchmarks plus
the geometric mean, exactly the quantities plotted in the paper's
Figures 8-11 and Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.metrics import (
    energy_reduction,
    geomean,
    normalized_energy,
    normalized_time,
    speedup,
)
from repro.experiments.overflow import OverflowSweepResult
from repro.experiments.systems import WorkloadRun

GEOMEAN = "geo.mean"


@dataclass
class FigureData:
    """One figure: named series over the benchmark columns."""

    figure: str
    title: str
    columns: list[str]                      # benchmark aliases + geo.mean
    series: dict[str, dict[str, float]]     # label -> column -> value
    paper_reference: dict[str, float] = field(default_factory=dict)

    def value(self, label: str, column: str) -> float:
        return self.series[label][column]


def _with_geomean(per_alias: dict[str, float]) -> dict[str, float]:
    out = dict(per_alias)
    out[GEOMEAN] = geomean(per_alias.values())
    return out


def _columns(runs: list[WorkloadRun]) -> list[str]:
    return [r.alias for r in runs] + [GEOMEAN]


def fig8a_speedup_broad(runs: list[WorkloadRun], zeb_counts=(1, 2)) -> FigureData:
    """Figure 8a: RBCD speedup vs CPU broad-CD."""
    series = {}
    for k in zeb_counts:
        series[f"{k} ZEB"] = _with_geomean(
            {
                r.alias: speedup(
                    r.cpu_broad.seconds, r.rbcd[k].seconds, r.baseline.seconds
                )
                for r in runs
            }
        )
    return FigureData(
        figure="8a",
        title="RBCD speedup vs. Broad-CD",
        columns=_columns(runs),
        series=series,
        paper_reference={"1 ZEB": 250.0, "2 ZEB": 600.0},
    )


def fig8b_energy_broad(runs: list[WorkloadRun], zeb_counts=(1, 2)) -> FigureData:
    """Figure 8b: energy reduction of RBCD vs CPU broad-CD."""
    series = {}
    for k in zeb_counts:
        series[f"{k} ZEB"] = _with_geomean(
            {
                r.alias: energy_reduction(
                    r.cpu_broad.energy_j, r.rbcd[k].energy_j, r.baseline.energy_j
                )
                for r in runs
            }
        )
    return FigureData(
        figure="8b",
        title="Energy reduction of RBCD vs. Broad-CD",
        columns=_columns(runs),
        series=series,
        paper_reference={"1 ZEB": 273.0, "2 ZEB": 448.0},
    )


def fig8c_speedup_gjk(runs: list[WorkloadRun], zeb_counts=(1, 2)) -> FigureData:
    """Figure 8c: RBCD speedup vs CPU GJK-CD (broad + narrow)."""
    series = {}
    for k in zeb_counts:
        series[f"{k} ZEB"] = _with_geomean(
            {
                r.alias: speedup(
                    r.cpu_narrow.seconds, r.rbcd[k].seconds, r.baseline.seconds
                )
                for r in runs
            }
        )
    return FigureData(
        figure="8c",
        title="RBCD speedup vs. GJK-CD",
        columns=_columns(runs),
        series=series,
        paper_reference={"1 ZEB": 1400.0, "2 ZEB": 3400.0},
    )


def fig8d_energy_gjk(runs: list[WorkloadRun], zeb_counts=(1, 2)) -> FigureData:
    """Figure 8d: energy reduction of RBCD vs CPU GJK-CD."""
    series = {}
    for k in zeb_counts:
        series[f"{k} ZEB"] = _with_geomean(
            {
                r.alias: energy_reduction(
                    r.cpu_narrow.energy_j, r.rbcd[k].energy_j, r.baseline.energy_j
                )
                for r in runs
            }
        )
    return FigureData(
        figure="8d",
        title="Energy reduction of RBCD vs. GJK-CD",
        columns=_columns(runs),
        series=series,
        paper_reference={"1 ZEB": 1750.0, "2 ZEB": 2875.0},
    )


def fig9a_normalized_time(runs: list[WorkloadRun], zeb_counts=(1, 2)) -> FigureData:
    """Figure 9a: GPU time with RBCD normalized to the baseline GPU."""
    series = {}
    for k in zeb_counts:
        series[f"{k} ZEB"] = _with_geomean(
            {
                r.alias: normalized_time(r.rbcd[k].seconds, r.baseline.seconds)
                for r in runs
            }
        )
    return FigureData(
        figure="9a",
        title="Normalized GPU rendering time",
        columns=_columns(runs),
        series=series,
        paper_reference={"1 ZEB": 1.054, "2 ZEB": 1.03},
    )


def fig9b_normalized_energy(runs: list[WorkloadRun], zeb_counts=(1, 2)) -> FigureData:
    """Figure 9b: GPU energy with RBCD normalized to the baseline GPU."""
    series = {}
    for k in zeb_counts:
        series[f"{k} ZEB"] = _with_geomean(
            {
                r.alias: normalized_energy(r.rbcd[k].energy_j, r.baseline.energy_j)
                for r in runs
            }
        )
    return FigureData(
        figure="9b",
        title="Normalized GPU rendering energy",
        columns=_columns(runs),
        series=series,
        paper_reference={"1 ZEB": 1.051, "2 ZEB": 1.035},
    )


def fig10_time_breakdown(runs: list[WorkloadRun], zeb_count: int = 2) -> FigureData:
    """Figure 10: GPU time split between Geometry and Raster pipelines."""
    raster = {}
    geometry = {}
    for r in runs:
        stats = r.rbcd_stats[zeb_count]
        total = stats.gpu_cycles
        raster[r.alias] = stats.raster_pipeline_cycles / total
        geometry[r.alias] = stats.geometry_cycles / total
    return FigureData(
        figure="10",
        title="GPU time breakdown (Geometry vs Raster)",
        columns=_columns(runs),
        series={
            "Raster": _with_geomean(raster),
            "Geometry": _with_geomean(geometry),
        },
        paper_reference={"Raster": 0.9},  # raster dominates
    )


def fig11_activity_factors(runs: list[WorkloadRun], zeb_count: int = 2) -> FigureData:
    """Figure 11: RBCD activity factors normalized to the baseline GPU.

    TC loads, primitives read by the Tile Fetcher, fragments produced,
    and raster busy cycles — the deferred-face-culling overhead story.
    """
    def ratios(extract) -> dict[str, float]:
        return _with_geomean(
            {
                r.alias: extract(r.rbcd_stats[zeb_count]) / extract(r.baseline_stats)
                for r in runs
            }
        )

    return FigureData(
        figure="11",
        title="Raster-side activity normalized to baseline",
        columns=_columns(runs),
        series={
            "TC loads": ratios(lambda s: s.tile_cache_loads),
            "Primitives": ratios(lambda s: s.prims_rasterized),
            "Fragments": ratios(lambda s: s.fragments_produced),
            "Raster cycles": ratios(lambda s: s.raster_cycles),
        },
        paper_reference={
            "TC loads": 1.193,
            "Primitives": 1.184,
            "Fragments": 1.063,
            "Raster cycles": 1.037,
        },
    )


def table3_overflow(sweeps: list[OverflowSweepResult]) -> FigureData:
    """Table 3: ZEB list overflow percentage for M = 4, 8, 16."""
    m_values = sweeps[0].m_values
    series = {}
    for m in m_values:
        per_alias = {s.alias: s.overflow_rate[m] * 100.0 for s in sweeps}
        row = dict(per_alias)
        row["average"] = sum(per_alias.values()) / len(per_alias)
        series[f"M={m}"] = row
    columns = [s.alias for s in sweeps] + ["average"]
    return FigureData(
        figure="Table 3",
        title="ZEB list overflow percentage",
        columns=columns,
        series=series,
        paper_reference={"M=4": 3.68, "M=8": 0.08, "M=16": 0.0},
    )
