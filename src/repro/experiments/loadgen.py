"""Load generator + saturation bench for the collision service.

``python -m repro.experiments.loadgen`` spins up a
:class:`~repro.serve.CollisionService`, registers N simulated tenants
(scenes assigned round-robin from the four benchmark workloads, phase
offsets drawn from a fixed seed), drives their frame streams through
the shared tile-executor pool, and serves the labelled telemetry over
HTTP while the run lasts::

    $ PYTHONPATH=src python -m repro.experiments.loadgen \\
          --tenants 4 --frames 8 --quick
    serving http://127.0.0.1:40213  (endpoints: /metrics /healthz ...)
    served 32 frames for 4 tenants in 2 batches/tenant ...

Two driving modes:

* **closed-loop** (the default): every tenant submits its next frame
  only after the previous batch completed — lockstep batching, zero
  rejections, and therefore *fully deterministic* per-tenant counters
  (the part of the bench document gated for cross-run determinism).
* **open-loop** (``--rate R``): client threads submit at a target
  per-tenant frame rate while a dispatcher thread batches; backlog
  and unhealthy-tenant rejections are counted, and all wall-clock
  figures are statistical.

``--saturation`` ramps the offered rate across ``--rates`` steps (a
fresh service per step, p95 latency SLO armed via ``--max-frame-ms``)
and records the highest rate sustained with zero SLO alerts — the
``max_sustained_fps`` headline of the ``rbcd-serve-bench`` document,
the serving number future performance PRs move.

Like ``repro.experiments.bench``, the emitted document is
schema-validated (:func:`validate_serve_bench_document`) and the
deterministic ``workload`` section must reproduce bit-exactly across
runs (``--selfcheck`` runs it twice and diffs).  ``--append-history``
appends a one-line ndjson summary to the same trend log bench uses
(``benchmarks/history/HISTORY.ndjson``); serve lines are tagged
``"schema": "rbcd-serve-bench"`` so the two conventions share one
file.

``--flight-recorder DIR`` attaches an always-on
:class:`~repro.observability.FlightRecorder` to the service: per-tenant
ring buffers of spans, snapshots, alerts and rejections, with a
post-mortem dump written to DIR on the first watchdog alert or
admission rejection (inspect with
``python -m repro.experiments.postmortem``).  One recorder spans the
whole run, including every saturation step.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments.bench import HISTORY_PATH
from repro.gpu.config import GPUConfig
from repro.observability.flightrecorder import FlightRecorder
from repro.observability.live import PAPER_ACTIVITY_ENVELOPE, default_rules
from repro.observability.log import configure_json_logging
from repro.observability.netutil import linger, write_port_file
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias
from repro.serve import AdmissionError, CollisionService, ServiceMetricsServer

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "HISTORY_PATH",
    "TenantPlan",
    "plan_tenants",
    "run_closed_loop",
    "run_open_loop",
    "run_saturation",
    "build_document",
    "history_line",
    "append_history",
    "validate_serve_bench_document",
    "main",
]

SCHEMA_NAME = "rbcd-serve-bench"
SCHEMA_VERSION = 1
SUPPORTED_VERSIONS = (1,)


class TenantPlan:
    """One simulated client: tenant id, scene, seeded phase offset."""

    def __init__(self, tenant: str, scene: str, detail: int, phase: int) -> None:
        self.tenant = tenant
        self.scene = scene
        self.detail = detail
        self.phase = phase
        self.workload = workload_by_alias(scene, detail=detail)

    def frame_at(self, seq: int, config: GPUConfig):
        """The tenant's frame ``seq``: its animation, phase-shifted.

        Deterministic given (scene, detail, phase, seq, config) — the
        basis of both the isolation differential and the cross-run
        determinism gate.
        """
        workload = self.workload
        dt = workload.duration_s / max(workload.default_frames, 1)
        t = ((seq + self.phase) * dt) % max(workload.duration_s, dt)
        return workload.scene.frame_at(float(t), config)


def plan_tenants(count: int, detail: int, seed: int) -> list[TenantPlan]:
    """Round-robin scene assignment with seeded phase offsets."""
    if count < 1:
        raise ValueError("tenant count must be >= 1")
    rng = random.Random(seed)
    plans = []
    for i in range(count):
        scene = BENCHMARKS[i % len(BENCHMARKS)]
        phase = rng.randrange(0, 64)
        plans.append(TenantPlan(f"t{i:02d}-{scene}", scene, detail, phase))
    return plans


def _make_service(
    args_like: Mapping[str, Any], rules, admit_unhealthy: bool = False,
    recorder=None,
) -> CollisionService:
    config = GPUConfig().with_screen(
        args_like["width"], args_like["height"]
    )
    return CollisionService(
        workers=args_like["workers"],
        executor_backend=args_like["backend"],
        base_config=config,
        window=args_like["window"],
        rules=rules,
        max_pending=args_like["max_pending"],
        admit_unhealthy=admit_unhealthy,
        recorder=recorder,
    )


def run_closed_loop(
    service: CollisionService,
    plans: Sequence[TenantPlan],
    frames: int,
) -> dict[str, Any]:
    """Lockstep batching: one frame per tenant per batch, ``frames``
    batches.  Every frame is admitted (run this on a service built
    with ``admit_unhealthy=True`` — a watchdog breach must not make
    the gated counters depend on rule thresholds), so everything
    returned except wall time is deterministic."""
    for plan in plans:
        service.register(plan.tenant)
    config = service.base_config
    t0 = time.perf_counter()
    served = 0
    for seq in range(frames):
        futures = [
            service.submit(plan.tenant, plan.frame_at(seq, config))
            for plan in plans
        ]
        served += service.drain()
        for future in futures:
            future.result()  # surfaces render errors
    wall_s = time.perf_counter() - t0
    tenants = []
    for plan in plans:
        session = service.session(plan.tenant)
        totals = session.monitor.totals_registry().as_dict()
        tenants.append({
            "tenant": plan.tenant,
            "scene": plan.scene,
            "phase": plan.phase,
            "frames": session.monitor.frames,
            "pairs_total": int(totals.get("gpu.rbcd.collision_pairs_emitted", 0)),
            "counters": totals,
            "serve": session.serve_counters.as_dict(),
        })
    return {
        "mode": "closed-loop",
        "frames_served": served,
        "batches": service.batches,
        "wall_s": wall_s,
        "tenants": tenants,
        "global_counters": service.global_registry().as_dict(),
        "alerts": {
            tenant: [a.as_dict() for a in alerts]
            for tenant, alerts in service.alerts().items()
        },
    }


def run_open_loop(
    service: CollisionService,
    plans: Sequence[TenantPlan],
    frames: int,
    rate_hz: float,
) -> dict[str, Any]:
    """Client threads at a target per-tenant frame rate.

    A dispatcher thread batches continuously; rejected frames
    (backlog / unhealthy) are dropped and counted.  All timing-derived
    numbers are statistical — only suitable for the non-gated sections
    of the bench document.
    """
    if rate_hz <= 0.0:
        raise ValueError("open-loop rate must be > 0")
    for plan in plans:
        service.register(plan.tenant)
    config = service.base_config
    interval = 1.0 / rate_hz
    stop = threading.Event()
    rejected = {plan.tenant: 0 for plan in plans}

    def dispatcher() -> None:
        while not stop.is_set():
            if service.step() == 0:
                time.sleep(interval / 8.0)
        service.drain()

    def client(plan: TenantPlan) -> None:
        next_due = time.perf_counter()
        for seq in range(frames):
            next_due += interval
            try:
                service.submit(plan.tenant, plan.frame_at(seq, config))
            except AdmissionError:
                rejected[plan.tenant] += 1
            delay = next_due - time.perf_counter()
            if delay > 0.0:
                time.sleep(delay)

    t0 = time.perf_counter()
    dispatch_thread = threading.Thread(target=dispatcher, daemon=True)
    dispatch_thread.start()
    client_threads = [
        threading.Thread(target=client, args=(plan,), daemon=True)
        for plan in plans
    ]
    for thread in client_threads:
        thread.start()
    for thread in client_threads:
        thread.join()
    stop.set()
    dispatch_thread.join(timeout=30.0)
    wall_s = time.perf_counter() - t0

    served = sum(
        service.session(plan.tenant).monitor.frames for plan in plans
    )
    p95 = []
    for plan in plans:
        values = service.session(plan.tenant).monitor.window_values()
        if "quantile.frame.wall_ms.p95" in values:
            p95.append(values["quantile.frame.wall_ms.p95"])
    alerts = service.alerts()
    return {
        "mode": "open-loop",
        "offered_rate_hz": rate_hz,
        "frames_offered": frames * len(plans),
        "frames_served": served,
        "frames_rejected": sum(rejected.values()),
        "rejected_by_tenant": rejected,
        "achieved_fps": served / wall_s if wall_s > 0.0 else 0.0,
        "wall_s": wall_s,
        "p95_wall_ms_max": max(p95) if p95 else 0.0,
        "alerts_total": sum(len(a) for a in alerts.values()),
        "slo_alerts": sum(
            1 for tenant_alerts in alerts.values()
            for alert in tenant_alerts
            if alert.rule == "frame-latency-slo"
        ),
    }


def run_saturation(
    args_like: Mapping[str, Any],
    plans_factory,
    rates: Sequence[float],
    rules_factory,
    recorder=None,
) -> dict[str, Any]:
    """Ramp the offered per-tenant rate; find the sustained maximum.

    A fresh service (and fresh tenant monitors) per step keeps steps
    independent.  A step is *sustained* when it finishes with zero
    latency-SLO alerts and zero rejections.  ``max_sustained_fps`` is
    the aggregate served rate of the fastest sustained step (0.0 when
    even the slowest step breaches — a valid, visible result).

    The optional flight ``recorder`` is shared across every step (its
    dump index is monotonic, so step dumps never collide); each step's
    fresh monitors re-attach to the same per-tenant rings.
    """
    steps = []
    max_sustained = 0.0
    for rate in rates:
        with _make_service(
            args_like, rules_factory(), recorder=recorder
        ) as service:
            plans = plans_factory()
            outcome = run_open_loop(
                service, plans, args_like["frames"], rate
            )
        sustained = (
            outcome["slo_alerts"] == 0 and outcome["frames_rejected"] == 0
        )
        steps.append({
            "offered_rate_hz": rate,
            "achieved_fps": outcome["achieved_fps"],
            "frames_served": outcome["frames_served"],
            "frames_rejected": outcome["frames_rejected"],
            "p95_wall_ms_max": outcome["p95_wall_ms_max"],
            "slo_alerts": outcome["slo_alerts"],
            "sustained": sustained,
        })
        if sustained:
            max_sustained = max(max_sustained, outcome["achieved_fps"])
        else:
            break  # the ramp found the knee; higher rates only degrade
    return {"steps": steps, "max_sustained_fps": max_sustained}


# -- bench document ----------------------------------------------------------


def build_document(
    args_like: Mapping[str, Any],
    workload: Mapping[str, Any],
    saturation: Mapping[str, Any] | None,
) -> dict[str, Any]:
    """Assemble the ``rbcd-serve-bench`` v1 document.

    ``workload`` (closed-loop, deterministic counters) is the section
    the cross-run determinism gate covers; ``saturation`` is
    wall-clock-derived and statistical by construction.
    """
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": {
            "tenants": args_like["tenants"],
            "frames": args_like["frames"],
            "width": args_like["width"],
            "height": args_like["height"],
            "detail": args_like["detail"],
            "workers": args_like["workers"],
            "backend": args_like["backend"] or "auto",
            "window": args_like["window"],
            "max_pending": args_like["max_pending"],
            "seed": args_like["seed"],
            "max_frame_ms": args_like["max_frame_ms"],
        },
        "workload": {
            "frames_served": workload["frames_served"],
            "batches": workload["batches"],
            "tenants": workload["tenants"],
            "global_counters": workload["global_counters"],
        },
        "timing": {  # statistical: excluded from the determinism gate
            "wall_s": workload["wall_s"],
        },
        "saturation": dict(saturation) if saturation is not None else None,
    }


def deterministic_sections(doc: Mapping[str, Any]) -> dict[str, Any]:
    """The slice of a document the cross-run determinism gate covers."""
    return {"config": doc["config"], "workload": doc["workload"]}


def history_line(doc: Mapping[str, Any]) -> str:
    """One ndjson line summarizing a serve-bench document.

    Same convention as ``repro.experiments.bench.history_line`` — a
    sorted-key JSON object per run, no timestamps (append order *is*
    the history) — tagged ``"schema": "rbcd-serve-bench"`` so serve
    lines and scene-bench lines can share one trend file.  Carries the
    workload totals and the ``max_sustained_fps`` headline, the serving
    number future performance PRs move.
    """
    config = doc.get("config", {})
    workload = doc.get("workload", {})
    saturation = doc.get("saturation")
    record: dict[str, Any] = {
        "schema": doc.get("schema"),
        "version": doc.get("version"),
        "config": {
            key: config.get(key)
            for key in ("tenants", "frames", "width", "height", "detail",
                        "workers", "backend", "max_frame_ms")
        },
        "workload": {
            "frames_served": workload.get("frames_served"),
            "batches": workload.get("batches"),
            "pairs_total": sum(
                record.get("pairs_total", 0)
                for record in workload.get("tenants", [])
                if isinstance(record, Mapping)
            ),
        },
        "saturation": None,
    }
    if isinstance(saturation, Mapping):
        record["saturation"] = {
            "max_sustained_fps": saturation.get("max_sustained_fps"),
            "steps": len(saturation.get("steps", [])),
        }
    return json.dumps(record, sort_keys=True)


def append_history(doc: Mapping[str, Any], path: Path) -> Path:
    """Append :func:`history_line` to ``path`` (created with parents)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(history_line(doc) + "\n")
    return path


def _fail(errors: list[str], path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def _check_number(errors, path, value, minimum=0.0) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(errors, path, f"expected a number, got {value!r}")
    elif value < minimum:
        _fail(errors, path, f"expected >= {minimum}, got {value!r}")


def _check_int(errors, path, value, minimum=0) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(errors, path, f"expected an int, got {value!r}")
    elif value < minimum:
        _fail(errors, path, f"expected >= {minimum}, got {value!r}")


def _check_tenant(errors, path, record, frames) -> None:
    if not isinstance(record, Mapping):
        _fail(errors, path, f"expected a mapping, got {type(record).__name__}")
        return
    for key in ("tenant", "scene"):
        if not isinstance(record.get(key), str) or not record.get(key):
            _fail(errors, f"{path}.{key}", "expected a non-empty string")
    if record.get("scene") not in BENCHMARKS:
        _fail(errors, f"{path}.scene", f"unknown scene {record.get('scene')!r}")
    _check_int(errors, f"{path}.phase", record.get("phase"))
    _check_int(errors, f"{path}.frames", record.get("frames"))
    if record.get("frames") != frames:
        _fail(
            errors, f"{path}.frames",
            f"expected config.frames={frames}, got {record.get('frames')!r}",
        )
    _check_int(errors, f"{path}.pairs_total", record.get("pairs_total"))
    counters = record.get("counters")
    if not isinstance(counters, Mapping) or not counters:
        _fail(errors, f"{path}.counters", "expected a non-empty mapping")
    else:
        for name, value in counters.items():
            _check_number(errors, f"{path}.counters[{name}]", value)
    serve = record.get("serve")
    if not isinstance(serve, Mapping):
        _fail(errors, f"{path}.serve", "expected a mapping")
    else:
        _check_int(errors, f"{path}.serve[serve.frames_submitted]",
                   serve.get("serve.frames_submitted"))
        if serve.get("serve.frames_rejected") != 0:
            _fail(
                errors, f"{path}.serve[serve.frames_rejected]",
                "closed-loop workload must admit every frame",
            )


def _check_saturation(errors, saturation) -> None:
    if not isinstance(saturation, Mapping):
        _fail(errors, "saturation", "expected a mapping or null")
        return
    steps = saturation.get("steps")
    if not isinstance(steps, list) or not steps:
        _fail(errors, "saturation.steps", "expected a non-empty list")
        return
    previous_rate = 0.0
    for i, step in enumerate(steps):
        path = f"saturation.steps[{i}]"
        if not isinstance(step, Mapping):
            _fail(errors, path, "expected a mapping")
            continue
        _check_number(errors, f"{path}.offered_rate_hz",
                      step.get("offered_rate_hz"), minimum=1e-9)
        rate = step.get("offered_rate_hz")
        if isinstance(rate, (int, float)) and rate <= previous_rate:
            _fail(errors, f"{path}.offered_rate_hz",
                  "ramp rates must be strictly increasing")
        if isinstance(rate, (int, float)):
            previous_rate = rate
        _check_number(errors, f"{path}.achieved_fps", step.get("achieved_fps"))
        _check_number(errors, f"{path}.p95_wall_ms_max",
                      step.get("p95_wall_ms_max"))
        _check_int(errors, f"{path}.frames_served", step.get("frames_served"))
        _check_int(errors, f"{path}.frames_rejected",
                   step.get("frames_rejected"))
        _check_int(errors, f"{path}.slo_alerts", step.get("slo_alerts"))
        if not isinstance(step.get("sustained"), bool):
            _fail(errors, f"{path}.sustained", "expected a bool")
    for i, step in enumerate(steps[:-1]):
        if isinstance(step, Mapping) and step.get("sustained") is False:
            _fail(errors, f"saturation.steps[{i}]",
                  "an unsustained step must end the ramp")
    _check_number(errors, "saturation.max_sustained_fps",
                  saturation.get("max_sustained_fps"))
    sustained_fps = [
        step.get("achieved_fps") for step in steps
        if isinstance(step, Mapping) and step.get("sustained") is True
        and isinstance(step.get("achieved_fps"), (int, float))
    ]
    expected = max(sustained_fps) if sustained_fps else 0.0
    if saturation.get("max_sustained_fps") != expected:
        _fail(errors, "saturation.max_sustained_fps",
              f"expected max over sustained steps ({expected!r}), "
              f"got {saturation.get('max_sustained_fps')!r}")


def validate_serve_bench_document(doc: Any) -> None:
    """Strict structural validation; raises ValueError listing problems."""
    errors: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError(
            f"serve-bench document must be a mapping, got {type(doc).__name__}"
        )
    if doc.get("schema") != SCHEMA_NAME:
        _fail(errors, "schema",
              f"expected {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    version = doc.get("version")
    if version not in SUPPORTED_VERSIONS:
        _fail(errors, "version",
              f"expected one of {SUPPORTED_VERSIONS}, got {version!r}")
    config = doc.get("config")
    if not isinstance(config, Mapping):
        _fail(errors, "config", "expected a mapping")
        config = {}
    _check_int(errors, "config.tenants", config.get("tenants"), minimum=1)
    _check_int(errors, "config.frames", config.get("frames"), minimum=1)
    _check_int(errors, "config.width", config.get("width"), minimum=1)
    _check_int(errors, "config.height", config.get("height"), minimum=1)
    _check_int(errors, "config.workers", config.get("workers"), minimum=1)
    _check_int(errors, "config.seed", config.get("seed"))
    workload = doc.get("workload")
    if not isinstance(workload, Mapping):
        _fail(errors, "workload", "expected a mapping")
        workload = {}
    _check_int(errors, "workload.frames_served",
               workload.get("frames_served"))
    _check_int(errors, "workload.batches", workload.get("batches"))
    tenants = workload.get("tenants")
    if not isinstance(tenants, list):
        _fail(errors, "workload.tenants", "expected a list")
        tenants = []
    if isinstance(config.get("tenants"), int) and len(tenants) != config["tenants"]:
        _fail(errors, "workload.tenants",
              f"expected {config['tenants']} records, got {len(tenants)}")
    seen = set()
    for i, record in enumerate(tenants):
        _check_tenant(errors, f"workload.tenants[{i}]", record,
                      config.get("frames"))
        if isinstance(record, Mapping):
            name = record.get("tenant")
            if name in seen:
                _fail(errors, f"workload.tenants[{i}].tenant",
                      f"duplicate tenant {name!r}")
            seen.add(name)
    counters = workload.get("global_counters")
    if not isinstance(counters, Mapping) or not counters:
        _fail(errors, "workload.global_counters",
              "expected a non-empty mapping")
    timing = doc.get("timing")
    if not isinstance(timing, Mapping):
        _fail(errors, "timing", "expected a mapping")
    else:
        _check_number(errors, "timing.wall_s", timing.get("wall_s"))
    if doc.get("saturation") is not None:
        _check_saturation(errors, doc["saturation"])
    if errors:
        raise ValueError(
            "invalid rbcd-serve-bench document:\n  " + "\n  ".join(errors)
        )


# -- CLI ---------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.loadgen",
        description="Drive N simulated tenants through the collision "
                    "service; optionally ramp to saturation.",
    )
    parser.add_argument(
        "--tenants", type=int, default=4,
        help="simulated tenant streams (default: 4)",
    )
    parser.add_argument(
        "--frames", type=int, default=8,
        help="frames per tenant (per saturation step; default: 8)",
    )
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=192)
    parser.add_argument(
        "--detail", type=int, default=1,
        help="mesh tessellation detail (default: 1)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 160x96, detail 1",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shared tile-executor workers (default: 1)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="executor backend (default: from worker count)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="HZ",
        help="open-loop per-tenant frame rate; omitted = closed-loop "
             "lockstep (deterministic)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for tenant phase offsets (default: 0)",
    )
    parser.add_argument(
        "--window", type=int, default=64,
        help="per-tenant sliding-window length (default: 64)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=8,
        help="admission backlog bound per tenant (default: 8)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="HTTP port; 0 binds an ephemeral port (default: 0)",
    )
    parser.add_argument(
        "--port-file", default=None,
        help="write the bound port number to this file once serving",
    )
    parser.add_argument(
        "--linger", type=float, default=0.0,
        help="keep the endpoint up this many seconds after the run",
    )
    parser.add_argument(
        "--json-logs", action="store_true",
        help="emit structured JSON log lines on stderr",
    )
    parser.add_argument(
        "--fail-on-alert", action="store_true",
        help="exit 1 if any tenant watchdog alert fired",
    )
    parser.add_argument(
        "--max-activity-ratio", type=float,
        default=PAPER_ACTIVITY_ENVELOPE, metavar="R",
        help="watchdog bound on windowed rbcd.activity_ratio "
             "(default: the paper's 0.01 envelope; negative disables)",
    )
    parser.add_argument(
        "--max-overflow-rate", type=float, default=0.05, metavar="R",
        help="watchdog bound on windowed overflow rates "
             "(default: 0.05; negative disables)",
    )
    parser.add_argument(
        "--max-joules-per-frame", type=float, default=0.01, metavar="J",
        help="watchdog energy budget per frame (default: 0.01 J; "
             "negative disables)",
    )
    parser.add_argument(
        "--max-frame-ms", type=float, default=None, metavar="MS",
        help="p95 latency SLO per tenant (default: off; required "
             "for --saturation)",
    )
    parser.add_argument(
        "--saturation", action="store_true",
        help="ramp the offered rate and record max sustained fps",
    )
    parser.add_argument(
        "--rates", default="10,20,40,80,160", metavar="HZ,HZ,...",
        help="saturation ramp: per-tenant rates to try, ascending "
             "(default: 10,20,40,80,160)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the rbcd-serve-bench JSON document here",
    )
    parser.add_argument(
        "--append-history", nargs="?", type=Path, const=HISTORY_PATH,
        default=None, metavar="PATH",
        help="append a one-line ndjson summary to the shared trend log "
             f"(default file: {HISTORY_PATH})",
    )
    parser.add_argument(
        "--flight-recorder", default=None, metavar="DIR",
        help="attach an always-on flight recorder to the service; a "
             "post-mortem dump is written to DIR on the first watchdog "
             "alert or admission rejection (inspect it with "
             "python -m repro.experiments.postmortem)",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="PATH",
        help="validate an existing document and exit",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help="run the deterministic workload twice and require the "
             "gated sections to match bit-exactly",
    )
    return parser


def _bound(value: float | None) -> float | None:
    return None if value is None or value < 0.0 else value


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.check is not None:
        doc = json.loads(args.check.read_text(encoding="utf-8"))
        validate_serve_bench_document(doc)
        print(f"OK {args.check}: valid {SCHEMA_NAME} v{doc['version']} "
              f"({doc['config']['tenants']} tenants)")
        return 0
    if args.quick:
        args.width, args.height, args.detail = 160, 96, 1
    if args.json_logs:
        configure_json_logging()
    if args.saturation and args.max_frame_ms is None:
        print("--saturation requires --max-frame-ms (the p95 SLO)",
              file=sys.stderr)
        return 2
    if args.saturation and args.rate is not None:
        print("--saturation supplies its own --rates ramp; drop --rate",
              file=sys.stderr)
        return 2

    args_like = {
        "tenants": args.tenants, "frames": args.frames,
        "width": args.width, "height": args.height, "detail": args.detail,
        "workers": args.workers, "backend": args.backend,
        "window": args.window, "max_pending": args.max_pending,
        "seed": args.seed, "max_frame_ms": args.max_frame_ms,
    }

    def rules_factory():
        return default_rules(
            max_activity_ratio=_bound(args.max_activity_ratio),
            max_overflow_rate=_bound(args.max_overflow_rate),
            max_ffstack_overflow_rate=_bound(args.max_overflow_rate),
            max_joules_per_frame=_bound(args.max_joules_per_frame),
            max_frame_ms=args.max_frame_ms,
        )

    def plans_factory():
        return plan_tenants(args.tenants, args.detail, args.seed)

    recorder = None
    if args.flight_recorder is not None:
        recorder = FlightRecorder(dump_dir=args.flight_recorder)

    def run_workload() -> dict[str, Any]:
        closed_loop = args.rate is None
        with _make_service(
            args_like, rules_factory(), admit_unhealthy=closed_loop,
            recorder=recorder,
        ) as service:
            server = ServiceMetricsServer(
                service, host=args.host, port=args.port
            ).start()
            try:
                if args.port_file:
                    write_port_file(args.port_file, server.port)
                print(
                    f"serving {server.url}  (endpoints: /metrics /healthz "
                    f"/healthz/<tenant> /snapshot.json)",
                    flush=True,
                )
                if args.rate is not None:
                    outcome = run_open_loop(
                        service, plans_factory(), args.frames, args.rate
                    )
                else:
                    outcome = run_closed_loop(
                        service, plans_factory(), args.frames
                    )
                linger(args.linger)
            finally:
                server.stop()
        return outcome

    alerts_total = 0
    saturation = None
    try:
        if args.rate is not None and not args.saturation:
            outcome = run_workload()
            print(
                f"open-loop at {args.rate:g} Hz/tenant: served "
                f"{outcome['frames_served']}/{outcome['frames_offered']} "
                f"frames, {outcome['frames_rejected']} rejected, "
                f"{outcome['achieved_fps']:.1f} fps aggregate, "
                f"{outcome['alerts_total']} alert(s)",
                flush=True,
            )
            alerts_total = outcome["alerts_total"]
            doc = None
        else:
            workload = run_workload()
            alerts_total = sum(len(a) for a in workload["alerts"].values())
            print(
                f"served {workload['frames_served']} frames for "
                f"{len(workload['tenants'])} tenants in {workload['batches']} "
                f"batches ({workload['wall_s']:.2f}s): {alerts_total} alert(s)",
                flush=True,
            )
            if args.selfcheck:
                with _make_service(
                    args_like, rules_factory(), admit_unhealthy=True
                ) as service:
                    repeat = run_closed_loop(
                        service, plans_factory(), args.frames
                    )
                first = build_document(args_like, workload, None)
                second = build_document(args_like, repeat, None)
                if (deterministic_sections(first)
                        != deterministic_sections(second)):
                    print("DETERMINISM FAILURE: gated sections differ across "
                          "runs", file=sys.stderr)
                    return 1
                print("selfcheck OK: gated sections bit-identical across "
                      "runs", flush=True)
            if args.saturation:
                rates = [float(r) for r in args.rates.split(",") if r.strip()]
                if rates != sorted(rates) or len(set(rates)) != len(rates):
                    print("--rates must be strictly ascending",
                          file=sys.stderr)
                    return 2
                saturation = run_saturation(
                    args_like, plans_factory, rates, rules_factory,
                    recorder=recorder,
                )
                print(
                    f"saturation: max sustained "
                    f"{saturation['max_sustained_fps']:.1f} fps aggregate "
                    f"over {len(saturation['steps'])} step(s)",
                    flush=True,
                )
            doc = build_document(args_like, workload, saturation)
            validate_serve_bench_document(doc)
            if args.output is not None:
                args.output.parent.mkdir(parents=True, exist_ok=True)
                args.output.write_text(
                    json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                print(f"wrote {args.output}", flush=True)
            if args.append_history is not None:
                append_history(doc, args.append_history)
                print(f"appended history line to {args.append_history}",
                      flush=True)
    finally:
        if recorder is not None:
            recorder.close()

    if args.fail_on_alert and alerts_total:
        print(
            f"loadgen: FAILING — {alerts_total} watchdog alert(s) across "
            f"{args.tenants} tenant(s)",
            file=sys.stderr, flush=True,
        )
        if recorder is not None and recorder.dump_paths:
            dump = recorder.dump_paths[-1]
            print(f"  post-mortem dump: {dump}", file=sys.stderr, flush=True)
            print(
                f"  inspect with: python -m repro.experiments.postmortem "
                f"{dump}",
                file=sys.stderr, flush=True,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
