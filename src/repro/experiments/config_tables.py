"""Printable versions of the paper's configuration tables.

Table 1 lists the benchmark set; Table 2 the CPU/GPU simulation
parameters.  The harness prints these so a run is self-describing.
"""

from __future__ import annotations

from repro.cpu.model import CPUConfig
from repro.gpu.config import GPUConfig
from repro.scenes.benchmarks import all_workloads


def render_table1() -> str:
    """Table 1: the benchmark set."""
    lines = ["Table 1: Benchmarks.", f"{'Benchmark':<18}{'Alias':<9}Description",
             "-" * 44]
    for workload in all_workloads(detail=1):
        lines.append(
            f"{workload.name:<18}{workload.alias:<9}{workload.description}"
        )
    return "\n".join(lines)


def render_table2(gpu: GPUConfig | None = None, cpu: CPUConfig | None = None) -> str:
    """Table 2: CPU/GPU simulation parameters."""
    gpu = gpu if gpu is not None else GPUConfig()
    cpu = cpu if cpu is not None else CPUConfig()
    rows = [
        ("GPU", ""),
        ("Frequency", f"{gpu.frequency_hz / 1e6:.0f} MHz"),
        ("Technology", f"{gpu.technology_nm} nm"),
        ("Voltage", f"{gpu.voltage_v:g} V"),
        ("Screen Resolution", f"{gpu.screen_width}x{gpu.screen_height}"),
        ("Tile Size", f"{gpu.tile_size}x{gpu.tile_size}"),
        ("Vertex Queue (2x)",
         f"{gpu.vertex_queue.entries} entries, {gpu.vertex_queue.bytes_per_entry} B/entry"),
        ("Triangle Queue",
         f"{gpu.triangle_queue.entries} entries, {gpu.triangle_queue.bytes_per_entry} B/entry"),
        ("Fragment Queue",
         f"{gpu.fragment_queue.entries} entries, {gpu.fragment_queue.bytes_per_entry} B/entry"),
        ("Tile Queue",
         f"{gpu.tile_queue.entries} entries, {gpu.tile_queue.bytes_per_entry} B/entry"),
        ("Vertex Cache",
         f"{gpu.vertex_cache.line_bytes} B/line, {gpu.vertex_cache.ways}-way, "
         f"{gpu.vertex_cache.size_bytes // 1024} KB"),
        ("Texture Caches (4x)",
         f"{gpu.texture_cache.line_bytes} B/line, {gpu.texture_cache.ways}-way, "
         f"{gpu.texture_cache.size_bytes // 1024} KB"),
        ("L2 Cache",
         f"{gpu.l2_cache.line_bytes} B/line, {gpu.l2_cache.ways}-way, "
         f"{gpu.l2_cache.size_bytes // 1024} KB, {gpu.l2_cache.latency_cycles} cycles"),
        ("Primitive assembly",
         f"{gpu.primitive_assembly_tris_per_cycle:g} triangle/cycle"),
        ("Rasterizer", f"{gpu.rasterizer_frags_per_cycle:g} fragments/cycle"),
        ("Early Z test",
         f"{gpu.early_z_quads_in_flight} in-flight quad-fragments"),
        ("Vertex Processors", str(gpu.num_vertex_processors)),
        ("Fragment Processors", str(gpu.num_fragment_processors)),
        ("Main memory latency",
         f"{gpu.mem_latency_min_cycles}-{gpu.mem_latency_max_cycles} cycles"),
        ("Bandwidth", f"{gpu.mem_bandwidth_bytes_per_cycle:g} B/cycle"),
        ("ZEB buffers",
         f"{gpu.rbcd.zeb_count}x {gpu.rbcd.element_bits} bit/element, "
         f"{gpu.rbcd.list_length} element/entry, {gpu.tile_pixels} entries, "
         f"{gpu.rbcd.zeb_size_bytes(gpu.tile_pixels) // 1024} KB"),
        ("CPU", ""),
        ("Frequency", f"{cpu.frequency_hz / 1e6:.0f} MHz"),
        ("Technology", f"{cpu.technology_nm} nm"),
        ("Voltage", f"{cpu.voltage_v:g} V"),
        ("Cores", str(cpu.cores)),
        ("L1 I/D Cache", f"{cpu.l1_kb} KB/core"),
        ("L2 Cache", f"{cpu.l2_kb // 1024} MB"),
    ]
    width = max(len(name) for name, _ in rows) + 2
    lines = ["Table 2: CPU/GPU Simulation Parameters."]
    for name, value in rows:
        if value == "":
            lines.append(f"-- {name} " + "-" * (width + 20 - len(name)))
        else:
            lines.append(f"{name:<{width}}{value}")
    return "\n".join(lines)
