"""The paper's evaluation metrics (Equations 1-4).

``Speedup        = t_CPU_CD / (t_GPU_RBCD - t_GPU_baseline)``       (1)
``EnergyReduction= E_CPU_CD / (E_GPU_RBCD - E_GPU_baseline)``       (2)
``NormalizedTime = t_GPU_RBCD / t_GPU_baseline``                    (3)
``NormalizedEnergy = E_GPU_RBCD / E_GPU_baseline``                  (4)

The RBCD quantities include the RBCD unit itself (its cycles are inside
the GPU's schedule; its energy is added to the GPU total).
"""

from __future__ import annotations

import math
from typing import Iterable


def speedup(t_cpu_cd: float, t_gpu_rbcd: float, t_gpu_baseline: float) -> float:
    """Equation (1).  Raises when RBCD added no GPU time at all."""
    delta = t_gpu_rbcd - t_gpu_baseline
    if delta <= 0:
        raise ValueError(
            f"RBCD GPU time ({t_gpu_rbcd}) must exceed baseline ({t_gpu_baseline})"
        )
    return t_cpu_cd / delta


def energy_reduction(e_cpu_cd: float, e_gpu_rbcd: float, e_gpu_baseline: float) -> float:
    """Equation (2)."""
    delta = e_gpu_rbcd - e_gpu_baseline
    if delta <= 0:
        raise ValueError(
            f"RBCD GPU energy ({e_gpu_rbcd}) must exceed baseline ({e_gpu_baseline})"
        )
    return e_cpu_cd / delta


def normalized_time(t_gpu_rbcd: float, t_gpu_baseline: float) -> float:
    """Equation (3)."""
    if t_gpu_baseline <= 0:
        raise ValueError("baseline time must be positive")
    return t_gpu_rbcd / t_gpu_baseline


def normalized_energy(e_gpu_rbcd: float, e_gpu_baseline: float) -> float:
    """Equation (4)."""
    if e_gpu_baseline <= 0:
        raise ValueError("baseline energy must be positive")
    return e_gpu_rbcd / e_gpu_baseline


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
