"""ZEB list-length sensitivity (Table 3, Section 5.3).

Sweeps the ZEB list length M over the same rendered fragment streams:
each frame is rasterized once, then the RBCD unit is re-run with each M
to measure the overflow rate and verify which object pairs survive —
the paper's observation is that at M=8 all collisions are still found
despite a small overflow rate, and at M=16 overflows vanish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.config import GPUConfig
from repro.gpu.parallel import TileExecutor, gather_tile_tasks
from repro.gpu.pipeline import GPU
from repro.gpu.raster import FragmentSoup
from repro.rbcd.unit import RBCDUnit
from repro.scenes.benchmarks import Workload


@dataclass
class OverflowSweepResult:
    """Per-M overflow rates and detected pairs for one workload."""

    alias: str
    m_values: tuple[int, ...]
    overflow_rate: dict[int, float]              # M -> rate over the run
    pairs: dict[int, list[set]]                  # M -> per-frame pair sets
    spare_allocations: dict[int, int] = field(default_factory=dict)

    def missed_pairs(self, m: int, reference_m: int) -> list[set]:
        """Per-frame pairs found at ``reference_m`` but missed at ``m``."""
        return [
            ref - got
            for ref, got in zip(self.pairs[reference_m], self.pairs[m])
        ]

    def all_collisions_detected(self, m: int, reference_m: int) -> bool:
        return all(not missed for missed in self.missed_pairs(m, reference_m))


def rerun_unit(
    frags: FragmentSoup,
    gpu_config: GPUConfig,
    executor: TileExecutor | None = None,
) -> RBCDUnit:
    """Feed a frame's collisionable fragments through a fresh RBCD unit.

    When an ``executor`` is given, tiles run through it (its pool is
    reusable across configs); the merge stays in tile-schedule order
    either way, so the result is identical.
    """
    unit = RBCDUnit(gpu_config)
    tasks = gather_tile_tasks(frags, gpu_config)
    if executor is not None:
        for result in executor.run(gpu_config, tasks):
            unit.absorb(result)
    else:
        for task in tasks:
            unit.process_tile(
                task.tile_index, task.x, task.y, task.z, task.object_id,
                task.front,
            )
    return unit


def overflow_sweep(
    workload: Workload,
    gpu_config: GPUConfig | None = None,
    m_values: tuple[int, ...] = (4, 8, 16),
    frames: int | None = None,
    spare_entries: int = 0,
) -> OverflowSweepResult:
    """Table 3 for one workload: overflow rate and pairs per M."""
    gpu_config = gpu_config if gpu_config is not None else GPUConfig()
    gpu = GPU(gpu_config, rbcd_enabled=True)

    insertions = {m: 0 for m in m_values}
    overflows = {m: 0 for m in m_values}
    spares = {m: 0 for m in m_values}
    pairs: dict[int, list[set]] = {m: [] for m in m_values}

    with gpu:
        for t in workload.times(frames):
            frame = workload.scene.frame_at(float(t), gpu_config)
            result = gpu.render_frame(frame, keep_fragments=True)
            for m in m_values:
                cfg_m = gpu_config.with_rbcd(
                    list_length=m,
                    ff_stack_entries=max(m, gpu_config.rbcd.ff_stack_entries),
                    spare_entries_per_tile=spare_entries,
                )
                # The per-M reruns reuse the frame GPU's executor pool.
                unit = rerun_unit(result.fragments, cfg_m, gpu.executor)
                insertions[m] += unit.insertions
                overflows[m] += unit.overflow_events
                spares[m] += unit.spare_allocations
                pairs[m].append({(p.id_a, p.id_b) for p in unit.report.pairs})

    rates = {
        m: (overflows[m] / insertions[m] if insertions[m] else 0.0)
        for m in m_values
    }
    return OverflowSweepResult(
        alias=workload.alias,
        m_values=tuple(m_values),
        overflow_rate=rates,
        pairs=pairs,
        spare_allocations=spares,
    )
