"""Divergence forensics CLI: explain every RBCD-vs-oracle disagreement.

Runs render-based collision detection (with the provenance recorder
attached) and the exact triangle oracle over one benchmark scene,
classifies every divergence into the root-cause taxonomy of
:mod:`repro.observability.forensics`, writes the pair-evidence ndjson
log, and validates the log against its schema:

    PYTHONPATH=src python -m repro.experiments.explain --scene cap --zeb-elements 2

Exit status 0 means every divergence was classified (no
"unclassified") and the evidence log validated; 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.gpu.config import GPUConfig
from repro.observability.export import to_provenance_ndjson
from repro.observability.forensics import run_forensics
from repro.observability.provenance import validate_provenance_ndjson
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias


def build_config(width: int, height: int, zeb_elements: int) -> GPUConfig:
    """The run's GPU config: screen size + ZEB list length.

    The FF-Stack keeps its Table-2 depth (8) unless the ZEB lists are
    longer — matching how :class:`repro.core.RBCDSystem` scales it.
    """
    return GPUConfig().with_screen(width, height).with_rbcd(
        list_length=zeb_elements,
        ff_stack_entries=max(zeb_elements, 8),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.explain",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--scene", choices=BENCHMARKS, default="cap")
    parser.add_argument(
        "--zeb-elements", type=int, default=8, metavar="M",
        help="ZEB list length M (Table 3 sweeps 4/8/16; 2 forces overflows)",
    )
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=192)
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--detail", type=int, default=1)
    parser.add_argument(
        "--evidence", type=Path, default=None, metavar="FILE",
        help="pair-evidence ndjson path (default: FORENSICS_<scene>.ndjson)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the full forensics report as JSON",
    )
    args = parser.parse_args(argv)

    if args.zeb_elements < 1:
        parser.error("--zeb-elements must be >= 1")

    workload = workload_by_alias(args.scene, detail=args.detail)
    config = build_config(args.width, args.height, args.zeb_elements)
    report = run_forensics(workload, config, frames=args.frames)

    evidence_path = args.evidence
    if evidence_path is None:
        evidence_path = Path(f"FORENSICS_{args.scene}.ndjson")
    ndjson = to_provenance_ndjson(report.recorder)
    evidence_path.write_text(ndjson)
    try:
        validated = validate_provenance_ndjson(ndjson)
    except ValueError as exc:
        print(f"evidence log INVALID: {exc}", file=sys.stderr)
        return 1

    if args.json is not None:
        args.json.write_text(json.dumps(report.as_document(), indent=2))

    print(
        f"scene={report.alias} frames={report.frames} "
        f"resolution={report.resolution[0]}x{report.resolution[1]} "
        f"M={report.zeb_elements}"
    )
    print(
        f"pairs: rbcd={sorted(set().union(*report.rbcd_pairs, set()))} "
        f"oracle={sorted(set().union(*report.oracle_pairs, set()))} "
        f"agreements={report.agreements}"
    )
    print(f"case histogram: {report.recorder.case_histogram()}")
    print(f"evidence: {validated} records -> {evidence_path} (validated)")

    if not report.divergences:
        print("divergences: none — RBCD and the oracle agree everywhere")
        return 0

    print(f"divergences: {len(report.divergences)}")
    for cause, count in sorted(report.by_cause().items()):
        print(f"  {cause}: {count}")
    for divergence in report.divergences:
        print(f"  - {divergence.describe()}")

    if report.unclassified:
        print(
            f"{len(report.unclassified)} divergence(s) UNCLASSIFIED",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
