"""Experiment harness: regenerates every figure and table of the paper."""

from repro.experiments.metrics import (
    energy_reduction,
    geomean,
    normalized_energy,
    normalized_time,
    speedup,
)
from repro.experiments.systems import SystemCosts, WorkloadRun, run_workload
from repro.experiments.runner import run_all_benchmarks
from repro.experiments import figures, tables

__all__ = [
    "SystemCosts",
    "WorkloadRun",
    "energy_reduction",
    "figures",
    "geomean",
    "normalized_energy",
    "normalized_time",
    "run_all_benchmarks",
    "run_workload",
    "speedup",
    "tables",
]
