"""Command-line evaluation runner.

Regenerates every figure and table of the paper's evaluation section
and prints them as ASCII tables:

    python -m repro.experiments [--width W] [--height H] [--frames N]
                                [--detail D] [--workers K]
                                [--executor {serial,thread,process}]

Full WVGA (the default) takes a few minutes; ``--width 400 --height 240``
gives a quick pass with the same shapes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures, tables
from repro.experiments.runner import run_all_benchmarks, run_overflow_sweeps


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument("--width", type=int, default=800)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--detail", type=int, default=2)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel tile-execution workers (results are identical)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default=None,
        help="tile-executor backend (default: process when --workers > 1)",
    )
    args = parser.parse_args(argv)

    start = time.time()
    print(
        f"Simulating 4 benchmarks at {args.width}x{args.height}, "
        f"{args.frames} frames each (two GPU configs + two CPU baselines)...",
        flush=True,
    )
    runs = run_all_benchmarks(
        width=args.width, height=args.height, frames=args.frames,
        detail=args.detail, workers=args.workers,
        executor_backend=args.executor,
    )
    print(f"...done in {time.time() - start:.0f}s\n")

    for figure in (
        figures.fig8a_speedup_broad(runs),
        figures.fig8b_energy_broad(runs),
        figures.fig8c_speedup_gjk(runs),
        figures.fig8d_energy_gjk(runs),
        figures.fig9a_normalized_time(runs),
        figures.fig9b_normalized_energy(runs),
        figures.fig10_time_breakdown(runs),
        figures.fig11_activity_factors(runs),
    ):
        print(tables.render_figure(figure))
        print()

    print("Sweeping ZEB list lengths for Table 3...", flush=True)
    sweeps = run_overflow_sweeps(
        width=args.width, height=args.height, frames=args.frames,
        detail=args.detail, workers=args.workers,
        executor_backend=args.executor,
    )
    print(tables.render_figure(figures.table3_overflow(sweeps)))
    detected = all(s.all_collisions_detected(8, 16) for s in sweeps)
    print(f"\nAll collisions still detected at M=8: {detected}")
    print(f"\nTotal wall time: {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
