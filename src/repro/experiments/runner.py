"""Shared experiment runner with caching.

Full-resolution simulations take seconds per frame, and every figure
bench consumes the same underlying runs, so this module memoizes the
expensive simulation by its parameters: all figure/table benches of one
pytest session share a single set of renders.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.overflow import OverflowSweepResult, overflow_sweep
from repro.experiments.systems import WorkloadRun, run_workload
from repro.gpu.config import GPUConfig
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias


@lru_cache(maxsize=8)
def _cached_run(
    alias: str, width: int, height: int, frames: int, detail: int,
    zeb_counts: tuple[int, ...],
) -> WorkloadRun:
    workload = workload_by_alias(alias, detail)
    config = GPUConfig().with_screen(width, height)
    return run_workload(workload, config, frames=frames, zeb_counts=zeb_counts)


@lru_cache(maxsize=8)
def _cached_sweep(
    alias: str, width: int, height: int, frames: int, detail: int,
    m_values: tuple[int, ...], spare_entries: int,
) -> OverflowSweepResult:
    workload = workload_by_alias(alias, detail)
    config = GPUConfig().with_screen(width, height)
    return overflow_sweep(
        workload, config, m_values=m_values, frames=frames,
        spare_entries=spare_entries,
    )


def run_all_benchmarks(
    width: int = 800,
    height: int = 480,
    frames: int = 8,
    detail: int = 2,
    zeb_counts: tuple[int, ...] = (1, 2),
) -> list[WorkloadRun]:
    """All four Table-1 benchmarks under every system (memoized)."""
    return [
        _cached_run(alias, width, height, frames, detail, tuple(zeb_counts))
        for alias in BENCHMARKS
    ]


def run_overflow_sweeps(
    width: int = 800,
    height: int = 480,
    frames: int = 8,
    detail: int = 2,
    m_values: tuple[int, ...] = (4, 8, 16),
    spare_entries: int = 0,
) -> list[OverflowSweepResult]:
    """Table-3 overflow sweeps for all benchmarks (memoized)."""
    return [
        _cached_sweep(
            alias, width, height, frames, detail, tuple(m_values), spare_entries
        )
        for alias in BENCHMARKS
    ]
