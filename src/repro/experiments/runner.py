"""Shared experiment runner with caching.

Full-resolution simulations take seconds per frame, and every figure
bench consumes the same underlying runs, so this module memoizes the
expensive simulation by its parameters: all figure/table benches of one
pytest session share a single set of renders.

``workers``/``executor_backend`` select the parallel tile-execution
engine (see :mod:`repro.gpu.parallel`); they are part of the memo key
but never change results — the engine's merge is deterministic — only
wall-clock time.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.overflow import OverflowSweepResult, overflow_sweep
from repro.experiments.systems import WorkloadRun, run_workload
from repro.gpu.config import GPUConfig
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias


def _experiment_config(
    width: int, height: int, workers: int, backend: str | None
) -> GPUConfig:
    config = GPUConfig().with_screen(width, height)
    if workers != 1 or backend is not None:
        config = config.with_executor(workers=workers, backend=backend)
    return config


@lru_cache(maxsize=8)
def _cached_run(
    alias: str, width: int, height: int, frames: int, detail: int,
    zeb_counts: tuple[int, ...], workers: int = 1, backend: str | None = None,
) -> WorkloadRun:
    workload = workload_by_alias(alias, detail)
    config = _experiment_config(width, height, workers, backend)
    return run_workload(workload, config, frames=frames, zeb_counts=zeb_counts)


@lru_cache(maxsize=8)
def _cached_sweep(
    alias: str, width: int, height: int, frames: int, detail: int,
    m_values: tuple[int, ...], spare_entries: int,
    workers: int = 1, backend: str | None = None,
) -> OverflowSweepResult:
    workload = workload_by_alias(alias, detail)
    config = _experiment_config(width, height, workers, backend)
    return overflow_sweep(
        workload, config, m_values=m_values, frames=frames,
        spare_entries=spare_entries,
    )


def run_all_benchmarks(
    width: int = 800,
    height: int = 480,
    frames: int = 8,
    detail: int = 2,
    zeb_counts: tuple[int, ...] = (1, 2),
    workers: int = 1,
    executor_backend: str | None = None,
) -> list[WorkloadRun]:
    """All four Table-1 benchmarks under every system (memoized)."""
    return [
        _cached_run(
            alias, width, height, frames, detail, tuple(zeb_counts),
            workers, executor_backend,
        )
        for alias in BENCHMARKS
    ]


def run_overflow_sweeps(
    width: int = 800,
    height: int = 480,
    frames: int = 8,
    detail: int = 2,
    m_values: tuple[int, ...] = (4, 8, 16),
    spare_entries: int = 0,
    workers: int = 1,
    executor_backend: str | None = None,
) -> list[OverflowSweepResult]:
    """Table-3 overflow sweeps for all benchmarks (memoized)."""
    return [
        _cached_sweep(
            alias, width, height, frames, detail, tuple(m_values),
            spare_entries, workers, executor_backend,
        )
        for alias in BENCHMARKS
    ]
