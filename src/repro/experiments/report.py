"""Markdown report generator: paper-vs-measured, auto-written.

Produces an EXPERIMENTS.md-style document from live results so a user
can regenerate the record after changing models or workloads:

    from repro.experiments.report import write_report
    write_report("MY_RESULTS.md", width=400, height=240, frames=4)
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.figures import FigureData
from repro.experiments.overflow import OverflowSweepResult
from repro.experiments.runner import run_all_benchmarks, run_overflow_sweeps
from repro.experiments.systems import WorkloadRun
from repro.experiments.tables import format_value


def _figure_section(data: FigureData) -> str:
    lines = [f"### Figure {data.figure}: {data.title}", ""]
    header = "| series | " + " | ".join(data.columns) + " | paper |"
    rule = "|" + "---|" * (len(data.columns) + 2)
    lines.append(header)
    lines.append(rule)
    for label, row in data.series.items():
        paper = data.paper_reference.get(label)
        cells = " | ".join(format_value(row[c]) for c in data.columns)
        paper_cell = f"~{format_value(paper)}" if paper is not None else "-"
        lines.append(f"| {label} | {cells} | {paper_cell} |")
    lines.append("")
    return "\n".join(lines)


def build_report(
    runs: list[WorkloadRun],
    sweeps: list[OverflowSweepResult],
    setup_note: str = "",
) -> str:
    """Render the full paper-vs-measured markdown document."""
    sections = [
        "# RBCD reproduction — generated results",
        "",
        f"_Generated {time.strftime('%Y-%m-%d %H:%M:%S')}. {setup_note}_",
        "",
        "Series are per-benchmark values plus the geometric mean; the",
        "`paper` column is the paper's reported geo.mean where available.",
        "",
    ]
    for data in (
        figures.fig8a_speedup_broad(runs),
        figures.fig8b_energy_broad(runs),
        figures.fig8c_speedup_gjk(runs),
        figures.fig8d_energy_gjk(runs),
        figures.fig9a_normalized_time(runs),
        figures.fig9b_normalized_energy(runs),
        figures.fig10_time_breakdown(runs),
        figures.fig11_activity_factors(runs),
        figures.table3_overflow(sweeps),
    ):
        sections.append(_figure_section(data))
    detected = all(s.all_collisions_detected(8, 16) for s in sweeps)
    sections.append(
        f"All collisions detected at M=8 despite overflow: **{detected}**."
    )
    sections.append("")
    return "\n".join(sections)


def write_report(
    path,
    width: int = 800,
    height: int = 480,
    frames: int = 8,
    detail: int = 2,
) -> Path:
    """Simulate (memoized) and write the report; returns the path."""
    runs = run_all_benchmarks(width=width, height=height, frames=frames,
                              detail=detail)
    sweeps = run_overflow_sweeps(width=width, height=height, frames=frames,
                                 detail=detail)
    note = (
        f"Setup: {width}x{height}, {frames} frames per benchmark, "
        f"detail {detail}."
    )
    path = Path(path)
    path.write_text(build_report(runs, sweeps, note))
    return path
