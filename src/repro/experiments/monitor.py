"""Run a benchmark scene as a monitored frame stream.

``python -m repro.experiments.monitor`` drives one workload frame after
frame through an :class:`~repro.core.RBCDSystem` with a
:class:`~repro.observability.live.LiveMonitor` attached, and serves the
live telemetry over HTTP while the stream runs::

    $ PYTHONPATH=src python -m repro.experiments.monitor --scene cap
    serving http://127.0.0.1:43815  (endpoints: /metrics /healthz /snapshot.json)
    ...

``--frames 0`` (the default) streams forever, looping the scene's
animation; a finite ``--frames N`` renders N frames, then keeps the
endpoint up for ``--linger`` seconds so scrapers can collect the final
state.  ``--port 0`` binds an ephemeral port; scripts can read it back
from ``--port-file``.  ``--fail-on-alert`` turns any watchdog alert
into exit code 1, which makes the CLI usable as a CI canary::

    $ python -m repro.experiments.monitor --quick --frames 5 --fail-on-alert

Monitoring is strictly observational: the rendered frames, collision
pairs, counters and energy are bit-identical with or without the
monitor attached (see ``tests/integration/test_live_differential.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.core import RBCDSystem
from repro.gpu.config import GPUConfig
from repro.observability.flightrecorder import FlightRecorder
from repro.observability.live import (
    PAPER_ACTIVITY_ENVELOPE,
    LiveMonitor,
    MetricsServer,
    default_rules,
)
from repro.observability.log import configure_json_logging
from repro.observability.netutil import linger, write_port_file
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias

__all__ = ["main", "run_stream"]


def run_stream(
    system: RBCDSystem,
    workload,
    frames: int,
    interval_s: float = 0.0,
    on_frame=None,
) -> int:
    """Render ``frames`` frames (0 = endless) through ``system``.

    The workload's animation is looped: frame ``i`` samples the scene
    at ``(i * dt) % duration``, with ``dt`` chosen so one loop covers
    ``default_frames`` samples.  Returns the number of frames rendered
    (interruptible with Ctrl-C in endless mode).
    """
    dt = workload.duration_s / max(workload.default_frames, 1)
    config = system.config
    rendered = 0
    try:
        while frames == 0 or rendered < frames:
            t = (rendered * dt) % max(workload.duration_s, dt)
            frame = workload.scene.frame_at(float(t), config)
            result = system.detect_frame(frame)
            rendered += 1
            if on_frame is not None:
                on_frame(rendered, result)
            if interval_s > 0.0:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return rendered


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.monitor",
        description="Stream a benchmark scene with live telemetry "
                    "(OpenMetrics /metrics, /healthz, /snapshot.json).",
    )
    parser.add_argument(
        "--scene", choices=BENCHMARKS, default="cap",
        help="benchmark workload to stream (default: cap)",
    )
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=192)
    parser.add_argument(
        "--detail", type=int, default=1,
        help="mesh tessellation detail (default: 1)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 160x96, detail 1",
    )
    parser.add_argument(
        "--frames", type=int, default=0,
        help="frames to render; 0 streams forever (default: 0)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to sleep between frames (default: 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="tile-executor workers (default: 1)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="HTTP port; 0 binds an ephemeral port (default: 0)",
    )
    parser.add_argument(
        "--port-file", default=None,
        help="write the bound port number to this file once serving",
    )
    parser.add_argument(
        "--linger", type=float, default=0.0,
        help="keep the endpoint up this many seconds after the last "
             "frame (finite --frames only; default: 0)",
    )
    parser.add_argument(
        "--window", type=int, default=120,
        help="sliding-window length in frames (default: 120)",
    )
    parser.add_argument(
        "--json-logs", action="store_true",
        help="emit structured JSON log lines on stderr",
    )
    parser.add_argument(
        "--fail-on-alert", action="store_true",
        help="exit 1 if any watchdog alert fired during the stream",
    )
    parser.add_argument(
        "--max-activity-ratio", type=float,
        default=PAPER_ACTIVITY_ENVELOPE, metavar="R",
        help="watchdog bound on windowed rbcd.activity_ratio "
             "(default: the paper's 0.01 envelope; negative disables)",
    )
    parser.add_argument(
        "--max-overflow-rate", type=float, default=0.05, metavar="R",
        help="watchdog bound on windowed ZEB / FF-Stack overflow rates "
             "(default: 0.05; negative disables)",
    )
    parser.add_argument(
        "--max-joules-per-frame", type=float, default=0.01, metavar="J",
        help="watchdog energy budget per frame (default: 0.01 J; "
             "negative disables)",
    )
    parser.add_argument(
        "--max-frame-ms", type=float, default=None, metavar="MS",
        help="opt-in latency SLO on p95 host frame time (default: off)",
    )
    parser.add_argument(
        "--flight-recorder", default=None, metavar="DIR",
        help="attach an always-on flight recorder; a post-mortem dump "
             "is written to DIR on the first watchdog alert (inspect "
             "it with python -m repro.experiments.postmortem)",
    )
    return parser


def _bound(value: float | None) -> float | None:
    return None if value is None or value < 0.0 else value


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.quick:
        args.width, args.height, args.detail = 160, 96, 1
    if args.json_logs:
        configure_json_logging()

    workload = workload_by_alias(args.scene, detail=args.detail)
    config = GPUConfig().with_screen(args.width, args.height)
    rules = default_rules(
        max_activity_ratio=_bound(args.max_activity_ratio),
        max_overflow_rate=_bound(args.max_overflow_rate),
        max_ffstack_overflow_rate=_bound(args.max_overflow_rate),
        max_joules_per_frame=_bound(args.max_joules_per_frame),
        max_frame_ms=args.max_frame_ms,
    )
    monitor = LiveMonitor(window=args.window, rules=rules)
    recorder = None
    if args.flight_recorder is not None:
        recorder = FlightRecorder(dump_dir=args.flight_recorder)

    try:
        with MetricsServer(monitor, host=args.host, port=args.port) as server:
            if args.port_file:
                write_port_file(args.port_file, server.port)
            print(
                f"serving {server.url}  "
                f"(endpoints: /metrics /healthz /snapshot.json)",
                flush=True,
            )
            with RBCDSystem(
                config=config, workers=args.workers, monitor=monitor,
                recorder=recorder,
            ) as system:
                rendered = run_stream(
                    system, workload, args.frames, interval_s=args.interval
                )
            if args.frames != 0:
                linger(args.linger)
    finally:
        if recorder is not None:
            recorder.close()

    status = "ok" if monitor.healthy else "failing"
    print(
        f"rendered {rendered} frames of {args.scene!r}: health {status}, "
        f"{len(monitor.alerts)} alert(s)",
        flush=True,
    )
    for alert in monitor.alerts:
        print(f"  {alert.message}", flush=True)
    if args.fail_on_alert and monitor.alerts:
        # Actionable exit diagnostics on stderr: which rule breached,
        # with what window stats behind it, and where the post-mortem
        # evidence landed.
        print(
            f"monitor: FAILING — {len(monitor.alerts)} watchdog "
            f"alert(s) over {rendered} frames of {args.scene!r}",
            file=sys.stderr, flush=True,
        )
        for alert in monitor.alerts:
            print(
                f"  breached rule {alert.rule!r}: {alert.metric} = "
                f"{alert.value:.6g} {alert.op} threshold "
                f"{alert.threshold:.6g} at frame {alert.frame}",
                file=sys.stderr, flush=True,
            )
        for key, value in sorted(monitor.window_values().items()):
            print(f"  window {key} = {value:.6g}", file=sys.stderr, flush=True)
        if recorder is not None and recorder.dump_paths:
            dump = recorder.dump_paths[-1]
            print(f"  post-mortem dump: {dump}", file=sys.stderr, flush=True)
            print(
                f"  inspect with: python -m repro.experiments.postmortem "
                f"{dump}",
                file=sys.stderr, flush=True,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
