"""Serial-vs-parallel parity check (CI smoke job).

Renders a benchmark scene twice — once on the serial tile executor and
once with a worker pool — and diffs everything observable: collision
pairs, contact records, the full stats dict, and the simulated cycle
count.  Any difference is a determinism bug in the parallel engine.

    PYTHONPATH=src python -m repro.experiments.parity --workers 2

Exit status 0 means bit-identical.
"""

from __future__ import annotations

import argparse
import sys

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU, FrameResult
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias


def _frame_fingerprint(result: FrameResult) -> dict:
    """Everything a frame result exposes, in comparable form."""
    report = result.collisions
    return {
        "pairs": report.as_sorted_pairs(),
        "contacts": {
            (pair.id_a, pair.id_b): [
                (c.x, c.y, c.z_front, c.z_back) for c in points
            ]
            for pair, points in report.contacts.items()
        },
        "pair_records_written": report.pair_records_written,
        "stats": result.stats.as_dict(),
        "gpu_cycles": result.gpu_cycles,
    }


def check_parity(
    alias: str = "temple",
    width: int = 320,
    height: int = 192,
    frames: int = 2,
    detail: int = 1,
    workers: int = 2,
    backend: str = "process",
) -> list[str]:
    """Compare serial and parallel renders; returns mismatch messages."""
    workload = workload_by_alias(alias, detail)
    serial_config = GPUConfig().with_screen(width, height)
    parallel_config = serial_config.with_executor(workers=workers, backend=backend)

    mismatches: list[str] = []
    serial_gpu = GPU(serial_config, rbcd_enabled=True)
    with GPU(parallel_config, rbcd_enabled=True) as parallel_gpu:
        for t in workload.times(frames):
            frame = workload.scene.frame_at(float(t), serial_config)
            serial = _frame_fingerprint(serial_gpu.render_frame(frame))
            parallel = _frame_fingerprint(parallel_gpu.render_frame(frame))
            for key in serial:
                if serial[key] != parallel[key]:
                    mismatches.append(
                        f"{alias} t={t}: {key} differs\n"
                        f"  serial:   {serial[key]}\n"
                        f"  parallel: {parallel[key]}"
                    )
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.parity",
        description="Prove parallel tile execution is bit-identical to serial.",
    )
    parser.add_argument("--benchmark", choices=BENCHMARKS, default="temple")
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=192)
    parser.add_argument("--frames", type=int, default=2)
    parser.add_argument("--detail", type=int, default=1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="process"
    )
    args = parser.parse_args(argv)

    mismatches = check_parity(
        alias=args.benchmark, width=args.width, height=args.height,
        frames=args.frames, detail=args.detail, workers=args.workers,
        backend=args.backend,
    )
    if mismatches:
        print("\n".join(mismatches))
        print(f"PARITY FAIL: {len(mismatches)} mismatch(es)")
        return 1
    print(
        f"PARITY OK: {args.benchmark} x{args.frames} frames, "
        f"{args.backend} pool with {args.workers} workers == serial"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
