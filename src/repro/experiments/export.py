"""Export figure data to CSV / JSON for external plotting.

The harness's native output is ASCII tables; anyone wanting to re-plot
the paper's bar charts can export the same series to machine-readable
files.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.figures import FigureData


def figure_to_csv(data: FigureData) -> str:
    """One CSV table: rows are series, columns are benchmarks."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series"] + data.columns)
    for label, row in data.series.items():
        writer.writerow([label] + [row[c] for c in data.columns])
    return buffer.getvalue()


def figure_to_json(data: FigureData) -> str:
    """Self-describing JSON: figure id, title, series, paper reference."""
    return json.dumps(
        {
            "figure": data.figure,
            "title": data.title,
            "columns": data.columns,
            "series": data.series,
            "paper_reference": data.paper_reference,
        },
        indent=2,
    )


def export_figures(
    figures: list[FigureData], directory, formats: tuple[str, ...] = ("csv", "json")
) -> list[Path]:
    """Write every figure to ``directory``; returns the created paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for data in figures:
        stem = f"fig_{data.figure.lower().replace(' ', '_')}"
        if "csv" in formats:
            path = directory / f"{stem}.csv"
            path.write_text(figure_to_csv(data))
            written.append(path)
        if "json" in formats:
            path = directory / f"{stem}.json"
            path.write_text(figure_to_json(data))
            written.append(path)
    return written
