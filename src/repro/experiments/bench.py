"""Benchmark harness: traced, repeated, energy-priced runs + gating.

``python -m repro.experiments.bench`` renders each benchmark workload
through a traced :class:`~repro.core.RBCDSystem` and writes
``BENCH_rbcd.json``.  Since schema v2 the harness is a regression
instrument, not just a reporter:

* ``--runs N`` repeats every scene N times and records per-stage
  min/median/max wall time with a bootstrap confidence interval (and
  the raw per-run samples, so a later gate can re-test significance);
* every scene carries a modelled **energy** section — the
  Figure-10/11-style per-component joules from
  :class:`~repro.energy.report.EnergyAccount` plus the energy-delay
  product — and the merged counters include the ``energy.*`` namespace;
* ``--baseline FILE`` compares the fresh document against a stored
  baseline (``benchmarks/baselines/*.json``) with
  :func:`repro.observability.regress.compare_documents`; ``--gate``
  turns statistically significant wall regressions or *any*
  deterministic regression (cycles, DRAM bytes, joules, EDP) into a
  non-zero exit;
* ``--profile`` swaps in a
  :class:`~repro.observability.profile.ProfilingTracer` so exported
  traces carry per-stage cProfile hotspots (such documents are marked
  and refused as gate baselines).

The document layout (checked by :func:`validate_bench_document`):

.. code-block:: text

    {
      "schema": "rbcd-bench",          # fixed discriminator
      "version": 6,
      "config": {width, height, frames, detail, quick, runs, profile,
                 kernel_backend, broad_phase,      # (schema v4)
                 tile_cache,                       # (schema v5)
                 tile_profile},                    # (schema v6)
      "stats": {bootstrap_resamples, confidence},
      "scenes": {
        "<alias>": {
          "frames": N, "runs": R,
          "stages": {                  # one entry per span name
            "<stage>": {count, cycles, wall_ms_median, wall_ms_total,
                        wall_ms_min, wall_ms_max, wall_ms_ci95,
                        wall_ms_runs}
          },
          "totals": {fragments_produced, pair_records_written,
                     gpu_cycles, colliding_pairs},
          "throughput": {wall_s, fragments_per_s, pairs_per_s},
          "counters": {"<name>": value},  # merged CounterRegistry
          "energy": {gpu: {...}, rbcd: {...},   # joules per component
                     total_j, delay_s, edp_js},
          "cases": {disjoint, crossing, nested,     # Figure-5 histogram
                    self_filtered, evidence_records},  # (schema v3)
          "tilecache": {enabled, lookups, hits, misses,   # (schema v5)
                        collisions, stores, hit_rate,
                        cycles_saved, signature_cycles,
                        joules_saved, signature_j,
                        effective_gpu_cycles, effective_total_j,
                        per_frame_hits, per_frame_lookups},
          "tile_profile": {enabled,                     # (schema v6)
                           tiles_x, tiles_y, frames,    # when enabled
                           cycles, energy_j, activity,  # flat per-tile
                           hits, lookups}               # grids
        }
      }
    }

Wall-time semantics: a stage's sample is its summed wall time within
one run; ``wall_ms_median``/``min``/``max`` and the CI are over those
per-run samples, ``wall_ms_total`` sums them across runs.  Everything
except wall time is deterministic and asserted identical across runs.

Schema v4 adds the active **kernel backend** (``--kernel-backend``,
resolved through :mod:`repro.gpu.kernels` and threaded into the GPU
config) and the configured software **broad phase** (``--broad-phase``)
to the config block.  All backends are bit-identical, so only wall
times may move between them — but wall time is exactly what the gate
tests, so documents produced under different backends must never gate
against each other silently; recording both keys makes the regress
layer refuse such comparisons.

Schema v5 adds the **cross-frame tile cache**
(:mod:`repro.gpu.tilecache`, ``--tile-cache``): the config block gains
``tile_cache`` and every scene gains a ``tilecache`` block with the
hit/skip histograms (``per_frame_hits``/``per_frame_lookups``), the
modelled savings, and the *effective* cycle/joule totals (reported
total minus savings plus signature overhead).  Replay is exact, so all
v4-era numbers are identical with the cache on or off; only the new
block moves.  The validator accepts v4 documents too (additive change),
but the regress layer treats ``tile_cache`` as a config key — a v4
baseline (implicitly cache-off) gates cleanly against a cache-off v5
run and refuses a cache-on one.

Schema v6 adds **per-tile spatial profiles**
(:class:`~repro.observability.tileprofile.TileProfiler`,
``--tile-profile``): the config block gains ``tile_profile`` and every
scene gains a ``tile_profile`` block with flat per-tile
cycle/energy/activity/cache-hit grids.  Profiling is strictly
observational (differential-tested), so all other numbers are
identical with it on or off; the regress layer treats ``tile_profile``
as a config key like ``tile_cache``, so profiled and unprofiled
documents never gate against each other silently.  The grids feed the
regression **attribution** engine
(:mod:`repro.observability.attribution`): ``--explain`` prints the
top-k attributed causes when ``--gate`` fails (``--explain-json``
additionally writes the full attribution report for CI artifacts), and
every gate failure emits a machine-greppable ``GATE-FAIL`` line.

``--append-history`` appends a one-line ndjson summary per run to
``benchmarks/history/HISTORY.ndjson`` (or a given file), building the
longitudinal record the attribution workflow starts from.

``--quick`` shrinks the run (160x96, 2 frames, detail 1) for CI smoke
jobs; ``--check FILE`` validates an existing document and exits, so CI
can assert the artifact it just produced is well-formed without any
third-party schema library.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median
from typing import Any, Mapping, Sequence

from repro.core import RBCDSystem
from repro.energy.report import FrameEnergyReport
from repro.gpu.config import GPUConfig
from repro.gpu.kernels import backend_names, get_backend as get_kernel_backend
from repro.observability.counters import CounterRegistry
from repro.observability.export import write_chrome_trace, write_ndjson
from repro.observability.profile import ProfilingTracer
from repro.observability.provenance import ProvenanceRecorder
from repro.observability.attribution import attribute_documents
from repro.observability.regress import GatePolicy, GateReport, compare_documents
from repro.observability.stats import bootstrap_ci
from repro.observability.tileprofile import GRID_NAMES, TileProfiler
from repro.observability.tracer import Tracer
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "REQUIRED_STAGES",
    "BOOTSTRAP_RESAMPLES",
    "CONFIDENCE",
    "HISTORY_PATH",
    "run_bench",
    "run_scene",
    "stage_summary",
    "aggregate_stage_runs",
    "gate_against_baseline",
    "validate_bench_document",
    "history_line",
    "append_history",
    "main",
]

SCHEMA_NAME = "rbcd-bench"
SCHEMA_VERSION = 6
# Older schema versions the validator still accepts: v5 and v6 are
# purely additive over v4, so stored v4/v5 baselines remain valid
# documents (whether they may *gate* against a v6 run is the regress
# layer's call, via the config keys).
SUPPORTED_VERSIONS = (4, 5, 6)

# Default history file for --append-history (repo-relative).
HISTORY_PATH = Path("benchmarks/history/HISTORY.ndjson")

# Per-scene "cases" keys (schema v3): the Figure-5 interference-case
# histogram from the provenance recorder, deterministic per scene.
_CASE_KEYS = (
    "disjoint", "crossing", "nested", "self_filtered", "evidence_records",
)

# Stage spans every traced frame is guaranteed to emit; their absence
# in a bench document means the run (or the tracer wiring) is broken.
REQUIRED_STAGES = ("frame", "geometry", "raster", "rbcd", "schedule")

# Bootstrap parameters recorded in the document's ``stats`` block: the
# stored CI bounds are reproducible from the stored samples.
BOOTSTRAP_RESAMPLES = 2000
CONFIDENCE = 0.95

# Per-scene "tilecache" keys (schema v5): cross-frame cache telemetry.
_TILECACHE_INT_KEYS = ("lookups", "hits", "misses", "collisions", "stores")
_TILECACHE_FLOAT_KEYS = (
    "hit_rate", "cycles_saved", "signature_cycles",
    "joules_saved", "signature_j",
    "effective_gpu_cycles", "effective_total_j",
)
_TILECACHE_LIST_KEYS = ("per_frame_hits", "per_frame_lookups")

# Per-scene energy keys the validator requires (mirrors
# FrameEnergyReport.as_dict()).
_ENERGY_GPU_KEYS = (
    "geometry_j", "raster_j", "fragment_j", "memory_j", "static_j", "total_j",
)
_ENERGY_RBCD_KEYS = ("insertion_j", "overlap_j", "output_j", "static_j", "total_j")
_ENERGY_TOP_KEYS = ("total_j", "delay_s", "edp_js")

# Default gate thresholds (GatePolicy is a slots dataclass, so its
# defaults are not reachable as class attributes).
_DEFAULT_POLICY = GatePolicy()


def stage_summary(tracer: Tracer) -> dict[str, dict[str, float]]:
    """Aggregate one run's spans by name: count, wall total, cycles."""
    wall_ms: dict[str, list[float]] = {}
    cycles: dict[str, float] = {}
    for span in tracer.spans:
        wall_ms.setdefault(span.name, []).append(span.wall_s * 1e3)
        cycles[span.name] = cycles.get(span.name, 0.0) + span.cycles
    return {
        name: {
            "count": len(samples),
            "wall_ms_total": sum(samples),
            "cycles": cycles[name],
        }
        for name, samples in wall_ms.items()
    }


def aggregate_stage_runs(
    run_summaries: Sequence[Mapping[str, Mapping[str, float]]]
) -> dict[str, dict[str, Any]]:
    """Merge per-run stage summaries into the schema-v2 stage records.

    Span counts and simulated cycles are deterministic; a mismatch
    across runs means nondeterminism leaked into the model and is an
    error, not a statistic.
    """
    if not run_summaries:
        raise ValueError("need at least one run")
    first = run_summaries[0]
    stages: dict[str, dict[str, Any]] = {}
    for name, record in first.items():
        samples = []
        for i, summary in enumerate(run_summaries):
            other = summary.get(name)
            if other is None:
                raise RuntimeError(
                    f"stage {name!r} missing from run {i}: span structure "
                    f"is nondeterministic"
                )
            for key in ("count", "cycles"):
                if other[key] != record[key]:
                    raise RuntimeError(
                        f"stage {name!r} {key} differs across runs "
                        f"({record[key]} vs run {i}: {other[key]}): "
                        f"the simulation is nondeterministic"
                    )
            samples.append(float(other["wall_ms_total"]))
        lo, hi = bootstrap_ci(
            samples, confidence=CONFIDENCE, n_resamples=BOOTSTRAP_RESAMPLES
        )
        stages[name] = {
            "count": int(record["count"]),
            "cycles": float(record["cycles"]),
            "wall_ms_median": float(median(samples)),
            "wall_ms_total": float(sum(samples)),
            "wall_ms_min": float(min(samples)),
            "wall_ms_max": float(max(samples)),
            "wall_ms_ci95": [lo, hi],
            "wall_ms_runs": samples,
        }
    extra = {
        name for summary in run_summaries for name in summary
    } - set(first)
    if extra:
        raise RuntimeError(
            f"stages {sorted(extra)} appear in some runs only: span "
            f"structure is nondeterministic"
        )
    return stages


def _make_tracer(profile: bool) -> Tracer:
    return ProfilingTracer() if profile else Tracer()


def _tilecache_block(
    enabled: bool,
    registry: CounterRegistry | None,
    per_frame_hits: list[int],
    per_frame_lookups: list[int],
    gpu_cycles: float,
    total_j: float,
) -> dict[str, Any]:
    """Assemble one scene's schema-v5 ``tilecache`` block.

    ``effective_gpu_cycles``/``effective_total_j`` are the reported
    totals minus the modelled replay savings plus the signature
    compare/store overhead — what the hardware would actually spend.
    With the cache off they equal the reported totals exactly.
    """
    counts = registry.as_dict() if registry is not None else {}
    hits = int(counts.get("gpu.tilecache.hits", 0))
    lookups = int(counts.get("gpu.tilecache.lookups", 0))
    cycles_saved = float(counts.get("gpu.tilecache.cycles_saved", 0.0))
    signature_cycles = float(counts.get("gpu.tilecache.signature_cycles", 0.0))
    joules_saved = float(counts.get("gpu.tilecache.joules_saved", 0.0))
    signature_j = float(counts.get("gpu.tilecache.signature_j", 0.0))
    return {
        "enabled": enabled,
        "lookups": lookups,
        "hits": hits,
        "misses": int(counts.get("gpu.tilecache.misses", 0)),
        "collisions": int(counts.get("gpu.tilecache.collisions", 0)),
        "stores": int(counts.get("gpu.tilecache.stores", 0)),
        "hit_rate": hits / lookups if lookups else 0.0,
        "cycles_saved": cycles_saved,
        "signature_cycles": signature_cycles,
        "joules_saved": joules_saved,
        "signature_j": signature_j,
        "effective_gpu_cycles": gpu_cycles - cycles_saved + signature_cycles,
        "effective_total_j": total_j - joules_saved + signature_j,
        "per_frame_hits": list(per_frame_hits),
        "per_frame_lookups": list(per_frame_lookups),
    }


def _tile_profile_block(
    enabled: bool, profiler: TileProfiler | None
) -> dict[str, Any]:
    """Assemble one scene's schema-v6 ``tile_profile`` block.

    Disabled runs record ``{"enabled": False}`` only — no grids — so
    the block stays tiny in the common case while remaining present
    (and therefore part of the cross-run determinism check) always.
    """
    if not enabled or profiler is None:
        return {"enabled": False}
    return {"enabled": True, **profiler.as_dict()}


def run_scene(
    alias: str,
    config: GPUConfig,
    frames: int,
    detail: int,
    runs: int = 1,
    trace_dir: Path | None = None,
    profile: bool = False,
    tile_profile: bool = False,
) -> dict[str, Any]:
    """Render one workload ``runs`` times through a traced system."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    workload = workload_by_alias(alias, detail=detail)
    tracer = _make_tracer(profile)
    recorder = ProvenanceRecorder()
    profiler = TileProfiler() if tile_profile else None
    run_summaries: list[dict] = []
    frame_wall_s_runs: list[float] = []
    first_totals: dict[str, Any] | None = None
    first_counters: dict[str, Any] | None = None
    first_cases: dict[str, int] | None = None
    first_tilecache: dict[str, Any] | None = None
    first_tile_profile: dict[str, Any] | None = None
    energy: FrameEnergyReport | None = None

    with RBCDSystem(
        config=config, tracer=tracer, provenance=recorder,
        tile_profiler=profiler,
    ) as system:
        for run in range(runs):
            tracer.reset()
            recorder.reset()
            if profiler is not None:
                profiler.reset()
            # Each run starts cold: a warm cache would replay run 0's
            # tiles, making runs > 0 legitimately different — the
            # determinism check below would then misfire.
            system.reset_tile_cache()
            fragments = 0
            pair_records = 0
            gpu_cycles = 0.0
            pairs: set[tuple[int, int]] = set()
            counters: CounterRegistry | int = 0
            tc_counters: CounterRegistry | int = 0
            per_frame_hits: list[int] = []
            per_frame_lookups: list[int] = []
            run_energy = FrameEnergyReport()
            for t in workload.times(frames):
                frame = workload.scene.frame_at(float(t), config)
                result = system.detect_frame(frame)
                fragments += result.stats.fragments_produced
                pair_records += result.report.pair_records_written
                gpu_cycles += result.stats.gpu_cycles
                pairs |= result.pairs
                counters = counters + result.stats.registry()
                if result.tilecache is not None:
                    tc_counters = tc_counters + result.tilecache
                    frame_tc = result.tilecache.as_dict()
                    per_frame_hits.append(
                        int(frame_tc.get("gpu.tilecache.hits", 0))
                    )
                    per_frame_lookups.append(
                        int(frame_tc.get("gpu.tilecache.lookups", 0))
                    )
                assert result.energy is not None
                run_energy = run_energy + result.energy
            assert isinstance(counters, CounterRegistry)
            counters = counters + run_energy.registry()
            if isinstance(tc_counters, CounterRegistry):
                counters = counters + tc_counters

            run_summaries.append(stage_summary(tracer))
            frame_wall_s_runs.append(
                sum(s.wall_s for s in tracer.by_name("frame") if s.closed)
            )
            totals = {
                "fragments_produced": fragments,
                "pair_records_written": pair_records,
                "gpu_cycles": gpu_cycles,
                "colliding_pairs": len(pairs),
            }
            cases = dict(recorder.case_histogram())
            cases["self_filtered"] = recorder.self_pairs_filtered
            cases["evidence_records"] = recorder.pairs_recorded
            tilecache = _tilecache_block(
                config.tile_cache_enabled,
                tc_counters if isinstance(tc_counters, CounterRegistry)
                else None,
                per_frame_hits, per_frame_lookups,
                gpu_cycles, run_energy.total_j,
            )
            profile_block = _tile_profile_block(tile_profile, profiler)
            if first_totals is None:
                first_totals = totals
                first_counters = counters.as_dict()
                first_cases = cases
                first_tilecache = tilecache
                first_tile_profile = profile_block
                energy = run_energy
            else:
                # Everything but wall time is a pure function of the
                # scene; catching drift here is a free differential test
                # every multi-run bench performs.  The tilecache and
                # tile_profile blocks participate: each run starts from
                # a cold cache and a reset profiler, so hit patterns
                # and grids must repeat exactly too.
                if (
                    totals != first_totals
                    or counters.as_dict() != first_counters
                    or cases != first_cases
                    or tilecache != first_tilecache
                    or profile_block != first_tile_profile
                ):
                    raise RuntimeError(
                        f"scene {alias!r} run {run} produced different "
                        f"counters than run 0: the simulation is "
                        f"nondeterministic"
                    )

    assert first_totals is not None and first_counters is not None
    assert first_cases is not None and first_tilecache is not None
    assert first_tile_profile is not None and energy is not None
    if trace_dir is not None:
        # Traces from the last run (the tracer holds one run at a time).
        trace_dir.mkdir(parents=True, exist_ok=True)
        write_ndjson(tracer, trace_dir / f"trace_{alias}.ndjson")
        write_chrome_trace(
            tracer,
            trace_dir / f"trace_{alias}.json",
            process_name=f"repro bench:{alias}",
        )
    wall_s = float(median(frame_wall_s_runs))
    return {
        "frames": frames,
        "runs": runs,
        "stages": aggregate_stage_runs(run_summaries),
        "totals": first_totals,
        "throughput": {
            "wall_s": wall_s,
            "fragments_per_s":
                first_totals["fragments_produced"] / wall_s if wall_s else 0.0,
            "pairs_per_s":
                first_totals["pair_records_written"] / wall_s if wall_s else 0.0,
        },
        "counters": first_counters,
        "energy": energy.as_dict(),
        "cases": first_cases,
        "tilecache": first_tilecache,
        "tile_profile": first_tile_profile,
    }


def run_bench(
    scenes: Sequence[str],
    width: int,
    height: int,
    frames: int,
    detail: int,
    quick: bool = False,
    runs: int = 1,
    trace_dir: Path | None = None,
    profile: bool = False,
    kernel_backend: str | None = None,
    broad_phase: str = "lbvh",
    tile_cache: bool | None = None,
    tile_profile: bool = False,
    progress=None,
) -> dict[str, Any]:
    """Run the bench over ``scenes`` and assemble the full document.

    ``kernel_backend`` selects the GPU kernel implementation (default:
    the config's own default, i.e. ``REPRO_KERNEL_BACKEND`` or
    ``vectorized``); the *resolved* name is recorded in the config
    block.  ``broad_phase`` names the software broad phase the
    document's CPU-side numbers assume — the bench itself is GPU-side,
    but the key exists for comparability: two documents measured under
    different configurations must never gate against each other.
    ``tile_cache`` forces the cross-frame tile cache on/off (``None``
    keeps the config default, i.e. ``REPRO_TILE_CACHE``); the resolved
    setting is recorded in the config block for the same reason.
    ``tile_profile`` attaches a per-scene
    :class:`~repro.observability.tileprofile.TileProfiler` and stores
    its grids in the schema-v6 ``tile_profile`` blocks — strictly
    observational, but recorded in the config block so profiled and
    unprofiled documents never gate against each other.
    """
    from repro.physics.world import BROAD_ALGOS

    if broad_phase not in BROAD_ALGOS:
        raise ValueError(f"broad_phase must be one of {BROAD_ALGOS}")
    config = GPUConfig().with_screen(width, height)
    if kernel_backend is not None:
        config = config.with_kernel_backend(kernel_backend)
    if tile_cache is not None:
        config = config.with_tile_cache(tile_cache)
    get_kernel_backend(config.kernel_backend)  # fail fast on bad names
    doc: dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": {
            "width": width,
            "height": height,
            "frames": frames,
            "detail": detail,
            "quick": quick,
            "runs": runs,
            "profile": profile,
            "kernel_backend": config.kernel_backend,
            "broad_phase": broad_phase,
            "tile_cache": config.tile_cache_enabled,
            "tile_profile": tile_profile,
        },
        "stats": {
            "bootstrap_resamples": BOOTSTRAP_RESAMPLES,
            "confidence": CONFIDENCE,
        },
        "scenes": {},
    }
    for alias in scenes:
        if progress is not None:
            progress(alias)
        doc["scenes"][alias] = run_scene(
            alias, config, frames, detail,
            runs=runs, trace_dir=trace_dir, profile=profile,
            tile_profile=tile_profile,
        )
    return doc


def _fail(errors: list[str], path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def _check_number(errors, path, value, minimum=0.0) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(errors, path, f"expected a number, got {type(value).__name__}")
    elif value < minimum:
        _fail(errors, path, f"expected >= {minimum}, got {value}")


def _check_int(errors, path, value, minimum=0) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(errors, path, f"expected an int, got {type(value).__name__}")
    elif value < minimum:
        _fail(errors, path, f"expected >= {minimum}, got {value}")


def _check_stage_record(errors, spath, record, runs) -> None:
    _check_int(errors, f"{spath}.count", record.get("count"), minimum=1)
    for key in ("wall_ms_median", "wall_ms_total", "wall_ms_min",
                "wall_ms_max", "cycles"):
        _check_number(errors, f"{spath}.{key}", record.get(key))
    ci = record.get("wall_ms_ci95")
    if (
        not isinstance(ci, list) or len(ci) != 2
        or any(isinstance(v, bool) or not isinstance(v, (int, float)) for v in ci)
    ):
        _fail(errors, f"{spath}.wall_ms_ci95", "expected [lo, hi] numbers")
    elif ci[0] > ci[1]:
        _fail(errors, f"{spath}.wall_ms_ci95", f"lo > hi ({ci[0]} > {ci[1]})")
    samples = record.get("wall_ms_runs")
    if not isinstance(samples, list) or not samples:
        _fail(errors, f"{spath}.wall_ms_runs", "expected a non-empty list")
    else:
        for i, value in enumerate(samples):
            _check_number(errors, f"{spath}.wall_ms_runs[{i}]", value)
        if isinstance(runs, int) and 0 < runs != len(samples):
            _fail(
                errors, f"{spath}.wall_ms_runs",
                f"expected {runs} samples (config.runs), got {len(samples)}",
            )


def _check_energy(errors, base, energy) -> None:
    if not isinstance(energy, Mapping):
        _fail(errors, f"{base}.energy", "missing or not an object")
        return
    for block, keys in (("gpu", _ENERGY_GPU_KEYS), ("rbcd", _ENERGY_RBCD_KEYS)):
        entry = energy.get(block)
        if not isinstance(entry, Mapping):
            _fail(errors, f"{base}.energy.{block}", "missing or not an object")
            continue
        for key in keys:
            _check_number(errors, f"{base}.energy.{block}.{key}", entry.get(key))
    for key in _ENERGY_TOP_KEYS:
        _check_number(errors, f"{base}.energy.{key}", energy.get(key))


def _check_tile_profile(errors, base, profile) -> None:
    """Schema-v6 per-scene ``tile_profile`` block: ``{"enabled": False}``
    alone when disabled; dimensions + full-length grids when enabled."""
    ppath = f"{base}.tile_profile"
    if not isinstance(profile, Mapping):
        _fail(errors, ppath, "missing or not an object (schema v6)")
        return
    enabled = profile.get("enabled")
    if not isinstance(enabled, bool):
        _fail(errors, f"{ppath}.enabled", "expected a bool")
        return
    if not enabled:
        return
    for key in ("tiles_x", "tiles_y", "frames"):
        _check_int(errors, f"{ppath}.{key}", profile.get(key), minimum=1)
    tiles_x = profile.get("tiles_x")
    tiles_y = profile.get("tiles_y")
    expected = (
        tiles_x * tiles_y
        if isinstance(tiles_x, int) and isinstance(tiles_y, int)
        else None
    )
    for name in GRID_NAMES:
        grid = profile.get(name)
        if not isinstance(grid, list):
            _fail(errors, f"{ppath}.{name}", "expected a list")
            continue
        if expected is not None and len(grid) != expected:
            _fail(errors, f"{ppath}.{name}",
                  f"expected {expected} cells (tiles_x*tiles_y), "
                  f"got {len(grid)}")
        for i, value in enumerate(grid):
            _check_number(errors, f"{ppath}.{name}[{i}]", value)


def validate_bench_document(doc: Any) -> None:
    """Raise ``ValueError`` (listing every problem) if ``doc`` is not a
    well-formed rbcd-bench document.

    Accepts any version in :data:`SUPPORTED_VERSIONS`: v5 is additive
    over v4 (config ``tile_cache`` + per-scene ``tilecache``) and v6
    over v5 (config ``tile_profile`` + per-scene ``tile_profile``), so
    the new keys are required at their version and skipped below it.
    Unknown *extra* keys are tolerated at any version — additive schema
    growth must not invalidate stored baselines.
    """
    errors: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != SCHEMA_NAME:
        _fail(errors, "schema", f"expected {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    version = doc.get("version")
    if version not in SUPPORTED_VERSIONS:
        _fail(errors, "version",
              f"expected one of {SUPPORTED_VERSIONS}, got {version!r}")
        version = SCHEMA_VERSION  # check the rest at the current schema

    config = doc.get("config")
    runs = None
    if not isinstance(config, Mapping):
        _fail(errors, "config", "missing or not an object")
    else:
        for key in ("width", "height", "frames", "detail", "runs"):
            _check_int(errors, f"config.{key}", config.get(key), minimum=1)
        for key in ("quick", "profile"):
            if not isinstance(config.get(key), bool):
                _fail(errors, f"config.{key}", "expected a bool")
        for key in ("kernel_backend", "broad_phase"):
            value = config.get(key)
            if not isinstance(value, str) or not value:
                _fail(errors, f"config.{key}", "expected a non-empty string")
        if version >= 5 and not isinstance(config.get("tile_cache"), bool):
            _fail(errors, "config.tile_cache", "expected a bool (schema v5)")
        if version >= 6 and not isinstance(config.get("tile_profile"), bool):
            _fail(errors, "config.tile_profile", "expected a bool (schema v6)")
        runs = config.get("runs")

    stats = doc.get("stats")
    if not isinstance(stats, Mapping):
        _fail(errors, "stats", "missing or not an object")
    else:
        _check_int(errors, "stats.bootstrap_resamples",
                   stats.get("bootstrap_resamples"), minimum=1)
        confidence = stats.get("confidence")
        _check_number(errors, "stats.confidence", confidence)
        if isinstance(confidence, (int, float)) and not isinstance(confidence, bool):
            if not 0.0 < confidence < 1.0:
                _fail(errors, "stats.confidence",
                      f"expected a value in (0, 1), got {confidence}")

    scenes = doc.get("scenes")
    if not isinstance(scenes, Mapping) or not scenes:
        _fail(errors, "scenes", "missing, not an object, or empty")
        scenes = {}
    for alias, entry in scenes.items():
        base = f"scenes.{alias}"
        if not isinstance(entry, Mapping):
            _fail(errors, base, "not an object")
            continue
        _check_int(errors, f"{base}.frames", entry.get("frames"), minimum=1)
        _check_int(errors, f"{base}.runs", entry.get("runs"), minimum=1)

        stages = entry.get("stages")
        if not isinstance(stages, Mapping) or not stages:
            _fail(errors, f"{base}.stages", "missing, not an object, or empty")
            stages = {}
        for required in REQUIRED_STAGES:
            if required not in stages:
                _fail(errors, f"{base}.stages", f"missing stage {required!r}")
        for stage, record in stages.items():
            spath = f"{base}.stages.{stage}"
            if not isinstance(record, Mapping):
                _fail(errors, spath, "not an object")
                continue
            _check_stage_record(errors, spath, record, runs)

        totals = entry.get("totals")
        if not isinstance(totals, Mapping):
            _fail(errors, f"{base}.totals", "missing or not an object")
        else:
            for key in ("fragments_produced", "pair_records_written",
                        "colliding_pairs"):
                _check_int(errors, f"{base}.totals.{key}", totals.get(key))
            _check_number(errors, f"{base}.totals.gpu_cycles",
                          totals.get("gpu_cycles"))

        throughput = entry.get("throughput")
        if not isinstance(throughput, Mapping):
            _fail(errors, f"{base}.throughput", "missing or not an object")
        else:
            for key in ("wall_s", "fragments_per_s", "pairs_per_s"):
                _check_number(errors, f"{base}.throughput.{key}",
                              throughput.get(key))

        counters = entry.get("counters")
        if not isinstance(counters, Mapping) or not counters:
            _fail(errors, f"{base}.counters", "missing, not an object, or empty")
        else:
            for name, value in counters.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    _fail(errors, f"{base}.counters.{name}",
                          f"expected a number, got {type(value).__name__}")
            if "energy.total_j" not in counters:
                _fail(errors, f"{base}.counters",
                      "missing the energy.* namespace (energy.total_j)")

        _check_energy(errors, base, entry.get("energy"))

        cases = entry.get("cases")
        if not isinstance(cases, Mapping):
            _fail(errors, f"{base}.cases", "missing or not an object")
        else:
            for key in _CASE_KEYS:
                _check_int(errors, f"{base}.cases.{key}", cases.get(key))

        if version >= 5:
            tilecache = entry.get("tilecache")
            tpath = f"{base}.tilecache"
            if not isinstance(tilecache, Mapping):
                _fail(errors, tpath, "missing or not an object (schema v5)")
            else:
                if not isinstance(tilecache.get("enabled"), bool):
                    _fail(errors, f"{tpath}.enabled", "expected a bool")
                for key in _TILECACHE_INT_KEYS:
                    _check_int(errors, f"{tpath}.{key}", tilecache.get(key))
                for key in _TILECACHE_FLOAT_KEYS:
                    _check_number(errors, f"{tpath}.{key}", tilecache.get(key))
                for key in _TILECACHE_LIST_KEYS:
                    values = tilecache.get(key)
                    if not isinstance(values, list):
                        _fail(errors, f"{tpath}.{key}", "expected a list")
                        continue
                    for i, value in enumerate(values):
                        _check_int(errors, f"{tpath}.{key}[{i}]", value)

        if version >= 6:
            _check_tile_profile(errors, base, entry.get("tile_profile"))

    if errors:
        raise ValueError(
            "invalid rbcd-bench document:\n  " + "\n  ".join(errors)
        )


def gate_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    policy: GatePolicy | None = None,
) -> GateReport:
    """Compare a fresh document against a baseline document.

    Both documents are schema-validated first, and profiled documents
    are refused on either side — cProfile overhead poisons every wall
    number.
    """
    report = GateReport()
    for label, doc in (("baseline", baseline), ("current", current)):
        try:
            validate_bench_document(doc)
        except ValueError as exc:
            report.errors.append(f"{label} document invalid: {exc}")
            continue
        if doc["config"].get("profile"):
            report.errors.append(
                f"{label} document was produced under --profile; "
                f"profiled wall times cannot gate"
            )
    if report.errors:
        return report
    return compare_documents(baseline, current, policy)


def history_line(doc: Mapping[str, Any]) -> str:
    """One ndjson line summarizing a bench document for the history log.

    One JSON object per *scene* field inside a single line per run:
    schema version, workload config fingerprint, and per-scene
    gpu_cycles / total_j / effective totals — enough to plot a metric's
    trajectory or pick two runs to feed the attribution engine, small
    enough to append forever.  No timestamps: the append order is the
    history.
    """
    config = doc.get("config", {})
    record: dict[str, Any] = {
        "schema": doc.get("schema"),
        "version": doc.get("version"),
        "config": {
            key: config.get(key)
            for key in ("width", "height", "frames", "detail", "runs",
                        "kernel_backend", "broad_phase", "tile_cache",
                        "tile_profile")
        },
        "scenes": {},
    }
    for alias, entry in doc.get("scenes", {}).items():
        totals = entry.get("totals", {})
        energy = entry.get("energy", {})
        tilecache = entry.get("tilecache", {})
        record["scenes"][alias] = {
            "gpu_cycles": totals.get("gpu_cycles"),
            "total_j": energy.get("total_j"),
            "edp_js": energy.get("edp_js"),
            "effective_gpu_cycles": tilecache.get("effective_gpu_cycles"),
            "effective_total_j": tilecache.get("effective_total_j"),
        }
    return json.dumps(record, sort_keys=True)


def append_history(doc: Mapping[str, Any], path: Path) -> Path:
    """Append :func:`history_line` to ``path`` (created with parents)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(history_line(doc) + "\n")
    return path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench",
        description="Traced benchmark runs over the paper's four scenes, "
                    "with energy accounting and baseline regression gating.",
    )
    parser.add_argument(
        "--scenes", nargs="+", choices=BENCHMARKS, default=list(BENCHMARKS),
        help="benchmark aliases to run (default: all four)",
    )
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=192)
    parser.add_argument(
        "--frames", type=int, default=4,
        help="animation frames per scene (default: 4)",
    )
    parser.add_argument(
        "--detail", type=int, default=2,
        help="mesh tessellation detail (default: 2)",
    )
    parser.add_argument(
        "--runs", type=int, default=1,
        help="repetitions per scene for wall-time statistics (default: 1)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 160x96, 2 frames, detail 1",
    )
    parser.add_argument(
        "--kernel-backend", choices=backend_names(), default=None,
        help="GPU kernel implementation (default: the config default, "
             "REPRO_KERNEL_BACKEND or 'vectorized'); recorded in the "
             "document's config block",
    )
    parser.add_argument(
        "--broad-phase", default="lbvh",
        help="software broad-phase configuration to record in the "
             "document's config block (default: lbvh)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--tile-cache", dest="tile_cache", action="store_true", default=None,
        help="enable the cross-frame tile cache (repro.gpu.tilecache); "
             "replay is exact, so only the v5 tilecache block moves "
             "(default: the config default, REPRO_TILE_CACHE or off)",
    )
    cache_group.add_argument(
        "--no-tile-cache", dest="tile_cache", action="store_false",
        help="force the cross-frame tile cache off",
    )
    parser.add_argument(
        "--tile-profile", action="store_true",
        help="record per-tile cycle/energy/activity grids into the "
             "schema-v6 tile_profile blocks (strictly observational; "
             "enables the attribution engine's spatial layer)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach cProfile to stage spans; hotspots land in the "
             "exported traces (document is marked and cannot gate)",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_rbcd.json"),
        help="output JSON path (default: BENCH_rbcd.json)",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None,
        help="also write per-scene ndjson + Chrome traces here",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="compare the fresh document against this stored baseline",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero when the baseline comparison finds a "
             "regression (requires --baseline)",
    )
    parser.add_argument(
        "--wall-tol", type=float, default=_DEFAULT_POLICY.wall_tol,
        help="relative wall-time slack before a significant slowdown "
             f"counts as a regression (default: {_DEFAULT_POLICY.wall_tol})",
    )
    parser.add_argument(
        "--metric-tol", type=float, default=_DEFAULT_POLICY.metric_tol,
        help="relative slack for deterministic metrics "
             f"(default: {_DEFAULT_POLICY.metric_tol})",
    )
    parser.add_argument(
        "--alpha", type=float, default=_DEFAULT_POLICY.alpha,
        help=f"significance level for wall-time tests (default: {_DEFAULT_POLICY.alpha})",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="on gate failure, run the attribution engine against the "
             "baseline and print the top attributed causes "
             "(requires --baseline)",
    )
    parser.add_argument(
        "--explain-json", type=Path, default=None, metavar="FILE",
        help="also write the full attribution report as JSON on gate "
             "failure (CI artifact; implies --explain)",
    )
    parser.add_argument(
        "--append-history", nargs="?", type=Path, const=HISTORY_PATH,
        default=None, metavar="FILE",
        help="append a one-line ndjson summary of this run to FILE "
             f"(default: {HISTORY_PATH})",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="FILE",
        help="validate an existing bench document and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.check is not None:
        try:
            doc = json.loads(args.check.read_text())
            validate_bench_document(doc)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"FAIL {args.check}: {exc}", file=sys.stderr)
            return 1
        print(f"OK {args.check}: valid {SCHEMA_NAME} v{doc['version']} "
              f"({len(doc['scenes'])} scenes)")
        return 0

    if args.gate and args.baseline is None:
        parser.error("--gate requires --baseline")
    if args.explain_json is not None:
        args.explain = True
    if args.explain and args.baseline is None:
        parser.error("--explain requires --baseline")

    if args.quick:
        args.width, args.height = 160, 96
        args.frames, args.detail = 2, 1

    doc = run_bench(
        args.scenes, args.width, args.height, args.frames, args.detail,
        quick=args.quick, runs=args.runs, trace_dir=args.trace_dir,
        profile=args.profile, kernel_backend=args.kernel_backend,
        broad_phase=args.broad_phase, tile_cache=args.tile_cache,
        tile_profile=args.tile_profile,
        progress=lambda alias: print(f"bench: {alias} ...", flush=True),
    )
    validate_bench_document(doc)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    if args.append_history is not None:
        append_history(doc, args.append_history)
        print(f"appended history line to {args.append_history}")
    for alias, entry in doc["scenes"].items():
        totals = entry["totals"]
        throughput = entry["throughput"]
        energy = entry["energy"]
        print(
            f"  {alias}: {totals['fragments_produced']} fragments, "
            f"{totals['pair_records_written']} pair records, "
            f"{throughput['fragments_per_s']:.0f} frag/s, "
            f"{energy['total_j'] * 1e3:.3f} mJ, "
            f"EDP {energy['edp_js'] * 1e6:.3f} uJs"
        )
        tilecache = entry["tilecache"]
        if tilecache["enabled"]:
            print(
                f"    tilecache: {tilecache['hits']}/{tilecache['lookups']} "
                f"hits ({tilecache['hit_rate']:.0%}), "
                f"{tilecache['cycles_saved']:.0f} cycles and "
                f"{tilecache['joules_saved'] * 1e9:.3f} nJ replayed away"
            )

    if args.baseline is not None:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {args.baseline}: {exc}", file=sys.stderr)
            return 1
        policy = GatePolicy(
            wall_tol=args.wall_tol, metric_tol=args.metric_tol,
            alpha=args.alpha,
        )
        report = gate_against_baseline(doc, baseline, policy)
        print(f"baseline: {args.baseline}")
        print(report.render())
        if not report.ok:
            print(report.failure_line(), file=sys.stderr)
            if args.explain:
                _explain_failure(
                    report, baseline, doc, args.alpha, args.explain_json
                )
            if args.gate:
                print("gate: FAILED", file=sys.stderr)
                return 1
            print("gate: regressions found (informational; pass --gate "
                  "to enforce)")
        else:
            print("gate: ok")
    return 0


def _explain_failure(
    report: GateReport,
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    alpha: float,
    json_path: Path | None,
) -> None:
    """Attribute a failed gate: print top causes per regressed metric
    (falling back to the global ranking on structural failures) and
    optionally write the full attribution report for CI to upload."""
    attribution = attribute_documents(baseline, current, alpha=alpha)
    printed = 0
    for regression in report.regressions:
        causes = attribution.explain(regression.scene, regression.metric)
        if not causes:
            continue
        print(f"explain [{regression.scene}] {regression.metric}:",
              file=sys.stderr)
        for cause in causes:
            note = f" — {cause['note']}" if cause["note"] else ""
            print(
                f"  {cause['path']}: {cause['baseline']:.6g} -> "
                f"{cause['current']:.6g} ({cause['delta']:+.6g}, "
                f"{cause['share']:+.1%}){note}",
                file=sys.stderr,
            )
            printed += 1
    if printed == 0:
        # Structural failure or no tree covers the gated metric: the
        # global ranking is still the best available pointer.
        for line in attribution.render_text(top_k=10).splitlines():
            print(f"explain: {line}", file=sys.stderr)
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(attribution.to_json() + "\n")
        print(f"explain: wrote attribution report to {json_path}",
              file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
