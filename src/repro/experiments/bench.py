"""Benchmark harness: traced runs over the paper's four scenes.

``python -m repro.experiments.bench`` renders each benchmark workload
through a traced :class:`~repro.core.RBCDSystem` and writes
``BENCH_rbcd.json`` — per-stage wall-time medians (from the
observability tracer's span stream), simulated cycle totals, and
throughput figures (fragments/sec, pairs/sec).

The document layout (checked by :func:`validate_bench_document`):

.. code-block:: text

    {
      "schema": "rbcd-bench",          # fixed discriminator
      "version": 1,
      "config": {width, height, frames, detail, quick},
      "scenes": {
        "<alias>": {
          "frames": N,
          "stages": {                  # one entry per span name
            "<stage>": {count, wall_ms_median, wall_ms_total, cycles}
          },
          "totals": {fragments_produced, pair_records_written,
                     gpu_cycles, colliding_pairs},
          "throughput": {wall_s, fragments_per_s, pairs_per_s},
          "counters": {"<name>": value}   # merged CounterRegistry
        }
      }
    }

``--quick`` shrinks the run (160x96, 2 frames, detail 1) for CI smoke
jobs; ``--check FILE`` validates an existing document and exits, so CI
can assert the artifact it just produced is well-formed without any
third-party schema library.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median
from typing import Any, Mapping, Sequence

from repro.core import RBCDSystem
from repro.gpu.config import GPUConfig
from repro.observability.counters import CounterRegistry
from repro.observability.export import write_chrome_trace, write_ndjson
from repro.observability.tracer import Tracer
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "REQUIRED_STAGES",
    "run_bench",
    "run_scene",
    "stage_summary",
    "validate_bench_document",
    "main",
]

SCHEMA_NAME = "rbcd-bench"
SCHEMA_VERSION = 1

# Stage spans every traced frame is guaranteed to emit; their absence
# in a bench document means the run (or the tracer wiring) is broken.
REQUIRED_STAGES = ("frame", "geometry", "raster", "rbcd", "schedule")


def stage_summary(tracer: Tracer) -> dict[str, dict[str, float]]:
    """Aggregate a tracer's spans by name: medians, totals, cycles."""
    wall_ms: dict[str, list[float]] = {}
    cycles: dict[str, float] = {}
    for span in tracer.spans:
        wall_ms.setdefault(span.name, []).append(span.wall_s * 1e3)
        cycles[span.name] = cycles.get(span.name, 0.0) + span.cycles
    return {
        name: {
            "count": len(samples),
            "wall_ms_median": median(samples),
            "wall_ms_total": sum(samples),
            "cycles": cycles[name],
        }
        for name, samples in wall_ms.items()
    }


def run_scene(
    alias: str,
    config: GPUConfig,
    frames: int,
    detail: int,
    trace_dir: Path | None = None,
) -> dict[str, Any]:
    """Render one workload through a traced system; return its entry."""
    workload = workload_by_alias(alias, detail=detail)
    tracer = Tracer()
    fragments = 0
    pair_records = 0
    gpu_cycles = 0.0
    pairs: set[tuple[int, int]] = set()
    counters: CounterRegistry | int = 0
    with RBCDSystem(config=config, tracer=tracer) as system:
        for t in workload.times(frames):
            frame = workload.scene.frame_at(float(t), config)
            result = system.detect_frame(frame)
            fragments += result.stats.fragments_produced
            pair_records += result.report.pair_records_written
            gpu_cycles += result.stats.gpu_cycles
            pairs |= result.pairs
            counters = counters + result.stats.registry()

    frame_wall_s = sum(
        span.wall_s for span in tracer.by_name("frame") if span.closed
    )
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
        write_ndjson(tracer, trace_dir / f"trace_{alias}.ndjson")
        write_chrome_trace(
            tracer,
            trace_dir / f"trace_{alias}.json",
            process_name=f"repro bench:{alias}",
        )
    assert isinstance(counters, CounterRegistry)
    return {
        "frames": frames,
        "stages": stage_summary(tracer),
        "totals": {
            "fragments_produced": fragments,
            "pair_records_written": pair_records,
            "gpu_cycles": gpu_cycles,
            "colliding_pairs": len(pairs),
        },
        "throughput": {
            "wall_s": frame_wall_s,
            "fragments_per_s": fragments / frame_wall_s if frame_wall_s else 0.0,
            "pairs_per_s": pair_records / frame_wall_s if frame_wall_s else 0.0,
        },
        "counters": counters.as_dict(),
    }


def run_bench(
    scenes: Sequence[str],
    width: int,
    height: int,
    frames: int,
    detail: int,
    quick: bool = False,
    trace_dir: Path | None = None,
    progress=None,
) -> dict[str, Any]:
    """Run the bench over ``scenes`` and assemble the full document."""
    config = GPUConfig().with_screen(width, height)
    doc: dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": {
            "width": width,
            "height": height,
            "frames": frames,
            "detail": detail,
            "quick": quick,
        },
        "scenes": {},
    }
    for alias in scenes:
        if progress is not None:
            progress(alias)
        doc["scenes"][alias] = run_scene(
            alias, config, frames, detail, trace_dir=trace_dir
        )
    return doc


def _fail(errors: list[str], path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def _check_number(errors, path, value, minimum=0.0) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(errors, path, f"expected a number, got {type(value).__name__}")
    elif value < minimum:
        _fail(errors, path, f"expected >= {minimum}, got {value}")


def _check_int(errors, path, value, minimum=0) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(errors, path, f"expected an int, got {type(value).__name__}")
    elif value < minimum:
        _fail(errors, path, f"expected >= {minimum}, got {value}")


def validate_bench_document(doc: Any) -> None:
    """Raise ``ValueError`` (listing every problem) if ``doc`` is not a
    well-formed rbcd-bench document."""
    errors: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != SCHEMA_NAME:
        _fail(errors, "schema", f"expected {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    if doc.get("version") != SCHEMA_VERSION:
        _fail(errors, "version", f"expected {SCHEMA_VERSION}, got {doc.get('version')!r}")

    config = doc.get("config")
    if not isinstance(config, Mapping):
        _fail(errors, "config", "missing or not an object")
    else:
        for key in ("width", "height", "frames", "detail"):
            _check_int(errors, f"config.{key}", config.get(key), minimum=1)
        if not isinstance(config.get("quick"), bool):
            _fail(errors, "config.quick", "expected a bool")

    scenes = doc.get("scenes")
    if not isinstance(scenes, Mapping) or not scenes:
        _fail(errors, "scenes", "missing, not an object, or empty")
        scenes = {}
    for alias, entry in scenes.items():
        base = f"scenes.{alias}"
        if not isinstance(entry, Mapping):
            _fail(errors, base, "not an object")
            continue
        _check_int(errors, f"{base}.frames", entry.get("frames"), minimum=1)

        stages = entry.get("stages")
        if not isinstance(stages, Mapping) or not stages:
            _fail(errors, f"{base}.stages", "missing, not an object, or empty")
            stages = {}
        for required in REQUIRED_STAGES:
            if required not in stages:
                _fail(errors, f"{base}.stages", f"missing stage {required!r}")
        for stage, record in stages.items():
            spath = f"{base}.stages.{stage}"
            if not isinstance(record, Mapping):
                _fail(errors, spath, "not an object")
                continue
            _check_int(errors, f"{spath}.count", record.get("count"), minimum=1)
            for key in ("wall_ms_median", "wall_ms_total", "cycles"):
                _check_number(errors, f"{spath}.{key}", record.get(key))

        totals = entry.get("totals")
        if not isinstance(totals, Mapping):
            _fail(errors, f"{base}.totals", "missing or not an object")
        else:
            for key in ("fragments_produced", "pair_records_written",
                        "colliding_pairs"):
                _check_int(errors, f"{base}.totals.{key}", totals.get(key))
            _check_number(errors, f"{base}.totals.gpu_cycles",
                          totals.get("gpu_cycles"))

        throughput = entry.get("throughput")
        if not isinstance(throughput, Mapping):
            _fail(errors, f"{base}.throughput", "missing or not an object")
        else:
            for key in ("wall_s", "fragments_per_s", "pairs_per_s"):
                _check_number(errors, f"{base}.throughput.{key}",
                              throughput.get(key))

        counters = entry.get("counters")
        if not isinstance(counters, Mapping) or not counters:
            _fail(errors, f"{base}.counters", "missing, not an object, or empty")
        else:
            for name, value in counters.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    _fail(errors, f"{base}.counters.{name}",
                          f"expected a number, got {type(value).__name__}")

    if errors:
        raise ValueError(
            "invalid rbcd-bench document:\n  " + "\n  ".join(errors)
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench",
        description="Traced benchmark runs over the paper's four scenes.",
    )
    parser.add_argument(
        "--scenes", nargs="+", choices=BENCHMARKS, default=list(BENCHMARKS),
        help="benchmark aliases to run (default: all four)",
    )
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=192)
    parser.add_argument(
        "--frames", type=int, default=4,
        help="animation frames per scene (default: 4)",
    )
    parser.add_argument(
        "--detail", type=int, default=2,
        help="mesh tessellation detail (default: 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 160x96, 2 frames, detail 1",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_rbcd.json"),
        help="output JSON path (default: BENCH_rbcd.json)",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None,
        help="also write per-scene ndjson + Chrome traces here",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="FILE",
        help="validate an existing bench document and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.check is not None:
        try:
            doc = json.loads(args.check.read_text())
            validate_bench_document(doc)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"FAIL {args.check}: {exc}", file=sys.stderr)
            return 1
        print(f"OK {args.check}: valid {SCHEMA_NAME} v{SCHEMA_VERSION} "
              f"({len(doc['scenes'])} scenes)")
        return 0

    if args.quick:
        args.width, args.height = 160, 96
        args.frames, args.detail = 2, 1

    doc = run_bench(
        args.scenes, args.width, args.height, args.frames, args.detail,
        quick=args.quick, trace_dir=args.trace_dir,
        progress=lambda alias: print(f"bench: {alias} ...", flush=True),
    )
    validate_bench_document(doc)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    for alias, entry in doc["scenes"].items():
        totals = entry["totals"]
        throughput = entry["throughput"]
        print(
            f"  {alias}: {totals['fragments_produced']} fragments, "
            f"{totals['pair_records_written']} pair records, "
            f"{throughput['fragments_per_s']:.0f} frag/s, "
            f"{throughput['pairs_per_s']:.1f} pairs/s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
