"""Cortex-A9-like CPU timing and energy model.

The paper simulates its software CD baselines with Marss (cycle-level
CPU simulation) and feeds the activity factors into McPAT for energy.
Here the instrumented CD implementations produce an operation tally
(:class:`~repro.physics.counters.OpCounter`) and this model prices it:

``cycles = sum(ops_k * cycles_k) / issue_efficiency``
``time   = cycles / frequency``
``energy = sum(ops_k * E_k) + cycles * E_cycle + P_static * time``

Table 2's CPU parameters (1.5 GHz, 32 nm, 1 V, 32 KB L1s, 1 MB L2) fix
the frequency; the per-class weights below are modelling assumptions
calibrated to an in-order dual-issue core with a streaming working set
larger than L1 (mesh vertices are touched once per frame):

* memory ops pay the expected miss cost folded into a flat
  cycles-per-access;
* branches pay the expected misprediction cost;
* energies are of published 32 nm per-operation magnitudes (tens of pJ
  per ALU op, ~0.1 nJ per cache-missing access).

Only ratios (CPU CD versus RBCD's marginal GPU cost) matter to the
paper's conclusions; the sensitivity bench sweeps these weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physics.counters import OpCounter


@dataclass(frozen=True, slots=True)
class CPUConfig:
    """CPU parameters (Table 2) plus cost-model weights."""

    # Table 2
    frequency_hz: float = 1.5e9
    voltage_v: float = 1.0
    technology_nm: int = 32
    cores: int = 2                    # CD runs single-threaded (Bullet's
    #                                   default dispatcher), so one core
    #                                   is active; the second idles.
    l1_kb: int = 32
    l2_kb: int = 1024

    # Timing weights (cycles per operation of each class).
    cycles_flop: float = 1.0
    cycles_cmp: float = 0.5
    # 1-cycle L1 hit + expected L1/L2 miss cost for streaming data.
    cycles_mem: float = 3.0
    cycles_branch: float = 1.5
    issue_efficiency: float = 1.2     # sustained ops/cycle (dual issue)

    # Energy weights (joules per operation / per cycle).  The memory
    # figure folds the cache hierarchy and DRAM traffic of streaming
    # working sets (mesh vertices touched once per frame) into a flat
    # per-access energy.
    energy_flop_j: float = 80e-12
    energy_cmp_j: float = 40e-12
    energy_mem_j: float = 400e-12
    energy_branch_j: float = 40e-12
    energy_per_cycle_j: float = 180e-12   # fetch/decode/clock overhead
    static_power_w: float = 0.25          # one active core + its caches

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.issue_efficiency <= 0:
            raise ValueError("issue efficiency must be positive")


@dataclass(frozen=True, slots=True)
class CPUCost:
    """Priced cost of an operation tally."""

    cycles: float
    seconds: float
    energy_j: float

    def __add__(self, other: "CPUCost") -> "CPUCost":
        if not isinstance(other, CPUCost):
            return NotImplemented
        return CPUCost(
            self.cycles + other.cycles,
            self.seconds + other.seconds,
            self.energy_j + other.energy_j,
        )

    def __radd__(self, other):
        if other == 0:
            return self
        return self.__add__(other)


class CPUModel:
    """Prices :class:`OpCounter` tallies into time and energy."""

    def __init__(self, config: CPUConfig | None = None) -> None:
        self.config = config if config is not None else CPUConfig()

    def cycles(self, ops: OpCounter) -> float:
        c = self.config
        raw = (
            ops.flop * c.cycles_flop
            + ops.cmp * c.cycles_cmp
            + ops.mem * c.cycles_mem
            + ops.branch * c.cycles_branch
        )
        return raw / c.issue_efficiency

    def price(self, ops: OpCounter) -> CPUCost:
        c = self.config
        cycles = self.cycles(ops)
        seconds = cycles / c.frequency_hz
        dynamic = (
            ops.flop * c.energy_flop_j
            + ops.cmp * c.energy_cmp_j
            + ops.mem * c.energy_mem_j
            + ops.branch * c.energy_branch_j
            + cycles * c.energy_per_cycle_j
        )
        energy = dynamic + c.static_power_w * seconds
        return CPUCost(cycles=cycles, seconds=seconds, energy_j=energy)
