"""CPU cost model (the paper's Marss x86 + McPAT substitute)."""

from repro.cpu.model import CPUConfig, CPUCost, CPUModel

__all__ = ["CPUConfig", "CPUCost", "CPUModel"]
