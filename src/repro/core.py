"""High-level public API for render-based collision detection.

Most users want one of two things:

* :func:`detect_collisions` — one-shot: give it meshes with transforms
  and a camera, get back the colliding pairs.
* :class:`RBCDSystem` — a reusable configured system (resolution, ZEB
  parameters) for frame-after-frame detection in an animation loop,
  with access to the full report (contact points, stats, image).

Both drive the complete GPU model: the collision results are exactly
what the modelled hardware would report, including ZEB overflow effects
at small list lengths.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.energy.report import FrameEnergyReport
from repro.observability.log import get_logger, log_event
from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU, FrameResult
from repro.gpu.stats import GPUStats
from repro.observability.counters import CounterRegistry
from repro.rbcd.pairs import CollisionPair, CollisionReport, ContactPoint
from repro.scenes.camera import Camera

__all__ = [
    "CollisionPair",
    "RBCDFrameResult",
    "RBCDSystem",
    "detect_collisions",
]

_LOG = get_logger(__name__)


@dataclass
class RBCDFrameResult:
    """Collision results for one detected frame."""

    report: CollisionReport
    stats: GPUStats
    color: np.ndarray
    z_buffer: np.ndarray
    cpu_fallback: bool
    view_projection: Mat4
    screen_size: tuple[int, int]
    energy: FrameEnergyReport | None = None  # modelled joules + EDP
    # Cross-frame tile-cache counters for this frame (gpu.tilecache.*);
    # None when the cache is disabled.  Purely observational: every
    # other field is bit-identical with the cache on or off.
    tilecache: "CounterRegistry | None" = None

    @property
    def pairs(self) -> set[tuple[int, int]]:
        """Colliding object-id pairs, each ordered ``(low, high)``."""
        return {(p.id_a, p.id_b) for p in self.report.pairs}

    def contacts(self, id_a: int, id_b: int) -> list[ContactPoint]:
        """Contact points recorded for one pair (empty if not colliding)."""
        return list(self.report.contacts.get(CollisionPair.make(id_a, id_b), []))

    def collides(self, id_a: int, id_b: int) -> bool:
        return (id_a, id_b) in self.report

    def world_contacts(self, id_a: int, id_b: int) -> np.ndarray:
        """Contact records unprojected to world space, (N, 2, 3).

        ``[..., 0, :]`` is the front end of each overlapping depth
        interval, ``[..., 1, :]`` the back end.
        """
        from repro.rbcd.manifold import unproject_contacts

        width, height = self.screen_size
        return unproject_contacts(
            self.contacts(id_a, id_b), self.view_projection, width, height
        )

    def manifold(self, id_a: int, id_b: int):
        """World-space contact manifold for one pair (see
        :mod:`repro.rbcd.manifold`)."""
        from repro.rbcd.manifold import build_manifold

        width, height = self.screen_size
        return build_manifold(
            min(id_a, id_b), max(id_a, id_b),
            self.contacts(id_a, id_b), self.view_projection, width, height,
        )


class RBCDSystem:
    """A configured GPU + RBCD unit, reusable across frames.

    Parameters
    ----------
    resolution:
        Render/collision resolution (width, height).  Higher resolution
        shrinks the discretization's false-collisionable margin
        (Section 2.2).
    zeb_count, list_length:
        RBCD unit configuration (Table 2 defaults: 2 ZEBs, M=8).
    workers, executor_backend:
        Host-side tile-execution engine: fan per-tile RBCD work out to
        ``workers`` workers ("thread" or "process" backend; the default
        picks "process" when ``workers > 1``).  Results are merged
        deterministically, so any worker count produces bit-identical
        collisions, stats, and simulated cycles.  Use :meth:`close` (or
        a ``with`` block) to release pooled workers.
    config:
        Full :class:`GPUConfig` override; when given, the other
        keyword parameters are ignored (except ``workers`` /
        ``executor_backend``, which still apply when non-default).
    tracer:
        Optional :class:`repro.observability.Tracer`; frames rendered
        through this system then record stage spans (wall time +
        simulated cycles).  Tracing never changes detection results.
    provenance:
        Optional :class:`repro.observability.provenance.ProvenanceRecorder`;
        frames then record per-pair evidence (witness pixel, ZEB
        elements, FF-Stack depth, Figure-5 case).  Strictly
        observational — results and counters are bit-identical with
        the recorder on or off, at any worker count.
    monitor:
        Optional :class:`repro.observability.live.LiveMonitor`; every
        detected frame then feeds the live telemetry stream (sliding
        windows, latency quantiles, watchdog rules) without changing
        any result — the same strictly-observational contract as the
        tracer and the provenance recorder.
    tile_profiler:
        Optional :class:`repro.observability.tileprofile.TileProfiler`;
        every detected frame then accumulates per-tile
        cycle/energy/activity/cache-hit grids (the schema-v6
        ``tile_profile`` bench block and the attribution engine's
        spatial layer).  Strictly observational: results, counters,
        and cycles are bit-identical with the profiler on or off, at
        any worker count.
    tile_cache:
        Cross-frame tile redundancy elimination
        (:mod:`repro.gpu.tilecache`): ``True``/``False`` force the
        cache on/off, ``None`` (default) keeps the config's setting
        (which honours ``REPRO_TILE_CACHE``).  Replay is exact — every
        detection output is bit-identical either way — so the switch
        only moves the modelled-savings counters surfaced on
        :attr:`RBCDFrameResult.tilecache`.
    executor:
        An already-built :class:`~repro.gpu.parallel.TileExecutor` to
        run per-tile work on, instead of building one from the config.
        The system does **not** own an injected executor — :meth:`close`
        leaves it running — which is how the serving frontend
        (:mod:`repro.serve`) shares one worker pool across every
        tenant's system.  Results are unchanged: any executor produces
        bit-identical collisions, stats, and cycles.
    recorder:
        Optional :class:`repro.observability.FlightRecorder`; the
        system then fingerprints its config into the recorder, routes
        a tracer through it (a recorder-owned bounded tracer when the
        ``tracer`` parameter is ``None``), and — when a ``monitor`` is
        also given — subscribes the recorder to its snapshots and
        watchdog transitions.  Always-on black-box recording with the
        same strictly-observational contract as every other observer:
        results are bit-identical with the recorder on or off
        (``tests/integration/test_flightrecorder_differential.py``).
    """

    def __init__(
        self,
        resolution: tuple[int, int] = (800, 480),
        zeb_count: int = 2,
        list_length: int = 8,
        workers: int = 1,
        executor_backend: str | None = None,
        config: GPUConfig | None = None,
        tracer=None,
        provenance=None,
        monitor=None,
        tile_cache: bool | None = None,
        tile_profiler=None,
        executor=None,
        recorder=None,
    ) -> None:
        if config is None:
            width, height = resolution
            config = GPUConfig().with_screen(width, height).with_rbcd(
                zeb_count=zeb_count,
                list_length=list_length,
                ff_stack_entries=max(list_length, 8),
            )
        if workers != 1 or executor_backend is not None:
            config = config.with_executor(
                workers=workers, backend=executor_backend
            )
        if tile_cache is not None:
            config = config.with_tile_cache(tile_cache)
        self.config = config
        self.recorder = recorder
        if recorder is not None:
            recorder.attach_config(config)
            tracer = recorder.attach_tracer(tracer)
            if monitor is not None:
                recorder.attach_monitor(monitor)
        self._gpu = GPU(
            config, rbcd_enabled=True, executor=executor, tracer=tracer,
            provenance=provenance, monitor=monitor,
            tile_profiler=tile_profiler,
        )
        log_event(
            _LOG, "rbcd.system.created", level=logging.DEBUG,
            width=config.screen_width, height=config.screen_height,
            workers=config.executor_workers,
            backend=config.executor_backend,
            monitored=monitor is not None,
        )

    def close(self) -> None:
        """Shut down the tile-executor worker pool, if any."""
        self._gpu.close()

    def reset_tile_cache(self) -> None:
        """Drop every cached tile result (no-op when the cache is off).

        Call between independent runs of the same animation so each run
        sees the same cold-start hit pattern — the benchmark harness
        does this to keep its cross-run determinism check meaningful.
        """
        self._gpu.reset_tile_cache()

    def __enter__(self) -> "RBCDSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def detect_frame(self, frame: Frame) -> RBCDFrameResult:
        """Run detection (and rendering) on a prepared GPU frame."""
        result: FrameResult = self._gpu.render_frame(frame)
        if result.collisions is None:
            raise RuntimeError("RBCD unit produced no report (disabled?)")
        if result.cpu_fallback:
            log_event(
                _LOG, "rbcd.cpu_fallback", level=logging.WARNING,
                overflow_rate=result.stats.zeb_overflow_rate,
                insertions=result.stats.zeb_insertions,
            )
        log_event(
            _LOG, "rbcd.frame.detected", level=logging.DEBUG,
            pairs=result.collisions.pair_records_written,
            fragments=result.stats.fragments_produced,
            gpu_cycles=result.stats.gpu_cycles,
        )
        return RBCDFrameResult(
            report=result.collisions,
            stats=result.stats,
            color=result.color,
            z_buffer=result.z_buffer,
            cpu_fallback=result.cpu_fallback,
            view_projection=frame.view_projection(),
            screen_size=(self.config.screen_width, self.config.screen_height),
            energy=result.energy,
            tilecache=result.tilecache,
        )

    def detect(
        self,
        objects: list[tuple[int, TriangleMesh, Mat4]],
        camera: Camera,
        raster_only: bool = False,
        extra_draws: tuple[DrawCommand, ...] = (),
    ) -> RBCDFrameResult:
        """Detect collisions among ``(object_id, mesh, model)`` triples.

        ``raster_only=True`` models the Section 3.6 extra time step: the
        frame is rasterized for CD only, skipping fragment processing.
        ``extra_draws`` appends non-collisionable scenery.
        """
        draws = [
            DrawCommand(mesh=mesh, model=model, object_id=object_id)
            for object_id, mesh, model in objects
        ]
        draws.extend(extra_draws)
        aspect = self.config.screen_width / self.config.screen_height
        frame = Frame(
            draws=tuple(draws),
            view=camera.view(),
            projection=camera.projection(aspect),
            raster_only=raster_only,
        )
        return self.detect_frame(frame)


def default_camera_for(
    objects: list[tuple[int, TriangleMesh, Mat4]]
) -> Camera:
    """A perspective camera framing the combined bounds of the objects."""
    from repro.geometry.vec import Vec3

    boxes = [mesh.aabb().transformed(model) for _, mesh, model in objects]
    bounds = boxes[0]
    for box in boxes[1:]:
        bounds = bounds.union(box)
    center = bounds.center
    extent = max(bounds.size.x, bounds.size.y, bounds.size.z, 1e-6)
    eye = Vec3(center.x, center.y, center.z + 2.5 * extent)
    return Camera(
        eye=eye,
        target=center,
        fov_y_deg=45.0,
        near=max(extent * 0.01, 1e-4),
        far=extent * 10.0,
    )


def detect_collisions(
    objects: list[tuple[int, TriangleMesh, Mat4]],
    camera: Camera | None = None,
    resolution: tuple[int, int] = (256, 256),
    workers: int = 1,
) -> set[tuple[int, int]]:
    """One-shot render-based collision detection.

    When no camera is given, one is synthesized to frame all objects
    (see :func:`default_camera_for`).  Returns the set of colliding
    ``(id_low, id_high)`` pairs.  ``workers > 1`` runs the per-tile
    RBCD work on a process pool; the result is identical.
    """
    if not objects:
        return set()
    if camera is None:
        camera = default_camera_for(objects)
    with RBCDSystem(resolution=resolution, workers=workers) as system:
        return system.detect(objects, camera).pairs
