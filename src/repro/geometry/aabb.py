"""Axis-aligned bounding boxes.

AABBs are the currency of the broad phase (Section 2 of the paper: the
"most simple broad phase, an AABB overlap test") and of the tiling
engine, which bins screen-space primitive bounds to tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Mat4, Vec3


@dataclass(frozen=True, slots=True)
class AABB:
    """Closed axis-aligned box ``[lo, hi]`` in 3-D.

    Invariant: ``lo <= hi`` component-wise.  Construct via
    ``from_points`` / ``from_center_half_extents`` when possible; the
    raw constructor validates.
    """

    lo: Vec3
    hi: Vec3

    def __post_init__(self) -> None:
        if self.lo.x > self.hi.x or self.lo.y > self.hi.y or self.lo.z > self.hi.z:
            raise ValueError(f"AABB lo must be <= hi, got lo={self.lo} hi={self.hi}")

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_points(points: np.ndarray) -> "AABB":
        """Tight box around an (N, 3) array of points."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise ValueError(f"expected non-empty (N, 3) points, got {pts.shape}")
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        return AABB(Vec3.from_array(lo), Vec3.from_array(hi))

    @staticmethod
    def from_center_half_extents(center: Vec3, half: Vec3) -> "AABB":
        if half.x < 0 or half.y < 0 or half.z < 0:
            raise ValueError("half extents must be non-negative")
        return AABB(center - half, center + half)

    # -- queries ------------------------------------------------------------

    @property
    def center(self) -> Vec3:
        return (self.lo + self.hi) * 0.5

    @property
    def half_extents(self) -> Vec3:
        return (self.hi - self.lo) * 0.5

    @property
    def size(self) -> Vec3:
        return self.hi - self.lo

    def volume(self) -> float:
        s = self.size
        return s.x * s.y * s.z

    def surface_area(self) -> float:
        s = self.size
        return 2.0 * (s.x * s.y + s.y * s.z + s.z * s.x)

    def contains_point(self, p: Vec3) -> bool:
        return (
            self.lo.x <= p.x <= self.hi.x
            and self.lo.y <= p.y <= self.hi.y
            and self.lo.z <= p.z <= self.hi.z
        )

    def contains_aabb(self, other: "AABB") -> bool:
        return self.contains_point(other.lo) and self.contains_point(other.hi)

    def overlaps(self, other: "AABB") -> bool:
        """Closed-interval overlap test — touching boxes count as overlapping.

        This mirrors Bullet's AABB test used by the paper's broad-phase
        baseline (six comparisons).
        """
        return (
            self.lo.x <= other.hi.x
            and self.hi.x >= other.lo.x
            and self.lo.y <= other.hi.y
            and self.hi.y >= other.lo.y
            and self.lo.z <= other.hi.z
            and self.hi.z >= other.lo.z
        )

    def union(self, other: "AABB") -> "AABB":
        return AABB(self.lo.min_with(other.lo), self.hi.max_with(other.hi))

    def intersection(self, other: "AABB") -> "AABB | None":
        """Overlap region, or ``None`` when disjoint."""
        lo = self.lo.max_with(other.lo)
        hi = self.hi.min_with(other.hi)
        if lo.x > hi.x or lo.y > hi.y or lo.z > hi.z:
            return None
        return AABB(lo, hi)

    def expanded(self, margin: float) -> "AABB":
        """Box grown by ``margin`` on every side (negative shrinks)."""
        m = Vec3(margin, margin, margin)
        return AABB(self.lo - m, self.hi + m)

    def corners(self) -> np.ndarray:
        """The 8 corner points as an (8, 3) array."""
        lo, hi = self.lo, self.hi
        return np.array(
            [
                [x, y, z]
                for x in (lo.x, hi.x)
                for y in (lo.y, hi.y)
                for z in (lo.z, hi.z)
            ]
        )

    def transformed(self, m: Mat4) -> "AABB":
        """AABB of this box's corners after an affine transform.

        This is the standard conservative re-fit: the result bounds the
        transformed box, and is generally looser than the transformed
        geometry itself (the false-collisionable area the paper's
        Figure 2 attributes to AABBs).
        """
        from repro.geometry.vec import transform_points

        return AABB.from_points(transform_points(m, self.corners()))
