"""3-D convex hull (quickhull).

The GJK narrow-phase baseline operates on convex shapes; for concave
models the paper's Figure 2 discussion uses the convex hull of the
shape, "which results in adding a false collisionable area".  This
module provides that hull, implemented from scratch (incremental
quickhull) so the baseline does not depend on external geometry
libraries.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import TriangleMesh

_EPS_FACTOR = 1e-10


class _Face:
    """A hull facet: triangle indices, plane, and its outside point set."""

    __slots__ = ("a", "b", "c", "normal", "offset", "outside", "alive")

    def __init__(self, a: int, b: int, c: int, points: np.ndarray) -> None:
        self.a, self.b, self.c = a, b, c
        e1 = points[b] - points[a]
        e2 = points[c] - points[a]
        n = np.cross(e1, e2)
        norm = np.linalg.norm(n)
        if norm == 0.0:
            raise ValueError("degenerate hull facet")
        self.normal = n / norm
        self.offset = float(self.normal @ points[a])
        self.outside: list[int] = []
        self.alive = True

    def edges(self) -> list[tuple[int, int]]:
        return [(self.a, self.b), (self.b, self.c), (self.c, self.a)]

    def distance(self, p: np.ndarray) -> float:
        return float(self.normal @ p) - self.offset


def _initial_simplex(points: np.ndarray, eps: float) -> list[int]:
    """Four affinely independent point indices, or raise for flat input."""
    # Most separated pair along coordinate extremes.
    candidates = []
    for axis in range(3):
        candidates.append(int(points[:, axis].argmin()))
        candidates.append(int(points[:, axis].argmax()))
    best = (0.0, candidates[0], candidates[1])
    for i in candidates:
        for j in candidates:
            d = float(np.linalg.norm(points[i] - points[j]))
            if d > best[0]:
                best = (d, i, j)
    d01, i0, i1 = best
    if d01 <= eps:
        raise ValueError("convex hull of (near-)coincident points")
    # Furthest point from the line i0-i1.
    line = points[i1] - points[i0]
    line = line / np.linalg.norm(line)
    rel = points - points[i0]
    perp = rel - np.outer(rel @ line, line)
    dist_line = np.linalg.norm(perp, axis=1)
    i2 = int(dist_line.argmax())
    if dist_line[i2] <= eps:
        raise ValueError("convex hull of collinear points")
    # Furthest point from the plane i0-i1-i2.
    n = np.cross(points[i1] - points[i0], points[i2] - points[i0])
    n = n / np.linalg.norm(n)
    dist_plane = np.abs(rel @ n)
    i3 = int(dist_plane.argmax())
    if dist_plane[i3] <= eps:
        raise ValueError("convex hull of coplanar points")
    return [i0, i1, i2, i3]


def convex_hull(points) -> TriangleMesh:
    """Convex hull of a point cloud as a closed CCW-wound triangle mesh.

    Raises ``ValueError`` for inputs with no volume (fewer than four
    affinely independent points).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got shape {pts.shape}")
    pts = np.unique(pts, axis=0)
    if pts.shape[0] < 4:
        raise ValueError("need at least 4 distinct points for a 3-D hull")

    scale = float(np.abs(pts).max())
    eps = max(scale, 1.0) * _EPS_FACTOR
    i0, i1, i2, i3 = _initial_simplex(pts, eps)

    # Orient the initial tetrahedron so all facets face outward.
    apex = pts[i3]
    base = _Face(i0, i1, i2, pts)
    if base.distance(apex) > 0:
        i0, i1 = i1, i0
    faces = [
        _Face(i0, i1, i2, pts),
        _Face(i0, i2, i3, pts),
        _Face(i2, i1, i3, pts),
        _Face(i1, i0, i3, pts),
    ]

    # Distribute points to the outside sets of the initial facets.
    simplex = {i0, i1, i2, i3}
    for idx in range(pts.shape[0]):
        if idx in simplex:
            continue
        for face in faces:
            if face.distance(pts[idx]) > eps:
                face.outside.append(idx)
                break

    pending = [f for f in faces if f.outside]
    while pending:
        face = pending.pop()
        if not face.alive or not face.outside:
            continue
        # Furthest point of this facet's outside set.
        dists = [face.distance(pts[i]) for i in face.outside]
        far = face.outside[int(np.argmax(dists))]
        p = pts[far]

        # Find all facets visible from `far` (BFS over adjacency via edges).
        visible = [f for f in faces if f.alive and f.distance(p) > eps]
        visible_set = set(id(f) for f in visible)

        # Horizon = edges of visible facets whose twin facet is not visible.
        edge_count: dict[tuple[int, int], tuple[int, int]] = {}
        for f in visible:
            for u, v in f.edges():
                key = (min(u, v), max(u, v))
                if key in edge_count:
                    del edge_count[key]  # interior edge (shared by 2 visible)
                else:
                    edge_count[key] = (u, v)  # keep the directed edge
        horizon = list(edge_count.values())

        orphans: list[int] = []
        for f in visible:
            f.alive = False
            orphans.extend(f.outside)
            f.outside = []

        new_faces = []
        for u, v in horizon:
            nf = _Face(u, v, far, pts)
            faces.append(nf)
            new_faces.append(nf)

        for idx in orphans:
            if idx == far:
                continue
            for nf in new_faces:
                if nf.distance(pts[idx]) > eps:
                    nf.outside.append(idx)
                    break
        pending.extend(nf for nf in new_faces if nf.outside)
        # `visible_set` retained only to make the intent explicit; the alive
        # flag carries the state.
        del visible_set

    live = [f for f in faces if f.alive]
    used = sorted({i for f in live for i in (f.a, f.b, f.c)})
    remap = {old: new for new, old in enumerate(used)}
    hull_faces = np.array([[remap[f.a], remap[f.b], remap[f.c]] for f in live])
    return TriangleMesh(pts[used], hull_faces)


def hull_vertices(points) -> np.ndarray:
    """Just the hull's vertex positions, (H, 3)."""
    return convex_hull(points).vertices
