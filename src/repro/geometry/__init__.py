"""Geometry substrate: vectors, matrices, AABBs, meshes and primitives."""

from repro.geometry.vec import (
    Mat4,
    Vec3,
    transform_directions,
    transform_points,
)
from repro.geometry.aabb import AABB
from repro.geometry.mesh import TriangleMesh
from repro.geometry.primitives import (
    make_box,
    make_capsule,
    make_cylinder,
    make_icosphere,
    make_plane,
    make_torus,
    make_uv_sphere,
    make_concave_l,
)
from repro.geometry.convex import convex_hull
from repro.geometry.decimate import decimation_error_bound, vertex_clustering

__all__ = [
    "AABB",
    "Mat4",
    "TriangleMesh",
    "Vec3",
    "convex_hull",
    "decimation_error_bound",
    "make_box",
    "make_capsule",
    "make_concave_l",
    "make_cylinder",
    "make_icosphere",
    "make_plane",
    "make_torus",
    "make_uv_sphere",
    "transform_directions",
    "transform_points",
    "vertex_clustering",
]
