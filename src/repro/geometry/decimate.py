"""Mesh decimation by vertex clustering.

A render LOD can be *derived* from a full-detail collision mesh instead
of generated twice: snap vertices to a uniform grid, merge each cell's
vertices to their centroid, and drop the faces that collapse.  The
result approximates the input surface within half a cell diagonal —
the explicit bound on the render/CD mesh discrepancy discussed in
DESIGN.md.

Vertex clustering is crude next to quadric-error decimation, but it is
robust, deterministic, and its error bound is exactly the quantity the
reproduction cares about.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import TriangleMesh


def vertex_clustering(mesh: TriangleMesh, cell_size: float) -> TriangleMesh:
    """Decimate ``mesh`` on a uniform grid of ``cell_size`` cells.

    Every vertex moves at most half a cell diagonal
    (``cell_size * sqrt(3) / 2``); faces whose corners merge are
    removed, as are duplicated faces.  Raises if the grid is so coarse
    that no face survives.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    verts = mesh.vertices
    cells = np.floor(verts / cell_size).astype(np.int64)

    # Map each occupied cell to the centroid of its vertices.
    _, cluster_of_vertex, counts = np.unique(
        cells, axis=0, return_inverse=True, return_counts=True
    )
    num_clusters = counts.shape[0]
    centroids = np.zeros((num_clusters, 3))
    np.add.at(centroids, cluster_of_vertex, verts)
    centroids /= counts[:, None]

    faces = cluster_of_vertex[mesh.faces]
    # Drop collapsed faces (any two corners merged).
    valid = (
        (faces[:, 0] != faces[:, 1])
        & (faces[:, 1] != faces[:, 2])
        & (faces[:, 2] != faces[:, 0])
    )
    faces = faces[valid]
    if faces.shape[0] == 0:
        raise ValueError(
            f"cell_size {cell_size} collapses every face of the mesh"
        )

    # Deduplicate faces that merged onto the same cluster triple
    # (orientation-insensitive key keeps one winding).
    key = np.sort(faces, axis=1)
    _, first = np.unique(key, axis=0, return_index=True)
    faces = faces[np.sort(first)]

    # Compact unused clusters.
    used = np.unique(faces)
    remap = np.full(num_clusters, -1, dtype=np.int64)
    remap[used] = np.arange(used.shape[0])
    return TriangleMesh(centroids[used], remap[faces])


def decimation_error_bound(cell_size: float) -> float:
    """Maximum vertex displacement of :func:`vertex_clustering`."""
    return cell_size * float(np.sqrt(3.0)) / 2.0
