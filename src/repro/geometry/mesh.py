"""Indexed triangle meshes.

A ``TriangleMesh`` is the unit of renderable and collisionable geometry:
the scene attaches one to each object, the GPU's vertex fetcher reads its
arrays, and the software CD baselines take its vertices as the "3D meshes
of vertices ... in world space" that the paper feeds to Bullet
(Section 4.3).

Triangles use counter-clockwise (CCW) winding for front faces, matching
the OpenGL default the paper's face-culling discussion assumes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.vec import Mat4, transform_points


class TriangleMesh:
    """Immutable indexed triangle mesh.

    Parameters
    ----------
    vertices:
        (V, 3) float array of positions.
    faces:
        (F, 3) int array of vertex indices, CCW = front face.
    """

    __slots__ = ("_vertices", "_faces")

    def __init__(self, vertices, faces) -> None:
        v = np.asarray(vertices, dtype=np.float64)
        f = np.asarray(faces, dtype=np.int64)
        if v.ndim != 2 or v.shape[1] != 3:
            raise ValueError(f"vertices must be (V, 3), got {v.shape}")
        if f.ndim != 2 or f.shape[1] != 3:
            raise ValueError(f"faces must be (F, 3), got {f.shape}")
        if v.shape[0] == 0 or f.shape[0] == 0:
            raise ValueError("mesh must have at least one vertex and one face")
        if f.min() < 0 or f.max() >= v.shape[0]:
            raise ValueError(
                f"face indices out of range [0, {v.shape[0]}): "
                f"min={f.min()}, max={f.max()}"
            )
        v = v.copy()
        f = f.copy()
        v.flags.writeable = False
        f.flags.writeable = False
        self._vertices = v
        self._faces = f

    @property
    def vertices(self) -> np.ndarray:
        """(V, 3) read-only vertex positions."""
        return self._vertices

    @property
    def faces(self) -> np.ndarray:
        """(F, 3) read-only triangle indices."""
        return self._faces

    @property
    def vertex_count(self) -> int:
        return self._vertices.shape[0]

    @property
    def face_count(self) -> int:
        return self._faces.shape[0]

    # -- derived data ------------------------------------------------------

    def triangle_corners(self) -> np.ndarray:
        """(F, 3, 3) array: for each face, its three corner positions."""
        return self._vertices[self._faces]

    def face_normals(self, normalize: bool = True) -> np.ndarray:
        """(F, 3) per-face normals via the CCW cross product.

        With ``normalize=False`` the raw cross products are returned
        (their length is twice the triangle area), which is what the
        area computation and degenerate-face detection need.
        """
        tri = self.triangle_corners()
        e1 = tri[:, 1] - tri[:, 0]
        e2 = tri[:, 2] - tri[:, 0]
        n = np.cross(e1, e2)
        if not normalize:
            return n
        lengths = np.linalg.norm(n, axis=1)
        safe = np.where(lengths > 0, lengths, 1.0)
        return n / safe[:, None]

    def face_areas(self) -> np.ndarray:
        """(F,) triangle areas."""
        return 0.5 * np.linalg.norm(self.face_normals(normalize=False), axis=1)

    def surface_area(self) -> float:
        return float(self.face_areas().sum())

    def centroid(self) -> np.ndarray:
        """Area-weighted surface centroid (3,)."""
        tri = self.triangle_corners()
        centers = tri.mean(axis=1)
        areas = self.face_areas()
        total = areas.sum()
        if total <= 0:
            return self._vertices.mean(axis=0)
        return (centers * areas[:, None]).sum(axis=0) / total

    def aabb(self) -> AABB:
        return AABB.from_points(self._vertices)

    def degenerate_faces(self, tol: float = 1e-12) -> np.ndarray:
        """Indices of faces with (near-)zero area."""
        return np.nonzero(self.face_areas() <= tol)[0]

    def is_closed(self) -> bool:
        """True when every edge is shared by exactly two faces.

        Closed, consistently wound meshes are the ones for which the
        per-pixel front/back bracket structure of the Z-Overlap Test is
        well defined, so the benchmark primitives are all closed.
        """
        edges: dict[tuple[int, int], int] = {}
        for a, b, c in self._faces:
            for u, v in ((a, b), (b, c), (c, a)):
                key = (min(int(u), int(v)), max(int(u), int(v)))
                edges[key] = edges.get(key, 0) + 1
        return all(count == 2 for count in edges.values())

    # -- transforms ----------------------------------------------------------

    def transformed(self, m: Mat4) -> "TriangleMesh":
        """New mesh with vertices mapped through an affine transform.

        Winding is flipped when the transform mirrors (negative
        determinant), so front faces stay front faces.
        """
        new_vertices = transform_points(m, self._vertices)
        faces = self._faces
        if np.linalg.det(m.a[:3, :3]) < 0:
            faces = faces[:, ::-1]
        return TriangleMesh(new_vertices, faces)

    def flipped(self) -> "TriangleMesh":
        """Mesh with reversed winding (inside-out)."""
        return TriangleMesh(self._vertices, self._faces[:, ::-1])

    def merged_with(self, other: "TriangleMesh") -> "TriangleMesh":
        """Concatenate two meshes into one (indices re-based)."""
        verts = np.vstack([self._vertices, other._vertices])
        faces = np.vstack([self._faces, other._faces + self.vertex_count])
        return TriangleMesh(verts, faces)

    def __repr__(self) -> str:
        return f"TriangleMesh(vertices={self.vertex_count}, faces={self.face_count})"
