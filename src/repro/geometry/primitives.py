"""Procedural mesh primitives.

These are the building blocks of the synthetic benchmark scenes.  All
solids are closed, consistently CCW-wound (outward normals) triangle
meshes centred at the origin unless stated otherwise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Vec3


def make_box(half_extents: Vec3 = Vec3(0.5, 0.5, 0.5)) -> TriangleMesh:
    """Axis-aligned box, 8 vertices / 12 triangles."""
    hx, hy, hz = half_extents.x, half_extents.y, half_extents.z
    if hx <= 0 or hy <= 0 or hz <= 0:
        raise ValueError("box half extents must be positive")
    v = np.array(
        [
            [-hx, -hy, -hz],
            [hx, -hy, -hz],
            [hx, hy, -hz],
            [-hx, hy, -hz],
            [-hx, -hy, hz],
            [hx, -hy, hz],
            [hx, hy, hz],
            [-hx, hy, hz],
        ]
    )
    f = np.array(
        [
            [0, 2, 1], [0, 3, 2],  # -z
            [4, 5, 6], [4, 6, 7],  # +z
            [0, 1, 5], [0, 5, 4],  # -y
            [3, 6, 2], [3, 7, 6],  # +y
            [0, 4, 7], [0, 7, 3],  # -x
            [1, 2, 6], [1, 6, 5],  # +x
        ]
    )
    return TriangleMesh(v, f)


def make_plane(half_size: float = 0.5, subdivisions: int = 1) -> TriangleMesh:
    """A flat square in the XY plane facing +Z (open surface, not a solid)."""
    if subdivisions < 1:
        raise ValueError("subdivisions must be >= 1")
    n = subdivisions + 1
    xs = np.linspace(-half_size, half_size, n)
    ys = np.linspace(-half_size, half_size, n)
    gx, gy = np.meshgrid(xs, ys, indexing="xy")
    verts = np.column_stack([gx.ravel(), gy.ravel(), np.zeros(n * n)])
    faces = []
    for j in range(subdivisions):
        for i in range(subdivisions):
            a = j * n + i
            b = a + 1
            c = a + n
            d = c + 1
            faces.append([a, b, d])
            faces.append([a, d, c])
    return TriangleMesh(verts, np.array(faces))


def make_uv_sphere(radius: float = 0.5, rings: int = 8, segments: int = 12) -> TriangleMesh:
    """Latitude/longitude sphere."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    if rings < 2 or segments < 3:
        raise ValueError("need rings >= 2 and segments >= 3")
    verts = [[0.0, 0.0, radius]]  # north pole
    for r in range(1, rings):
        phi = math.pi * r / rings
        z = radius * math.cos(phi)
        rad = radius * math.sin(phi)
        for s in range(segments):
            theta = 2.0 * math.pi * s / segments
            verts.append([rad * math.cos(theta), rad * math.sin(theta), z])
    verts.append([0.0, 0.0, -radius])  # south pole
    south = len(verts) - 1

    faces = []
    # cap around north pole
    for s in range(segments):
        faces.append([0, 1 + s, 1 + (s + 1) % segments])
    # body quads
    for r in range(rings - 2):
        top = 1 + r * segments
        bot = top + segments
        for s in range(segments):
            s2 = (s + 1) % segments
            faces.append([top + s, bot + s, bot + s2])
            faces.append([top + s, bot + s2, top + s2])
    # cap around south pole
    base = 1 + (rings - 2) * segments
    for s in range(segments):
        faces.append([south, base + (s + 1) % segments, base + s])
    return TriangleMesh(np.array(verts), np.array(faces))


def make_icosphere(radius: float = 0.5, subdivisions: int = 1) -> TriangleMesh:
    """Geodesic sphere from a subdivided icosahedron (more uniform faces)."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    if subdivisions < 0 or subdivisions > 5:
        raise ValueError("subdivisions must be in [0, 5]")
    t = (1.0 + math.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            [-1, t, 0], [1, t, 0], [-1, -t, 0], [1, -t, 0],
            [0, -1, t], [0, 1, t], [0, -1, -t], [0, 1, -t],
            [t, 0, -1], [t, 0, 1], [-t, 0, -1], [-t, 0, 1],
        ],
        dtype=np.float64,
    )
    faces = np.array(
        [
            [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
            [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
            [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
            [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
        ]
    )
    for _ in range(subdivisions):
        verts, faces = _subdivide(verts, faces)
    lengths = np.linalg.norm(verts, axis=1)
    verts = verts / lengths[:, None] * radius
    return TriangleMesh(verts, faces)


def _subdivide(verts: np.ndarray, faces: np.ndarray):
    """Split every triangle into four, deduplicating midpoint vertices."""
    verts = list(map(tuple, verts))
    midpoint_cache: dict[tuple[int, int], int] = {}

    def midpoint(i: int, j: int) -> int:
        key = (min(i, j), max(i, j))
        if key in midpoint_cache:
            return midpoint_cache[key]
        a, b = verts[i], verts[j]
        verts.append(((a[0] + b[0]) / 2, (a[1] + b[1]) / 2, (a[2] + b[2]) / 2))
        idx = len(verts) - 1
        midpoint_cache[key] = idx
        return idx

    new_faces = []
    for a, b, c in faces:
        ab = midpoint(a, b)
        bc = midpoint(b, c)
        ca = midpoint(c, a)
        new_faces.extend([[a, ab, ca], [b, bc, ab], [c, ca, bc], [ab, bc, ca]])
    return np.array(verts), np.array(new_faces)


def make_cylinder(radius: float = 0.5, height: float = 1.0, segments: int = 12) -> TriangleMesh:
    """Closed cylinder along the Z axis."""
    if radius <= 0 or height <= 0:
        raise ValueError("radius and height must be positive")
    if segments < 3:
        raise ValueError("need segments >= 3")
    hz = height / 2.0
    verts = []
    for z in (hz, -hz):
        for s in range(segments):
            theta = 2.0 * math.pi * s / segments
            verts.append([radius * math.cos(theta), radius * math.sin(theta), z])
    top_center = len(verts)
    verts.append([0.0, 0.0, hz])
    bot_center = len(verts)
    verts.append([0.0, 0.0, -hz])

    faces = []
    for s in range(segments):
        s2 = (s + 1) % segments
        top_a, top_b = s, s2
        bot_a, bot_b = segments + s, segments + s2
        # side quad (outward normals)
        faces.append([top_a, bot_a, bot_b])
        faces.append([top_a, bot_b, top_b])
        # caps
        faces.append([top_center, top_a, top_b])
        faces.append([bot_center, bot_b, bot_a])
    return TriangleMesh(np.array(verts), np.array(faces))


def make_capsule(
    radius: float = 0.25, height: float = 1.0, rings: int = 4, segments: int = 12
) -> TriangleMesh:
    """Capsule (cylinder with hemispherical caps) along the Z axis.

    ``height`` is the length of the cylindrical section; the total
    extent along Z is ``height + 2 * radius``.
    """
    if radius <= 0 or height < 0:
        raise ValueError("radius must be positive and height non-negative")
    if rings < 1 or segments < 3:
        raise ValueError("need rings >= 1 and segments >= 3")
    hz = height / 2.0
    verts = [[0.0, 0.0, hz + radius]]
    # upper hemisphere rings (from pole down to equator) then lower rings
    for cap_sign, z_off in ((1.0, hz), (-1.0, -hz)):
        ring_range = range(1, rings + 1) if cap_sign > 0 else range(rings, 0, -1)
        for r in ring_range:
            phi = (math.pi / 2.0) * r / rings
            z = cap_sign * radius * math.cos(phi) + z_off
            rad = radius * math.sin(phi)
            for s in range(segments):
                theta = 2.0 * math.pi * s / segments
                verts.append([rad * math.cos(theta), rad * math.sin(theta), z])
    verts.append([0.0, 0.0, -hz - radius])
    south = len(verts) - 1

    faces = []
    for s in range(segments):
        faces.append([0, 1 + s, 1 + (s + 1) % segments])
    n_rings_total = 2 * rings
    for r in range(n_rings_total - 1):
        top = 1 + r * segments
        bot = top + segments
        for s in range(segments):
            s2 = (s + 1) % segments
            faces.append([top + s, bot + s, bot + s2])
            faces.append([top + s, bot + s2, top + s2])
    base = 1 + (n_rings_total - 1) * segments
    for s in range(segments):
        faces.append([south, base + (s + 1) % segments, base + s])
    return TriangleMesh(np.array(verts), np.array(faces))


def make_torus(
    major_radius: float = 0.5,
    minor_radius: float = 0.15,
    major_segments: int = 12,
    minor_segments: int = 8,
) -> TriangleMesh:
    """Torus in the XY plane around the Z axis."""
    if minor_radius <= 0 or major_radius <= minor_radius:
        raise ValueError("need 0 < minor_radius < major_radius")
    if major_segments < 3 or minor_segments < 3:
        raise ValueError("need >= 3 segments on both circles")
    verts = []
    for i in range(major_segments):
        u = 2.0 * math.pi * i / major_segments
        cu, su = math.cos(u), math.sin(u)
        for j in range(minor_segments):
            v = 2.0 * math.pi * j / minor_segments
            r = major_radius + minor_radius * math.cos(v)
            verts.append([r * cu, r * su, minor_radius * math.sin(v)])
    faces = []
    for i in range(major_segments):
        i2 = (i + 1) % major_segments
        for j in range(minor_segments):
            j2 = (j + 1) % minor_segments
            a = i * minor_segments + j
            b = i2 * minor_segments + j
            c = i2 * minor_segments + j2
            d = i * minor_segments + j2
            faces.append([a, b, c])
            faces.append([a, c, d])
    return TriangleMesh(np.array(verts), np.array(faces))


def make_concave_l(
    arm_length: float = 1.0, arm_width: float = 0.4, depth: float = 0.4
) -> TriangleMesh:
    """Concave L-shaped solid (two fused boxes).

    This is the Figure 2 shape: its convex hull and its AABB both add
    large false-collisionable area in the concave notch, which RBCD's
    discretized representation does not.  The L lies in the XY plane
    (arms along +X and +Y from the corner at the origin), extruded
    ``depth`` along Z and centred on Z=0.
    """
    if arm_length <= arm_width or arm_width <= 0 or depth <= 0:
        raise ValueError("need 0 < arm_width < arm_length and depth > 0")
    w, ln, hz = arm_width, arm_length, depth / 2.0
    # Hexagonal L outline, CCW seen from +Z.
    outline = np.array(
        [
            [0.0, 0.0],
            [ln, 0.0],
            [ln, w],
            [w, w],
            [w, ln],
            [0.0, ln],
        ]
    )
    n = outline.shape[0]
    verts = np.vstack(
        [
            np.column_stack([outline, np.full(n, hz)]),    # top ring (z=+hz)
            np.column_stack([outline, np.full(n, -hz)]),   # bottom ring
        ]
    )
    # Fan-triangulate the L from the inner corner (vertex 3 = (w, w)),
    # which sees the whole polygon.
    top = [[3, i, (i + 1) % n] for i in range(n) if i != 3 and (i + 1) % n != 3]
    bottom = [[3 + n, (i + 1) % n + n, i + n] for i in range(n) if i != 3 and (i + 1) % n != 3]
    sides = []
    for i in range(n):
        j = (i + 1) % n
        # top_i, top_j, bottom_j, bottom_i — outward winding
        sides.append([i, j + n, j])
        sides.append([i, i + n, j + n])
    faces = np.array(top + bottom + sides)
    return TriangleMesh(verts, faces)
