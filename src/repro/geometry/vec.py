"""Small linear-algebra kernel used across the whole reproduction.

Two levels of API coexist on purpose:

* ``Vec3`` — an immutable convenience type for scalar geometry code
  (GJK, physics, scene setup) where readability beats throughput.
* ``Mat4`` plus the batch helpers ``transform_points`` /
  ``transform_directions`` — numpy-backed, used by the GPU vertex stage
  where whole vertex arrays are transformed at once.

Conventions: right-handed coordinates, column vectors, matrices act on
the left (``m @ v``).  Projection matrices follow the OpenGL clip-space
convention (z in [-1, 1] after perspective divide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class Vec3:
    """Immutable 3-component vector of floats."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # -- constructors -------------------------------------------------

    @staticmethod
    def from_array(a) -> "Vec3":
        """Build from any indexable of length >= 3."""
        return Vec3(float(a[0]), float(a[1]), float(a[2]))

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def ones() -> "Vec3":
        return Vec3(1.0, 1.0, 1.0)

    @staticmethod
    def unit_x() -> "Vec3":
        return Vec3(1.0, 0.0, 0.0)

    @staticmethod
    def unit_y() -> "Vec3":
        return Vec3(0.0, 1.0, 0.0)

    @staticmethod
    def unit_z() -> "Vec3":
        return Vec3(0.0, 0.0, 1.0)

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __mul__(self, s: float) -> "Vec3":
        return Vec3(self.x * s, self.y * s, self.z * s)

    __rmul__ = __mul__

    def __truediv__(self, s: float) -> "Vec3":
        inv = 1.0 / s
        return Vec3(self.x * inv, self.y * inv, self.z * inv)

    def __getitem__(self, i: int) -> float:
        return (self.x, self.y, self.z)[i]

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z

    # -- products and norms ---------------------------------------------

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def length_squared(self) -> float:
        return self.dot(self)

    def length(self) -> float:
        return math.sqrt(self.length_squared())

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction.

        Raises ``ValueError`` on (near-)zero vectors: silently returning
        a zero direction hides bugs in geometry code.
        """
        n = self.length()
        if n < _EPS:
            raise ValueError("cannot normalize a zero-length vector")
        return self / n

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).length()

    def scaled_by(self, other: "Vec3") -> "Vec3":
        """Component-wise product."""
        return Vec3(self.x * other.x, self.y * other.y, self.z * other.z)

    def min_with(self, other: "Vec3") -> "Vec3":
        return Vec3(min(self.x, other.x), min(self.y, other.y), min(self.z, other.z))

    def max_with(self, other: "Vec3") -> "Vec3":
        return Vec3(max(self.x, other.x), max(self.y, other.y), max(self.z, other.z))

    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        return self + (other - self) * t

    def is_close(self, other: "Vec3", tol: float = 1e-9) -> bool:
        return (self - other).length_squared() <= tol * tol

    def to_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=np.float64)


class Mat4:
    """A 4x4 transform matrix backed by a numpy array.

    Instances are treated as immutable: every operation returns a new
    ``Mat4``.  The raw array is exposed read-only through ``.a``.
    """

    __slots__ = ("_a",)

    def __init__(self, array) -> None:
        a = np.asarray(array, dtype=np.float64)
        if a.shape != (4, 4):
            raise ValueError(f"Mat4 needs a 4x4 array, got shape {a.shape}")
        a = a.copy()
        a.flags.writeable = False
        self._a = a

    @property
    def a(self) -> np.ndarray:
        """The underlying (read-only) 4x4 numpy array."""
        return self._a

    # -- constructors -----------------------------------------------------

    @staticmethod
    def identity() -> "Mat4":
        return Mat4(np.eye(4))

    @staticmethod
    def translation(t: Vec3) -> "Mat4":
        m = np.eye(4)
        m[:3, 3] = (t.x, t.y, t.z)
        return Mat4(m)

    @staticmethod
    def scaling(s) -> "Mat4":
        """Uniform (scalar) or per-axis (Vec3) scale."""
        if isinstance(s, Vec3):
            sx, sy, sz = s.x, s.y, s.z
        else:
            sx = sy = sz = float(s)
        m = np.eye(4)
        m[0, 0], m[1, 1], m[2, 2] = sx, sy, sz
        return Mat4(m)

    @staticmethod
    def rotation_x(angle: float) -> "Mat4":
        c, s = math.cos(angle), math.sin(angle)
        m = np.eye(4)
        m[1, 1], m[1, 2] = c, -s
        m[2, 1], m[2, 2] = s, c
        return Mat4(m)

    @staticmethod
    def rotation_y(angle: float) -> "Mat4":
        c, s = math.cos(angle), math.sin(angle)
        m = np.eye(4)
        m[0, 0], m[0, 2] = c, s
        m[2, 0], m[2, 2] = -s, c
        return Mat4(m)

    @staticmethod
    def rotation_z(angle: float) -> "Mat4":
        c, s = math.cos(angle), math.sin(angle)
        m = np.eye(4)
        m[0, 0], m[0, 1] = c, -s
        m[1, 0], m[1, 1] = s, c
        return Mat4(m)

    @staticmethod
    def rotation_axis(axis: Vec3, angle: float) -> "Mat4":
        """Rotation of ``angle`` radians about an arbitrary axis."""
        u = axis.normalized()
        c, s = math.cos(angle), math.sin(angle)
        oc = 1.0 - c
        m = np.eye(4)
        m[:3, :3] = [
            [c + u.x * u.x * oc, u.x * u.y * oc - u.z * s, u.x * u.z * oc + u.y * s],
            [u.y * u.x * oc + u.z * s, c + u.y * u.y * oc, u.y * u.z * oc - u.x * s],
            [u.z * u.x * oc - u.y * s, u.z * u.y * oc + u.x * s, c + u.z * u.z * oc],
        ]
        return Mat4(m)

    @staticmethod
    def trs(t: Vec3, rotation: "Mat4", s) -> "Mat4":
        """Compose translate * rotate * scale (the usual model matrix)."""
        return Mat4.translation(t) @ rotation @ Mat4.scaling(s)

    @staticmethod
    def look_at(eye: Vec3, target: Vec3, up: Vec3) -> "Mat4":
        """Right-handed view matrix (camera looks down -Z in view space)."""
        f = (target - eye).normalized()
        s = f.cross(up).normalized()
        u = s.cross(f)
        m = np.eye(4)
        m[0, :3] = (s.x, s.y, s.z)
        m[1, :3] = (u.x, u.y, u.z)
        m[2, :3] = (-f.x, -f.y, -f.z)
        m[0, 3] = -s.dot(eye)
        m[1, 3] = -u.dot(eye)
        m[2, 3] = f.dot(eye)
        return Mat4(m)

    @staticmethod
    def perspective(fov_y: float, aspect: float, near: float, far: float) -> "Mat4":
        """OpenGL-style perspective projection (z_clip in [-1, 1])."""
        if near <= 0 or far <= near:
            raise ValueError("require 0 < near < far")
        f = 1.0 / math.tan(fov_y / 2.0)
        m = np.zeros((4, 4))
        m[0, 0] = f / aspect
        m[1, 1] = f
        m[2, 2] = (far + near) / (near - far)
        m[2, 3] = (2.0 * far * near) / (near - far)
        m[3, 2] = -1.0
        return Mat4(m)

    @staticmethod
    def orthographic(
        left: float, right: float, bottom: float, top: float, near: float, far: float
    ) -> "Mat4":
        """OpenGL-style orthographic projection."""
        m = np.eye(4)
        m[0, 0] = 2.0 / (right - left)
        m[1, 1] = 2.0 / (top - bottom)
        m[2, 2] = -2.0 / (far - near)
        m[0, 3] = -(right + left) / (right - left)
        m[1, 3] = -(top + bottom) / (top - bottom)
        m[2, 3] = -(far + near) / (far - near)
        return Mat4(m)

    # -- operations --------------------------------------------------------

    def __matmul__(self, other):
        if isinstance(other, Mat4):
            return Mat4(self._a @ other._a)
        if isinstance(other, Vec3):
            return self.transform_point(other)
        return NotImplemented

    def transform_point(self, p: Vec3) -> Vec3:
        """Apply to a position (w=1), with perspective divide."""
        v = self._a @ np.array([p.x, p.y, p.z, 1.0])
        w = v[3]
        if abs(w) < _EPS:
            raise ValueError("transform produced w ~= 0 (point at infinity)")
        return Vec3(v[0] / w, v[1] / w, v[2] / w)

    def transform_direction(self, d: Vec3) -> Vec3:
        """Apply to a direction (w=0): rotation/scale only."""
        v = self._a[:3, :3] @ np.array([d.x, d.y, d.z])
        return Vec3(v[0], v[1], v[2])

    def inverse(self) -> "Mat4":
        return Mat4(np.linalg.inv(self._a))

    def transposed(self) -> "Mat4":
        return Mat4(self._a.T)

    def normal_matrix(self) -> np.ndarray:
        """3x3 inverse-transpose for transforming normals."""
        return np.linalg.inv(self._a[:3, :3]).T

    def is_close(self, other: "Mat4", tol: float = 1e-9) -> bool:
        return bool(np.allclose(self._a, other._a, atol=tol))

    def __repr__(self) -> str:
        return f"Mat4({self._a.tolist()!r})"


def transform_points(m: Mat4, points: np.ndarray) -> np.ndarray:
    """Transform an (N, 3) array of positions by ``m``, with w divide.

    Returns an (N, 3) float64 array.  Rows whose transformed ``w`` is
    ~0 would be points at infinity; the caller (the clipper) must have
    removed them, so we raise if any slip through.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {pts.shape}")
    hom = np.empty((pts.shape[0], 4))
    hom[:, :3] = pts
    hom[:, 3] = 1.0
    out = hom @ m.a.T
    w = out[:, 3]
    if np.any(np.abs(w) < _EPS):
        raise ValueError("transform produced w ~= 0 for some points")
    return out[:, :3] / w[:, None]


def transform_points_homogeneous(m: Mat4, points: np.ndarray) -> np.ndarray:
    """Transform (N, 3) positions to (N, 4) clip coordinates (no divide).

    Used by the GPU vertex stage, which clips in homogeneous space
    before the perspective divide.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {pts.shape}")
    hom = np.empty((pts.shape[0], 4))
    hom[:, :3] = pts
    hom[:, 3] = 1.0
    return hom @ m.a.T


def transform_directions(m: Mat4, dirs: np.ndarray) -> np.ndarray:
    """Transform an (N, 3) array of directions (w = 0) by ``m``."""
    d = np.asarray(dirs, dtype=np.float64)
    if d.ndim != 2 or d.shape[1] != 3:
        raise ValueError(f"expected (N, 3) directions, got {d.shape}")
    return d @ m.a[:3, :3].T
