"""Hybrid CD: RBCD for on-screen geometry, software CD off-screen.

Section 3.6: RBCD only sees what reaches the rasterizer, so
collisionable objects outside the view frustum need either extra
raster-only passes or "conventional software-based CD".  This module
implements that fallback: each frame, objects are classified against
the frustum; the visible set goes through the RBCD system, and every
candidate pair involving an off-screen object is resolved by the
software narrow phase (AABB prefilter + GJK).

This is a faithful composition of the paper's two suggestions, and it
makes the public API usable for full game worlds rather than only the
rendered slice.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core import RBCDSystem
from repro.geometry.aabb import AABB
from repro.observability.log import get_logger, log_event
from repro.observability.tracer import ensure_tracer
from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4, transform_points_homogeneous
from repro.physics.broadphase import aabb_bruteforce_pairs, world_aabbs
from repro.physics.counters import OpCounter
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape
from repro.scenes.camera import Camera

_LOG = get_logger(__name__)

# Frustum planes in clip space (dot(plane, v) >= 0 keeps the vertex).
_CLIP_PLANES = np.array(
    [
        [1.0, 0.0, 0.0, 1.0],
        [-1.0, 0.0, 0.0, 1.0],
        [0.0, 1.0, 0.0, 1.0],
        [0.0, -1.0, 0.0, 1.0],
        [0.0, 0.0, 1.0, 1.0],
        [0.0, 0.0, -1.0, 1.0],
    ]
)


def aabb_outside_frustum(box: AABB, view_projection: Mat4) -> bool:
    """Conservative test: True only when the box is provably outside.

    A box whose 8 corners all fall outside one clip plane cannot touch
    the frustum.  (The converse is not exact, which only means some
    off-screen objects are handled by RBCD's raster pass anyway —
    harmless.)
    """
    corners = transform_points_homogeneous(view_projection, box.corners())
    dots = corners @ _CLIP_PLANES.T  # (8, 6)
    return bool((dots < 0.0).all(axis=0).any())


@dataclass
class HybridResult:
    """Pairs found per path, plus the merged answer."""

    rbcd_pairs: set[tuple[int, int]]
    software_pairs: set[tuple[int, int]]
    offscreen_ids: set[int]
    software_ops: OpCounter

    @property
    def pairs(self) -> set[tuple[int, int]]:
        return self.rbcd_pairs | self.software_pairs


class HybridCDSystem:
    """RBCD with a software fallback for out-of-frustum objects."""

    def __init__(
        self,
        resolution: tuple[int, int] = (800, 480),
        rbcd_system: RBCDSystem | None = None,
        raster_only: bool = True,
        workers: int = 1,
        tracer=None,
        provenance=None,
        monitor=None,
    ) -> None:
        """``workers`` configures the RBCD side's parallel tile engine
        (ignored when an explicit ``rbcd_system`` is injected).
        ``tracer`` records hybrid-level spans (classify / software pass)
        and, when this object builds its own RBCD system, the GPU-side
        stage spans as well.  ``provenance`` likewise threads a
        :class:`~repro.observability.provenance.ProvenanceRecorder` into
        a self-built RBCD system, and ``monitor`` a
        :class:`~repro.observability.live.LiveMonitor` (both purely
        observational)."""
        self.tracer = ensure_tracer(tracer)
        self.rbcd = (
            rbcd_system
            if rbcd_system is not None
            else RBCDSystem(
                resolution, workers=workers, tracer=tracer,
                provenance=provenance, monitor=monitor,
            )
        )
        self.raster_only = raster_only

    def close(self) -> None:
        """Release the RBCD system's worker pool, if any."""
        self.rbcd.close()

    def __enter__(self) -> "HybridCDSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def detect(
        self,
        objects: list[tuple[int, TriangleMesh, Mat4]],
        camera: Camera,
    ) -> HybridResult:
        """Detect collisions among all objects, on-screen or not."""
        if not objects:
            return HybridResult(set(), set(), set(), OpCounter())

        with self.tracer.span("hybrid.classify", objects=len(objects)) as span:
            aspect = (
                self.rbcd.config.screen_width / self.rbcd.config.screen_height
            )
            view_projection = camera.projection(aspect) @ camera.view()

            boxes = {
                object_id: mesh.aabb().transformed(model)
                for object_id, mesh, model in objects
            }
            offscreen = {
                object_id
                for object_id, box in boxes.items()
                if aabb_outside_frustum(box, view_projection)
            }
            span.annotate(offscreen=len(offscreen))

        onscreen_objects = [
            entry for entry in objects if entry[0] not in offscreen
        ]
        rbcd_pairs: set[tuple[int, int]] = set()
        if len(onscreen_objects) >= 2:
            result = self.rbcd.detect(
                onscreen_objects, camera, raster_only=self.raster_only
            )
            rbcd_pairs = result.pairs

        with self.tracer.span("hybrid.software", offscreen=len(offscreen)):
            software_pairs, ops = self._software_pass(objects, boxes, offscreen)
        log_event(
            _LOG, "hybrid.frame.detected", level=logging.DEBUG,
            objects=len(objects), offscreen=len(offscreen),
            rbcd_pairs=len(rbcd_pairs), software_pairs=len(software_pairs),
        )
        return HybridResult(
            rbcd_pairs=rbcd_pairs,
            software_pairs=software_pairs,
            offscreen_ids=offscreen,
            software_ops=ops,
        )

    def _software_pass(self, objects, boxes, offscreen):
        """AABB prefilter + GJK for pairs touching off-screen objects."""
        ops = OpCounter()
        if not offscreen:
            return set(), ops
        ids = [object_id for object_id, _, _ in objects]
        broad = aabb_bruteforce_pairs([boxes[i] for i in ids], ids, ops)
        candidates = [
            pair
            for pair in broad.pairs
            if pair[0] in offscreen or pair[1] in offscreen
        ]
        if not candidates:
            return set(), ops
        shapes = {}
        for object_id, mesh, model in objects:
            shape = ConvexShape(mesh.vertices)
            shape.update_transform(model, ops)
            shapes[object_id] = shape
        found = set()
        for id_a, id_b in candidates:
            if gjk_intersect(shapes[id_a], shapes[id_b], ops).intersecting:
                found.add((id_a, id_b))
        return found, ops
