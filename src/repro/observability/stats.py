"""Small-sample statistics for the bench harness and regression gate.

Bench runs are repeated a handful of times (``--runs 3`` in CI), so the
toolkit here is built for tiny samples and zero third-party deps:

* :func:`summarize` — min/median/mean/max of a sample;
* :func:`bootstrap_ci` — percentile bootstrap confidence interval of a
  statistic (median by default), deterministic via a fixed numpy seed
  so two validations of the same document agree bit-for-bit;
* :func:`mann_whitney_u` — two-sided Mann-Whitney U test.  For the
  sample sizes the bench produces (``n + m <= _EXACT_LIMIT``) the
  p-value is computed *exactly* by enumerating every assignment of the
  pooled ranks, so there is no normal-approximation error where it
  matters; larger samples fall back to the tie-corrected normal
  approximation.

The regression gate (:mod:`repro.observability.regress`) combines the
last two: a wall-time regression must be both *large* (median ratio
beyond a tolerance) and *statistically significant* (disjoint bootstrap
CIs, or a Mann-Whitney p-value under alpha) before it fails a build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from statistics import mean, median
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "SampleSummary",
    "summarize",
    "bootstrap_ci",
    "mann_whitney_u",
    "MannWhitneyResult",
    "SignificanceResult",
    "significance_of",
]

# Exact Mann-Whitney enumeration is C(n+m, n) evaluations; 12 pooled
# samples is at most 924 — instant, and far beyond any bench run count.
_EXACT_LIMIT = 12

# One fixed seed for every bootstrap: resampling is part of the bench
# *document* (the CI bounds are stored in BENCH_rbcd.json), so it must
# be reproducible across processes and machines.
_BOOTSTRAP_SEED = 0x5EED


@dataclass(frozen=True, slots=True)
class SampleSummary:
    """Order statistics of one metric's sample."""

    n: int
    minimum: float
    median: float
    mean: float
    maximum: float

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "min": self.minimum,
            "median": self.median,
            "mean": self.mean,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> SampleSummary:
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    values = [float(v) for v in samples]
    return SampleSummary(
        n=len(values),
        minimum=min(values),
        median=float(median(values)),
        mean=float(mean(values)),
        maximum=max(values),
    )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] | None = None,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = _BOOTSTRAP_SEED,
) -> tuple[float, float]:
    """Percentile-bootstrap CI of ``statistic`` (default: median).

    A single-element sample degenerates to ``(x, x)`` — the bench still
    writes CI bounds at ``--runs 1`` so the schema is uniform, they are
    just uninformative there.
    """
    if not samples:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    values = np.asarray(samples, dtype=np.float64)
    if values.shape[0] == 1:
        v = float(values[0])
        return (v, v)
    if statistic is None:
        statistic = np.median
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, values.shape[0], size=(n_resamples, values.shape[0]))
    stats = np.apply_along_axis(statistic, 1, values[idx])
    tail = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [tail, 1.0 - tail])
    return (float(lo), float(hi))


@dataclass(frozen=True, slots=True)
class MannWhitneyResult:
    """Two-sided Mann-Whitney U test outcome."""

    u: float            # U statistic of the first sample
    p_value: float      # two-sided
    method: str         # "exact" | "normal"

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _rank(pooled: Sequence[float]) -> list[float]:
    """Midranks (ties share the average of their rank block)."""
    order = sorted(range(len(pooled)), key=lambda i: pooled[i])
    ranks = [0.0] * len(pooled)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and pooled[order[j + 1]] == pooled[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def _u_from_ranks(ranks: Sequence[float], n1: int) -> float:
    r1 = sum(ranks[:n1])
    return r1 - n1 * (n1 + 1) / 2.0


def mann_whitney_u(
    a: Sequence[float], b: Sequence[float]
) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test of samples ``a`` vs ``b``.

    Exact when the pooled sample is small (every ``C(n+m, n)`` rank
    assignment enumerated, ties handled via midranks); otherwise the
    tie-corrected normal approximation with continuity correction.
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    n1, n2 = len(a), len(b)
    pooled = [float(v) for v in a] + [float(v) for v in b]
    ranks = _rank(pooled)
    u1 = _u_from_ranks(ranks, n1)
    mu = n1 * n2 / 2.0

    if n1 + n2 <= _EXACT_LIMIT:
        # Null distribution: which of the pooled ranks belong to sample
        # one is an arbitrary n1-subset; count assignments at least as
        # extreme (two-sided, by distance from the mean U).
        observed = abs(u1 - mu)
        extreme = total = 0
        for subset in combinations(range(n1 + n2), n1):
            u = _u_from_ranks([ranks[i] for i in subset], n1)
            total += 1
            # Tolerance guards midrank float arithmetic at ties.
            if abs(u - mu) >= observed - 1e-12:
                extreme += 1
        return MannWhitneyResult(u=u1, p_value=extreme / total, method="exact")

    # Normal approximation with tie correction.
    tie_term = 0.0
    seen: dict[float, int] = {}
    for v in pooled:
        seen[v] = seen.get(v, 0) + 1
    for count in seen.values():
        tie_term += count**3 - count
    n = n1 + n2
    sigma_sq = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma_sq <= 0.0:
        # All values identical: no evidence of difference.
        return MannWhitneyResult(u=u1, p_value=1.0, method="normal")
    z = (abs(u1 - mu) - 0.5) / math.sqrt(sigma_sq)
    p = 2.0 * (1.0 - _normal_cdf(max(z, 0.0)))
    return MannWhitneyResult(u=u1, p_value=min(p, 1.0), method="normal")


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True, slots=True)
class SignificanceResult:
    """Outcome of one wall-sample significance check.

    ``detail`` is the human-readable evidence string the regression
    gate and the attribution engine both print (CI disjointness plus
    the Mann-Whitney p-value, or the single-run caveat).
    """

    significant: bool
    detail: str


def significance_of(
    base_samples: Sequence[float],
    cur_samples: Sequence[float],
    alpha: float = 0.05,
    confidence: float = 0.95,
) -> SignificanceResult:
    """Decide whether two wall-time samples differ significantly.

    The shared evidence rule of the regression gate and the attribution
    engine: the samples differ when their bootstrap CIs are disjoint or
    the two-sided Mann-Whitney test rejects at ``alpha``.  Single-run
    samples degenerate to "the CIs (i.e. the values) differ" — still a
    verdict, with the thin evidence called out in ``detail``.
    """
    if not base_samples or not cur_samples:
        raise ValueError("both samples must be non-empty")
    base_ci = bootstrap_ci(base_samples, confidence=confidence)
    cur_ci = bootstrap_ci(cur_samples, confidence=confidence)
    disjoint = cur_ci[0] > base_ci[1] or base_ci[0] > cur_ci[1]
    if len(base_samples) > 1 and len(cur_samples) > 1:
        test = mann_whitney_u(cur_samples, base_samples)
        return SignificanceResult(
            significant=disjoint or test.significant(alpha),
            detail=(
                f"CI {'disjoint' if disjoint else 'overlaps'}, "
                f"Mann-Whitney p={test.p_value:.3g} ({test.method})"
            ),
        )
    # Single-run documents: CI bounds degenerate to the sample itself,
    # so disjointness is just "the values differ" — still a verdict,
    # but say the evidence is thin.
    return SignificanceResult(
        significant=disjoint,
        detail="single-run samples (no significance test)",
    )
