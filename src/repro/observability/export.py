"""Trace exporters: ndjson span logs and Chrome trace format.

* :func:`to_ndjson` / :func:`write_ndjson` — one JSON object per span,
  in start order; greppable, diffable, stream-appendable.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace
  Event Format consumed by ``chrome://tracing`` and Perfetto: complete
  ("X") events with microsecond timestamps; simulated cycles ride in
  ``args`` so both clocks are visible in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.tracer import Span, Tracer


def span_record(span: Span) -> dict:
    """JSON-compatible dict for one span (the ndjson line schema)."""
    return {
        "name": span.name,
        "cat": span.category,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "t_start_s": span.t_start,
        "wall_s": span.wall_s,
        "cycles": span.cycles,
        "attrs": dict(span.attrs),
    }


def to_ndjson(tracer: Tracer) -> str:
    """All spans as newline-delimited JSON (trailing newline included)."""
    lines = [json.dumps(span_record(s), sort_keys=True) for s in tracer.spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_ndjson(tracer: Tracer, path) -> Path:
    path = Path(path)
    path.write_text(to_ndjson(tracer))
    return path


def to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """Trace Event Format document (load via chrome://tracing)."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.t_start * 1e6,     # microseconds
                "dur": span.wall_s * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {"cycles": span.cycles, **span.attrs},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path, process_name: str = "repro") -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer, process_name)))
    return path
