"""Trace exporters: ndjson span logs and Chrome trace format.

* :func:`to_ndjson` / :func:`write_ndjson` — one JSON object per span,
  in start order; greppable, diffable, stream-appendable.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace
  Event Format consumed by ``chrome://tracing`` and Perfetto: complete
  ("X") events with microsecond timestamps; simulated cycles ride in
  ``args`` so both clocks are visible in the viewer.
* :func:`to_provenance_ndjson` / :func:`write_provenance_ndjson` — one
  JSON object per pair-evidence record from a
  :class:`~repro.observability.provenance.ProvenanceRecorder`, in
  ``(frame, tile, record)`` order; the schema is enforced by
  ``repro.observability.provenance.validate_provenance_ndjson``.
* :func:`provenance_instant_events` — the same evidence as Chrome-trace
  instant ("i") events; ``to_chrome_trace(tracer, provenance=...)``
  interleaves them with the span events.
* :func:`write_heatmap_csv` / :func:`render_heatmap_ascii` — per-tile
  grids (a :class:`~repro.observability.tileprofile.TileProfiler` grid
  or an attribution :class:`~repro.observability.attribution.SpatialDelta`
  delta grid) as a spreadsheet-ready CSV matrix or a terminal heatmap.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.tracer import Span, Tracer


def span_record(span: Span) -> dict:
    """JSON-compatible dict for one span (the ndjson line schema)."""
    return {
        "name": span.name,
        "cat": span.category,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "t_start_s": span.t_start,
        "wall_s": span.wall_s,
        "cycles": span.cycles,
        "attrs": dict(span.attrs),
    }


def to_ndjson(tracer: Tracer) -> str:
    """All spans as newline-delimited JSON (trailing newline included)."""
    lines = [json.dumps(span_record(s), sort_keys=True) for s in tracer.spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_ndjson(tracer: Tracer, path) -> Path:
    path = Path(path)
    path.write_text(to_ndjson(tracer))
    return path


def to_chrome_trace(
    tracer: Tracer, process_name: str = "repro", provenance=None
) -> dict:
    """Trace Event Format document (load via chrome://tracing).

    ``provenance`` optionally interleaves a recorder's pair-evidence
    records as instant events (see :func:`provenance_instant_events`).
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.t_start * 1e6,     # microseconds
                "dur": span.wall_s * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {"cycles": span.cycles, **span.attrs},
            }
        )
    if provenance is not None:
        events.extend(provenance_instant_events(provenance))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: Tracer, path, process_name: str = "repro", provenance=None
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer, process_name, provenance)))
    return path


# ---------------------------------------------------------------------------
# Provenance (pair-evidence) exporters
# ---------------------------------------------------------------------------


def to_provenance_ndjson(recorder) -> str:
    """A recorder's evidence records as newline-delimited JSON.

    One object per emitted pair, in the deterministic
    ``(frame, tile, record)`` order; trailing newline included when
    non-empty.  Validate with
    :func:`repro.observability.provenance.validate_provenance_ndjson`.
    """
    lines = [
        json.dumps(ev.as_record(), sort_keys=True) for ev in recorder.records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_provenance_ndjson(recorder, path) -> Path:
    path = Path(path)
    path.write_text(to_provenance_ndjson(recorder))
    return path


def provenance_instant_events(recorder) -> list[dict]:
    """Evidence records as Chrome-trace instant ("i") events.

    Wall-clock timestamps do not exist for emissions (they happen
    inside the simulated hardware), so events are laid out on a
    synthetic microsecond-per-record timeline on their own thread row
    (``tid=1``) — the viewer then shows one tick per emitted pair with
    the full evidence in ``args``.
    """
    events = []
    for index, ev in enumerate(recorder.records):
        lo, hi = ev.pair
        events.append(
            {
                "name": f"pair {lo}-{hi}",
                "cat": "provenance",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": float(index),
                "pid": 0,
                "tid": 1,
                "args": ev.as_record(),
            }
        )
    return events


# ---------------------------------------------------------------------------
# Per-tile heatmaps (tile profiles and attribution spatial deltas)
# ---------------------------------------------------------------------------


def heatmap_csv(grid, tiles_x: int, tiles_y: int) -> str:
    """A flat row-major per-tile grid as a CSV matrix, one row per tile
    row (top row first, matching screen layout)."""
    if len(grid) != tiles_x * tiles_y:
        raise ValueError(
            f"grid has {len(grid)} cells, expected {tiles_x * tiles_y}"
        )
    rows = []
    for y in range(tiles_y):
        row = grid[y * tiles_x:(y + 1) * tiles_x]
        rows.append(",".join(f"{v!r}" for v in row))
    return "\n".join(rows) + "\n"


def write_heatmap_csv(grid, tiles_x: int, tiles_y: int, path) -> Path:
    path = Path(path)
    path.write_text(heatmap_csv(grid, tiles_x, tiles_y))
    return path


# Shade ramp for ASCII heatmaps, darkest last.  Signed grids (deltas)
# use '-' shades for negative cells so a regression's hot tiles and an
# improvement's cooled tiles are distinguishable at a glance.
_RAMP = " .:-=+*#%@"


def render_heatmap_ascii(grid, tiles_x: int, tiles_y: int) -> str:
    """A flat row-major per-tile grid as a terminal heatmap.

    Cells are shaded by magnitude relative to the grid's maximum
    absolute value; negative cells are rendered lowercase-style with a
    leading ``-`` ramp (``,;~`` ...) so signed delta grids read
    correctly.  All-zero grids render as spaces.
    """
    if len(grid) != tiles_x * tiles_y:
        raise ValueError(
            f"grid has {len(grid)} cells, expected {tiles_x * tiles_y}"
        )
    peak = max((abs(v) for v in grid), default=0.0)
    neg_ramp = " ,;~^\"v<>o0"
    lines = []
    for y in range(tiles_y):
        cells = []
        for x in range(tiles_x):
            v = grid[y * tiles_x + x]
            if peak == 0.0 or v == 0.0:
                cells.append(_RAMP[0])
                continue
            level = min(len(_RAMP) - 1,
                        1 + int(abs(v) / peak * (len(_RAMP) - 2)))
            cells.append(_RAMP[level] if v > 0 else neg_ramp[level])
        lines.append("".join(cells))
    return "\n".join(lines)
