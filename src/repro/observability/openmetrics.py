"""OpenMetrics text exposition: renderer, validator, round-trip parser.

The live-telemetry endpoint speaks the OpenMetrics text format
(the Prometheus exposition format's standardized successor) so any
off-the-shelf scraper can consume the simulator's counters:

.. code-block:: text

    # HELP repro_gpu_rbcd_zeb_insertions ZEB sorted-insertion attempts.
    # TYPE repro_gpu_rbcd_zeb_insertions counter
    repro_gpu_rbcd_zeb_insertions_total 10234
    # TYPE repro_frame_sim_seconds summary
    repro_frame_sim_seconds{quantile="0.95"} 0.000131
    repro_frame_sim_seconds_count 12
    repro_frame_sim_seconds_sum 0.00143
    # EOF

Only the subset the exporter emits is implemented — counter, gauge and
summary families, HELP/TYPE metadata, label escaping, the ``# EOF``
terminator — but :func:`validate_openmetrics` checks that subset
strictly (name charset, metadata-before-samples, suffix rules per
type, escape sequences, float syntax, family grouping), and
:func:`parse_openmetrics` round-trips a rendered exposition back into
comparable values, which is how the tests prove the renderer and the
golden fixtures agree.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

__all__ = [
    "Sample",
    "MetricFamily",
    "metric_name_of",
    "render_families",
    "validate_openmetrics",
    "parse_openmetrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?$"
)

_TYPES = ("counter", "gauge", "summary")

# Per-type allowed sample-name suffixes relative to the family name.
_TYPE_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "summary": ("", "_count", "_sum"),
}


def metric_name_of(counter_name: str, prefix: str = "repro") -> str:
    """Map a registry counter name to a valid OpenMetrics family name.

    ``gpu.rbcd.zeb_insertions`` -> ``repro_gpu_rbcd_zeb_insertions``.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", counter_name)
    name = f"{prefix}_{sanitized}" if prefix else sanitized
    if not _NAME_RE.match(name):
        raise ValueError(f"cannot form a valid metric name from {counter_name!r}")
    return name


def _escape(value: str) -> str:
    """Escape a HELP text or label value per the exposition format."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ValueError("dangling backslash in escaped string")
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == "n":
                out.append("\n")
            elif nxt == '"':
                out.append('"')
            else:
                raise ValueError(f"invalid escape sequence \\{nxt}")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    """Shortest faithful decimal: integers render bare, floats via repr."""
    if isinstance(value, bool):
        raise TypeError("metric values cannot be bools")
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError("metric values must be finite")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


@dataclass(frozen=True)
class Sample:
    """One exposition line of a family."""

    value: float
    suffix: str = ""                 # "", "_total", "_count", "_sum"
    labels: tuple[tuple[str, str], ...] = ()


@dataclass
class MetricFamily:
    """One metric family: metadata plus its samples."""

    name: str
    mtype: str
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def add(self, value, suffix: str = "", **labels) -> "MetricFamily":
        for key in labels:
            if not _LABEL_NAME_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        self.samples.append(
            Sample(value=value, suffix=suffix, labels=tuple(sorted(labels.items())))
        )
        return self


def render_families(families: list[MetricFamily]) -> str:
    """Render families to OpenMetrics text (terminated by ``# EOF``)."""
    lines: list[str] = []
    seen: set[str] = set()
    for family in families:
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric family name {family.name!r}")
        if family.mtype not in _TYPES:
            raise ValueError(f"unsupported metric type {family.mtype!r}")
        if family.name in seen:
            raise ValueError(f"duplicate metric family {family.name!r}")
        seen.add(family.name)
        if family.help:
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.mtype}")
        series_seen: set[tuple] = set()
        for sample in family.samples:
            if sample.suffix not in _TYPE_SUFFIXES[family.mtype]:
                raise ValueError(
                    f"{family.name}: suffix {sample.suffix!r} invalid for "
                    f"type {family.mtype!r}"
                )
            name = family.name + sample.suffix
            label_str = ""
            if sample.labels:
                parts = []
                label_names_seen: set[str] = set()
                for key, value in sample.labels:
                    if not _LABEL_NAME_RE.match(key):
                        raise ValueError(f"invalid label name {key!r}")
                    if key in label_names_seen:
                        raise ValueError(
                            f"{name}: duplicate label name {key!r} in one sample"
                        )
                    label_names_seen.add(key)
                    parts.append(f'{key}="{_escape(str(value))}"')
                label_str = "{" + ",".join(parts) + "}"
            series = (name, tuple(sorted(
                (k, str(v)) for k, v in sample.labels
            )))
            if series in series_seen:
                raise ValueError(
                    f"{family.name}: duplicate series {name}"
                    f"{label_str or '{}'}"
                )
            series_seen.add(series)
            lines.append(f"{name}{label_str} {_format_value(sample.value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- validation / parsing ----------------------------------------------------


def _split_labels(raw: str) -> list[tuple[str, str]]:
    """Split a ``{...}`` body into (name, value) pairs, strictly."""
    pairs: list[tuple[str, str]] = []
    i = 0
    n = len(raw)
    while i < n:
        eq = raw.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed label pair near {raw[i:]!r}")
        name = raw[i:eq]
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
        if eq + 1 >= n or raw[eq + 1] != '"':
            raise ValueError(f"label {name!r} value must be double-quoted")
        j = eq + 2
        while j < n:
            if raw[j] == "\\":
                j += 2
            elif raw[j] == '"':
                break
            else:
                j += 1
        if j >= n:
            raise ValueError(f"label {name!r} value missing closing quote")
        if any(name == seen for seen, _ in pairs):
            raise ValueError(f"duplicate label name {name!r} in one sample")
        pairs.append((name, _unescape(raw[eq + 2 : j])))
        i = j + 1
        if i < n:
            if raw[i] != ",":
                raise ValueError(f"expected ',' between labels, got {raw[i]!r}")
            i += 1
    return pairs


def _family_of(sample_name: str, known: dict[str, dict]) -> str | None:
    """Resolve a sample name to its family (longest matching prefix)."""
    if sample_name in known:
        return sample_name
    for suffix in ("_total", "_count", "_sum", "_created", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in known:
                return base
    return None


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse an exposition into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``.
    Raises ``ValueError`` on any line the validator would reject; use
    :func:`validate_openmetrics` for an error listing instead.
    """
    families: dict[str, dict] = {}
    last_family: str | None = None
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with a '# EOF' line")
    for lineno, line in enumerate(lines[:-1], start=1):
        if line == "":
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            keyword, name = parts[1], parts[2]
            rest = parts[3] if len(parts) > 3 else ""
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            entry = families.setdefault(
                name, {"type": None, "help": "", "samples": [], "series": set()}
            )
            if entry["samples"]:
                raise ValueError(
                    f"line {lineno}: metadata for {name!r} after its samples"
                )
            if keyword == "TYPE":
                if entry["type"] is not None:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                if rest not in _TYPES:
                    raise ValueError(
                        f"line {lineno}: unknown metric type {rest!r}"
                    )
                entry["type"] = rest
            else:
                if entry["help"]:
                    raise ValueError(f"line {lineno}: duplicate HELP for {name!r}")
                entry["help"] = _unescape(rest)
            last_family = name
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        sample_name = match.group("name")
        family = _family_of(sample_name, families)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no preceding "
                f"TYPE declaration"
            )
        entry = families[family]
        if entry["type"] is None:
            raise ValueError(f"line {lineno}: family {family!r} missing TYPE")
        suffix = sample_name[len(family):]
        if suffix not in _TYPE_SUFFIXES[entry["type"]]:
            raise ValueError(
                f"line {lineno}: sample suffix {suffix!r} invalid for "
                f"{entry['type']} family {family!r}"
            )
        if entry["samples"] and last_family != family:
            raise ValueError(
                f"line {lineno}: samples of family {family!r} are not "
                f"contiguous"
            )
        raw_labels = match.group("labels")
        labels = dict(_split_labels(raw_labels)) if raw_labels else {}
        if entry["type"] == "summary" and suffix == "" and "quantile" not in labels:
            raise ValueError(
                f"line {lineno}: summary sample {sample_name!r} needs a "
                f"quantile label"
            )
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparseable value {raw_value!r}"
            ) from None
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"line {lineno}: non-finite value {raw_value!r}")
        series = (sample_name, tuple(sorted(labels.items())))
        if series in entry["series"]:
            raise ValueError(
                f"line {lineno}: duplicate series {sample_name!r} with "
                f"labels {dict(series[1])!r}"
            )
        entry["series"].add(series)
        entry["samples"].append((sample_name, labels, value))
        last_family = family
    for entry in families.values():
        entry.pop("series")
    return families


def validate_openmetrics(text: str) -> int:
    """Validate an exposition; returns the number of sample lines.

    Raises ``ValueError`` describing the first problem found.
    """
    families = parse_openmetrics(text)
    total = 0
    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError(f"family {name!r} has HELP but no TYPE")
        total += len(entry["samples"])
    return total
