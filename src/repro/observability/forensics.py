"""Divergence forensics: explain every RBCD-vs-oracle disagreement.

Runs render-based collision detection and the exact software oracle
(AABB broad phase + triangle/triangle narrow phase, the Fig. 2 setup)
over the same scene, matches the per-frame pair sets, and classifies
every divergence into a root-cause taxonomy by *replaying the recorded
evidence* — the frame's rasterized fragment stream is re-fed through
RBCD units with one parameter relaxed at a time, and the first
relaxation that flips the verdict names the cause:

=====================  =====================================================
cause                  meaning / replay that pins it
=====================  =====================================================
``broad-phase-miss``   an object produced no collisionable fragments at all
                       (outside the view frustum, or fully clipped) — the
                       Section 3.6 case RBCD delegates to software CD
``deferred-culling``   the fragment stream lacks the front or the back
                       faces of an involved object, so no depth interval
                       can close on the FF-Stack (culling/clipping filtered
                       one side of the surface)
``ffstack-overflow``   re-running with a deep FF-Stack (same ZEB) flips the
                       verdict: pushes were dropped at the witness pixel
``zeb-overflow``       re-running with long ZEB lists flips the verdict:
                       elements were dropped at insertion (Table 3's
                       overflow effect, with the witness pixel's drop
                       count attached)
``z-precision``        re-running with finer depth quantization flips the
                       verdict: the pair hinged on the z-code margin
``raster-resolution``  re-rendering at higher resolution flips the
                       verdict: the Section 2.2 false-collisionable margin
                       (false positives) or inter-sample geometry (misses)
``oracle-containment`` GJK reports the convex shapes intersecting while
                       the surface-only triangle oracle reports nothing:
                       one object contains the other, which RBCD detects
                       by interval nesting but a surface test cannot
``unclassified``       none of the replays flip the verdict (the engine's
                       failure mode; tests assert it stays empty)
=====================  =====================================================

The module sits *on top of* the GPU pipeline — import it as
``repro.observability.forensics`` (it is deliberately not re-exported
by the package ``__init__``, which the pipeline itself imports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.config import GPUConfig
from repro.gpu.parallel import gather_tile_tasks
from repro.gpu.pipeline import GPU
from repro.observability.provenance import ProvenanceRecorder
from repro.physics.counters import OpCounter
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape
from repro.physics.world import CollisionWorld
from repro.rbcd.zeb import overflow_events_by_pixel
from repro.scenes.benchmarks import Workload

__all__ = [
    "CAUSES",
    "Divergence",
    "ForensicsReport",
    "run_forensics",
]

CAUSE_BROAD_PHASE = "broad-phase-miss"
CAUSE_DEFERRED_CULLING = "deferred-culling"
CAUSE_FF_STACK = "ffstack-overflow"
CAUSE_ZEB_OVERFLOW = "zeb-overflow"
CAUSE_Z_PRECISION = "z-precision"
CAUSE_RESOLUTION = "raster-resolution"
CAUSE_ORACLE_CONTAINMENT = "oracle-containment"
CAUSE_UNCLASSIFIED = "unclassified"

CAUSES = (
    CAUSE_BROAD_PHASE,
    CAUSE_DEFERRED_CULLING,
    CAUSE_FF_STACK,
    CAUSE_ZEB_OVERFLOW,
    CAUSE_Z_PRECISION,
    CAUSE_RESOLUTION,
    CAUSE_ORACLE_CONTAINMENT,
    CAUSE_UNCLASSIFIED,
)

# Replay knobs: "generous" budgets that remove a capacity limit without
# touching anything else, and the scale factor for the re-render rung.
_DEEP_STACK = 256
_LONG_LIST = 256
_FINE_Z_BITS = 26
_HIRES_SCALE = 4


@dataclass
class Divergence:
    """One classified RBCD-vs-oracle disagreement."""

    frame: int
    id_a: int                      # canonical low id
    id_b: int                      # canonical high id
    kind: str                      # "false_positive" | "false_negative"
    cause: str                     # one of CAUSES
    detail: str                    # human-readable explanation
    witness_pixels: list[tuple[int, int]] = field(default_factory=list)

    @property
    def pair(self) -> tuple[int, int]:
        return (self.id_a, self.id_b)

    def as_record(self) -> dict:
        return {
            "type": "divergence",
            "frame": self.frame,
            "pair": [self.id_a, self.id_b],
            "kind": self.kind,
            "cause": self.cause,
            "detail": self.detail,
            "witness_pixels": [list(p) for p in self.witness_pixels],
        }

    def describe(self) -> str:
        tag = "FP" if self.kind == "false_positive" else "FN"
        return (
            f"frame {self.frame} pair ({self.id_a}, {self.id_b}) "
            f"[{tag}] {self.cause}: {self.detail}"
        )


@dataclass
class ForensicsReport:
    """Everything one forensics run concluded."""

    alias: str
    frames: int
    resolution: tuple[int, int]
    zeb_elements: int
    rbcd_pairs: list[set]          # per-frame RBCD pair sets
    oracle_pairs: list[set]        # per-frame oracle pair sets
    divergences: list[Divergence]
    recorder: ProvenanceRecorder   # the evidence the run recorded

    @property
    def agreements(self) -> int:
        return sum(
            len(r & o) for r, o in zip(self.rbcd_pairs, self.oracle_pairs)
        )

    def by_cause(self) -> dict[str, int]:
        counts = {cause: 0 for cause in CAUSES}
        for divergence in self.divergences:
            counts[divergence.cause] += 1
        return {cause: n for cause, n in counts.items() if n}

    @property
    def unclassified(self) -> list[Divergence]:
        return [
            d for d in self.divergences if d.cause == CAUSE_UNCLASSIFIED
        ]

    def as_document(self) -> dict:
        """JSON document (golden fixtures, CLI output)."""
        return {
            "schema": "rbcd-forensics",
            "version": 1,
            "scene": self.alias,
            "config": {
                "frames": self.frames,
                "width": self.resolution[0],
                "height": self.resolution[1],
                "zeb_elements": self.zeb_elements,
            },
            "pairs": {
                "rbcd": [sorted(p) for p in map(sorted, self.rbcd_pairs)],
                "oracle": [sorted(p) for p in map(sorted, self.oracle_pairs)],
                "agreements": self.agreements,
            },
            "case_histogram": self.recorder.case_histogram(),
            "by_cause": self.by_cause(),
            "divergences": [d.as_record() for d in self.divergences],
        }


def _pairs_of_unit(unit) -> set:
    return {(p.id_a, p.id_b) for p in unit.report.pairs}


def _rerun(frags, gpu_config: GPUConfig) -> set:
    """Re-feed a frame's fragment stream through a fresh RBCD unit."""
    from repro.experiments.overflow import rerun_unit

    return _pairs_of_unit(rerun_unit(frags, gpu_config))


class _FrameReplays:
    """Per-frame replay cache: each relaxation runs at most once."""

    def __init__(self, frame, frags, config: GPUConfig) -> None:
        self.frame = frame
        self.frags = frags
        self.config = config
        self._cache: dict[str, set] = {}

    def _get(self, key: str, compute) -> set:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    @property
    def deep_stack(self) -> set:
        return self._get(
            "deep_stack",
            lambda: _rerun(
                self.frags,
                self.config.with_rbcd(ff_stack_entries=_DEEP_STACK),
            ),
        )

    @property
    def long_lists(self) -> set:
        return self._get(
            "long_lists",
            lambda: _rerun(
                self.frags,
                self.config.with_rbcd(
                    list_length=_LONG_LIST, ff_stack_entries=_DEEP_STACK
                ),
            ),
        )

    @property
    def fine_z(self) -> set:
        rbcd = self.config.rbcd
        return self._get(
            "fine_z",
            lambda: _rerun(
                self.frags,
                self.config.with_rbcd(
                    z_bits=_FINE_Z_BITS,
                    element_bits=_FINE_Z_BITS + rbcd.id_bits + 1,
                ),
            ),
        )

    @property
    def hires(self) -> set:
        """Re-render at ``_HIRES_SCALE``× with generous RBCD budgets.

        The generous budgets keep the extra fragments of the larger
        framebuffer from introducing *new* overflow misses, so this
        rung isolates raster sampling.
        """

        def compute() -> set:
            config = self.config.with_screen(
                self.config.screen_width * _HIRES_SCALE,
                self.config.screen_height * _HIRES_SCALE,
            ).with_rbcd(
                list_length=_LONG_LIST, ff_stack_entries=_DEEP_STACK
            )
            with GPU(config, rbcd_enabled=True) as gpu:
                result = gpu.render_frame(self.frame)
            assert result.collisions is not None
            return {
                (p.id_a, p.id_b) for p in result.collisions.pairs
            }

        return self._get("hires", compute)

    # -- fragment-stream evidence ----------------------------------------

    def fragment_faces(self, object_id: int) -> tuple[int, int]:
        """(front, back) collisionable fragment counts for one object."""
        mask = self.frags.object_id == object_id
        front = int((mask & self.frags.front).sum())
        return front, int(mask.sum()) - front

    def overflow_at(self, pixels: list[tuple[int, int]]) -> int:
        """Total ZEB overflow events at the given witness pixels."""
        ts = self.config.tile_size
        tiles_x = self.config.tiles_x
        wanted: dict[int, set[int]] = {}
        for x, y in pixels:
            tile = (y // ts) * tiles_x + (x // ts)
            local = (y % ts) * ts + (x % ts)
            wanted.setdefault(tile, set()).add(local)
        total = 0
        for task in gather_tile_tasks(self.frags, self.config):
            locals_wanted = wanted.get(task.tile_index)
            if not locals_wanted:
                continue
            local = (task.y % ts).astype(np.int64) * ts + (
                task.x % ts
            ).astype(np.int64)
            where, events = overflow_events_by_pixel(local, self.config.rbcd)
            for pixel, count in zip(where.tolist(), events.tolist()):
                if pixel in locals_wanted:
                    total += count
        return total


def _classify_false_negative(
    pair: tuple[int, int], replays: _FrameReplays
) -> tuple[str, str]:
    """Root-cause one pair the oracle found but RBCD missed."""
    for object_id in pair:
        front, back = replays.fragment_faces(object_id)
        if front == 0 and back == 0:
            return (
                CAUSE_BROAD_PHASE,
                f"object {object_id} produced no collisionable fragments "
                "(off-frustum or fully clipped); Section 3.6 delegates "
                "this object to software CD",
            )
    for object_id in pair:
        front, back = replays.fragment_faces(object_id)
        if front == 0 or back == 0:
            missing = "front" if front == 0 else "back"
            return (
                CAUSE_DEFERRED_CULLING,
                f"object {object_id} has no {missing}-face fragments "
                f"({front} front / {back} back), so its depth interval "
                "never closes on the FF-Stack",
            )
    if pair in replays.deep_stack:
        return (
            CAUSE_FF_STACK,
            f"found again with a {_DEEP_STACK}-entry FF-Stack "
            f"(configured: {replays.config.rbcd.ff_stack_entries}); "
            "pushes were dropped at the witness pixel",
        )
    if pair in replays.long_lists:
        return (
            CAUSE_ZEB_OVERFLOW,
            f"found again with M={_LONG_LIST} ZEB lists (configured: "
            f"M={replays.config.rbcd.list_length}); the witness "
            "elements were dropped at insertion",
        )
    if pair in replays.fine_z:
        return (
            CAUSE_Z_PRECISION,
            f"found again with {_FINE_Z_BITS}-bit depth codes "
            f"(configured: {replays.config.rbcd.z_bits}); the contact "
            "fell inside one quantization step",
        )
    if pair in replays.hires:
        return (
            CAUSE_RESOLUTION,
            f"found again at {_HIRES_SCALE}x resolution; the contact "
            "region fell between pixel-center sample rays",
        )
    return (CAUSE_UNCLASSIFIED, "no replay flips the verdict")


def _classify_false_positive(
    pair: tuple[int, int],
    replays: _FrameReplays,
    contained: bool,
    witness_pixels: list[tuple[int, int]],
) -> tuple[str, str]:
    """Root-cause one pair RBCD emitted but the oracle rejected."""
    if contained:
        return (
            CAUSE_ORACLE_CONTAINMENT,
            "GJK reports the convex shapes intersecting; the "
            "surface-only triangle oracle cannot see containment, "
            "which RBCD detects by interval nesting",
        )
    if pair not in replays.deep_stack:
        return (
            CAUSE_FF_STACK,
            f"vanishes with a {_DEEP_STACK}-entry FF-Stack; dropped "
            "pushes mispaired the surviving intervals",
        )
    if pair not in replays.long_lists:
        drops = replays.overflow_at(witness_pixels)
        return (
            CAUSE_ZEB_OVERFLOW,
            f"vanishes with M={_LONG_LIST} ZEB lists; "
            f"{drops} element(s) were dropped at the witness pixel(s), "
            "splicing unrelated intervals together",
        )
    if pair not in replays.fine_z:
        return (
            CAUSE_Z_PRECISION,
            f"vanishes with {_FINE_Z_BITS}-bit depth codes; the "
            "intervals only touch after quantization to "
            f"{replays.config.rbcd.z_bits}-bit codes",
        )
    if pair not in replays.hires:
        return (
            CAUSE_RESOLUTION,
            f"vanishes at {_HIRES_SCALE}x resolution; the Section 2.2 "
            "false-collisionable margin of one pixel covered both "
            "objects",
        )
    return (CAUSE_UNCLASSIFIED, "no replay flips the verdict")


def _convex_intersect(scene, t: float, id_a: int, id_b: int) -> bool:
    """GJK over the two objects' convex hulls at time ``t``."""
    ops = OpCounter()
    shapes = {}
    for obj in scene.objects:
        if not obj.collisionable:
            continue
        object_id = scene.object_id(obj.name)
        if object_id in (id_a, id_b):
            shape = ConvexShape(obj.mesh.vertices)
            shape.update_transform(obj.animator.transform(t), ops)
            shapes[object_id] = shape
    if len(shapes) != 2:
        return False
    return gjk_intersect(shapes[id_a], shapes[id_b], ops).intersecting


def run_forensics(
    workload: Workload,
    config: GPUConfig | None = None,
    frames: int | None = None,
    recorder: ProvenanceRecorder | None = None,
) -> ForensicsReport:
    """Run RBCD + oracle over a workload and classify every divergence.

    ``recorder`` (optional) receives the run's pair evidence; a fresh
    one is created otherwise.  The oracle is the software pipeline's
    ``broad+exact`` mode over the *render* meshes — the same surfaces
    the rasterizer sees, so tessellation differences cannot masquerade
    as RBCD divergences.
    """
    config = config if config is not None else GPUConfig()
    recorder = recorder if recorder is not None else ProvenanceRecorder()
    scene = workload.scene

    # The oracle's broad phase uses the LBVH backend: its pair set is
    # provably identical to brute force (the LBVH suite asserts it),
    # and it keeps oracle wall-time sub-quadratic on dense scenes.
    world = CollisionWorld("lbvh")
    collisionables = [
        (scene.object_id(obj.name), obj)
        for obj in scene.objects
        if obj.collisionable
    ]
    for object_id, obj in collisionables:
        world.add_object(object_id, obj.mesh)

    rbcd_pairs: list[set] = []
    oracle_pairs: list[set] = []
    divergences: list[Divergence] = []

    times = workload.times(frames)
    with GPU(config, rbcd_enabled=True, provenance=recorder) as gpu:
        for frame_index, t in enumerate(times):
            frame = scene.frame_at(float(t), config)
            result = gpu.render_frame(frame, keep_fragments=True)
            assert result.collisions is not None
            assert result.fragments is not None
            found = {(p.id_a, p.id_b) for p in result.collisions.pairs}

            for object_id, obj in collisionables:
                world.set_transform(object_id, obj.animator.transform(float(t)))
            exact = {tuple(p) for p in world.detect("broad+exact").pairs}

            rbcd_pairs.append(found)
            oracle_pairs.append(exact)

            replays = _FrameReplays(frame, result.fragments, config)
            for pair in sorted(found - exact):
                witness = recorder.witness_pixels(*pair, frame=frame_index)
                contained = _convex_intersect(scene, float(t), *pair)
                cause, detail = _classify_false_positive(
                    pair, replays, contained, witness
                )
                divergences.append(
                    Divergence(
                        frame=frame_index,
                        id_a=pair[0],
                        id_b=pair[1],
                        kind="false_positive",
                        cause=cause,
                        detail=detail,
                        witness_pixels=witness,
                    )
                )
            for pair in sorted(exact - found):
                cause, detail = _classify_false_negative(pair, replays)
                divergences.append(
                    Divergence(
                        frame=frame_index,
                        id_a=pair[0],
                        id_b=pair[1],
                        kind="false_negative",
                        cause=cause,
                        detail=detail,
                    )
                )

    return ForensicsReport(
        alias=workload.alias,
        frames=len(times),
        resolution=(config.screen_width, config.screen_height),
        zeb_elements=config.rbcd.list_length,
        rbcd_pairs=rbcd_pairs,
        oracle_pairs=oracle_pairs,
        divergences=divergences,
        recorder=recorder,
    )
