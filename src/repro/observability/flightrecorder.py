"""Flight recorder: an always-on black box for the collision service.

When a watchdog alert fires or a tenant is rejected, the interesting
evidence — what the stream looked like in the frames *before* the
incident — is normally gone: the live monitor keeps aggregates, the
tracer keeps growing lists nobody bounded, logs scrolled by.  This
module applies the paper's discipline ("keep exact per-tile evidence,
spend it only when asked") to runtime diagnostics: bounded ring
buffers of recent activity, recorded always, written out only on a
trigger.

Per stream (tenant), the recorder keeps rings of:

* completed tracer spans (with the request-scoped ``tenant`` /
  ``stream`` / ``frame_seq`` attributes the serving frontend stamps);
* :class:`~repro.observability.live.MetricSnapshot` records;
* watchdog alert/recovery transitions;
* admission rejections;

plus one global ring of structured log events captured from the
``repro`` logger tree.  On a trigger — watchdog alert, admission
rejection, unhandled exception in ``CollisionService.step``, or an
explicit :meth:`FlightRecorder.dump` — it writes a schema-validated
``rbcd-postmortem`` v1 document through the atomic-rename path in
:mod:`repro.observability.netutil`, so a half-written incident file
can never be mistaken for evidence.

Strictly observational: recording reads spans, snapshots and log
records; it never feeds anything back into the pipeline.  The
contract is the repo's usual one — recorder-on is bit-identical to
recorder-off at any worker count
(``tests/integration/test_flightrecorder_differential.py``) and the
ring contents themselves are deterministic modulo the wall-clock
fields named in :data:`WALL_FIELDS`.

The post-mortem replay (:func:`window_values_from_snapshots`) rebuilds
a monitor's sliding windows, EWMAs and quantile sketches from the
recorded snapshot stream and feeds them to the *same*
:func:`~repro.observability.live.aggregate_window_values` the live
monitor uses — so every alert's window stats are reproducible from a
dump exactly, by the counter algebra, not approximately
(:func:`verify_alert_record`).
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.observability.live import (
    WINDOW_SERIES,
    aggregate_window_values,
)
from repro.observability.log import _RESERVED, get_logger, log_event
from repro.observability.netutil import atomic_write_text
from repro.observability.tracer import Span, Tracer
from repro.observability.window import Ewma, QuantileSketch, SlidingWindow

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "DEFAULT_STREAM",
    "WALL_FIELDS",
    "RingBuffer",
    "FlightRecorder",
    "config_fingerprint",
    "deterministic_event",
    "deterministic_events",
    "window_values_from_snapshots",
    "verify_alert_record",
    "validate_postmortem_document",
]

_LOG = get_logger(__name__)

SCHEMA_NAME = "rbcd-postmortem"
SCHEMA_VERSION = 1

# The stream events land on when no tenant attribute identifies one
# (single-system runs like ``python -m repro.experiments.monitor``).
DEFAULT_STREAM = "default"

# Record fields that measure the host clock, not the model.  The
# determinism contract covers everything *except* these:
# ``deterministic_events`` strips them before ring-content comparison.
WALL_FIELDS = frozenset({"ts", "wall_s", "t_start", "t_end"})

# Kinds that auto-dump by default.  "manual" (explicit dump()) is
# always allowed and never suppressed by the dump limit check alone.
DEFAULT_DUMP_ON = ("alert", "rejection", "exception")


class RingBuffer:
    """Bounded FIFO of records with drop accounting.

    Appends are O(1); the oldest record is evicted once ``capacity``
    is reached.  ``total``/``dropped`` keep the exact arithmetic the
    post-mortem document reports, so a reader knows whether the ring
    underran the window it wants to replay.
    """

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"capacity must be a positive int, got {capacity!r}")
        self.capacity = capacity
        self._items: deque = deque(maxlen=capacity)
        self.total = 0

    def append(self, item) -> None:
        self._items.append(item)
        self.total += 1

    @property
    def dropped(self) -> int:
        return self.total - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> list:
        """The current contents, oldest first (a shallow copy)."""
        return list(self._items)

    def stats(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "recorded": self.total,
            "dropped": self.dropped,
        }


class _StreamRings:
    """One tenant's rings plus its monitor/config references."""

    def __init__(
        self,
        span_capacity: int,
        snapshot_capacity: int,
        alert_capacity: int,
        rejection_capacity: int,
    ) -> None:
        self.spans = RingBuffer(span_capacity)
        self.snapshots = RingBuffer(snapshot_capacity)
        self.alerts = RingBuffer(alert_capacity)
        self.rejections = RingBuffer(rejection_capacity)
        self.monitor = None
        self.monitor_meta: dict[str, Any] | None = None
        self.config: dict[str, Any] | None = None

    def rings(self) -> dict[str, RingBuffer]:
        return {
            "spans": self.spans,
            "snapshots": self.snapshots,
            "alerts": self.alerts,
            "rejections": self.rejections,
        }


class _RecorderLogHandler(logging.Handler):
    """Feeds ``repro.*`` log records into the recorder's log ring."""

    def __init__(self, recorder: "FlightRecorder", level: int) -> None:
        super().__init__(level)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._recorder._record_log_record(record)
        except Exception:  # pragma: no cover - never take logging down
            self.handleError(record)


def config_fingerprint(config) -> dict[str, Any]:
    """A readable + hashable identity for a stream's ``GPUConfig``.

    Carries the fields that shape results (screen, tiles, RBCD unit)
    plus the execution knobs that must *not* change them
    (kernel backend, executor, tile cache), and a blake2b digest of
    the tile-cache canonical key so two dumps can be compared for
    config drift at a glance.
    """
    # Lazy import: repro.gpu pulls in the whole pipeline package, and
    # importing it from an observability module at import time would
    # recreate the forensics cycle (see the package __init__).
    import hashlib

    from repro.gpu.tilecache import config_token

    return {
        "screen": [config.screen_width, config.screen_height],
        "tile_size": config.tile_size,
        "zeb_count": config.rbcd.zeb_count,
        "list_length": config.rbcd.list_length,
        "kernel_backend": config.kernel_backend,
        "executor_backend": config.executor_backend,
        "executor_workers": config.executor_workers,
        "tile_cache_enabled": config.tile_cache_enabled,
        "token": hashlib.blake2b(
            config_token(config), digest_size=16
        ).hexdigest(),
    }


class FlightRecorder:
    """Bounded always-on recording with triggered post-mortem dumps.

    Attach points (all optional, all observational):

    * :meth:`attach_tracer` — subscribe to a tracer's completed spans
      (or create a recorder-owned bounded one);
    * :meth:`attach_monitor` — subscribe to a
      :class:`~repro.observability.live.LiveMonitor`'s snapshots and
      watchdog transitions;
    * :meth:`attach_config` — fingerprint a stream's config;
    * :meth:`record_rejection` / :meth:`record_exception` — admission
      and crash evidence from the serving frontend;
    * log capture from the ``repro`` logger tree is on by default
      (``capture_logs=False`` disables; :meth:`close` detaches).

    ``dump_on`` names the trigger kinds that auto-dump; ``dump_limit``
    bounds how many documents an incident storm may write (the
    default 1 keeps a CI job or a misbehaving tenant from filling the
    disk — later triggers are counted in ``dumps_suppressed``).
    Explicit :meth:`dump` calls ignore the limit.
    """

    def __init__(
        self,
        dump_dir: str | Path | None = None,
        *,
        span_capacity: int = 512,
        snapshot_capacity: int = 256,
        alert_capacity: int = 64,
        rejection_capacity: int = 128,
        log_capacity: int = 256,
        dump_on: Iterable[str] = DEFAULT_DUMP_ON,
        dump_limit: int | None = 1,
        capture_logs: bool = True,
        log_level: int = logging.DEBUG,
        clock=time.time,
    ) -> None:
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.dump_on = frozenset(dump_on)
        self.dump_limit = dump_limit
        self._clock = clock
        self._capacities = (
            span_capacity, snapshot_capacity, alert_capacity,
            rejection_capacity,
        )
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._streams: dict[str, _StreamRings] = {}
        self._logs = RingBuffer(log_capacity)
        self.triggers: dict[str, int] = {}
        self.dumps_written = 0
        self.dumps_suppressed = 0
        self.dump_paths: list[Path] = []
        self._dump_index = 0
        self._log_handler: _RecorderLogHandler | None = None
        if capture_logs:
            self._log_handler = _RecorderLogHandler(self, log_level)
            get_logger().addHandler(self._log_handler)

    # -- attach points -------------------------------------------------------

    def attach_tracer(self, tracer=None, stream: str = DEFAULT_STREAM):
        """Record completed spans from ``tracer`` (returned).

        With ``tracer=None`` a recorder-owned ``Tracer(keep_spans=
        False)`` is created: listeners see every span, but the tracer
        itself holds at most one frame's tree — bounded memory for an
        always-on recorder.  Spans carrying a ``tenant`` attribute are
        routed to that stream's ring; others land on ``stream``.
        """
        if tracer is None:
            tracer = Tracer(keep_spans=False)
        tracer.add_listener(
            lambda span, _stream=stream: self.record_span(span, stream=_stream)
        )
        return tracer

    def attach_monitor(self, monitor, stream: str = DEFAULT_STREAM):
        """Record ``monitor``'s snapshots and watchdog transitions.

        Also retains the monitor's window/sketch/EWMA parameters (the
        post-mortem replay needs them) and reads its cumulative
        counter totals at dump time.  Returns the monitor.
        """
        with self._lock:
            rings = self._stream_locked(stream)
            rings.monitor = monitor
            rings.monitor_meta = {
                "window": monitor.window_size,
                "sketch_accuracy": monitor.sketch_accuracy,
                "ewma_alpha": monitor.ewma_alpha,
            }
        monitor.add_listener(
            lambda kind, payload, _stream=stream:
                self._on_monitor_event(_stream, kind, payload)
        )
        return monitor

    def attach_config(self, config, stream: str = DEFAULT_STREAM) -> None:
        """Fingerprint ``config`` into the stream's dump header."""
        fingerprint = config_fingerprint(config)
        with self._lock:
            self._stream_locked(stream).config = fingerprint

    # -- recording -----------------------------------------------------------

    def record_span(self, span: Span, stream: str = DEFAULT_STREAM) -> None:
        stream = str(span.attrs.get("tenant", stream))
        self._record(
            lambda: self._stream_locked(stream).spans,
            {
                "kind": "span",
                "stream": stream,
                "name": span.name,
                "category": span.category,
                "index": span.index,
                "parent": span.parent,
                "depth": span.depth,
                "cycles": span.cycles,
                "attrs": dict(span.attrs),
                "t_start": span.t_start,
                "t_end": span.t_end,
                "wall_s": span.wall_s,
            },
        )

    def _on_monitor_event(self, stream: str, kind: str, payload) -> None:
        if kind == "snapshot":
            self._record(
                lambda: self._stream_locked(stream).snapshots,
                {"kind": "snapshot", "stream": stream, **payload.as_dict()},
            )
        elif kind == "alert":
            self._record(
                lambda: self._stream_locked(stream).alerts,
                {"kind": "alert", "stream": stream, **payload.as_dict()},
            )
            self.trigger(
                "alert", stream=stream, rule=payload.rule,
                metric=payload.metric, frame=payload.frame,
            )
        elif kind == "recovery":
            self._record(
                lambda: self._stream_locked(stream).alerts,
                {"kind": "recovery", "stream": stream, **payload},
            )

    def record_rejection(
        self, stream: str, reason: str, detail: str = "", **attrs
    ) -> None:
        """Record an admission rejection, then fire its trigger."""
        self._record(
            lambda: self._stream_locked(stream).rejections,
            {
                "kind": "rejection", "stream": stream,
                "reason": reason, "detail": detail, **attrs,
            },
        )
        self.trigger("rejection", stream=stream, reason=reason)

    def record_exception(self, stream: str, exc: BaseException, **attrs) -> None:
        """Fire the crash trigger (the dump itself is the evidence)."""
        self.trigger("exception", stream=stream, error=repr(exc), **attrs)

    def _record_log_record(self, record: logging.LogRecord) -> None:
        payload: dict[str, Any] = {
            "kind": "log",
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            payload[key] = value
        self._record(lambda: self._logs, payload)

    def _record(self, ring_of, record: dict) -> None:
        with self._lock:
            ring_of().append({"seq": next(self._seq), **record})

    def _stream_locked(self, stream: str) -> _StreamRings:
        rings = self._streams.get(stream)
        if rings is None:
            rings = self._streams[stream] = _StreamRings(*self._capacities)
        return rings

    # -- triggers and dumps --------------------------------------------------

    def trigger(self, kind: str, **detail) -> Path | None:
        """Fire a trigger; auto-dump if ``kind`` is armed and within
        the dump limit.  Returns the dump path if one was written.

        Dump failures are logged, not raised — a full disk must not
        take the serving path down with it.
        """
        with self._lock:
            self.triggers[kind] = self.triggers.get(kind, 0) + 1
            if kind not in self.dump_on:
                return None
            if (
                self.dump_limit is not None
                and self._dump_index >= self.dump_limit
            ):
                self.dumps_suppressed += 1
                return None
        try:
            return self.dump(trigger=kind, detail=detail)
        except OSError as exc:
            log_event(
                _LOG, "flightrecorder.dump_failed", level=logging.ERROR,
                trigger=kind, error=repr(exc),
            )
            return None

    def dump(
        self,
        path: str | Path | None = None,
        *,
        trigger: str = "manual",
        detail: Mapping[str, Any] | None = None,
    ) -> Path:
        """Write the post-mortem document now (atomic rename).

        Explicit calls ignore ``dump_limit``.  With no ``path``, the
        file lands in ``dump_dir`` as ``postmortem-NNNN-<trigger>.json``.
        The document is validated before it is written: the recorder
        never publishes evidence it would itself reject.
        """
        doc = self.document(trigger=trigger, detail=detail)
        validate_postmortem_document(doc)
        with self._lock:
            index = self._dump_index
            self._dump_index += 1
        if path is None:
            if self.dump_dir is None:
                raise ValueError(
                    "FlightRecorder.dump() needs a path or a dump_dir"
                )
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            slug = "".join(
                ch if ch.isalnum() else "-" for ch in trigger
            ).strip("-") or "dump"
            path = self.dump_dir / f"postmortem-{index:04d}-{slug}.json"
        target = atomic_write_text(
            path, json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
        )
        with self._lock:
            self.dumps_written += 1
            self.dump_paths.append(target)
        log_event(
            _LOG, "flightrecorder.dump", level=logging.WARNING,
            trigger=trigger, path=str(target),
        )
        return target

    def document(
        self,
        trigger: str = "manual",
        detail: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Build the ``rbcd-postmortem`` v1 document (no file I/O)."""
        with self._lock:
            streams: dict[str, Any] = {}
            monitors = {}
            for name in sorted(self._streams):
                rings = self._streams[name]
                streams[name] = {
                    "config": rings.config,
                    "monitor": (
                        dict(rings.monitor_meta)
                        if rings.monitor_meta is not None else None
                    ),
                    "counters": {},
                    "spans": rings.spans.snapshot(),
                    "snapshots": rings.snapshots.snapshot(),
                    "alerts": rings.alerts.snapshot(),
                    "rejections": rings.rejections.snapshot(),
                    "rings": {
                        ring_name: ring.stats()
                        for ring_name, ring in rings.rings().items()
                    },
                }
                monitors[name] = rings.monitor
            doc = {
                "schema": SCHEMA_NAME,
                "version": SCHEMA_VERSION,
                "trigger": {
                    "kind": trigger,
                    "detail": dict(detail) if detail else {},
                    "seq": next(self._seq),
                    "ts": self._clock(),
                },
                "streams": streams,
                "logs": self._logs.snapshot(),
                "log_ring": self._logs.stats(),
                "stats": {
                    "dumps_written": self.dumps_written,
                    "dumps_suppressed": self.dumps_suppressed,
                    "triggers": dict(self.triggers),
                },
            }
        # Counter totals read outside the recorder lock: the monitor
        # has its own lock and calls listeners without holding it, so
        # this ordering can never deadlock.
        for name, monitor in monitors.items():
            if monitor is not None:
                doc["streams"][name]["counters"] = monitor.totals()
        return doc

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Ring depths and dump counters (the metrics-gauge source)."""
        with self._lock:
            return {
                "dumps_written": self.dumps_written,
                "dumps_suppressed": self.dumps_suppressed,
                "logs": len(self._logs),
                "streams": {
                    name: {
                        ring_name: len(ring)
                        for ring_name, ring in rings.rings().items()
                    }
                    for name, rings in self._streams.items()
                },
            }

    def close(self) -> None:
        """Detach the log handler (idempotent).  Rings survive close:
        a recorder can still dump after the stream it watched ended."""
        if self._log_handler is not None:
            get_logger().removeHandler(self._log_handler)
            self._log_handler = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- determinism helpers -----------------------------------------------------


def deterministic_event(record: Mapping[str, Any]) -> dict[str, Any]:
    """``record`` minus the wall-clock fields (:data:`WALL_FIELDS`)."""
    return {k: v for k, v in record.items() if k not in WALL_FIELDS}


def deterministic_events(records: Iterable[Mapping[str, Any]]) -> list[dict]:
    """The ring-content view the determinism contract compares."""
    return [deterministic_event(r) for r in records]


# -- post-mortem replay ------------------------------------------------------


def window_values_from_snapshots(
    snapshots: Iterable[Mapping[str, Any]],
    *,
    window: int,
    sketch_accuracy: float = 0.01,
    ewma_alpha: float = 0.2,
) -> dict[str, float]:
    """Recompute a monitor's window values from recorded snapshots.

    Rebuilds the exact per-frame series ``LiveMonitor.observe_frame``
    pushes — every input is read back from snapshot fields that are
    bitwise equal to what the live monitor saw (JSON round-trips
    Python floats exactly) — then aggregates through the shared
    :func:`~repro.observability.live.aggregate_window_values`.  Feeding
    the same frames therefore reproduces the live values bit for bit.
    """
    windows = {name: SlidingWindow(window) for name in WINDOW_SERIES}
    ewmas = {
        "frame.wall_ms": Ewma(ewma_alpha),
        "rbcd.activity_ratio": Ewma(ewma_alpha),
    }
    sketches = {
        "frame.wall_ms": QuantileSketch(sketch_accuracy),
        "frame.sim_ms": QuantileSketch(sketch_accuracy),
        "rbcd.activity_ratio": QuantileSketch(sketch_accuracy),
    }
    for record in snapshots:
        counters = record["counters"]
        derived = record["derived"]
        wall_ms = float(record["wall_s"]) * 1e3
        sim_ms = float(record["sim_s"]) * 1e3
        activity = float(derived["rbcd.activity_ratio"])
        push = {
            "rbcd_cycles": float(counters["gpu.rbcd.rbcd_cycles"]),
            "gpu_cycles": float(record["gpu_cycles"]),
            "zeb_overflow_events":
                float(counters["gpu.rbcd.zeb_overflow_events"]),
            "zeb_insertions": float(counters["gpu.rbcd.zeb_insertions"]),
            "ff_stack_overflows":
                float(counters["gpu.rbcd.ff_stack_overflows"]),
            "zeb_lists_analyzed":
                float(counters["gpu.rbcd.zeb_lists_analyzed"]),
            "energy_j": float(derived["energy.joules"]),
            "wall_ms": wall_ms,
            "sim_ms": sim_ms,
            "pairs": float(counters["gpu.rbcd.collision_pairs_emitted"]),
        }
        for name in WINDOW_SERIES:
            windows[name].push(push[name])
        ewmas["frame.wall_ms"].update(wall_ms)
        ewmas["rbcd.activity_ratio"].update(activity)
        sketches["frame.wall_ms"].add(wall_ms)
        sketches["frame.sim_ms"].add(sim_ms)
        sketches["rbcd.activity_ratio"].add(activity)
    return aggregate_window_values(windows, ewmas, sketches)


def verify_alert_record(
    alert: Mapping[str, Any],
    snapshots: Iterable[Mapping[str, Any]],
    monitor_meta: Mapping[str, Any],
) -> dict[str, Any]:
    """Cross-check one recorded alert against recorded snapshots.

    Replays the snapshot stream up to the alert's frame through
    :func:`window_values_from_snapshots` and compares the recomputed
    metric to the alert's recorded value with exact float equality.
    Returns a verdict dict with ``status`` one of:

    * ``"reproduced"`` — recomputed value equals the recorded one;
    * ``"unverifiable"`` — the snapshot ring dropped frames the
      metric's support needs (window metrics need the trailing
      ``window`` frames; EWMAs and quantiles need the whole stream);
    * ``"mismatch"`` — the values differ (corrupt or tampered dump).
    """
    frame = int(alert["frame"])
    metric = str(alert["metric"])
    expected = float(alert["value"])
    window = int(monitor_meta["window"])
    by_frame = {
        int(r["frame"]): r for r in snapshots if int(r["frame"]) <= frame
    }
    if metric.startswith("window."):
        required = list(range(max(0, frame - window + 1), frame + 1))
    else:
        # ewma.* / quantile.* carry state from every frame ever seen.
        required = list(range(0, frame + 1))
    missing = [f for f in required if f not in by_frame]
    verdict = {
        "rule": alert.get("rule"),
        "metric": metric,
        "frame": frame,
        "expected": expected,
        "recomputed": None,
    }
    if missing:
        verdict["status"] = "unverifiable"
        verdict["reason"] = (
            f"snapshot ring is missing frame(s) "
            f"{missing[0]}..{missing[-1]} needed to replay {metric}"
        )
        return verdict
    values = window_values_from_snapshots(
        [by_frame[f] for f in required],
        window=window,
        sketch_accuracy=float(monitor_meta["sketch_accuracy"]),
        ewma_alpha=float(monitor_meta["ewma_alpha"]),
    )
    if metric not in values:
        verdict["status"] = "unverifiable"
        verdict["reason"] = f"replay produced no value for {metric}"
        return verdict
    recomputed = float(values[metric])
    verdict["recomputed"] = recomputed
    if recomputed == expected:
        verdict["status"] = "reproduced"
    else:
        verdict["status"] = "mismatch"
        verdict["reason"] = (
            f"recomputed {recomputed!r} != recorded {expected!r}"
        )
    return verdict


# -- validation --------------------------------------------------------------


def _fail(reason: str) -> None:
    raise ValueError(f"invalid {SCHEMA_NAME} document: {reason}")


def _require_mapping(value, where: str) -> Mapping:
    if not isinstance(value, Mapping):
        _fail(f"{where} must be a mapping, got {type(value).__name__}")
    return value


def _require_int(value, where: str, minimum: int = 0) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(f"{where} expected an int, got {value!r}")
    if value < minimum:
        _fail(f"{where} must be >= {minimum}, got {value}")
    return value


def _require_number(value, where: str):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{where} expected a number, got {value!r}")
    return value


def _require_str(value, where: str) -> str:
    if not isinstance(value, str) or not value:
        _fail(f"{where} expected a non-empty string, got {value!r}")
    return value


def _check_records(
    records, where: str, kinds: tuple[str, ...], required: tuple[str, ...]
) -> None:
    if not isinstance(records, list):
        _fail(f"{where} must be a list")
    last_seq = -1
    for i, record in enumerate(records):
        slot = f"{where}[{i}]"
        _require_mapping(record, slot)
        seq = _require_int(record.get("seq"), f"{slot}.seq")
        if seq <= last_seq:
            _fail(f"{slot}.seq {seq} not increasing (previous {last_seq})")
        last_seq = seq
        kind = record.get("kind")
        if kind not in kinds:
            _fail(f"{slot}.kind {kind!r} not in {kinds}")
        for field_name in required:
            if field_name not in record:
                _fail(f"{slot} missing field {field_name!r}")


def _check_ring_stats(stats, where: str, contents_len: int) -> None:
    stats = _require_mapping(stats, where)
    capacity = _require_int(stats.get("capacity"), f"{where}.capacity", 1)
    recorded = _require_int(stats.get("recorded"), f"{where}.recorded")
    dropped = _require_int(stats.get("dropped"), f"{where}.dropped")
    if dropped + contents_len != recorded:
        _fail(
            f"{where}: dropped({dropped}) + kept({contents_len}) "
            f"!= recorded({recorded})"
        )
    if contents_len > capacity:
        _fail(f"{where}: {contents_len} records exceed capacity {capacity}")


def validate_postmortem_document(doc) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed
    ``rbcd-postmortem`` v1 document."""
    _require_mapping(doc, "document")
    if doc.get("schema") != SCHEMA_NAME:
        _fail(f"schema must be {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    if doc.get("version") != SCHEMA_VERSION:
        _fail(f"version must be {SCHEMA_VERSION}, got {doc.get('version')!r}")
    trigger = _require_mapping(doc.get("trigger"), "trigger")
    _require_str(trigger.get("kind"), "trigger.kind")
    _require_mapping(trigger.get("detail"), "trigger.detail")
    _require_int(trigger.get("seq"), "trigger.seq")
    streams = _require_mapping(doc.get("streams"), "streams")
    for name, stream in streams.items():
        where = f"streams[{name!r}]"
        stream = _require_mapping(stream, where)
        if stream.get("config") is not None:
            _require_mapping(stream["config"], f"{where}.config")
        meta = stream.get("monitor")
        if meta is not None:
            meta = _require_mapping(meta, f"{where}.monitor")
            _require_int(meta.get("window"), f"{where}.monitor.window", 1)
            _require_number(
                meta.get("sketch_accuracy"), f"{where}.monitor.sketch_accuracy"
            )
            _require_number(
                meta.get("ewma_alpha"), f"{where}.monitor.ewma_alpha"
            )
        counters = _require_mapping(stream.get("counters"), f"{where}.counters")
        for cname, cvalue in counters.items():
            _require_number(cvalue, f"{where}.counters[{cname!r}]")
        _check_records(
            stream.get("spans"), f"{where}.spans", ("span",),
            ("stream", "name", "category", "cycles", "attrs"),
        )
        _check_records(
            stream.get("snapshots"), f"{where}.snapshots", ("snapshot",),
            ("stream", "frame", "gpu_cycles", "counters", "derived"),
        )
        last_frame = -1
        for i, snap in enumerate(stream["snapshots"]):
            frame = _require_int(
                snap.get("frame"), f"{where}.snapshots[{i}].frame"
            )
            if frame <= last_frame:
                _fail(
                    f"{where}.snapshots[{i}].frame {frame} not increasing"
                )
            last_frame = frame
        _check_records(
            stream.get("alerts"), f"{where}.alerts", ("alert", "recovery"),
            ("stream", "rule", "metric", "frame"),
        )
        for i, record in enumerate(stream["alerts"]):
            if record["kind"] == "alert":
                for field_name in ("value", "threshold", "op"):
                    if field_name not in record:
                        _fail(
                            f"{where}.alerts[{i}] missing {field_name!r}"
                        )
        _check_records(
            stream.get("rejections"), f"{where}.rejections", ("rejection",),
            ("stream", "reason"),
        )
        rings = _require_mapping(stream.get("rings"), f"{where}.rings")
        for ring_name in ("spans", "snapshots", "alerts", "rejections"):
            _check_ring_stats(
                rings.get(ring_name), f"{where}.rings.{ring_name}",
                len(stream[ring_name]),
            )
    _check_records(
        doc.get("logs"), "logs", ("log",), ("level", "logger", "event")
    )
    _check_ring_stats(doc.get("log_ring"), "log_ring", len(doc["logs"]))
    stats = _require_mapping(doc.get("stats"), "stats")
    _require_int(stats.get("dumps_written"), "stats.dumps_written")
    _require_int(stats.get("dumps_suppressed"), "stats.dumps_suppressed")
    _require_mapping(stats.get("triggers"), "stats.triggers")
