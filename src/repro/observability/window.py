"""Sliding-window aggregation primitives for streaming telemetry.

Three building blocks, all deterministic and allocation-light, used by
:mod:`repro.observability.live` to turn a stream of per-frame samples
into live rates and latency percentiles:

* :class:`SlidingWindow` — the last ``capacity`` samples with O(1)
  push/evict and running sum (recomputed on eviction to avoid float
  drift), plus min/max/mean over the retained samples;
* :class:`Ewma` — an exponentially weighted moving average, the cheap
  "trend" signal next to the exact window;
* :class:`WindowAggregate` — a mergeable (count, total, min, max)
  summary carrying the same associative/commutative shard-merge
  contract as :class:`~repro.observability.counters.CounterRegistry`,
  so per-tile samples aggregated in any shard grouping produce the
  same frame-level summary;
* :class:`QuantileSketch` — a DDSketch-style streaming quantile sketch
  (logarithmic buckets with bounded *relative* error).  Bucket counts
  are integers and the merge is a plain per-bucket sum, so merging is
  exactly associative and commutative — p50/p95/p99 read from a merged
  sketch are bit-identical whatever the shard grouping or merge order.

Nothing here looks at the wall clock; callers feed values in, which
keeps every aggregate a pure function of the sample stream (the
property the live-telemetry differential tests rely on).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "SlidingWindow",
    "Ewma",
    "WindowAggregate",
    "QuantileSketch",
]


class SlidingWindow:
    """The last ``capacity`` float samples, with running statistics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self.capacity = capacity
        self._samples: deque[float] = deque(maxlen=capacity)

    def push(self, value: float) -> None:
        self._samples.append(float(value))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def full(self) -> bool:
        return len(self._samples) == self.capacity

    def values(self) -> list[float]:
        return list(self._samples)

    def sum(self) -> float:
        # Recomputed rather than maintained incrementally: an O(n) sum
        # over <= capacity floats is cheap and never accumulates the
        # add/subtract drift of a running total.
        return float(sum(self._samples))

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self.sum() / len(self._samples)

    def min(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def last(self) -> float:
        return self._samples[-1] if self._samples else 0.0

    def __repr__(self) -> str:
        return (
            f"SlidingWindow({len(self._samples)}/{self.capacity}, "
            f"mean={self.mean():.4g})"
        )


class Ewma:
    """Exponentially weighted moving average, seeded by the first sample."""

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value += self.alpha * (value - self._value)
        return self._value

    @property
    def value(self) -> float:
        return self._value if self._value is not None else 0.0

    @property
    def initialized(self) -> bool:
        return self._value is not None


@dataclass(frozen=True)
class WindowAggregate:
    """Mergeable (count, total, min, max) summary of a sample set.

    The empty aggregate (``count == 0``) is the merge identity, so any
    shard grouping of a sample set — including empty shards — merges to
    the same summary the flat aggregation produces.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    @staticmethod
    def of(values: Iterable[float]) -> "WindowAggregate":
        agg = WindowAggregate()
        for value in values:
            agg = agg.observe(value)
        return agg

    def observe(self, value: float) -> "WindowAggregate":
        value = float(value)
        return WindowAggregate(
            count=self.count + 1,
            total=self.total + value,
            minimum=min(self.minimum, value),
            maximum=max(self.maximum, value),
        )

    def merge(self, other: "WindowAggregate") -> "WindowAggregate":
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return WindowAggregate(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def __add__(self, other):
        if not isinstance(other, WindowAggregate):
            return NotImplemented
        return self.merge(other)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


class QuantileSketch:
    """Deterministic streaming quantiles with bounded relative error.

    DDSketch's bucketing scheme: a positive sample ``x`` lands in bucket
    ``ceil(log_gamma(x))`` with ``gamma = (1 + a) / (1 - a)`` for
    relative accuracy ``a``; the reported quantile is the bucket's
    geometric midpoint, within ``a`` relative error of the true value.
    Values at or below :attr:`zero_threshold` share an exact zero
    bucket.  Bucket counts are plain integers, so :meth:`merge` (a
    per-bucket sum) is exactly associative and commutative, and the
    quantiles of a merged sketch do not depend on how the sample stream
    was sharded — the property the parallel shard-merge tests assert.
    """

    def __init__(
        self,
        relative_accuracy: float = 0.01,
        zero_threshold: float = 1e-12,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        if zero_threshold < 0.0:
            raise ValueError("zero_threshold must be >= 0")
        self.relative_accuracy = relative_accuracy
        self.zero_threshold = zero_threshold
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self.gamma)
        self._buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self._min = math.inf
        self._max = -math.inf

    # -- recording -----------------------------------------------------------

    def add(self, value: float, count: int = 1) -> None:
        value = float(value)
        if count < 1:
            raise ValueError("count must be >= 1")
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ValueError(
                f"QuantileSketch accepts finite non-negative values, got {value!r}"
            )
        if value <= self.zero_threshold:
            self.zero_count += count
        else:
            key = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[key] = self._buckets.get(key, 0) + count
        self.count += count
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    # -- reading -------------------------------------------------------------

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def _bucket_value(self, key: int) -> float:
        # Geometric midpoint of (gamma^(key-1), gamma^key].
        return (self.gamma ** key + self.gamma ** (key - 1)) / 2.0

    def quantile(self, q: float) -> float | None:
        """The q-quantile estimate, or ``None`` for an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.zero_count
        if rank <= cumulative:
            return 0.0
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            if rank <= cumulative:
                return self._bucket_value(key)
        return self._max  # unreachable unless float dust; be safe

    # -- merge algebra -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """New sketch summarizing both sample streams (exact merge)."""
        if not isinstance(other, QuantileSketch):
            raise TypeError("can only merge QuantileSketch with QuantileSketch")
        if (
            other.relative_accuracy != self.relative_accuracy
            or other.zero_threshold != self.zero_threshold
        ):
            raise ValueError(
                "cannot merge sketches with different accuracy parameters"
            )
        out = QuantileSketch(self.relative_accuracy, self.zero_threshold)
        out._buckets = dict(self._buckets)
        for key, count in other._buckets.items():
            out._buckets[key] = out._buckets.get(key, 0) + count
        out.zero_count = self.zero_count + other.zero_count
        out.count = self.count + other.count
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    def __add__(self, other):
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.merge(other)

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self.zero_threshold == other.zero_threshold
            and self.count == other.count
            and self.zero_count == other.zero_count
            and self._buckets == other._buckets
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (buckets keyed by stringified index)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "zero_count": self.zero_count,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
        }

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(n={self.count}, "
            f"buckets={len(self._buckets)}, a={self.relative_accuracy})"
        )
