"""Baseline comparison and statistical regression gating.

The bench harness (``python -m repro.experiments.bench``) writes
multi-run documents carrying per-stage wall-time samples, deterministic
cycle/DRAM counters, and modelled energy.  This module compares two
such documents — a stored baseline against a fresh run — and decides
whether the fresh run *regressed*:

* **Wall-time metrics** (per-stage ``wall_ms_runs``) are host
  measurements and noisy, so a regression must be both large — the
  median ratio beyond :attr:`GatePolicy.wall_tol` — and statistically
  significant: disjoint bootstrap confidence intervals, or a
  Mann-Whitney p-value under :attr:`GatePolicy.alpha` (exact test at
  bench sample sizes; see :mod:`repro.observability.stats`).
* **Deterministic metrics** — simulated cycles, DRAM bytes, modelled
  joules and EDP — are pure functions of the code, so *any* increase
  beyond a relative epsilon is a regression.  No statistics needed:
  if ``gpu.rbcd.rbcd_cycles`` moved, the model changed.

Comparing documents from different workload configs (resolution,
frames, detail) is refused outright: the numbers are not commensurable.

The gate is symmetric about improvements: significantly *better*
numbers never fail the build, but they are reported so the baseline
can be refreshed (a stale fast baseline is how regressions hide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.observability.stats import significance_of, summarize

__all__ = [
    "GatePolicy",
    "MetricComparison",
    "GateReport",
    "compare_documents",
    "DETERMINISTIC_SCENE_METRICS",
    "CONFIG_TABLE",
]

# Scene-level deterministic metrics gated when present in the baseline:
# dotted paths into the scene entry.  (The tilecache.effective_* pair is
# schema v5; v4 baselines simply don't have it, and baseline-missing
# metrics are skipped.)
DETERMINISTIC_SCENE_METRICS = (
    "totals.gpu_cycles",
    "counters.gpu.mem.dram_bytes_read",
    "counters.gpu.mem.dram_bytes_written",
    "energy.gpu.total_j",
    "energy.rbcd.total_j",
    "energy.total_j",
    "energy.edp_js",
    "tilecache.effective_gpu_cycles",
    "tilecache.effective_total_j",
)

# Workload-config keys that must match for two documents to be
# comparable at all, each with the default assumed when the key is
# absent from an older-schema document (None = the key has existed
# since schema v2, absence is a mismatch in its own right).  A v4
# document predates the tile cache, which is exactly what "cache off"
# means, so it stays comparable to a cache-off v5 run and is refused
# against a cache-on one; likewise pre-v6 documents are implicitly
# tile-profile-off.
CONFIG_TABLE = (
    ("width", None),
    ("height", None),
    ("frames", None),
    ("detail", None),
    ("quick", None),
    ("kernel_backend", None),
    ("broad_phase", None),
    ("tile_cache", False),
    ("tile_profile", False),
)

_CONFIG_KEYS = tuple(key for key, _ in CONFIG_TABLE)
_CONFIG_DEFAULTS = {
    key: default for key, default in CONFIG_TABLE if default is not None
}


@dataclass(frozen=True, slots=True)
class GatePolicy:
    """Thresholds of the regression gate.

    ``wall_tol`` is deliberately loose (25 %): host wall time on shared
    CI runners jitters, and the significance requirement already
    filters noise — the tolerance exists so a *significant but tiny*
    slowdown (0.1 ms on a hot cache) cannot fail a build.
    ``metric_tol`` is a pure float-noise guard for metrics that are
    deterministic by construction.
    """

    wall_tol: float = 0.25
    metric_tol: float = 1e-9
    alpha: float = 0.05
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.wall_tol < 0.0:
            raise ValueError("wall_tol must be >= 0")
        if self.metric_tol < 0.0:
            raise ValueError("metric_tol must be >= 0")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")


@dataclass(frozen=True, slots=True)
class MetricComparison:
    """One gated metric of one scene."""

    scene: str
    metric: str
    kind: str             # "wall" | "deterministic"
    baseline: float       # median (wall) or exact value (deterministic)
    current: float
    regressed: bool
    improved: bool
    detail: str = ""

    @property
    def ratio(self) -> float:
        if self.baseline == 0.0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline


@dataclass
class GateReport:
    """Outcome of one baseline comparison."""

    comparisons: list[MetricComparison] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def improvements(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.improved]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.regressions

    def failure_line(self) -> str:
        """One machine-greppable line naming the first failure.

        ``GATE-FAIL scene=<s> metric=<path> kind=<k> baseline=<b>
        current=<c> ratio=<r>`` for the first regressed comparison, or
        ``GATE-FAIL error="<first error>"`` when the gate failed
        structurally before comparing.  Empty string when the gate
        passed.  The fixed ``GATE-FAIL`` prefix is the contract: CI
        log scrapers grep for it and get the offending metric path and
        both values without parsing the full report.
        """
        if self.regressions:
            first = self.regressions[0]
            return (
                f"GATE-FAIL scene={first.scene} metric={first.metric} "
                f"kind={first.kind} baseline={first.baseline:.6g} "
                f"current={first.current:.6g} ratio={first.ratio:.6g}"
            )
        if self.errors:
            return f'GATE-FAIL error="{self.errors[0]}"'
        return ""

    def render(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        lines: list[str] = []
        for err in self.errors:
            lines.append(f"ERROR  {err}")
        for comp in self.comparisons:
            if comp.regressed:
                tag = "REGRESSION"
            elif comp.improved:
                tag = "improved"
            else:
                continue
            lines.append(
                f"{tag:<10} {comp.scene}/{comp.metric}: "
                f"{comp.baseline:.6g} -> {comp.current:.6g} "
                f"(x{comp.ratio:.3f}){' — ' + comp.detail if comp.detail else ''}"
            )
        checked = len(self.comparisons)
        lines.append(
            f"gate: {checked} metrics checked, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved"
            + (f", {len(self.errors)} errors" if self.errors else "")
        )
        if self.improvements and not self.regressions:
            lines.append(
                "note: improvements detected — consider refreshing the "
                "baseline so they become the new floor"
            )
        return "\n".join(lines)


def _dig(mapping: Any, dotted: str):
    """Resolve a dotted path, longest-prefix-wise, through nested dicts.

    Counter names themselves contain dots (``gpu.mem.dram_bytes_read``),
    so after descending into plain keys the remaining path is tried as
    one literal key at each level.
    """
    if not isinstance(mapping, Mapping):
        return None
    if dotted in mapping:
        return mapping[dotted]
    head, _, rest = dotted.partition(".")
    if not rest:
        return None
    return _dig(mapping.get(head), rest)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare_wall(
    scene: str,
    stage: str,
    base_samples: list[float],
    cur_samples: list[float],
    policy: GatePolicy,
) -> MetricComparison:
    base = summarize(base_samples)
    cur = summarize(cur_samples)
    ratio = cur.median / base.median if base.median else float("inf")

    big_regression = ratio > 1.0 + policy.wall_tol
    big_improvement = ratio < 1.0 - policy.wall_tol
    significant = False
    detail = ""
    if big_regression or big_improvement:
        evidence = significance_of(
            base_samples, cur_samples,
            alpha=policy.alpha, confidence=policy.confidence,
        )
        significant = evidence.significant
        detail = evidence.detail
    return MetricComparison(
        scene=scene,
        metric=f"stages.{stage}.wall_ms",
        kind="wall",
        baseline=base.median,
        current=cur.median,
        regressed=big_regression and significant,
        improved=big_improvement and significant,
        detail=detail,
    )


def _compare_deterministic(
    scene: str,
    metric: str,
    base_value: float,
    cur_value: float,
    policy: GatePolicy,
) -> MetricComparison:
    tol = policy.metric_tol
    if base_value == 0.0:
        regressed = cur_value > tol
        improved = False
    else:
        regressed = cur_value > base_value * (1.0 + tol)
        improved = cur_value < base_value * (1.0 - tol)
    return MetricComparison(
        scene=scene,
        metric=metric,
        kind="deterministic",
        baseline=float(base_value),
        current=float(cur_value),
        regressed=regressed,
        improved=improved,
        detail="deterministic (model output, not noise)" if regressed else "",
    )


def compare_documents(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    policy: GatePolicy | None = None,
) -> GateReport:
    """Gate ``current`` against ``baseline`` (both rbcd-bench v2 docs).

    Structural problems (config mismatch, missing scenes or fields)
    land in :attr:`GateReport.errors` and fail the gate — a comparison
    that silently skips what it cannot find would wave regressions
    through.
    """
    policy = policy if policy is not None else GatePolicy()
    report = GateReport()

    base_config = baseline.get("config")
    cur_config = current.get("config")
    if not isinstance(base_config, Mapping) or not isinstance(cur_config, Mapping):
        report.errors.append("both documents need a config block")
        return report
    base_scenes = baseline.get("scenes")
    cur_scenes = current.get("scenes")
    if not isinstance(base_scenes, Mapping) or not isinstance(cur_scenes, Mapping):
        report.errors.append("both documents need a scenes block")
        return report
    for key in _CONFIG_KEYS:
        default = _CONFIG_DEFAULTS.get(key)
        base_value = base_config.get(key, default)
        cur_value = cur_config.get(key, default)
        if base_value != cur_value:
            report.errors.append(
                f"config.{key} differs (baseline {base_value!r}, "
                f"current {cur_value!r}): documents are not "
                f"comparable"
            )
    if report.errors:
        return report

    for scene, base_entry in base_scenes.items():
        cur_entry = cur_scenes.get(scene)
        if not isinstance(cur_entry, Mapping):
            report.errors.append(f"scene {scene!r} missing from current run")
            continue

        base_stages = base_entry.get("stages") or {}
        cur_stages = cur_entry.get("stages") or {}
        for stage, base_record in base_stages.items():
            cur_record = cur_stages.get(stage)
            if not isinstance(cur_record, Mapping):
                report.errors.append(
                    f"{scene}: stage {stage!r} missing from current run"
                )
                continue
            base_samples = base_record.get("wall_ms_runs")
            cur_samples = cur_record.get("wall_ms_runs")
            if (
                isinstance(base_samples, list) and base_samples
                and isinstance(cur_samples, list) and cur_samples
            ):
                report.comparisons.append(
                    _compare_wall(scene, stage, base_samples, cur_samples, policy)
                )
            else:
                report.errors.append(
                    f"{scene}: stage {stage!r} has no wall_ms_runs samples "
                    f"(baseline predates schema v2?)"
                )
            base_cycles = base_record.get("cycles")
            cur_cycles = cur_record.get("cycles")
            if _is_number(base_cycles) and _is_number(cur_cycles):
                report.comparisons.append(
                    _compare_deterministic(
                        scene, f"stages.{stage}.cycles",
                        base_cycles, cur_cycles, policy,
                    )
                )

        for metric in DETERMINISTIC_SCENE_METRICS:
            base_value = _dig(base_entry, metric)
            cur_value = _dig(cur_entry, metric)
            if base_value is None:
                continue  # baseline predates the metric: nothing to hold
            if not _is_number(base_value):
                report.errors.append(
                    f"{scene}: baseline {metric} is not a number"
                )
                continue
            if not _is_number(cur_value):
                report.errors.append(
                    f"{scene}: {metric} missing from current run"
                )
                continue
            report.comparisons.append(
                _compare_deterministic(scene, metric, base_value, cur_value, policy)
            )

    return report
