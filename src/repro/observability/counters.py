"""Typed, mergeable counters: the simulator's metrics substrate.

Two layers:

* :class:`CounterAlgebra` — a mixin giving any counter dataclass the
  field-wise merge algebra the parallel tile engine relies on
  (``a + b``, ``sum``-compatible ``__radd__``, ``Cls.sum``,
  ``as_dict``).  ``GPUStats``, ``TileStats`` and ``OpCounter`` all
  derive their merge from this one implementation instead of carrying
  their own copies, so the determinism argument ("every counter is a
  plain sum") lives in exactly one place.
* :class:`CounterRegistry` — named, typed counters
  (``gpu.rbcd.zeb_insertions``, ``cpu.ops.flop``, ...) with the same
  algebra.  Registries are the uniform exchange format: every counter
  dataclass exposes a ``registry()`` view, registries from different
  subsystems merge into one namespace, and exporters/benches consume
  the merged registry without knowing which dataclass a number came
  from.

Counter naming scheme (see docs/MODEL.md, "Observability"):
``<subsystem>.<stage>.<quantity>`` — e.g. ``gpu.raster.fragments_produced``,
``gpu.rbcd.zeb_insertions``, ``tile.overlap_cycles``, ``cpu.ops.cmp``.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Iterable, Mapping

__all__ = [
    "CounterAlgebra",
    "CounterRegistry",
    "CounterSpec",
    "registry_from_counters",
]


class CounterAlgebra:
    """Field-wise merge algebra for counter dataclasses.

    Subclasses may declare ``_MERGE_SPECIAL`` mapping a field name to a
    two-argument combiner for fields that are not plain sums (e.g. a
    tile index merged with ``min``).  Everything else is ``a + b``.
    """

    _MERGE_SPECIAL: ClassVar[Mapping[str, Callable]] = {}

    def __add__(self, other):
        if not isinstance(other, type(self)):
            return NotImplemented
        out = type(self)()
        for f in fields(self):
            combine = self._MERGE_SPECIAL.get(f.name)
            a, b = getattr(self, f.name), getattr(other, f.name)
            setattr(out, f.name, combine(a, b) if combine else a + b)
        return out

    def __radd__(self, other):
        # Support plain ``sum(iterable)``: the implicit 0 start value
        # (and any int-zero partial accumulator) folds away, so merges
        # can ``sum()`` per-tile counters directly.
        if isinstance(other, type(self)):
            return other.__add__(self)
        if isinstance(other, (int, float)) and other == 0:
            return self
        return NotImplemented

    @classmethod
    def sum(cls, items: Iterable):
        """Sum an iterable of counters; an empty iterable yields zeros
        (plain ``sum([])`` would return the int 0)."""
        total = cls()
        for item in items:
            total = total + item
        return total

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True, slots=True)
class CounterSpec:
    """Declaration of one named counter."""

    name: str
    kind: str = "int"          # "int" | "float"
    unit: str = ""             # "cycles", "bytes", "ops", ... ("" = count)
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise ValueError(f"{self.name}: kind must be 'int' or 'float'")
        if not self.name:
            raise ValueError("counter name must be non-empty")

    def coerce(self, value):
        """Validate/convert a value for this counter's kind."""
        if self.kind == "int":
            # Accept any integral type (including numpy ints); reject
            # bools and floats so a cycle count cannot silently land in
            # an event counter.
            if isinstance(value, bool) or not isinstance(value, numbers.Integral):
                raise TypeError(
                    f"counter {self.name!r} is integral; got {value!r}"
                )
            return int(value)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise TypeError(f"counter {self.name!r} is numeric; got {value!r}")
        return float(value)


class CounterRegistry:
    """Named, typed, mergeable counters.

    The registry preserves registration order (merged registries list
    the left operand's names first), so exported dictionaries are
    deterministic.  Merging is a plain per-name sum — associative and
    commutative up to ordering — which is exactly what the parallel
    executor's deterministic reduction requires.
    """

    def __init__(self, specs: Iterable[CounterSpec] = ()) -> None:
        self._specs: dict[str, CounterSpec] = {}
        self._values: dict[str, int | float] = {}
        for spec in specs:
            self.register(spec)

    # -- declaration ---------------------------------------------------------

    def register(self, spec: CounterSpec) -> CounterSpec:
        """Declare a counter (idempotent for identical specs)."""
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing != spec:
                raise ValueError(
                    f"counter {spec.name!r} re-registered with a different "
                    f"spec ({existing} != {spec})"
                )
            return existing
        self._specs[spec.name] = spec
        self._values[spec.name] = 0 if spec.kind == "int" else 0.0
        return spec

    def counter(self, name: str, kind: str = "int", unit: str = "",
                description: str = "") -> CounterSpec:
        """Shorthand: register (or fetch) a counter by fields."""
        return self.register(CounterSpec(name, kind, unit, description))

    # -- recording -----------------------------------------------------------

    def add(self, name: str, n: int | float = 1) -> None:
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(f"unregistered counter {name!r}")
        self._values[name] = self._values[name] + spec.coerce(n)

    def set(self, name: str, value: int | float) -> None:
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(f"unregistered counter {name!r}")
        self._values[name] = spec.coerce(value)

    def __getitem__(self, name: str) -> int | float:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        return list(self._specs)

    def spec(self, name: str) -> CounterSpec:
        return self._specs[name]

    def specs(self) -> list[CounterSpec]:
        return list(self._specs.values())

    # -- merge algebra ---------------------------------------------------------

    def merge(self, other: "CounterRegistry") -> "CounterRegistry":
        """New registry with the union of specs and summed values."""
        out = CounterRegistry(self.specs())
        out._values.update(self._values)
        for spec in other.specs():
            out.register(spec)  # raises on conflicting re-declaration
            out._values[spec.name] = out._values[spec.name] + other._values[spec.name]
        return out

    def __add__(self, other):
        if not isinstance(other, CounterRegistry):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other):
        if isinstance(other, (int, float)) and other == 0:
            return self
        return NotImplemented

    @staticmethod
    def sum(items: Iterable["CounterRegistry"]) -> "CounterRegistry":
        total = CounterRegistry()
        for item in items:
            total = total.merge(item)
        return total

    def __eq__(self, other) -> bool:
        if not isinstance(other, CounterRegistry):
            return NotImplemented
        return self._specs == other._specs and self.as_dict() == other.as_dict()

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> dict[str, int | float]:
        """Name -> value, in registration order."""
        return dict(self._values)

    def nonzero(self) -> dict[str, int | float]:
        return {k: v for k, v in self._values.items() if v}

    def __repr__(self) -> str:
        return f"CounterRegistry({len(self._specs)} counters)"


def registry_from_counters(
    obj: CounterAlgebra,
    prefix: str,
    *,
    skip: Iterable[str] = (),
    units: Mapping[str, str] | None = None,
) -> CounterRegistry:
    """Registry view of a counter dataclass, names ``<prefix>.<field>``.

    Float fields become ``float`` counters; everything else ``int``.
    ``units`` optionally maps field names to unit strings (fields named
    ``*_cycles`` default to "cycles", ``*_bytes*`` to "bytes").
    """
    skip = set(skip)
    units = dict(units or {})
    registry = CounterRegistry()
    for f in fields(obj):
        if f.name in skip:
            continue
        value = getattr(obj, f.name)
        unit = units.get(f.name)
        if unit is None:
            if "cycles" in f.name:
                unit = "cycles"
            elif "bytes" in f.name:
                unit = "bytes"
            else:
                unit = ""
        kind = "float" if isinstance(value, float) else "int"
        name = f"{prefix}.{f.name}"
        registry.counter(name, kind=kind, unit=unit)
        registry.set(name, value)
    return registry
