"""Per-tile spatial profiles: opt-in, strictly observational grids.

The paper's Figures 10-14 argue spatially: RBCD cycles and energy
concentrate in the tiles the colliding geometry covers.  A
:class:`TileProfiler` makes that observable for any run — attached to a
:class:`~repro.gpu.pipeline.GPU` (or threaded through
:class:`~repro.core.RBCDSystem`) it accumulates screen-shaped grids of

* ``cycles``   — simulated RBCD work per tile (ZEB insertion + Z-Overlap),
* ``energy_j`` — *dynamic* RBCD joules per tile (static leakage accrues
  with frame time, not per tile; see
  :meth:`~repro.energy.rbcd_power.RBCDEnergyModel.tile_breakdown`),
* ``activity`` — collisionable fragments inserted per tile,
* ``hits``     — tile-cache replays per tile (cross-frame cache, PR 7),
* ``lookups``  — times the tile carried RBCD work at all,

summed over every recorded frame.  The bench harness stores the grids
in the schema-v6 ``tile_profile`` block, and the attribution engine
(:mod:`repro.observability.attribution`) diffs two such blocks to
localize a cycle/energy regression to screen regions.

Contract (the same one the tracer, provenance recorder, and
:class:`~repro.observability.live.LiveMonitor` obey, differential-tested
by ``tests/integration/test_tileprofile_differential.py``):

* **zero feedback** — recording reads tile results and writes only the
  profiler's own grids, so every detection output is bit-identical with
  the profiler attached or not;
* **deterministic at any worker count** — tiles are recorded at absorb
  time in tile-schedule order on the main process, and every grid cell
  is a plain per-tile sum, so any shard grouping (see
  :func:`repro.gpu.parallel.tile_profile_of`) merges to the same grids
  the serial path records.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["GRID_NAMES", "TileProfiler"]

# The grids a profiler records, in stored order.  All are per-tile sums
# (floats in the document; ``activity``/``hits``/``lookups`` happen to
# be integral), so merging shards is plain elementwise addition.
GRID_NAMES = ("cycles", "energy_j", "activity", "hits", "lookups")


class TileProfiler:
    """Accumulates per-tile RBCD activity grids across frames.

    Attach via ``GPU(tile_profiler=...)`` or
    ``RBCDSystem(tile_profiler=...)``; the pipeline calls
    :meth:`begin_frame` once per RBCD frame and :meth:`record_tile`
    once per absorbed tile.  Grid dimensions are fixed by the first
    frame's config — a profiler never spans screen configurations.
    """

    def __init__(self) -> None:
        self._tiles_x = 0
        self._tiles_y = 0
        self.frames = 0
        self._grids: dict[str, list[float]] = {}

    @property
    def tiles_x(self) -> int:
        return self._tiles_x

    @property
    def tiles_y(self) -> int:
        return self._tiles_y

    @property
    def tile_count(self) -> int:
        return self._tiles_x * self._tiles_y

    def reset(self) -> None:
        """Drop every grid and the frame count (dimensions too)."""
        self._tiles_x = self._tiles_y = 0
        self.frames = 0
        self._grids = {}

    def begin_frame(self, config) -> None:
        """Start recording one frame under ``config`` (a ``GPUConfig``)."""
        if self._tiles_x == 0:
            self._tiles_x = config.tiles_x
            self._tiles_y = config.tiles_y
            self._grids = {
                name: [0.0] * self.tile_count for name in GRID_NAMES
            }
        elif (config.tiles_x, config.tiles_y) != (self._tiles_x, self._tiles_y):
            raise ValueError(
                f"tile profiler recorded {self._tiles_x}x{self._tiles_y} "
                f"tiles but this frame has {config.tiles_x}x"
                f"{config.tiles_y}: reset() between configurations"
            )
        self.frames += 1

    def record_tile(self, result, replayed: bool = False,
                    energy_model=None) -> None:
        """Absorb one tile's :class:`~repro.rbcd.unit.RBCDTileResult`.

        ``energy_model`` is a
        :class:`~repro.energy.rbcd_power.RBCDEnergyModel` (duck-typed:
        anything with ``tile_breakdown``); when omitted the energy grid
        stays zero.  Purely observational: reads the result, mutates
        only this profiler.
        """
        if not self._grids:
            raise RuntimeError("record_tile() before begin_frame()")
        idx = result.tile_index
        self._grids["cycles"][idx] += (
            result.insertion_cycles + result.overlap_cycles
        )
        if energy_model is not None:
            self._grids["energy_j"][idx] += (
                energy_model.tile_breakdown(result).total_j
            )
        self._grids["activity"][idx] += result.zeb.insertions
        if replayed:
            self._grids["hits"][idx] += 1
        self._grids["lookups"][idx] += 1

    def grid(self, name: str) -> list[float]:
        """One grid, row-major ``tiles_y`` x ``tiles_x`` (flat copy)."""
        if name not in GRID_NAMES:
            raise KeyError(f"unknown grid {name!r} (have {GRID_NAMES})")
        if not self._grids:
            return []
        return list(self._grids[name])

    def merge(self, other: "TileProfiler") -> "TileProfiler":
        """Fold another profiler's grids into this one (shard merge).

        Elementwise addition — associative and commutative, so any
        grouping of per-tile shards merges to the serial result.  An
        empty side is the identity.
        """
        if not other._grids:
            return self
        if not self._grids:
            self._tiles_x = other._tiles_x
            self._tiles_y = other._tiles_y
            self._grids = {
                name: list(values) for name, values in other._grids.items()
            }
            self.frames += other.frames
            return self
        if (self._tiles_x, self._tiles_y) != (other._tiles_x, other._tiles_y):
            raise ValueError(
                "cannot merge tile profiles with different dimensions"
            )
        for name in GRID_NAMES:
            mine = self._grids[name]
            theirs = other._grids[name]
            for i, value in enumerate(theirs):
                mine[i] += value
        self.frames += other.frames
        return self

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view: dimensions, frame count, and every grid."""
        out: dict[str, Any] = {
            "tiles_x": self._tiles_x,
            "tiles_y": self._tiles_y,
            "frames": self.frames,
        }
        for name in GRID_NAMES:
            out[name] = self.grid(name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TileProfiler":
        """Rebuild a profiler from :meth:`as_dict` output (or the bench
        document's ``tile_profile`` block)."""
        profiler = cls()
        profiler._tiles_x = int(data.get("tiles_x", 0))
        profiler._tiles_y = int(data.get("tiles_y", 0))
        profiler.frames = int(data.get("frames", 0))
        if profiler.tile_count:
            profiler._grids = {}
            for name in GRID_NAMES:
                values = [float(v) for v in data.get(name, ())]
                if len(values) != profiler.tile_count:
                    raise ValueError(
                        f"grid {name!r} has {len(values)} cells, expected "
                        f"{profiler.tile_count}"
                    )
                profiler._grids[name] = values
        return profiler
