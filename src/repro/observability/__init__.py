"""Observability: tracing, counters, exporters, live telemetry.

The measurement substrate under the simulator: :class:`Tracer` spans
record where wall time and simulated cycles go (frame → tile → stage),
:class:`CounterRegistry` gives every subsystem's counters one named,
mergeable namespace, and the exporters turn a trace into ndjson or a
``chrome://tracing`` file.  ``python -m repro.experiments.bench`` sits
on top and writes ``BENCH_rbcd.json``; :class:`LiveMonitor` and
:class:`MetricsServer` (``python -m repro.experiments.monitor``) turn
a long-running frame stream into live OpenMetrics telemetry with
watchdog alerting.
"""

from repro.observability.counters import (
    CounterAlgebra,
    CounterRegistry,
    CounterSpec,
    registry_from_counters,
)
from repro.observability.flightrecorder import (
    DEFAULT_STREAM,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    WALL_FIELDS,
    FlightRecorder,
    RingBuffer,
    config_fingerprint,
    deterministic_event,
    deterministic_events,
    validate_postmortem_document,
    verify_alert_record,
    window_values_from_snapshots,
)
from repro.observability.live import (
    PAPER_ACTIVITY_ENVELOPE,
    WINDOW_SERIES,
    Alert,
    LiveMonitor,
    MetricSnapshot,
    MetricsServer,
    WatchdogRule,
    aggregate_window_values,
    default_rules,
)
from repro.observability.log import (
    JsonFormatter,
    configure_json_logging,
    get_logger,
    log_event,
)
from repro.observability.netutil import (
    atomic_write_text,
    linger,
    read_port_file,
    write_port_file,
)
from repro.observability.openmetrics import (
    MetricFamily,
    Sample,
    metric_name_of,
    parse_openmetrics,
    render_families,
    validate_openmetrics,
)
from repro.observability.window import (
    Ewma,
    QuantileSketch,
    SlidingWindow,
    WindowAggregate,
)
from repro.observability.attribution import (
    AttributionReport,
    DeltaNode,
    SceneAttribution,
    SpatialDelta,
    attribute_documents,
    cross_check_document,
)
from repro.observability.export import (
    heatmap_csv,
    provenance_instant_events,
    render_heatmap_ascii,
    span_record,
    to_chrome_trace,
    to_ndjson,
    to_provenance_ndjson,
    write_chrome_trace,
    write_heatmap_csv,
    write_ndjson,
    write_provenance_ndjson,
)
from repro.observability.profile import ProfilingTracer
from repro.observability.provenance import (
    PairEvidence,
    ProvenanceRecorder,
    evidence_from_tile,
    validate_evidence_record,
    validate_provenance_ndjson,
)

# repro.observability.forensics is NOT imported here: it sits on top of
# the GPU pipeline (which itself imports this package), so it must be
# imported as a module — ``from repro.observability import forensics``
# triggers no cycle either, but a package-level ``from ... import``
# at init time would.
from repro.observability.regress import (
    CONFIG_TABLE,
    GatePolicy,
    GateReport,
    MetricComparison,
    compare_documents,
)
from repro.observability.stats import (
    MannWhitneyResult,
    SampleSummary,
    SignificanceResult,
    bootstrap_ci,
    mann_whitney_u,
    significance_of,
    summarize,
)
from repro.observability.tileprofile import GRID_NAMES, TileProfiler
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "CounterAlgebra",
    "CounterRegistry",
    "CounterSpec",
    "registry_from_counters",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
    "ProfilingTracer",
    "span_record",
    "to_ndjson",
    "write_ndjson",
    "to_chrome_trace",
    "write_chrome_trace",
    "PairEvidence",
    "ProvenanceRecorder",
    "evidence_from_tile",
    "validate_evidence_record",
    "validate_provenance_ndjson",
    "provenance_instant_events",
    "to_provenance_ndjson",
    "write_provenance_ndjson",
    "SampleSummary",
    "summarize",
    "bootstrap_ci",
    "mann_whitney_u",
    "MannWhitneyResult",
    "SignificanceResult",
    "significance_of",
    "CONFIG_TABLE",
    "GatePolicy",
    "GateReport",
    "MetricComparison",
    "compare_documents",
    # regression attribution + tile profiles
    "AttributionReport",
    "DeltaNode",
    "SceneAttribution",
    "SpatialDelta",
    "attribute_documents",
    "cross_check_document",
    "GRID_NAMES",
    "TileProfiler",
    "heatmap_csv",
    "write_heatmap_csv",
    "render_heatmap_ascii",
    # live telemetry
    "LiveMonitor",
    "MetricSnapshot",
    "MetricsServer",
    "WatchdogRule",
    "Alert",
    "default_rules",
    "aggregate_window_values",
    "PAPER_ACTIVITY_ENVELOPE",
    "WINDOW_SERIES",
    # flight recorder / post-mortem
    "FlightRecorder",
    "RingBuffer",
    "DEFAULT_STREAM",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "WALL_FIELDS",
    "config_fingerprint",
    "deterministic_event",
    "deterministic_events",
    "validate_postmortem_document",
    "verify_alert_record",
    "window_values_from_snapshots",
    # streaming aggregation
    "SlidingWindow",
    "Ewma",
    "WindowAggregate",
    "QuantileSketch",
    # OpenMetrics exposition
    "MetricFamily",
    "Sample",
    "metric_name_of",
    "render_families",
    "parse_openmetrics",
    "validate_openmetrics",
    # structured logging
    "JsonFormatter",
    "get_logger",
    "log_event",
    "configure_json_logging",
    # serving net helpers
    "atomic_write_text",
    "write_port_file",
    "read_port_file",
    "linger",
]
