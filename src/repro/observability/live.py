"""Live telemetry: streaming per-frame metrics, health, and watchdogs.

Everything observability built so far is post-hoc — traces, bench
documents, provenance logs are read after the run ends.  This module
closes the loop for long-running frame streams: every rendered frame
becomes a :class:`MetricSnapshot`, sliding windows and a deterministic
quantile sketch turn the snapshot stream into live rates
(``rbcd.activity_ratio`` against the paper's ~1 % frame-time envelope,
ZEB/FF-Stack overflow rates against Table 3, joules/frame against an
energy budget, p50/p95/p99 frame latency), and a declarative
:class:`WatchdogRule` engine raises structured :class:`Alert` records
the moment the stream drifts out of its envelope.

Three consumption paths:

* :meth:`LiveMonitor.to_openmetrics` — OpenMetrics text for any
  Prometheus-compatible scraper;
* :class:`MetricsServer` — a stdlib ``http.server`` endpoint on a
  background thread serving ``/metrics``, ``/healthz`` and
  ``/snapshot.json`` (``python -m repro.experiments.monitor`` wires it
  to an endless frame stream);
* :attr:`LiveMonitor.alerts` / structured log events through
  :mod:`repro.observability.log`.

Determinism contract (the recorder/tracer contract, asserted by
``tests/integration/test_live_differential.py``): monitoring is
strictly observational.  Attaching a monitor changes no collision
pair, counter, or simulated cycle; every deterministic snapshot field
is a pure function of the frame stream, so workers 1 and 4 produce
bit-identical snapshots (wall-clock fields excluded — they measure the
host, not the model).
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable, Mapping

from repro.observability.counters import CounterRegistry
from repro.observability.log import get_logger, log_event
from repro.observability.openmetrics import (
    MetricFamily,
    metric_name_of,
    render_families,
)
from repro.observability.window import Ewma, QuantileSketch, SlidingWindow

__all__ = [
    "MetricSnapshot",
    "WatchdogRule",
    "Alert",
    "LiveMonitor",
    "MetricsServer",
    "default_rules",
    "aggregate_window_values",
    "PAPER_ACTIVITY_ENVELOPE",
    "WINDOW_SERIES",
]

_LOG = get_logger(__name__)

# The paper's headline envelope (Figure 9/11): RBCD activity stays
# below ~1 % of frame time.  The default watchdog guards this bound.
PAPER_ACTIVITY_ENVELOPE = 0.01

# Content type for /metrics, per the OpenMetrics spec.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_QUANTILES = (0.5, 0.95, 0.99)

# The per-frame series every monitor pushes into its sliding windows.
# The flight recorder's post-mortem replay rebuilds the same windows
# from recorded snapshots, so the set is part of the public contract.
WINDOW_SERIES = (
    "rbcd_cycles", "gpu_cycles", "zeb_overflow_events",
    "zeb_insertions", "ff_stack_overflows", "zeb_lists_analyzed",
    "energy_j", "wall_ms", "sim_ms", "pairs",
)

_OPS = {
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class MetricSnapshot:
    """One rendered frame, flattened into comparable numbers.

    ``counters`` holds every registry namespace the frame produced
    (``gpu.*`` from :class:`~repro.gpu.stats.GPUStats` plus ``energy.*``
    from :class:`~repro.energy.report.FrameEnergyReport`); ``derived``
    holds the per-frame ratios the watchdogs consume.  All of those are
    deterministic — bit-identical at any worker count, monitoring on or
    off.  ``wall_s`` is host time and excluded from the
    :meth:`deterministic_fingerprint`.
    """

    frame: int
    gpu_cycles: float
    sim_s: float                     # modelled frame latency (seconds)
    wall_s: float                    # host render latency (seconds)
    counters: dict[str, int | float]
    derived: dict[str, float]

    def deterministic_fingerprint(self) -> dict[str, Any]:
        """Everything the determinism contract covers (no wall clock)."""
        return {
            "frame": self.frame,
            "gpu_cycles": self.gpu_cycles,
            "sim_s": self.sim_s,
            "counters": dict(self.counters),
            "derived": dict(self.derived),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "frame": self.frame,
            "gpu_cycles": self.gpu_cycles,
            "sim_s": self.sim_s,
            "wall_s": self.wall_s,
            "counters": dict(self.counters),
            "derived": dict(self.derived),
        }


@dataclass(frozen=True)
class WatchdogRule:
    """Declarative threshold over a window aggregate.

    ``metric`` names a key of :meth:`LiveMonitor.window_values`;
    the rule trips when ``op(value, threshold)`` holds and at least
    ``min_frames`` frames are in the window (so a one-frame burst
    cannot page anyone before the window is warm).
    """

    name: str
    metric: str
    op: str
    threshold: float
    min_frames: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: op must be one of {sorted(_OPS)}"
            )
        if self.min_frames < 1:
            raise ValueError(f"rule {self.name!r}: min_frames must be >= 1")

    def breached(self, values: Mapping[str, float], frames: int) -> bool:
        if frames < self.min_frames or self.metric not in values:
            return False
        return _OPS[self.op](values[self.metric], self.threshold)


@dataclass(frozen=True)
class Alert:
    """One watchdog firing (edge-triggered: raised on breach entry)."""

    rule: str
    metric: str
    value: float
    threshold: float
    op: str
    frame: int

    @property
    def message(self) -> str:
        return (
            f"watchdog {self.rule!r}: {self.metric} = {self.value:.6g} "
            f"{self.op} {self.threshold:.6g} at frame {self.frame}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "op": self.op,
            "frame": self.frame,
            "message": self.message,
        }


def default_rules(
    max_activity_ratio: float | None = PAPER_ACTIVITY_ENVELOPE,
    max_overflow_rate: float | None = 0.05,
    max_ffstack_overflow_rate: float | None = 0.05,
    max_joules_per_frame: float | None = 0.01,
    max_frame_ms: float | None = None,
    min_frames: int = 1,
) -> list[WatchdogRule]:
    """The stock rule set guarding the paper's operating envelope.

    Pass ``None`` for any bound to drop that rule (``max_frame_ms``
    defaults to off: host wall time is machine-dependent, so the
    latency SLO is opt-in).
    """
    rules: list[WatchdogRule] = []
    if max_activity_ratio is not None:
        rules.append(WatchdogRule(
            "rbcd-activity-envelope", "window.rbcd.activity_ratio",
            "gt", max_activity_ratio, min_frames=min_frames,
            description="RBCD cycles vs GPU cycles over the window "
                        "(paper envelope: ~1% of frame time)",
        ))
    if max_overflow_rate is not None:
        rules.append(WatchdogRule(
            "zeb-overflow-rate", "window.zeb.overflow_rate",
            "gt", max_overflow_rate, min_frames=min_frames,
            description="ZEB insertion overflows per attempt over the window",
        ))
    if max_ffstack_overflow_rate is not None:
        rules.append(WatchdogRule(
            "ffstack-overflow-rate", "window.ffstack.overflow_rate",
            "gt", max_ffstack_overflow_rate, min_frames=min_frames,
            description="FF-Stack overflows per analyzed list over the window",
        ))
    if max_joules_per_frame is not None:
        rules.append(WatchdogRule(
            "energy-budget", "window.energy.joules_per_frame",
            "gt", max_joules_per_frame, min_frames=min_frames,
            description="modelled joules per frame over the window",
        ))
    if max_frame_ms is not None:
        rules.append(WatchdogRule(
            "frame-latency-slo", "quantile.frame.wall_ms.p95",
            "gt", max_frame_ms, min_frames=min_frames,
            description="host render latency p95 (milliseconds)",
        ))
    return rules


def aggregate_window_values(
    windows: Mapping[str, SlidingWindow],
    ewmas: Mapping[str, Ewma],
    sketches: Mapping[str, QuantileSketch],
) -> dict[str, float]:
    """Window aggregates, EWMAs and quantiles from raw series state.

    This is *the* aggregation: :meth:`LiveMonitor.window_values` calls
    it on the live windows, and the flight recorder's post-mortem
    replay calls it on windows rebuilt from recorded snapshots — the
    shared implementation is what makes an alert's window stats exactly
    reproducible from a dump (same ``SlidingWindow.sum`` left-to-right
    summation, same sketch bucketing), not merely approximately.
    """
    w = windows

    def ratio(num: str, den: str) -> float:
        total = w[den].sum()
        return w[num].sum() / total if total > 0.0 else 0.0

    frames = len(w["gpu_cycles"])
    values = {
        "window.frames": float(frames),
        "window.rbcd.activity_ratio": ratio("rbcd_cycles", "gpu_cycles"),
        "window.zeb.overflow_rate":
            ratio("zeb_overflow_events", "zeb_insertions"),
        "window.ffstack.overflow_rate":
            ratio("ff_stack_overflows", "zeb_lists_analyzed"),
        "window.energy.joules_per_frame": w["energy_j"].mean(),
        "window.frame.wall_ms.mean": w["wall_ms"].mean(),
        "window.frame.wall_ms.max": w["wall_ms"].max(),
        "window.frame.sim_ms.mean": w["sim_ms"].mean(),
        "window.pairs.per_frame": w["pairs"].mean(),
        "ewma.frame.wall_ms": ewmas["frame.wall_ms"].value,
        "ewma.rbcd.activity_ratio": ewmas["rbcd.activity_ratio"].value,
    }
    for series, sketch in sketches.items():
        for q in _QUANTILES:
            quantile = sketch.quantile(q)
            if quantile is not None:
                key = f"quantile.{series}.p{int(q * 100)}"
                values[key] = quantile
    return values


class LiveMonitor:
    """Streaming telemetry over a sequence of rendered frames.

    Feed frames with :meth:`observe` (a
    :class:`~repro.gpu.pipeline.FrameResult`) or :meth:`observe_frame`
    (raw stats + energy).  Read back at any time — all public readers
    and the writer are serialized by one lock, so a background
    :class:`MetricsServer` can scrape mid-stream.
    """

    def __init__(
        self,
        window: int = 120,
        rules: Iterable[WatchdogRule] | None = None,
        sketch_accuracy: float = 0.01,
        ewma_alpha: float = 0.2,
        logger: logging.Logger | None = None,
    ) -> None:
        self.rules: list[WatchdogRule] = (
            list(rules) if rules is not None else default_rules()
        )
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate watchdog rule names in {names}")
        self.window_size = window
        self.sketch_accuracy = sketch_accuracy
        self.ewma_alpha = ewma_alpha
        self._log = logger if logger is not None else _LOG
        self._lock = threading.Lock()
        self._listeners: list = []
        self.frames = 0
        self.alerts: list[Alert] = []
        self._active_rules: set[str] = set()
        self._latest: MetricSnapshot | None = None
        # Cumulative totals (deterministic).
        self._total_counters: dict[str, int | float] = {}
        self._counter_specs: dict = {}
        self._total_wall_s = 0.0
        self._total_sim_s = 0.0
        # Per-frame series windows (raw numerators/denominators, so
        # windowed rates are ratios of window sums).
        self._windows: dict[str, SlidingWindow] = {
            name: SlidingWindow(window) for name in WINDOW_SERIES
        }
        self._ewma = {
            "frame.wall_ms": Ewma(ewma_alpha),
            "rbcd.activity_ratio": Ewma(ewma_alpha),
        }
        self._sketches = {
            "frame.wall_ms": QuantileSketch(sketch_accuracy),
            "frame.sim_ms": QuantileSketch(sketch_accuracy),
            "rbcd.activity_ratio": QuantileSketch(sketch_accuracy),
        }

    def add_listener(self, fn) -> None:
        """Call ``fn(kind, payload)`` after each ingested frame:
        ``("snapshot", MetricSnapshot)`` for every frame, then
        ``("alert", Alert)`` / ``("recovery", dict)`` for watchdog
        transitions, in occurrence order.  Listeners run *outside* the
        monitor lock (so they may call readers like :meth:`totals`)
        and must be strictly observational.
        """
        self._listeners.append(fn)

    def _notify(self, events: list) -> None:
        for fn in self._listeners:
            for kind, payload in events:
                fn(kind, payload)

    # -- ingestion -----------------------------------------------------------

    def observe(self, result, wall_s: float = 0.0) -> MetricSnapshot:
        """Ingest one :class:`~repro.gpu.pipeline.FrameResult`."""
        energy = result.energy
        if energy is None:  # pragma: no cover - every GPU frame prices energy
            from repro.energy.report import FrameEnergyReport

            energy = FrameEnergyReport()
        return self.observe_frame(result.stats, energy, wall_s=wall_s)

    def observe_frame(self, stats, energy, wall_s: float = 0.0) -> MetricSnapshot:
        """Ingest one frame's stats + energy report; returns its snapshot.

        Strictly observational: ``stats`` and ``energy`` are read, never
        mutated, and everything derived from them is deterministic.
        """
        registry = stats.registry() + energy.registry()
        counters = registry.as_dict()
        gpu_cycles = float(stats.gpu_cycles)
        rbcd_cycles = float(stats.rbcd_cycles)
        insertions = int(stats.zeb_insertions)
        overflows = int(stats.zeb_overflow_events)
        stack_overflows = int(stats.ff_stack_overflows)
        lists_analyzed = int(stats.zeb_lists_analyzed)
        energy_j = float(energy.total_j)
        sim_s = float(energy.delay_s)
        wall_s = float(wall_s)
        derived = {
            "rbcd.activity_ratio":
                rbcd_cycles / gpu_cycles if gpu_cycles > 0.0 else 0.0,
            "zeb.overflow_rate":
                overflows / insertions if insertions else 0.0,
            "ffstack.overflow_rate":
                stack_overflows / lists_analyzed if lists_analyzed else 0.0,
            "energy.joules": energy_j,
            "frame.sim_ms": sim_s * 1e3,
        }
        with self._lock:
            snapshot = MetricSnapshot(
                frame=self.frames,
                gpu_cycles=gpu_cycles,
                sim_s=sim_s,
                wall_s=wall_s,
                counters=counters,
                derived=derived,
            )
            self.frames += 1
            self._latest = snapshot
            for name, spec in ((s.name, s) for s in registry.specs()):
                self._counter_specs.setdefault(name, spec)
                self._total_counters[name] = (
                    self._total_counters.get(name, 0) + counters[name]
                )
            self._total_wall_s += wall_s
            self._total_sim_s += sim_s
            push = {
                "rbcd_cycles": rbcd_cycles,
                "gpu_cycles": gpu_cycles,
                "zeb_overflow_events": float(overflows),
                "zeb_insertions": float(insertions),
                "ff_stack_overflows": float(stack_overflows),
                "zeb_lists_analyzed": float(lists_analyzed),
                "energy_j": energy_j,
                "wall_ms": wall_s * 1e3,
                "sim_ms": sim_s * 1e3,
                "pairs": float(stats.collision_pairs_emitted),
            }
            for name, value in push.items():
                self._windows[name].push(value)
            self._ewma["frame.wall_ms"].update(wall_s * 1e3)
            self._ewma["rbcd.activity_ratio"].update(
                derived["rbcd.activity_ratio"]
            )
            self._sketches["frame.wall_ms"].add(wall_s * 1e3)
            self._sketches["frame.sim_ms"].add(sim_s * 1e3)
            self._sketches["rbcd.activity_ratio"].add(
                derived["rbcd.activity_ratio"]
            )
            events = [("snapshot", snapshot)]
            events.extend(self._evaluate_rules(snapshot.frame))
        self._notify(events)
        return snapshot

    # -- watchdogs -----------------------------------------------------------

    def _evaluate_rules(self, frame: int) -> list:
        """Edge-triggered rule evaluation (caller holds the lock).

        Returns the transition events for listener dispatch after the
        lock is released.
        """
        values = self._window_values_locked()
        frames_in_window = len(self._windows["gpu_cycles"])
        events: list = []
        for rule in self.rules:
            breached = rule.breached(values, frames_in_window)
            if breached and rule.name not in self._active_rules:
                self._active_rules.add(rule.name)
                alert = Alert(
                    rule=rule.name,
                    metric=rule.metric,
                    value=float(values[rule.metric]),
                    threshold=rule.threshold,
                    op=rule.op,
                    frame=frame,
                )
                self.alerts.append(alert)
                events.append(("alert", alert))
                log_event(
                    self._log, "watchdog.alert", level=logging.WARNING,
                    **alert.as_dict(),
                )
            elif not breached and rule.name in self._active_rules:
                self._active_rules.discard(rule.name)
                events.append(("recovery", {
                    "rule": rule.name, "metric": rule.metric, "frame": frame,
                }))
                log_event(
                    self._log, "watchdog.recovered", level=logging.INFO,
                    rule=rule.name, metric=rule.metric, frame=frame,
                )
        return events

    @property
    def active_alerts(self) -> list[str]:
        """Names of rules currently in breach."""
        with self._lock:
            return sorted(self._active_rules)

    @property
    def healthy(self) -> bool:
        """True while no watchdog rule is in breach."""
        with self._lock:
            return not self._active_rules

    # -- reading -------------------------------------------------------------

    def _window_values_locked(self) -> dict[str, float]:
        return aggregate_window_values(
            self._windows, self._ewma, self._sketches
        )

    def window_values(self) -> dict[str, float]:
        """Current window aggregates, EWMAs and quantiles by metric key."""
        with self._lock:
            return self._window_values_locked()

    @property
    def latest(self) -> MetricSnapshot | None:
        with self._lock:
            return self._latest

    def totals(self) -> dict[str, int | float]:
        """Cumulative counters over every observed frame."""
        with self._lock:
            return dict(self._total_counters)

    def totals_registry(self) -> CounterRegistry:
        """Cumulative counters as a real :class:`CounterRegistry`.

        Kinds are retained from the first frame that produced each
        counter, so per-tenant monitor shards merge into a global
        registry through the exact ``CounterAlgebra`` — summing the
        shards in any order reproduces the registry a single global
        monitor would hold, bit for bit (the serving frontend's
        tenant-merge contract, asserted by
        ``tests/observability/test_tenant_merge.py``).
        """
        with self._lock:
            registry = CounterRegistry()
            for name, value in self._total_counters.items():
                registry.register(self._counter_specs[name])
                registry.set(name, value)
            return registry

    def snapshot_dict(self) -> dict[str, Any]:
        """The ``/snapshot.json`` document."""
        with self._lock:
            return {
                "frames": self.frames,
                "healthy": not self._active_rules,
                "active_alerts": sorted(self._active_rules),
                "alerts": [a.as_dict() for a in self.alerts],
                "latest": self._latest.as_dict() if self._latest else None,
                "window": self._window_values_locked(),
                "totals": dict(self._total_counters),
            }

    def health_dict(self) -> dict[str, Any]:
        """The ``/healthz`` document."""
        with self._lock:
            healthy = not self._active_rules
            return {
                "status": "ok" if healthy else "failing",
                "frames": self.frames,
                "active_alerts": sorted(self._active_rules),
                "alerts_total": len(self.alerts),
            }

    # -- exposition ----------------------------------------------------------

    def to_openmetrics(self) -> str:
        """Render the full live state as OpenMetrics text."""
        with self._lock:
            families: list[MetricFamily] = []
            families.append(
                MetricFamily(
                    "repro_frames_observed", "counter",
                    help="Frames ingested by the live monitor.",
                ).add(self.frames, suffix="_total")
            )
            families.append(
                MetricFamily(
                    "repro_health", "gauge",
                    help="1 while no watchdog rule is in breach, else 0.",
                ).add(0 if self._active_rules else 1)
            )
            alerts = MetricFamily(
                "repro_watchdog_alerts", "counter",
                help="Watchdog alerts fired since start.",
            ).add(len(self.alerts), suffix="_total")
            families.append(alerts)
            active = MetricFamily(
                "repro_watchdog_breached", "gauge",
                help="1 while the labelled rule is in breach.",
            )
            for rule in self.rules:
                active.add(
                    1 if rule.name in self._active_rules else 0, rule=rule.name
                )
            families.append(active)

            for name in sorted(self._total_counters):
                family = MetricFamily(
                    metric_name_of(name), "counter",
                    help=f"Cumulative registry counter {name}.",
                )
                family.add(self._total_counters[name], suffix="_total")
                families.append(family)

            window_family = MetricFamily(
                "repro_window", "gauge",
                help="Sliding-window aggregates, EWMAs and quantiles "
                     "by metric key.",
            )
            for key, value in sorted(self._window_values_locked().items()):
                window_family.add(value, metric=key)
            families.append(window_family)

            for series, seconds_name, total in (
                ("frame.wall_ms", "repro_frame_wall_seconds",
                 self._total_wall_s),
                ("frame.sim_ms", "repro_frame_sim_seconds",
                 self._total_sim_s),
            ):
                sketch = self._sketches[series]
                family = MetricFamily(
                    seconds_name, "summary",
                    help=f"Per-frame latency summary ({series}).",
                )
                if sketch.count:
                    for q in _QUANTILES:
                        quantile = sketch.quantile(q)
                        assert quantile is not None
                        family.add(quantile / 1e3, quantile=f"{q:g}")
                family.add(sketch.count, suffix="_count")
                family.add(total, suffix="_sum")
                families.append(family)
            return render_families(families)


class _MetricsHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz and /snapshot.json to the monitor."""

    server_version = "repro-live/1.0"
    monitor: LiveMonitor  # set by MetricsServer via the handler subclass

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        monitor = self.monitor
        if path == "/metrics":
            body = monitor.to_openmetrics().encode("utf-8")
            self._respond(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            health = monitor.health_dict()
            status = 200 if health["status"] == "ok" else 503
            body = (json.dumps(health, indent=2) + "\n").encode("utf-8")
            self._respond(status, "application/json; charset=utf-8", body)
        elif path == "/snapshot.json":
            body = (
                json.dumps(monitor.snapshot_dict(), indent=2) + "\n"
            ).encode("utf-8")
            self._respond(200, "application/json; charset=utf-8", body)
        else:
            body = json.dumps({
                "error": "not found",
                "endpoints": ["/metrics", "/healthz", "/snapshot.json"],
            }).encode("utf-8")
            self._respond(404, "application/json; charset=utf-8", body)

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        log_event(
            _LOG, "http.request", level=logging.DEBUG,
            client=self.client_address[0], line=format % args,
        )


class MetricsServer:
    """Background-thread HTTP endpoint over a :class:`LiveMonitor`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after :meth:`start`).  The server thread is a daemon;
    :meth:`stop` shuts it down cleanly.  Usable as a context manager.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.monitor = monitor
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        handler = type(
            "BoundMetricsHandler", (_MetricsHandler,), {"monitor": self.monitor}
        )
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        log_event(
            _LOG, "metrics.server.started",
            host=self.host, port=self.port,
        )
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        log_event(_LOG, "metrics.server.stopped", host=self.host)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
