"""Structured logging: stdlib ``logging`` with a JSON line formatter.

One logger hierarchy for the whole package, rooted at ``repro``.
Modules obtain a logger with :func:`get_logger` and emit *events* —
a stable ``event`` name plus typed key/value fields — through
:func:`log_event`, so a consumer tailing the stream can filter and
aggregate without parsing prose:

.. code-block:: json

    {"ts": 12.345678, "level": "WARNING", "logger": "repro.observability.live",
     "event": "watchdog.alert", "rule": "zeb-overflow-rate",
     "value": 0.31, "threshold": 0.05}

Nothing is configured by default: loggers propagate to the stdlib root,
so a library user's own logging setup applies, and with no handlers
installed the records cost one disabled-level check each.  Call
:func:`configure_json_logging` (the ``monitor`` CLI's ``--json-logs``
does) to attach a JSON-lines handler.

``ts`` is seconds since the formatter was created (monotonic relative
time, stable across clock adjustments); pass ``absolute_time=True`` for
epoch seconds instead.
"""

from __future__ import annotations

import io
import json
import logging
import time
from typing import Any

__all__ = [
    "JsonFormatter",
    "get_logger",
    "log_event",
    "configure_json_logging",
]

ROOT_LOGGER_NAME = "repro"

# LogRecord attributes that are plumbing, not payload; everything else
# attached to a record (via ``extra=``) is treated as an event field.
_RESERVED = frozenset(
    logging.LogRecord(
        name="", level=0, pathname="", lineno=0,
        msg="", args=(), exc_info=None,
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Formats every record as one JSON object per line.

    Fields: ``ts`` (seconds), ``level``, ``logger``, ``event`` (the
    record message), then any extra attributes the caller attached.
    Values that are not JSON-serializable are stringified rather than
    raised on — a log line must never take the process down.
    """

    def __init__(self, absolute_time: bool = False) -> None:
        super().__init__()
        self.absolute_time = absolute_time
        self._epoch = 0.0 if absolute_time else time.time()

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created - self._epoch, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, default=str, sort_keys=False)
        except (TypeError, ValueError):
            return json.dumps(
                {k: str(v) for k, v in payload.items()}, sort_keys=False
            )


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("repro.gpu.parallel")`` and
    ``get_logger("gpu.parallel")`` return the same logger; no argument
    returns the package root.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured event (a no-op when the level is disabled).

    Field names that collide with ``LogRecord`` plumbing attributes
    (``message``, ``name``, ``args``, ...) are prefixed with ``field_``
    instead of raising — callers pass domain dicts like
    ``Alert.as_dict()`` verbatim.
    """
    if logger.isEnabledFor(level):
        extra = {
            (f"field_{key}" if key in _RESERVED else key): value
            for key, value in fields.items()
        }
        logger.log(level, event, extra=extra)


def configure_json_logging(
    stream: io.TextIOBase | None = None,
    level: int = logging.INFO,
    absolute_time: bool = False,
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    Returns the handler so callers (and tests) can detach it with
    ``logging.getLogger("repro").removeHandler(handler)``.  Calling it
    again replaces any handler this function installed earlier rather
    than stacking duplicates.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for existing in list(root.handlers):
        if getattr(existing, "_repro_json_handler", False):
            root.removeHandler(existing)
    handler = logging.StreamHandler(stream) if stream is not None \
        else logging.StreamHandler()
    handler.setFormatter(JsonFormatter(absolute_time=absolute_time))
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    # The stdlib root stays in charge of anything outside ``repro.*``;
    # stop propagation so events are not printed twice when the host
    # application configured its own root handler.
    root.propagate = False
    return handler
