"""Opt-in per-span profiling: cProfile attached to tracer spans.

:class:`ProfilingTracer` is a drop-in :class:`~repro.observability.tracer.Tracer`
that additionally runs a ``cProfile.Profile`` across selected spans and
attaches the top-N hotspots to each profiled span's ``attrs`` under
``"hotspots"``.  Because exporters already serialize ``attrs``, the
attribution rides into the ndjson and Chrome-trace output for free —
open the trace in Perfetto and every profiled slice carries its Python
hotspots in ``args``.

CPython allows one active profiler per thread (a second
``Profile.enable()`` raises on 3.12+ and silently breaks the first on
older versions), so only one span profiles at a time: a span starts a
profile iff its name is in ``span_names`` *and* no enclosing span is
already being profiled.  The default set — the top-level pipeline
stages ``geometry`` / ``raster`` / ``rbcd`` / ``schedule`` — consists
of sibling spans, so every one of them gets its own profile; pass
``span_names={"frame"}`` instead for whole-frame attribution.

Profiling is observational for *results* (collision pairs, counters and
simulated cycles are unchanged — asserted by the test suite) but not
for *wall time*: the instrumentation slows the host down.  Bench
documents produced under ``--profile`` are therefore marked and must
not be used as regression baselines.
"""

from __future__ import annotations

import cProfile
import time
from typing import Collection

from repro.observability.tracer import Span, Tracer

__all__ = [
    "DEFAULT_PROFILED_SPANS",
    "Hotspot",
    "ProfilingTracer",
    "hotspots_from_profile",
]

DEFAULT_PROFILED_SPANS = frozenset({"geometry", "raster", "rbcd", "schedule"})


def Hotspot(
    func: str, file: str, line: int, ncalls: int,
    tottime_s: float, cumtime_s: float,
) -> dict:
    """One attributed hotspot, as the JSON-ready dict exporters expect."""
    return {
        "func": func,
        "file": file,
        "line": line,
        "ncalls": ncalls,
        "tottime_s": tottime_s,
        "cumtime_s": cumtime_s,
    }


def hotspots_from_profile(profile: cProfile.Profile, top_n: int) -> list[dict]:
    """Top ``top_n`` entries of a (disabled) profile, by own-time.

    Own-time (``tottime``) rather than cumulative time ranks the
    functions actually burning CPU instead of their callers.
    """
    entries = profile.getstats()
    entries.sort(key=lambda e: e.inlinetime, reverse=True)
    hotspots = []
    for entry in entries[:top_n]:
        code = entry.code
        if isinstance(code, str):            # built-in / C function
            func, file, line = code, "~", 0
        else:
            func, file, line = code.co_name, code.co_filename, code.co_firstlineno
        hotspots.append(
            Hotspot(
                func=func,
                file=file,
                line=line,
                ncalls=int(entry.callcount),
                tottime_s=float(entry.inlinetime),
                cumtime_s=float(entry.totaltime),
            )
        )
    return hotspots


class ProfilingTracer(Tracer):
    """A tracer whose selected spans carry cProfile hotspot attribution.

    Parameters
    ----------
    span_names:
        Names of spans to profile.  Only the outermost matching span
        profiles at any moment (one profiler per thread); the default
        set contains only sibling stages, so in practice each named
        span is profiled.
    top_n:
        Hotspots kept per span (descending own-time).
    min_wall_s:
        Spans shorter than this discard their profile instead of
        attaching noise (0.0 keeps everything).
    """

    def __init__(
        self,
        clock=time.perf_counter,
        span_names: Collection[str] = DEFAULT_PROFILED_SPANS,
        top_n: int = 10,
        min_wall_s: float = 0.0,
    ) -> None:
        super().__init__(clock=clock)
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        self.span_names = frozenset(span_names)
        self.top_n = top_n
        self.min_wall_s = min_wall_s
        self._profile: cProfile.Profile | None = None
        self._profiled_span: Span | None = None

    def start(self, name: str, category: str = "stage", **attrs) -> Span:
        sp = super().start(name, category, **attrs)
        if name in self.span_names and self._profile is None:
            self._profile = cProfile.Profile()
            self._profiled_span = sp
            self._profile.enable()
        return sp

    def end(self, sp: Span) -> None:
        if sp is self._profiled_span:
            profile = self._profile
            assert profile is not None
            profile.disable()
            self._profile = None
            self._profiled_span = None
            super().end(sp)
            if sp.wall_s >= self.min_wall_s:
                sp.annotate(hotspots=hotspots_from_profile(profile, self.top_n))
            return
        super().end(sp)

    def reset(self) -> None:
        if self._profile is not None:
            # An open profiled span would be caught by Tracer.reset's
            # open-span check below; this is belt and braces.
            self._profile.disable()
            self._profile = None
            self._profiled_span = None
        super().reset()

    def profiled_spans(self) -> list[Span]:
        """Closed spans that carry hotspot attribution."""
        return [s for s in self.spans if "hotspots" in s.attrs]
