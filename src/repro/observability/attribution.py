"""Regression attribution: hierarchical diffing of two bench documents.

The regression gate (:mod:`repro.observability.regress`) says *that* a
metric moved; this module says *where*.  Given two bench documents
(:mod:`repro.experiments.bench`, any supported schema version), it
builds per-scene **delta trees**: each top-level cycle/joule/wall
metric decomposed into child contributions whose deltas sum to the
parent's — with an explicit ``residual`` term on every non-leaf node,
never silent.  Nodes come in three kinds:

* ``exact`` — counter-derived algebraic identities of the model
  (``gpu_cycles = geometry + raster_pipeline``, ``total_j = gpu +
  rbcd``, ``rbcd.tile = zeb-insert + z-overlap``, the tile-cache
  ``effective_*`` nettings, and the counter-namespace sums).  The
  residual is zero up to float noise, and
  :func:`cross_check_document` verifies the same identities *inside*
  each document against the counter algebra, so a decomposition can
  never drift from what the counters say.
* ``structural`` — honest decompositions that are not sums
  (``geometry_cycles`` is the *max* of its pipelined stages; the
  raster pipeline interleaves busy, stall, and overlap-bound time).
  The residual carries whatever the children don't cover.
* ``wall`` — host wall-time medians down the stage span tree, with the
  shared significance evidence
  (:func:`repro.observability.stats.significance_of`) annotated per
  child; the residual is untraced host time.

When both documents carry schema-v6 ``tile_profile`` grids
(:class:`~repro.observability.tileprofile.TileProfiler`), a spatial
layer localizes the per-scene cycle/energy deltas to screen tiles
("92 % of the extra ZEB cycles sit in 6 tiles") and can emit heatmap
CSV/ASCII artifacts via :mod:`repro.observability.export`.

Entry points: :func:`attribute_documents` (library),
``python -m repro.experiments.attribute`` (CLI), and
``bench --gate --explain`` (top-k causes on gate failure).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Iterator, Mapping

from repro.observability.regress import CONFIG_TABLE
from repro.observability.stats import significance_of

__all__ = [
    "DeltaNode",
    "SpatialDelta",
    "SceneAttribution",
    "AttributionReport",
    "attribute_documents",
    "cross_check_document",
]

# Relative tolerance for the "exact" contract: counter-derived
# decompositions must sum to their parent within float-summation noise.
EXACT_REL_TOL = 1e-9
_ABS_FLOOR = 1e-12

# Top-level stage spans whose wall time tiles the frame span (the
# remainder — python glue between spans — is the wall residual).
_TOP_STAGES = ("geometry", "raster", "rbcd", "schedule")


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= max(abs(a), abs(b)) * EXACT_REL_TOL + _ABS_FLOOR


def _dig(mapping: Any, dotted: str):
    """Resolve a dotted path through nested dicts, trying every prefix
    split (longest literal key first).

    Stage names themselves contain dots and key *records* ("stages" ->
    "rbcd.tile" -> "cycles"), while counter names are flat dotted keys
    ("counters" -> "gpu.mem.dram_bytes_read"), so neither plain
    segment-wise descent nor whole-tail lookup covers both — this tries
    all splits.
    """
    if not isinstance(mapping, Mapping):
        return None
    if dotted in mapping:
        return mapping[dotted]
    parts = dotted.split(".")
    for i in range(len(parts) - 1, 0, -1):
        head = ".".join(parts[:i])
        if head in mapping:
            value = _dig(mapping[head], ".".join(parts[i:]))
            if value is not None:
                return value
    return None


@dataclass
class DeltaNode:
    """One metric of one scene, in both documents, with children whose
    deltas explain this node's delta."""

    path: str             # dotted path into the scene entry (or synthetic)
    kind: str             # "exact" | "structural" | "wall"
    baseline: float
    current: float
    children: list["DeltaNode"] = field(default_factory=list)
    unit: str = ""
    note: str = ""

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def child_sum(self) -> float:
        return sum(c.delta for c in self.children)

    @property
    def residual(self) -> float:
        """What the children's deltas fail to explain.  Zero (up to
        float noise) on ``exact`` nodes; honest slack elsewhere.
        Zero by convention on leaves."""
        if not self.children:
            return 0.0
        return self.delta - self.child_sum

    def leaves(self) -> Iterator["DeltaNode"]:
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "DeltaNode"]]:
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, path: str) -> "DeltaNode | None":
        for _, node in self.walk():
            if node.path == path:
                return node
        return None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "path": self.path,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
        }
        if self.unit:
            out["unit"] = self.unit
        if self.note:
            out["note"] = self.note
        if self.children:
            out["residual"] = self.residual
            out["children"] = [c.as_dict() for c in self.children]
        return out


@dataclass
class SpatialDelta:
    """Per-tile delta grids between two scenes' ``tile_profile`` blocks."""

    tiles_x: int
    tiles_y: int
    grids: dict[str, list[float]]  # grid name -> per-tile delta

    def total(self, name: str) -> float:
        return sum(self.grids[name])

    def top_tiles(
        self, name: str, coverage: float = 0.9
    ) -> list[tuple[int, float]]:
        """Smallest set of tiles covering ``coverage`` of the grid's
        total absolute delta, as ``(tile_index, delta)`` sorted by
        magnitude (ties broken by tile index, so the answer is
        deterministic)."""
        grid = self.grids[name]
        mass = sum(abs(v) for v in grid)
        if mass <= 0.0:
            return []
        ranked = sorted(
            ((i, v) for i, v in enumerate(grid) if v != 0.0),
            key=lambda item: (-abs(item[1]), item[0]),
        )
        picked: list[tuple[int, float]] = []
        covered = 0.0
        for index, value in ranked:
            picked.append((index, value))
            covered += abs(value)
            if covered >= coverage * mass:
                break
        return picked

    def summary(self, name: str, coverage: float = 0.9) -> str:
        """One sentence localizing a grid's delta, e.g. ``cycles:
        +1234 total, 3/48 tiles cover 92% of the change``."""
        grid = self.grids[name]
        mass = sum(abs(v) for v in grid)
        if mass <= 0.0:
            return f"{name}: unchanged in every tile"
        top = self.top_tiles(name, coverage)
        covered = sum(abs(v) for _, v in top)
        cells = ", ".join(
            f"({i % self.tiles_x},{i // self.tiles_x}){v:+.4g}"
            for i, v in top[:6]
        )
        more = "" if len(top) <= 6 else f", +{len(top) - 6} more"
        return (
            f"{name}: {self.total(name):+.6g} total, "
            f"{len(top)}/{len(grid)} tiles cover "
            f"{covered / mass:.0%} of the change [{cells}{more}]"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "tiles_x": self.tiles_x,
            "tiles_y": self.tiles_y,
            "grids": {name: list(grid) for name, grid in self.grids.items()},
        }


@dataclass
class SceneAttribution:
    """Every delta tree (and the optional spatial layer) of one scene."""

    scene: str
    trees: list[DeltaNode] = field(default_factory=list)
    spatial: SpatialDelta | None = None

    def find(self, path: str) -> DeltaNode | None:
        for tree in self.trees:
            node = tree.find(path)
            if node is not None:
                return node
        return None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "scene": self.scene,
            "trees": [t.as_dict() for t in self.trees],
        }
        if self.spatial is not None:
            out["spatial"] = self.spatial.as_dict()
        return out


# Tree roots excluded from cross-tree ranking: the counter-namespace
# walk sums mixed units (cycles + bytes + joules), which is exact as a
# structural decomposition but meaningless as a ranked magnitude.
_UNRANKED_PREFIX = "counters:"


@dataclass
class AttributionReport:
    """The full differential: per-scene trees, checks, and diagnostics."""

    scenes: dict[str, SceneAttribution] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)  # failed cross-checks

    @property
    def ok(self) -> bool:
        return not self.errors and not self.checks

    @property
    def all_zero(self) -> bool:
        """True when every node of every tree has a zero delta (the
        self-comparison invariant CI asserts)."""
        return all(
            node.delta == 0.0
            for attribution in self.scenes.values()
            for tree in attribution.trees
            for _, node in tree.walk()
        )

    def ranked_causes(self, top_k: int = 10) -> list[dict[str, Any]]:
        """Leaf contributions ranked by their share of the tree root's
        delta, across every scene and rankable tree.

        ``share`` is signed: +0.92 means the leaf explains 92 % of the
        root's movement in the same direction; negative shares moved
        against it.  Trees whose root didn't move contribute nothing.
        """
        causes: list[dict[str, Any]] = []
        for scene, attribution in self.scenes.items():
            for tree in attribution.trees:
                if tree.path.startswith(_UNRANKED_PREFIX):
                    continue
                root_delta = tree.delta
                if root_delta == 0.0:
                    continue
                for leaf in tree.leaves():
                    if leaf.delta == 0.0:
                        continue
                    causes.append({
                        "scene": scene,
                        "tree": tree.path,
                        "path": leaf.path,
                        "kind": leaf.kind,
                        "baseline": leaf.baseline,
                        "current": leaf.current,
                        "delta": leaf.delta,
                        "share": leaf.delta / root_delta,
                        "unit": leaf.unit,
                        "note": leaf.note,
                    })
        causes.sort(key=lambda c: (-abs(c["share"]), c["scene"], c["path"]))
        return causes[:top_k]

    def explain(
        self, scene: str, metric: str, top_k: int = 5
    ) -> list[dict[str, Any]]:
        """Rank the leaf contributions under one gated metric path.

        ``metric`` is a gate-style path (``totals.gpu_cycles``,
        ``energy.rbcd.total_j``, ``stages.raster.wall_ms``, ...); the
        node is looked up across the scene's trees and its leaves are
        ranked by share of its delta.  Empty when the scene or node is
        unknown or the node didn't move.
        """
        attribution = self.scenes.get(scene)
        if attribution is None:
            return []
        node = attribution.find(metric)
        if node is None or node.delta == 0.0:
            return []
        causes = [
            {
                "scene": scene,
                "tree": metric,
                "path": leaf.path,
                "kind": leaf.kind,
                "baseline": leaf.baseline,
                "current": leaf.current,
                "delta": leaf.delta,
                "share": leaf.delta / node.delta,
                "unit": leaf.unit,
                "note": leaf.note,
            }
            for leaf in node.leaves()
            if leaf.delta != 0.0 and leaf is not node
        ]
        causes.sort(key=lambda c: (-abs(c["share"]), c["path"]))
        return causes[:top_k]

    # -- renderers ----------------------------------------------------

    def render_text(self, top_k: int = 10, all_trees: bool = False) -> str:
        lines: list[str] = []
        for err in self.errors:
            lines.append(f"ERROR  {err}")
        for check in self.checks:
            lines.append(f"CHECK-FAIL  {check}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")

        causes = self.ranked_causes(top_k)
        if causes:
            lines.append(f"top {len(causes)} attributed causes:")
            for rank, cause in enumerate(causes, start=1):
                note = f" — {cause['note']}" if cause["note"] else ""
                lines.append(
                    f"  {rank}. [{cause['scene']}] {cause['path']}: "
                    f"{cause['baseline']:.6g} -> {cause['current']:.6g} "
                    f"({cause['delta']:+.6g}, {cause['share']:+.1%} of "
                    f"{cause['tree']}){note}"
                )
        elif not self.errors:
            lines.append("all metric deltas are zero: the documents agree")

        for scene, attribution in self.scenes.items():
            moved = [
                t for t in attribution.trees
                if all_trees or t.delta != 0.0
            ]
            unchanged = len(attribution.trees) - len(moved)
            if not moved and attribution.spatial is None:
                continue
            lines.append(f"scene {scene}:")
            for tree in moved:
                for depth, node in tree.walk():
                    indent = "  " * (depth + 1)
                    lines.append(
                        f"{indent}{node.path}: {node.baseline:.6g} -> "
                        f"{node.current:.6g} ({node.delta:+.6g})"
                        + (f" — {node.note}" if node.note else "")
                    )
                    if node.children:
                        lines.append(
                            f"{indent}  residual: {node.residual:+.6g}"
                            + (" (exact)" if node.kind == "exact" else "")
                        )
            if unchanged:
                lines.append(
                    f"  ({unchanged} tree{'s' if unchanged != 1 else ''} "
                    f"unchanged)"
                )
            if attribution.spatial is not None:
                for name in ("cycles", "energy_j", "activity", "hits"):
                    if name in attribution.spatial.grids:
                        lines.append(
                            f"  tile_profile {attribution.spatial.summary(name)}"
                        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "rbcd-attribution",
            "version": 1,
            "ok": self.ok,
            "all_zero": self.all_zero,
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "checks_failed": list(self.checks),
            "ranked_causes": self.ranked_causes(),
            "scenes": {
                scene: attribution.as_dict()
                for scene, attribution in self.scenes.items()
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Flat rows: scene,tree,path,depth,kind,baseline,current,delta,
        residual (header included)."""
        rows = ["scene,tree,path,depth,kind,baseline,current,delta,residual"]
        for scene, attribution in self.scenes.items():
            for tree in attribution.trees:
                for depth, node in tree.walk():
                    rows.append(
                        f"{scene},{tree.path},{node.path},{depth},"
                        f"{node.kind},{node.baseline!r},{node.current!r},"
                        f"{node.delta!r},{node.residual!r}"
                    )
        return "\n".join(rows) + "\n"


# ---------------------------------------------------------------------------
# Intra-document cross-checks against the counter algebra
# ---------------------------------------------------------------------------


def _check_identity(
    failures: list[str], label: str, scene: str, name: str,
    got: Any, want: Any,
) -> None:
    if not isinstance(got, (int, float)) or not isinstance(want, (int, float)):
        failures.append(
            f"{label}/{scene}: {name}: operand missing or not a number"
        )
        return
    if not _close(float(got), float(want)):
        failures.append(
            f"{label}/{scene}: {name}: {got!r} != {want!r}"
        )


def cross_check_document(
    doc: Mapping[str, Any], label: str = "document"
) -> list[str]:
    """Verify a bench document's internal counter-algebra identities.

    Returns a list of failure strings (empty = consistent).  These are
    the same identities the delta trees decompose along, so a failure
    here means the document (or the model that wrote it) broke the
    algebra — attribution reports it loudly instead of decomposing
    along a lie.
    """
    failures: list[str] = []
    scenes = doc.get("scenes")
    if not isinstance(scenes, Mapping):
        return [f"{label}: no scenes block to cross-check"]
    for scene, entry in scenes.items():
        if not isinstance(entry, Mapping):
            failures.append(f"{label}/{scene}: scene entry is not an object")
            continue
        counters = entry.get("counters") or {}
        stages = entry.get("stages") or {}
        energy = entry.get("energy") or {}

        gpu_cycles = _dig(entry, "totals.gpu_cycles")
        _check_identity(
            failures, label, scene,
            "totals.gpu_cycles == counters[gpu.gpu_cycles]",
            gpu_cycles, counters.get("gpu.gpu_cycles"),
        )
        geometry = counters.get("gpu.geometry.geometry_cycles")
        raster = counters.get("gpu.raster.raster_pipeline_cycles")
        if isinstance(geometry, (int, float)) and isinstance(raster, (int, float)):
            _check_identity(
                failures, label, scene,
                "gpu_cycles == geometry_cycles + raster_pipeline_cycles",
                gpu_cycles, geometry + raster,
            )
        else:
            failures.append(
                f"{label}/{scene}: gpu.geometry/gpu.raster cycle "
                f"counters missing"
            )

        total_j = _dig(energy, "total_j")
        _check_identity(
            failures, label, scene,
            "energy.total_j == counters[energy.total_j]",
            total_j, counters.get("energy.total_j"),
        )
        gpu_j = _dig(energy, "gpu.total_j")
        rbcd_j = _dig(energy, "rbcd.total_j")
        if isinstance(gpu_j, (int, float)) and isinstance(rbcd_j, (int, float)):
            _check_identity(
                failures, label, scene,
                "energy.total_j == energy.gpu.total_j + energy.rbcd.total_j",
                total_j, gpu_j + rbcd_j,
            )
        for block, keys in (
            ("gpu", ("geometry_j", "raster_j", "fragment_j", "memory_j",
                     "static_j")),
            ("rbcd", ("insertion_j", "overlap_j", "output_j", "static_j")),
        ):
            parts = [_dig(energy, f"{block}.{k}") for k in keys]
            if all(isinstance(p, (int, float)) for p in parts):
                _check_identity(
                    failures, label, scene,
                    f"energy.{block}.total_j == sum(components)",
                    _dig(energy, f"{block}.total_j"), sum(parts),
                )

        tile = _dig(stages, "rbcd.tile.cycles")
        insert = _dig(stages, "rbcd.zeb-insert.cycles")
        overlap = _dig(stages, "rbcd.z-overlap.cycles")
        if all(isinstance(v, (int, float)) for v in (tile, insert, overlap)):
            _check_identity(
                failures, label, scene,
                "stages[rbcd.tile] == stages[rbcd.zeb-insert] "
                "+ stages[rbcd.z-overlap]",
                tile, insert + overlap,
            )

        tilecache = entry.get("tilecache")
        if isinstance(tilecache, Mapping):
            for eff, base_path, saved_key, sig_key in (
                ("effective_gpu_cycles", "totals.gpu_cycles",
                 "cycles_saved", "signature_cycles"),
                ("effective_total_j", "energy.total_j",
                 "joules_saved", "signature_j"),
            ):
                base_value = _dig(entry, base_path)
                saved = tilecache.get(saved_key)
                sig = tilecache.get(sig_key)
                if all(isinstance(v, (int, float))
                       for v in (base_value, saved, sig)):
                    _check_identity(
                        failures, label, scene,
                        f"tilecache.{eff} == {base_path} - {saved_key} "
                        f"+ {sig_key}",
                        tilecache.get(eff), base_value - saved + sig,
                    )

        profile = entry.get("tile_profile")
        if isinstance(profile, Mapping) and profile.get("enabled"):
            cycles_grid = profile.get("cycles")
            if isinstance(cycles_grid, list) and isinstance(
                tile, (int, float)
            ):
                _check_identity(
                    failures, label, scene,
                    "sum(tile_profile.cycles) == stages[rbcd.tile].cycles",
                    sum(cycles_grid), tile,
                )
            energy_grid = profile.get("energy_j")
            dynamic = [
                _dig(energy, f"rbcd.{k}")
                for k in ("insertion_j", "overlap_j", "output_j")
            ]
            if isinstance(energy_grid, list) and all(
                isinstance(v, (int, float)) for v in dynamic
            ):
                _check_identity(
                    failures, label, scene,
                    "sum(tile_profile.energy_j) == dynamic rbcd energy",
                    sum(energy_grid), sum(dynamic),
                )
    return failures


# ---------------------------------------------------------------------------
# Delta-tree construction
# ---------------------------------------------------------------------------


def _num(entry: Mapping[str, Any], path: str) -> float | None:
    value = _dig(entry, path)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _leaf(
    base: Mapping[str, Any], cur: Mapping[str, Any], path: str,
    kind: str = "exact", unit: str = "", note: str = "",
) -> DeltaNode | None:
    b = _num(base, path)
    c = _num(cur, path)
    if b is None and c is None:
        return None
    extra = ""
    if b is None:
        extra, b = "missing in baseline (as 0)", 0.0
    elif c is None:
        extra, c = "missing in current (as 0)", 0.0
    joined = "; ".join(p for p in (note, extra) if p)
    return DeltaNode(path=path, kind=kind, baseline=b, current=c,
                     unit=unit, note=joined)


def _cycles_tree(
    base: Mapping[str, Any], cur: Mapping[str, Any]
) -> DeltaNode | None:
    root = _leaf(base, cur, "totals.gpu_cycles", unit="cycles")
    if root is None:
        return None
    root.note = "geometry + raster pipeline (decoupled phases)"
    geometry = _leaf(
        base, cur, "counters.gpu.geometry.geometry_cycles", unit="cycles",
        kind="structural",
        note="max of pipelined stages below, not a sum",
    )
    if geometry is not None:
        for sub in ("geometry.shade", "geometry.assemble", "geometry.bin"):
            child = _leaf(base, cur, f"stages.{sub}.cycles",
                          kind="structural", unit="cycles")
            if child is not None:
                geometry.children.append(child)
        root.children.append(geometry)
    raster = _leaf(
        base, cur, "counters.gpu.raster.raster_pipeline_cycles",
        unit="cycles", kind="structural",
        note="busy + ZEB stall + overlap/fragment-bound residual",
    )
    if raster is not None:
        for path, note in (
            ("counters.gpu.raster.raster_cycles", "rasterizer busy"),
            ("counters.gpu.raster.raster_stall_cycles", "ZEB stall"),
        ):
            child = _leaf(base, cur, path, kind="structural",
                          unit="cycles", note=note)
            if child is not None:
                raster.children.append(child)
        root.children.append(raster)
    return root


def _rbcd_tree(
    base: Mapping[str, Any], cur: Mapping[str, Any]
) -> DeltaNode | None:
    root = _leaf(base, cur, "stages.rbcd.tile.cycles", unit="cycles")
    if root is None:
        return None
    root.note = "ZEB insertion + Z-Overlap Test"
    for path in ("stages.rbcd.zeb-insert.cycles",
                 "stages.rbcd.z-overlap.cycles"):
        child = _leaf(base, cur, path, unit="cycles")
        if child is not None:
            root.children.append(child)
    return root


def _energy_tree(
    base: Mapping[str, Any], cur: Mapping[str, Any]
) -> DeltaNode | None:
    root = _leaf(base, cur, "energy.total_j", unit="J")
    if root is None:
        return None
    root.note = "GPU + RBCD unit"
    for block, keys in (
        ("gpu", ("geometry_j", "raster_j", "fragment_j", "memory_j",
                 "static_j")),
        ("rbcd", ("insertion_j", "overlap_j", "output_j", "static_j")),
    ):
        node = _leaf(base, cur, f"energy.{block}.total_j", unit="J")
        if node is None:
            continue
        for key in keys:
            child = _leaf(base, cur, f"energy.{block}.{key}", unit="J")
            if child is not None:
                node.children.append(child)
        root.children.append(node)
    return root


def _negated_leaf(
    base: Mapping[str, Any], cur: Mapping[str, Any], path: str,
    unit: str,
) -> DeltaNode | None:
    """A leaf that enters its parent's sum with a minus sign (modelled
    savings): stored as the negated values so child deltas still sum
    exactly to the parent delta."""
    node = _leaf(base, cur, path, unit=unit)
    if node is None:
        return None
    node.path = f"-{path}"
    node.baseline = -node.baseline
    node.current = -node.current
    node.note = "negated: modelled savings enter with a minus sign"
    return node


def _tilecache_trees(
    base: Mapping[str, Any], cur: Mapping[str, Any]
) -> list[DeltaNode]:
    trees = []
    for eff, base_path, saved, sig, unit in (
        ("tilecache.effective_gpu_cycles", "totals.gpu_cycles",
         "tilecache.cycles_saved", "tilecache.signature_cycles", "cycles"),
        ("tilecache.effective_total_j", "energy.total_j",
         "tilecache.joules_saved", "tilecache.signature_j", "J"),
    ):
        root = _leaf(base, cur, eff, unit=unit)
        if root is None:
            continue
        root.note = "reported total - replay savings + signature overhead"
        for child in (
            _leaf(base, cur, base_path, unit=unit),
            _negated_leaf(base, cur, saved, unit),
            _leaf(base, cur, sig, unit=unit),
        ):
            if child is not None:
                root.children.append(child)
        trees.append(root)
    return trees


def _wall_tree(
    base: Mapping[str, Any], cur: Mapping[str, Any],
    alpha: float, confidence: float,
) -> DeltaNode | None:
    def wall(entry: Mapping[str, Any], stage: str) -> tuple[float, list[float]] | None:
        samples = _dig(entry, f"stages.{stage}.wall_ms_runs")
        if isinstance(samples, list) and samples:
            values = [float(v) for v in samples]
            return float(median(values)), values
        value = _num(entry, f"stages.{stage}.wall_ms_median")
        if value is not None:
            return value, [value]
        return None

    frame_base = wall(base, "frame")
    frame_cur = wall(cur, "frame")
    if frame_base is None or frame_cur is None:
        return None
    root = DeltaNode(
        path="stages.frame.wall_ms", kind="wall",
        baseline=frame_base[0], current=frame_cur[0], unit="ms",
        note="host medians; residual is untraced time",
    )
    for stage in _TOP_STAGES:
        b = wall(base, stage)
        c = wall(cur, stage)
        if b is None or c is None:
            continue
        evidence = significance_of(
            b[1], c[1], alpha=alpha, confidence=confidence
        )
        verdict = "significant" if evidence.significant else "not significant"
        root.children.append(DeltaNode(
            path=f"stages.{stage}.wall_ms", kind="wall",
            baseline=b[0], current=c[0], unit="ms",
            note=f"{verdict}: {evidence.detail}",
        ))
    return root


def _counter_trees(
    base: Mapping[str, Any], cur: Mapping[str, Any]
) -> list[DeltaNode]:
    """One exact tree per top-level counter namespace.

    Internal nodes are *defined* as the sum of their children, so the
    decomposition is exact by construction; the node values mix units
    within a namespace, which is why these trees carry the
    ``counters:`` prefix and are excluded from cross-tree ranking —
    their leaves are the interesting part.
    """
    base_counters = base.get("counters")
    cur_counters = cur.get("counters")
    if not isinstance(base_counters, Mapping):
        base_counters = {}
    if not isinstance(cur_counters, Mapping):
        cur_counters = {}
    names = sorted(set(base_counters) | set(cur_counters))
    if not names:
        return []

    def build(prefix: str, members: list[str]) -> DeltaNode:
        # Group members by their next path segment under ``prefix``.
        groups: dict[str, list[str]] = {}
        for name in members:
            rest = name[len(prefix):].lstrip(".")
            head = rest.partition(".")[0]
            groups.setdefault(head, []).append(name)
        children: list[DeltaNode] = []
        for head in sorted(groups):
            sub = groups[head]
            sub_prefix = f"{prefix}.{head}" if prefix else head
            if len(sub) == 1 and sub[0] == sub_prefix:
                name = sub[0]
                b = base_counters.get(name, 0.0)
                c = cur_counters.get(name, 0.0)
                note = ""
                if name not in base_counters:
                    note = "missing in baseline (as 0)"
                elif name not in cur_counters:
                    note = "missing in current (as 0)"
                children.append(DeltaNode(
                    path=f"counters.{name}", kind="exact",
                    baseline=float(b), current=float(c), note=note,
                ))
            else:
                children.append(build(sub_prefix, sub))
        node = DeltaNode(
            path=f"counters:{prefix}", kind="exact",
            baseline=sum(c.baseline for c in children),
            current=sum(c.current for c in children),
            children=children,
            note="structural namespace sum (value := sum of children)",
        )
        return node

    trees = []
    top_groups: dict[str, list[str]] = {}
    for name in names:
        top_groups.setdefault(name.partition(".")[0], []).append(name)
    for top in sorted(top_groups):
        trees.append(build(top, top_groups[top]))
    return trees


def _spatial_delta(
    base: Mapping[str, Any], cur: Mapping[str, Any],
    scene: str, warnings: list[str],
) -> SpatialDelta | None:
    base_profile = base.get("tile_profile")
    cur_profile = cur.get("tile_profile")
    if not (isinstance(base_profile, Mapping) and base_profile.get("enabled")
            and isinstance(cur_profile, Mapping)
            and cur_profile.get("enabled")):
        return None
    dims = (base_profile.get("tiles_x"), base_profile.get("tiles_y"))
    if dims != (cur_profile.get("tiles_x"), cur_profile.get("tiles_y")):
        warnings.append(
            f"{scene}: tile_profile dimensions differ "
            f"({dims} vs ({cur_profile.get('tiles_x')}, "
            f"{cur_profile.get('tiles_y')})): spatial layer skipped"
        )
        return None
    grids: dict[str, list[float]] = {}
    for name in ("cycles", "energy_j", "activity", "hits", "lookups"):
        b = base_profile.get(name)
        c = cur_profile.get(name)
        if (isinstance(b, list) and isinstance(c, list)
                and len(b) == len(c)):
            grids[name] = [float(cv) - float(bv) for bv, cv in zip(b, c)]
    if not grids:
        return None
    return SpatialDelta(
        tiles_x=int(dims[0]), tiles_y=int(dims[1]), grids=grids
    )


def attribute_documents(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    alpha: float = 0.05,
    confidence: float = 0.95,
) -> AttributionReport:
    """Diff ``current`` against ``baseline`` into ranked delta trees.

    Unlike the regression gate, a workload-config mismatch does *not*
    refuse the comparison — attributing a tile-cache-on run against a
    cache-off one is precisely the point — but every differing key is
    surfaced as a warning so nobody mistakes the diff for noise.
    Structural problems (missing scenes, non-document inputs) land in
    ``errors``; intra-document algebra violations land in ``checks``.
    """
    report = AttributionReport()
    base_scenes = baseline.get("scenes") if isinstance(baseline, Mapping) else None
    cur_scenes = current.get("scenes") if isinstance(current, Mapping) else None
    if not isinstance(base_scenes, Mapping) or not isinstance(cur_scenes, Mapping):
        report.errors.append("both documents need a scenes block")
        return report

    base_config = baseline.get("config")
    cur_config = current.get("config")
    if isinstance(base_config, Mapping) and isinstance(cur_config, Mapping):
        for key, default in CONFIG_TABLE:
            b = base_config.get(key, default)
            c = cur_config.get(key, default)
            if b != c:
                report.warnings.append(
                    f"config.{key} differs (baseline {b!r}, current {c!r}): "
                    f"attributing across configurations"
                )
    else:
        report.warnings.append("config block missing from a document")

    report.checks.extend(cross_check_document(baseline, "baseline"))
    report.checks.extend(cross_check_document(current, "current"))

    for scene in sorted(set(base_scenes) | set(cur_scenes)):
        base_entry = base_scenes.get(scene)
        cur_entry = cur_scenes.get(scene)
        if not isinstance(base_entry, Mapping):
            report.errors.append(f"scene {scene!r} missing from baseline")
            continue
        if not isinstance(cur_entry, Mapping):
            report.errors.append(f"scene {scene!r} missing from current run")
            continue
        attribution = SceneAttribution(scene=scene)
        for tree in (
            _cycles_tree(base_entry, cur_entry),
            _energy_tree(base_entry, cur_entry),
            _rbcd_tree(base_entry, cur_entry),
            *_tilecache_trees(base_entry, cur_entry),
            _wall_tree(base_entry, cur_entry, alpha, confidence),
            *_counter_trees(base_entry, cur_entry),
        ):
            if tree is not None:
                attribution.trees.append(tree)
        attribution.spatial = _spatial_delta(
            base_entry, cur_entry, scene, report.warnings
        )
        report.scenes[scene] = attribution
    return report
