"""Collision provenance: per-pair evidence for every emitted pair.

The Z-Overlap Test (Section 3.5 / Figure 5) emits a pair from exactly
one place: a back-face element closing an interval on the FF-Stack at
one pixel of one tile.  This module captures that emission site — the
*evidence set* — so accuracy analyses (Fig. 2) and overflow analyses
(Table 3) can be reproduced with explanations attached, not just
totals:

* witness tile and global pixel coordinates;
* the two ZEB elements involved (quantized z codes, dequantized
  depths, object ids, front/back tags);
* FF-Stack occupancy at the moment of emission;
* the Figure-5 interference case (see ``rbcd.overlap.CASE_NAMES``).

Design invariant — *strictly observational*: the evidence fields are
computed unconditionally inside :func:`repro.rbcd.overlap.analyze_tile`
(they ride in :class:`~repro.rbcd.overlap.OverlapResult`), and the
recorder merely collects them when :meth:`RBCDUnit.absorb` runs — in
the owning process, in tile-schedule order.  Detection results,
``rbcd.*`` counters, and energy reports are therefore bit-identical
with the recorder on or off, at any worker count
(``tests/integration/test_provenance_differential.py``).

Merge semantics: recordings are totally ordered by
``(frame, tile, record)`` where ``record`` is the emission index within
the tile's output buffer.  Because tiles are absorbed in tile-schedule
order, a single recorder observes that order natively; recorders fed
from shards merge deterministically by sorting on the same key
(:meth:`ProvenanceRecorder.merge`), so workers 1 ≡ 4 bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.observability.counters import CounterRegistry
from repro.rbcd.element import dequantize_depth
from repro.rbcd.overlap import (
    CASE_CROSSING,
    CASE_DISJOINT,
    CASE_NAMES,
    CASE_NESTED,
)

__all__ = [
    "PairEvidence",
    "ProvenanceRecorder",
    "evidence_from_tile",
    "validate_evidence_record",
    "validate_provenance_ndjson",
]


@dataclass(frozen=True)
class PairEvidence:
    """The evidence set for one emitted pair record."""

    frame: int          # frame index (recorder-local, 0-based)
    tile: int           # tile index within the framebuffer
    record: int         # emission index within the tile's output buffer
    x: int              # witness pixel, global coordinates
    y: int
    id_front: int       # the stacked front-face element's object (Idi)
    id_back: int        # the closing back-face element's object (Idcur)
    z_front_code: int   # quantized ZEB z codes of the two elements
    z_back_code: int
    z_front: float      # the same depths dequantized to [0, 1]
    z_back: float
    stack_depth: int    # FF-Stack occupancy at emission
    case_id: int        # Figure-5 case (CASE_* in repro.rbcd.overlap)

    @property
    def case(self) -> str:
        return CASE_NAMES[self.case_id]

    @property
    def pair(self) -> tuple[int, int]:
        """The canonical ``(low, high)`` object-id pair."""
        a, b = self.id_front, self.id_back
        return (a, b) if a <= b else (b, a)

    @property
    def sort_key(self) -> tuple[int, int, int]:
        return (self.frame, self.tile, self.record)

    def as_record(self) -> dict:
        """The ndjson evidence record (see MODEL.md §9 for the schema)."""
        return {
            "type": "pair",
            "frame": self.frame,
            "tile": self.tile,
            "record": self.record,
            "pixel": [self.x, self.y],
            "pair": list(self.pair),
            "elements": [
                {
                    "object": self.id_front,
                    "z_code": self.z_front_code,
                    "z": self.z_front,
                    "face": "front",
                },
                {
                    "object": self.id_back,
                    "z_code": self.z_back_code,
                    "z": self.z_back,
                    "face": "back",
                },
            ],
            "stack_depth": self.stack_depth,
            "case_id": self.case_id,
            "case": self.case,
        }


def evidence_from_tile(result, gpu_config, frame: int = 0) -> list[PairEvidence]:
    """Evidence records for every pair one tile emitted.

    ``result`` is an :class:`~repro.rbcd.unit.RBCDTileResult`; the
    pixel-coordinate reconstruction mirrors
    :meth:`RBCDUnit._record_pairs` exactly, so every evidence record
    corresponds 1:1 (same order) to a contact record in the frame's
    :class:`~repro.rbcd.pairs.CollisionReport`.
    """
    overlap = result.overlap
    if overlap.pair_records == 0:
        return []
    config = gpu_config.rbcd
    ts = gpu_config.tile_size
    tiles_x = gpu_config.tiles_x
    tile_x0 = (result.tile_index % tiles_x) * ts
    tile_y0 = (result.tile_index // tiles_x) * ts
    local = result.zeb.pixel_index[overlap.pair_row]
    px = tile_x0 + (local % ts)
    py = tile_y0 + (local // ts)
    zf = dequantize_depth(overlap.pair_z_front, config)
    zb = dequantize_depth(overlap.pair_z_back, config)
    return [
        PairEvidence(
            frame=frame,
            tile=result.tile_index,
            record=k,
            x=int(px[k]),
            y=int(py[k]),
            id_front=int(overlap.pair_id_a[k]),
            id_back=int(overlap.pair_id_b[k]),
            z_front_code=int(overlap.pair_z_front[k]),
            z_back_code=int(overlap.pair_z_back[k]),
            z_front=float(zf[k]),
            z_back=float(zb[k]),
            stack_depth=int(overlap.pair_stack_depth[k]),
            case_id=int(overlap.pair_case[k]),
        )
        for k in range(overlap.pair_records)
    ]


class ProvenanceRecorder:
    """Opt-in, strictly observational collector of pair evidence.

    Pass one to :class:`repro.core.RBCDSystem`,
    :class:`repro.hybrid.HybridCDSystem`, or
    :class:`repro.gpu.pipeline.GPU` (``provenance=``); each RBCD frame
    then appends its evidence.  The recorder also tallies Figure-5 case
    histograms, exposed as ``rbcd.case.*`` / ``rbcd.evidence.*``
    counters via :meth:`registry` — deliberately in a *separate*
    registry from the unit's own counters, so enabling recording cannot
    change any existing counter value.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.records: list[PairEvidence] = []
        self.frames = 0
        self.tiles_recorded = 0
        self.case_counts = {
            CASE_DISJOINT: 0,
            CASE_CROSSING: 0,
            CASE_NESTED: 0,
        }
        self.self_pairs_filtered = 0

    # -- recording hooks (called by the pipeline / RBCD unit) ---------------

    def begin_frame(self) -> None:
        """Mark the start of a new RBCD frame (called by the pipeline)."""
        self.frames += 1

    @property
    def current_frame(self) -> int:
        return max(self.frames - 1, 0)

    def record_tile(self, result, gpu_config) -> None:
        """Collect one absorbed tile's evidence (tile-schedule order)."""
        self.tiles_recorded += 1
        overlap = result.overlap
        self.case_counts[CASE_DISJOINT] += overlap.disjoint_closures
        self.case_counts[CASE_CROSSING] += int(
            (overlap.pair_case == CASE_CROSSING).sum()
        )
        self.case_counts[CASE_NESTED] += int(
            (overlap.pair_case == CASE_NESTED).sum()
        )
        self.self_pairs_filtered += overlap.self_pairs_filtered
        self.records.extend(
            evidence_from_tile(result, gpu_config, frame=self.current_frame)
        )

    # -- views --------------------------------------------------------------

    @property
    def pairs_recorded(self) -> int:
        return len(self.records)

    def case_histogram(self) -> dict[str, int]:
        """Figure-5 case counts by name (closure events + emissions)."""
        return {
            CASE_NAMES[case]: count
            for case, count in sorted(self.case_counts.items())
        }

    def registry(self) -> CounterRegistry:
        """``rbcd.case.*`` / ``rbcd.evidence.*`` counters.

        A separate registry from :meth:`RBCDUnit.counters` so the
        recorder never perturbs existing counter values; merge it into
        a frame registry explicitly when a combined view is wanted.
        """
        registry = CounterRegistry()
        for name, value, description in (
            ("rbcd.case.disjoint", self.case_counts[CASE_DISJOINT],
             "closures emitting no pair (Fig. 5 cases 1/6 + inner nests)"),
            ("rbcd.case.crossing", self.case_counts[CASE_CROSSING],
             "pairs from partially crossing intervals (Fig. 5 cases 2/5)"),
            ("rbcd.case.nested", self.case_counts[CASE_NESTED],
             "pairs from nested intervals (Fig. 5 cases 3/4)"),
            ("rbcd.case.self_filtered", self.self_pairs_filtered,
             "suppressed Idi == Idcur emissions (one concave object)"),
            ("rbcd.evidence.pairs", self.pairs_recorded,
             "pair-evidence records collected"),
            ("rbcd.evidence.tiles", self.tiles_recorded,
             "tiles observed by the recorder"),
            ("rbcd.evidence.frames", self.frames,
             "RBCD frames observed by the recorder"),
        ):
            registry.counter(name, description=description)
            registry.set(name, value)
        return registry

    def pairs_for(
        self, id_a: int, id_b: int, frame: int | None = None
    ) -> list[PairEvidence]:
        """All evidence records for one object pair (any orientation)."""
        key = (min(id_a, id_b), max(id_a, id_b))
        return [
            ev
            for ev in self.records
            if ev.pair == key and (frame is None or ev.frame == frame)
        ]

    def witness_pixels(
        self, id_a: int, id_b: int, frame: int | None = None
    ) -> list[tuple[int, int]]:
        """Sorted distinct pixels where a pair was emitted."""
        return sorted({(ev.x, ev.y) for ev in self.pairs_for(id_a, id_b, frame)})

    # -- merge --------------------------------------------------------------

    def merge(self, other: "ProvenanceRecorder") -> "ProvenanceRecorder":
        """Deterministic shard merge: counts sum, records re-sort.

        Records are totally ordered by ``(frame, tile, record)``, so
        merging shards in any grouping or order yields the same
        recorder — the provenance analogue of the counter algebra.
        ``frames`` takes the max (shards observe the same frames, they
        do not repeat them).
        """
        merged = ProvenanceRecorder()
        merged.records = sorted(
            self.records + other.records, key=lambda ev: ev.sort_key
        )
        merged.frames = max(self.frames, other.frames)
        merged.tiles_recorded = self.tiles_recorded + other.tiles_recorded
        for case in merged.case_counts:
            merged.case_counts[case] = (
                self.case_counts[case] + other.case_counts[case]
            )
        merged.self_pairs_filtered = (
            self.self_pairs_filtered + other.self_pairs_filtered
        )
        return merged


# ---------------------------------------------------------------------------
# Evidence-record validation (the ndjson export's schema, enforced)
# ---------------------------------------------------------------------------

_REQUIRED_FIELDS = (
    "type", "frame", "tile", "record", "pixel", "pair", "elements",
    "stack_depth", "case_id", "case",
)


def validate_evidence_record(record: dict) -> list[str]:
    """Errors making ``record`` an invalid evidence record (empty = ok)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    for fields in _REQUIRED_FIELDS:
        if fields not in record:
            errors.append(f"missing field {fields!r}")
    if errors:
        return errors
    if record["type"] != "pair":
        errors.append(f'type is {record["type"]!r}, expected "pair"')
    for name in ("frame", "tile", "record", "stack_depth"):
        value = record[name]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"{name} must be a non-negative integer")
    if record.get("stack_depth") == 0:
        errors.append("stack_depth must be >= 1 at emission")
    pixel = record["pixel"]
    if (
        not isinstance(pixel, list)
        or len(pixel) != 2
        or not all(isinstance(v, int) and v >= 0 for v in pixel)
    ):
        errors.append("pixel must be [x, y] with non-negative integers")
    pair = record["pair"]
    if (
        not isinstance(pair, list)
        or len(pair) != 2
        or not all(isinstance(v, int) and v >= 0 for v in pair)
        or pair[0] >= pair[1]
    ):
        errors.append("pair must be [low, high] with low < high")
    elements = record["elements"]
    if not isinstance(elements, list) or len(elements) != 2:
        errors.append("elements must list exactly the two ZEB elements")
    else:
        for element, face in zip(elements, ("front", "back")):
            if not isinstance(element, dict):
                errors.append(f"{face} element must be an object")
                continue
            if element.get("face") != face:
                errors.append(f'element {face} has face {element.get("face")!r}')
            if not isinstance(element.get("object"), int) or element["object"] < 0:
                errors.append(f"{face} element needs a non-negative object id")
            if not isinstance(element.get("z_code"), int) or element["z_code"] < 0:
                errors.append(f"{face} element needs a non-negative z_code")
            z = element.get("z")
            if not isinstance(z, (int, float)) or not 0.0 <= float(z) <= 1.0:
                errors.append(f"{face} element needs z in [0, 1]")
    case_id = record["case_id"]
    if case_id not in CASE_NAMES:
        errors.append(f"case_id {case_id!r} not a Figure-5 case")
    elif record["case"] != CASE_NAMES[case_id]:
        errors.append(
            f'case {record["case"]!r} does not match case_id {case_id}'
        )
    return errors


def validate_provenance_ndjson(text: str) -> int:
    """Validate an exported evidence log; returns the record count.

    Raises :class:`ValueError` naming the first offending line.  Used
    by the CI smoke job and the forensics CLI's self-check.
    """
    count = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from exc
        errors = validate_evidence_record(record)
        if errors:
            raise ValueError(f"line {lineno}: {'; '.join(errors)}")
        count += 1
    return count
