"""Small networking helpers shared by the serving CLIs.

Both ``python -m repro.experiments.monitor`` and
``python -m repro.experiments.loadgen`` bind an ephemeral port
(``--port 0``), publish the bound port through ``--port-file`` so
scripts can find the endpoint, and optionally keep the endpoint up for
``--linger`` seconds after the stream ends so a scraper can collect
the final state.  This module is that shared plumbing.

The port-file handoff has a classic race: a reader polling the path
can observe the file after ``open(..., "w")`` created it but before
the port number hit the disk, and parse an empty string.
:func:`write_port_file` closes the race by writing to a temporary file
in the same directory and ``os.replace``-ing it into place — the
rename is atomic on POSIX, so any reader that sees the path at all
sees the complete contents.  :func:`read_port_file` is the matching
polling reader.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = [
    "atomic_write_text",
    "write_port_file",
    "read_port_file",
    "linger",
]


def atomic_write_text(path: str | os.PathLike, text: str) -> Path:
    """Atomically publish ``text`` to ``path`` (write-temp + rename).

    The temporary file lives in the target's directory so the
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.  Any
    reader that sees ``path`` at all sees the complete contents; a
    crash mid-write leaves the previous version (or nothing) in place.
    The flight recorder routes its post-mortem dumps through here so a
    half-written incident document can never be mistaken for evidence.
    Returns the path written.
    """
    target = Path(path)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, target)
    return target


def write_port_file(path: str | os.PathLike, port: int) -> Path:
    """Atomically publish ``port`` to ``path`` (write-temp + rename).

    Readers polling ``path`` never observe a partial write: the file
    either does not exist yet or contains the full ``"{port}\\n"``.
    Returns the path written.
    """
    if not isinstance(port, int) or isinstance(port, bool) or port <= 0:
        raise ValueError(f"port must be a positive integer, got {port!r}")
    return atomic_write_text(path, f"{port}\n")


def read_port_file(
    path: str | os.PathLike,
    timeout_s: float = 0.0,
    poll_s: float = 0.02,
) -> int:
    """Read a port published by :func:`write_port_file`.

    With ``timeout_s > 0`` the reader polls until the file appears (or
    raises ``TimeoutError``); with the default 0 it reads exactly once.
    Raises ``ValueError`` if the contents are not a valid port — which,
    against an atomic writer, means the file was produced some other
    way.
    """
    target = Path(path)
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            text = target.read_text(encoding="utf-8")
        except FileNotFoundError:
            if time.monotonic() >= deadline:
                raise TimeoutError(f"port file {target} never appeared")
            time.sleep(poll_s)
            continue
        stripped = text.strip()
        if not stripped.isdigit() or int(stripped) <= 0:
            raise ValueError(f"port file {target} holds {text!r}, not a port")
        return int(stripped)


def linger(seconds: float) -> None:
    """Sleep ``seconds`` (Ctrl-C cuts the linger short, not the run)."""
    if seconds <= 0.0:
        return
    try:
        time.sleep(seconds)
    except KeyboardInterrupt:
        pass
