"""Stage tracing: nestable spans over wall clock and simulated cycles.

The span hierarchy mirrors the simulator's structure::

    frame
    ├── geometry
    │   ├── geometry.shade
    │   ├── geometry.assemble
    │   └── geometry.bin
    ├── raster
    │   ├── raster.fetch
    │   ├── raster.rasterize
    │   ├── raster.early-z
    │   └── raster.shade
    └── rbcd
        └── rbcd.tile (one per tile with collisionable fragments)
            ├── rbcd.zeb-insert
            └── rbcd.z-overlap

Each span records two clocks:

* **wall seconds** — how long the *host simulation* spent in the stage
  (the perf number ``repro.experiments.bench`` tracks across PRs);
* **simulated cycles** — the modelled hardware's cost of the stage
  (assigned by the pipeline from its cycle model; per-tile RBCD spans
  carry the cycles computed in the worker, attributed at merge time).

Tracing is strictly observational: span bookkeeping never feeds back
into the cycle model, so enabling a tracer changes no collision pair,
contact record, or simulated cycle count (asserted by
``tests/integration/test_trace_differential.py``).

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span``
is a no-op context manager — the instrumented pipeline pays one
attribute lookup and one ``with`` per stage when tracing is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
]


@dataclass
class Span:
    """One traced stage execution."""

    name: str
    category: str = "stage"     # "frame" | "tile" | "stage"
    index: int = 0              # position in the tracer's span list
    parent: int = -1            # index of the enclosing span (-1 = root)
    depth: int = 0
    t_start: float = 0.0        # tracer clock at entry
    t_end: float | None = None  # tracer clock at exit (None while open)
    cycles: float = 0.0         # simulated cycles attributed to the span
    attrs: dict = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        """Wall-clock duration in seconds (0.0 while still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    def add_cycles(self, n: float) -> None:
        self.cycles += float(n)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)


class Tracer:
    """Collects a tree of spans, in start order.

    Spans nest via a stack: ``span()`` is a context manager, and spans
    opened inside it become its children.  The span list survives
    ``with`` exits; call :meth:`reset` to start a fresh trace (e.g. per
    frame), or keep accumulating across frames and group by the
    ``frame`` attribute downstream.

    With ``keep_spans=False`` the span list is cleared each time the
    stack empties (a root span closes): listeners still see every
    completed span, but the tracer itself holds at most one frame's
    tree — the mode the flight recorder uses to stay bounded while
    always on.  Span indices then restart per root, which keeps
    parent/child indices consistent within each retained tree.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, keep_spans: bool = True) -> None:
        self._clock = clock
        self.keep_spans = keep_spans
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._context: dict = {}
        self._listeners: list = []
        self._epoch = clock()

    def add_listener(self, fn) -> None:
        """Call ``fn(span)`` each time a span closes (in close order,
        children before parents).  Listeners must be observational —
        the span is live bookkeeping, not a copy."""
        self._listeners.append(fn)

    @contextmanager
    def span(self, name: str, category: str = "stage", **attrs):
        sp = self.start(name, category, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    @contextmanager
    def context(self, **attrs):
        """Request-scoped span attributes: every span started while the
        context is active carries ``attrs`` (explicit span attrs win on
        key collision).  Contexts nest — inner contexts layer over, and
        restore, the outer ones — which is how the serving frontend
        stamps ``tenant`` / ``stream`` / ``frame_seq`` onto every span
        of a frame, including the per-tile spans recorded at absorb
        time after the executor merge.
        """
        saved = self._context
        self._context = {**saved, **attrs}
        try:
            yield
        finally:
            self._context = saved

    def start(self, name: str, category: str = "stage", **attrs) -> Span:
        """Open a span explicitly (prefer the ``span`` context manager)."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            name=name,
            category=category,
            index=len(self.spans),
            parent=parent.index if parent is not None else -1,
            depth=len(self._stack),
            t_start=self._clock() - self._epoch,
            attrs={**self._context, **attrs} if self._context else dict(attrs),
        )
        self.spans.append(sp)
        self._stack.append(sp)
        return sp

    def end(self, sp: Span) -> None:
        if not self._stack or self._stack[-1] is not sp:
            raise RuntimeError(
                f"span {sp.name!r} closed out of order "
                f"(open stack: {[s.name for s in self._stack]})"
            )
        sp.t_end = self._clock() - self._epoch
        self._stack.pop()
        for fn in self._listeners:
            fn(sp)
        if not self.keep_spans and not self._stack:
            self.spans = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def add_cycles(self, n: float) -> None:
        """Attribute simulated cycles to the innermost open span."""
        if self._stack:
            self._stack[-1].add_cycles(n)

    def reset(self) -> None:
        """Drop collected spans and re-zero the clock epoch."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset with open spans: {[s.name for s in self._stack]}"
            )
        self.spans = []
        self._epoch = self._clock()

    # -- queries ---------------------------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, sp: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == sp.index]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent == -1]

    def total_wall_s(self, name: str) -> float:
        return sum(s.wall_s for s in self.by_name(name))

    def total_cycles(self, name: str) -> float:
        return sum(s.cycles for s in self.by_name(name))


class _NullSpan:
    """Inert span: every mutation is a no-op, every read is zero."""

    __slots__ = ()

    name = ""
    category = "stage"
    index = -1
    parent = -1
    depth = 0
    cycles = 0.0
    wall_s = 0.0
    closed = True
    attrs: dict = {}

    def __setattr__(self, key, value) -> None:
        # ``span.cycles = x`` on the null span silently vanishes, so
        # instrumented code never branches on whether tracing is on.
        pass

    def add_cycles(self, n: float) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: structurally compatible, records nothing."""

    enabled = False
    spans: list = []
    keep_spans = False

    def add_listener(self, fn) -> None:
        pass

    @contextmanager
    def span(self, name: str, category: str = "stage", **attrs):
        yield _NULL_SPAN

    @contextmanager
    def context(self, **attrs):
        yield

    def start(self, name: str, category: str = "stage", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def end(self, sp) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    def add_cycles(self, n: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def by_name(self, name: str) -> list:
        return []

    def children(self, sp) -> list:
        return []

    def roots(self) -> list:
        return []

    def total_wall_s(self, name: str) -> float:
        return 0.0

    def total_cycles(self, name: str) -> float:
        return 0.0


NULL_TRACER = NullTracer()


def ensure_tracer(tracer) -> "Tracer | NullTracer":
    """``None`` -> the shared null tracer; anything else passes through."""
    return NULL_TRACER if tracer is None else tracer
