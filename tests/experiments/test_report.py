"""Markdown report generator tests (small scale)."""

import pytest

from repro.experiments.report import build_report, write_report
from repro.experiments.runner import run_all_benchmarks, run_overflow_sweeps


@pytest.fixture(scope="module")
def small_inputs():
    runs = run_all_benchmarks(width=96, height=64, frames=1, detail=1)
    sweeps = run_overflow_sweeps(width=96, height=64, frames=1, detail=1)
    return runs, sweeps


class TestBuildReport:
    def test_contains_every_figure(self, small_inputs):
        runs, sweeps = small_inputs
        text = build_report(runs, sweeps)
        for figure in ("8a", "8b", "8c", "8d", "9a", "9b", "10", "11", "Table 3"):
            assert f"Figure {figure}" in text

    def test_contains_benchmarks_and_paper_refs(self, small_inputs):
        runs, sweeps = small_inputs
        text = build_report(runs, sweeps)
        for alias in ("cap", "crazy", "sleepy", "temple"):
            assert alias in text
        assert "paper" in text
        assert "geo.mean" in text

    def test_markdown_tables_well_formed(self, small_inputs):
        runs, sweeps = small_inputs
        for line in build_report(runs, sweeps).splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_setup_note_included(self, small_inputs):
        runs, sweeps = small_inputs
        assert "tiny setup" in build_report(runs, sweeps, "tiny setup")


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "out.md", width=96, height=64,
                            frames=1, detail=1)
        assert path.exists()
        text = path.read_text()
        assert "Figure 8a" in text
        assert "96x64" in text
