"""Figure export tests."""

import csv
import json

import pytest

from repro.experiments.export import export_figures, figure_to_csv, figure_to_json
from repro.experiments.figures import FigureData


@pytest.fixture
def figure():
    return FigureData(
        figure="8a",
        title="RBCD speedup vs. Broad-CD",
        columns=["cap", "crazy", "geo.mean"],
        series={
            "1 ZEB": {"cap": 100.0, "crazy": 200.0, "geo.mean": 141.4},
            "2 ZEB": {"cap": 300.0, "crazy": 400.0, "geo.mean": 346.4},
        },
        paper_reference={"1 ZEB": 250.0, "2 ZEB": 600.0},
    )


class TestCSV:
    def test_structure(self, figure):
        rows = list(csv.reader(figure_to_csv(figure).splitlines()))
        assert rows[0] == ["series", "cap", "crazy", "geo.mean"]
        assert rows[1][0] == "1 ZEB"
        assert float(rows[1][1]) == 100.0
        assert float(rows[2][3]) == 346.4


class TestJSON:
    def test_roundtrip(self, figure):
        doc = json.loads(figure_to_json(figure))
        assert doc["figure"] == "8a"
        assert doc["series"]["2 ZEB"]["crazy"] == 400.0
        assert doc["paper_reference"]["1 ZEB"] == 250.0


class TestExportFiles:
    def test_writes_both_formats(self, figure, tmp_path):
        paths = export_figures([figure], tmp_path)
        names = {p.name for p in paths}
        assert names == {"fig_8a.csv", "fig_8a.json"}
        for p in paths:
            assert p.read_text()

    def test_format_selection(self, figure, tmp_path):
        paths = export_figures([figure], tmp_path, formats=("json",))
        assert [p.suffix for p in paths] == [".json"]

    def test_creates_directory(self, figure, tmp_path):
        target = tmp_path / "out" / "nested"
        export_figures([figure], target)
        assert target.exists()
