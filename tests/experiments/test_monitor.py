"""The monitor CLI end to end: frame stream, live HTTP endpoints, exits.

Runs ``repro.experiments.monitor.main`` in-process against real scenes
at tiny resolutions and scrapes the live endpoint over actual HTTP —
including the acceptance-criterion flow where a tripped watchdog flips
``/healthz`` to 503 mid-stream.
"""

import json
import threading
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.core import RBCDSystem
from repro.experiments.monitor import main, run_stream
from repro.gpu.config import GPUConfig
from repro.observability.live import LiveMonitor, MetricsServer, WatchdogRule
from repro.observability.openmetrics import parse_openmetrics, validate_openmetrics
from repro.scenes.benchmarks import workload_by_alias

TINY = ["--width", "96", "--height", "64", "--detail", "1"]


def fetch(url):
    try:
        with urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except HTTPError as err:
        return err.code, err.read().decode("utf-8")


class TestRunStream:
    def test_renders_requested_frames_and_loops_animation(self):
        config = GPUConfig().with_screen(96, 64)
        workload = workload_by_alias("cap", detail=1)
        monitor = LiveMonitor(window=8, rules=[])
        seen = []
        with RBCDSystem(config=config, monitor=monitor) as system:
            # More frames than one animation loop => t wraps around.
            rendered = run_stream(
                system, workload, frames=workload.default_frames + 2,
                on_frame=lambda i, result: seen.append(result),
            )
        assert rendered == workload.default_frames + 2
        assert monitor.frames == rendered
        assert len(seen) == rendered
        assert all(r.report is not None for r in seen)


class TestMonitorCli:
    def test_healthy_quick_run_exits_zero(self, capsys, tmp_path):
        port_file = tmp_path / "port"
        code = main(TINY + [
            "--scene", "cap", "--frames", "3",
            "--port-file", str(port_file), "--fail-on-alert",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving http://127.0.0.1:" in out
        assert "health ok, 0 alert(s)" in out
        assert port_file.read_text().strip().isdigit()

    def test_quick_preset_overrides_resolution(self, capsys):
        code = main(["--quick", "--frames", "1"])
        assert code == 0
        assert "rendered 1 frames" in capsys.readouterr().out

    def test_fail_on_alert_exits_nonzero(self, capsys):
        # An impossible energy budget trips the watchdog on frame 0.
        code = main(TINY + [
            "--scene", "cap", "--frames", "2",
            "--max-joules-per-frame", "1e-12", "--fail-on-alert",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "health failing" in out
        assert "energy-budget" in out

    def test_alerts_without_flag_still_exit_zero(self, capsys):
        code = main(TINY + [
            "--scene", "cap", "--frames", "2",
            "--max-joules-per-frame", "1e-12",
        ])
        assert code == 0
        assert "1 alert(s)" in capsys.readouterr().out

    def test_negative_threshold_disables_rule(self, capsys):
        code = main(TINY + [
            "--scene", "cap", "--frames", "2",
            "--max-joules-per-frame", "-1",
            "--max-activity-ratio", "-1",
            "--max-overflow-rate", "-1",
            "--fail-on-alert",
        ])
        assert code == 0

    def test_fail_on_alert_prints_actionable_diagnostics(self, capsys):
        """A failing exit names the breaching rule, its window stats,
        and nothing about a dump when no recorder was attached."""
        code = main(TINY + [
            "--scene", "cap", "--frames", "2",
            "--max-joules-per-frame", "1e-12", "--fail-on-alert",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "monitor: FAILING" in err
        assert "breached rule 'energy-budget'" in err
        assert "window.energy.joules_per_frame" in err
        assert "gt threshold 1e-12" in err
        # The full window state behind the verdict is on stderr too.
        assert "window window.frames = 2" in err
        assert "post-mortem dump" not in err

    def test_fail_on_alert_with_flight_recorder_names_the_dump(
        self, capsys, tmp_path
    ):
        """End to end: breach -> exit 1 -> one dump, path on stderr,
        and the named file is a valid, inspectable post-mortem."""
        from repro.experiments.postmortem import main as postmortem_main

        dump_dir = tmp_path / "black-box"
        code = main(TINY + [
            "--scene", "cap", "--frames", "2",
            "--max-joules-per-frame", "1e-12", "--fail-on-alert",
            "--flight-recorder", str(dump_dir),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "post-mortem dump: " in err
        assert "inspect with: python -m repro.experiments.postmortem" in err
        (dump,) = sorted(dump_dir.glob("postmortem-*.json"))
        assert str(dump) in err
        assert postmortem_main([str(dump), "--check"]) == 0
        assert postmortem_main([str(dump)]) == 0
        out = capsys.readouterr().out
        assert "alert cross-checks:" in out
        assert "energy-budget @ frame 0: reproduced" in out


class TestLiveEndpointEndToEnd:
    """Scrape the endpoint over HTTP while a real stream renders."""

    def stream_with_server(self, rules, frames=4):
        config = GPUConfig().with_screen(96, 64)
        workload = workload_by_alias("cap", detail=1)
        monitor = LiveMonitor(window=8, rules=rules)
        scrapes = {}
        with MetricsServer(monitor) as server:
            with RBCDSystem(config=config, monitor=monitor) as system:
                run_stream(system, workload, frames=frames)
            scrapes["metrics"] = fetch(server.url + "/metrics")
            scrapes["healthz"] = fetch(server.url + "/healthz")
            scrapes["snapshot"] = fetch(server.url + "/snapshot.json")
        return monitor, scrapes

    def test_healthy_stream_serves_valid_openmetrics(self):
        monitor, scrapes = self.stream_with_server(rules=[])
        status, text = scrapes["metrics"]
        assert status == 200
        assert validate_openmetrics(text) > 0
        families = parse_openmetrics(text)
        assert families["repro_frames_observed"]["samples"][0][2] == 4.0
        # Real frames produced real RBCD work.
        insertions = families["repro_gpu_rbcd_zeb_insertions"]["samples"]
        assert insertions[0][2] > 0

        status, body = scrapes["healthz"]
        assert status == 200 and json.loads(body)["status"] == "ok"

        status, body = scrapes["snapshot"]
        snapshot = json.loads(body)
        assert snapshot["frames"] == 4
        assert snapshot["window"]["window.rbcd.activity_ratio"] > 0.0

    def test_tripped_watchdog_flips_healthz_to_503(self):
        # ge 0.0 over a rate that's always >= 0: trips on frame 0.
        rules = [
            WatchdogRule(
                "canary", "window.zeb.overflow_rate", "ge", 0.0,
                description="always trips",
            )
        ]
        monitor, scrapes = self.stream_with_server(rules=rules)
        status, body = scrapes["healthz"]
        assert status == 503
        health = json.loads(body)
        assert health["status"] == "failing"
        assert health["active_alerts"] == ["canary"]
        families = parse_openmetrics(scrapes["metrics"][1])
        assert families["repro_health"]["samples"][0][2] == 0.0
        assert len(monitor.alerts) == 1

    def test_healthz_recovers_to_200_mid_stream(self):
        """The health endpoint tracks breach entry AND exit live."""
        config = GPUConfig().with_screen(96, 64)
        workload = workload_by_alias("cap", detail=1)
        # Trips only while the window holds a single frame, so it
        # recovers as soon as the second frame lands.
        rules = [
            WatchdogRule("warmup", "window.frames", "le", 1.0)
        ]
        monitor = LiveMonitor(window=8, rules=rules)
        statuses = []
        with MetricsServer(monitor) as server:
            with RBCDSystem(config=config, monitor=monitor) as system:
                run_stream(
                    system, workload, frames=3,
                    on_frame=lambda i, r: statuses.append(
                        fetch(server.url + "/healthz")[0]
                    ),
                )
        assert statuses[0] == 503
        assert statuses[-1] == 200
        assert len(monitor.alerts) == 1
        assert monitor.healthy
