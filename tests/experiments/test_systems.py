"""Experiment harness tests at reduced scale.

The full paper-scale runs live in benchmarks/; these tests verify the
harness mechanics and the headline result *shapes* at a small
resolution so the suite stays fast.
"""

import pytest

from repro.experiments.systems import run_workload
from repro.gpu.config import GPUConfig
from repro.scenes.benchmarks import make_cap, make_temple, workload_by_alias

CFG = GPUConfig().with_screen(200, 120)


@pytest.fixture(scope="module")
def cap_run():
    return run_workload(make_cap(detail=1), CFG, frames=3)


@pytest.fixture(scope="module")
def temple_run():
    # temple carries the largest deferred-culling and ZEB load, so its
    # deltas stay measurable even at this reduced test scale.
    return run_workload(make_temple(detail=1), CFG, frames=3)


class TestRunStructure:
    def test_systems_present(self, cap_run):
        assert set(cap_run.rbcd.keys()) == {1, 2}
        assert cap_run.frames == 3
        assert len(cap_run.rbcd_pairs) == 3
        assert len(cap_run.cpu_broad_pairs) == 3
        assert len(cap_run.cpu_narrow_pairs) == 3

    def test_rbcd_functional_results_independent_of_zeb_count(self, cap_run):
        # ZEB count only changes timing; functional counters must match.
        s1, s2 = cap_run.rbcd_stats[1], cap_run.rbcd_stats[2]
        assert s1.zeb_insertions == s2.zeb_insertions
        assert s1.collision_pairs_emitted == s2.collision_pairs_emitted
        assert s1.fragments_produced == s2.fragments_produced

    def test_two_zebs_never_slower(self, cap_run):
        assert cap_run.rbcd[2].seconds <= cap_run.rbcd[1].seconds
        # Energy may tick *up* marginally when the second ZEB's leakage
        # buys no time (the paper notes the same for ZEB counts > 2).
        assert cap_run.rbcd[2].energy_j <= cap_run.rbcd[1].energy_j * 1.01


class TestHeadlineShapes:
    def test_rbcd_overhead_small_but_positive(self, temple_run):
        for k in (1, 2):
            norm = temple_run.rbcd[k].seconds / temple_run.baseline.seconds
            assert 1.0 < norm < 1.25

    def test_cpu_cd_orders_of_magnitude_slower(self, temple_run):
        for k in (1, 2):
            ratio = temple_run.cpu_broad.seconds / temple_run.rbcd_extra_seconds(k)
            assert ratio > 20, f"broad speedup only {ratio:.1f}x with {k} ZEB"

    def test_gjk_baseline_costs_more_than_broad(self, cap_run):
        assert cap_run.cpu_narrow.seconds > cap_run.cpu_broad.seconds
        assert cap_run.cpu_narrow.energy_j > cap_run.cpu_broad.energy_j

    def test_energy_reduction_large(self, temple_run):
        ratio = temple_run.cpu_broad.energy_j / temple_run.rbcd_extra_energy(2)
        assert ratio > 20

    def test_rbcd_agrees_with_gjk_on_real_contacts(self, cap_run):
        """Narrow-phase positives should be found by RBCD too (both see
        the same shapes; RBCD adds sub-pixel discretization only)."""
        agree = 0
        total = 0
        for rbcd, narrow in zip(cap_run.rbcd_pairs, cap_run.cpu_narrow_pairs):
            for pair in narrow:
                total += 1
                if pair in rbcd:
                    agree += 1
        if total:
            assert agree / total >= 0.5

    def test_broad_phase_superset_of_rbcd(self, cap_run):
        """AABB broad phase is conservative: every RBCD pair (a real
        surface contact) must have overlapping AABBs."""
        for rbcd, broad in zip(cap_run.rbcd_pairs, cap_run.cpu_broad_pairs):
            assert rbcd <= broad


class TestFigureGeneration:
    def test_figures_render(self, temple_run):
        from repro.experiments import figures, tables

        runs = [temple_run]
        for fig in (
            figures.fig8a_speedup_broad(runs),
            figures.fig8b_energy_broad(runs),
            figures.fig8c_speedup_gjk(runs),
            figures.fig8d_energy_gjk(runs),
            figures.fig9a_normalized_time(runs),
            figures.fig9b_normalized_energy(runs),
            figures.fig10_time_breakdown(runs),
            figures.fig11_activity_factors(runs),
        ):
            text = tables.render_figure(fig)
            assert fig.title in text
            assert "temple" in text
            assert "geo.mean" in text
            assert tables.render_comparison(fig)

    def test_fig10_fractions_sum_to_one(self, temple_run):
        from repro.experiments import figures

        fig = figures.fig10_time_breakdown([temple_run])
        total = fig.value("Raster", "temple") + fig.value("Geometry", "temple")
        assert total == pytest.approx(1.0)

    def test_fig11_ratios_at_least_one(self, temple_run):
        from repro.experiments import figures

        fig = figures.fig11_activity_factors([temple_run])
        for label in ("TC loads", "Primitives", "Fragments", "Raster cycles"):
            assert fig.value(label, "temple") >= 1.0


class TestOverflowSweep:
    def test_sweep_monotone_in_m(self):
        from repro.experiments.overflow import overflow_sweep

        workload = workload_by_alias("temple", detail=1)
        sweep = overflow_sweep(workload, CFG, m_values=(2, 4, 8), frames=2)
        assert (
            sweep.overflow_rate[2] >= sweep.overflow_rate[4] >= sweep.overflow_rate[8]
        )

    def test_spares_reduce_overflow(self):
        from repro.experiments.overflow import overflow_sweep

        workload = workload_by_alias("temple", detail=1)
        without = overflow_sweep(workload, CFG, m_values=(4,), frames=2)
        with_spares = overflow_sweep(
            workload, CFG, m_values=(4,), frames=2, spare_entries=64
        )
        assert (
            with_spares.overflow_rate[4] < without.overflow_rate[4]
            or without.overflow_rate[4] == 0.0
        )
        assert with_spares.spare_allocations[4] > 0

    def test_missed_pairs_interface(self):
        from repro.experiments.overflow import overflow_sweep

        workload = workload_by_alias("cap", detail=1)
        sweep = overflow_sweep(workload, CFG, m_values=(8, 16), frames=2)
        missed = sweep.missed_pairs(8, 16)
        assert len(missed) == 2
        assert sweep.all_collisions_detected(16, 16)
