"""The postmortem CLI end to end: load, render, filter, verify, fail.

Dumps are produced by a real :class:`FlightRecorder` fed a fabricated
two-tenant incident (tenant ``t00`` breaches a watchdog rule on frame
2, tenant ``t01`` suffers an admission rejection), so every rendered
timeline row — spans, snapshots, alerts, rejections, log events — comes
through the same capture path production uses.
"""

import json
import logging

import pytest

from repro.energy.gpu_power import GPUEnergyBreakdown
from repro.energy.report import FrameEnergyReport
from repro.experiments.postmortem import (
    frame_of,
    load_document,
    main,
    stream_of,
    timeline_events,
    verify_document_alerts,
)
from repro.gpu.stats import GPUStats
from repro.observability.flightrecorder import FlightRecorder
from repro.observability.live import LiveMonitor, WatchdogRule
from repro.observability.log import get_logger, log_event

HOT = WatchdogRule("hot", "window.rbcd.activity_ratio", "gt", 0.01)


def make_stats(rbcd_cycles=5.0) -> GPUStats:
    return GPUStats(
        gpu_cycles=1000.0,
        rbcd_cycles=rbcd_cycles,
        zeb_insertions=100,
        zeb_lists_analyzed=50,
        collision_pairs_emitted=3,
    )


def make_energy() -> FrameEnergyReport:
    return FrameEnergyReport(
        gpu=GPUEnergyBreakdown(static_j=0.001), delay_s=0.002
    )


def write_dump(tmp_path, name="box", breach=True):
    """Record a small two-tenant incident and dump it explicitly."""
    recorder = FlightRecorder(dump_dir=tmp_path / name, dump_on=())
    try:
        tracer = recorder.attach_tracer()
        monitors = {
            tenant: recorder.attach_monitor(
                LiveMonitor(window=4, rules=[HOT]), stream=tenant
            )
            for tenant in ("t00", "t01")
        }
        for frame in range(3):
            for tenant, monitor in monitors.items():
                with tracer.context(tenant=tenant, frame_seq=frame):
                    with tracer.span("frame") as span:
                        span.add_cycles(100.0 + frame)
                hot = breach and tenant == "t00" and frame == 2
                monitor.observe_frame(
                    make_stats(100.0 if hot else 5.0), make_energy()
                )
        log_event(
            get_logger("repro.test.postmortem"), "incident.note",
            level=logging.WARNING, tenant="t00", frame=1,
        )
        recorder.record_rejection("t01", "queue_full", detail="depth 8")
        return recorder.dump()
    finally:
        recorder.close()


@pytest.fixture(scope="module")
def dump(tmp_path_factory):
    return write_dump(tmp_path_factory.mktemp("postmortem"))


class TestHelpers:
    def test_frame_of_prefers_direct_then_attrs(self):
        assert frame_of({"frame": 3}) == 3
        assert frame_of({"attrs": {"frame_seq": 7}}) == 7
        assert frame_of({"attrs": {"frame": 2}}) == 2
        assert frame_of({"frame_seq": 5}) == 5
        assert frame_of({"name": "no correlation"}) is None

    def test_stream_of_falls_back_to_log_tenant(self):
        assert stream_of({"stream": "t00"}) == "t00"
        assert stream_of({"kind": "log", "tenant": "t01"}) == "t01"
        assert stream_of({"kind": "log"}) is None

    def test_timeline_events_are_seq_ordered(self, dump):
        events = timeline_events(load_document(dump))
        seqs = [record["seq"] for record in events]
        assert seqs == sorted(seqs)
        kinds = {record["kind"] for record in events}
        assert {"span", "snapshot", "alert", "rejection", "log"} <= kinds

    def test_verify_document_alerts_reproduces(self, dump):
        verdicts = verify_document_alerts(load_document(dump))
        assert [v["status"] for v in verdicts] == ["reproduced"]
        assert verdicts[0]["stream"] == "t00"
        assert verdicts[0]["recomputed"] == verdicts[0]["expected"]


class TestCli:
    def test_check_validates_and_exits_zero(self, dump, capsys):
        assert main([str(dump), "--check"]) == 0
        out = capsys.readouterr().out
        assert "valid rbcd-postmortem v1" in out
        assert str(dump) in out

    def test_text_timeline_correlates_every_source(self, dump, capsys):
        assert main([str(dump)]) == 0
        out = capsys.readouterr().out
        assert "(trigger: manual)" in out
        assert "stream t00:" in out and "stream t01:" in out
        assert "timeline:" in out
        # One row per capture source, each attributed and described.
        assert "frame (cycles=102" in out
        assert "hot: window.rbcd.activity_ratio" in out
        assert "admission refused: queue_full (depth 8)" in out
        assert "WARNING incident.note" in out
        assert "alert cross-checks:" in out
        assert "[t00] hot @ frame 2: reproduced" in out

    def test_json_format_emits_machine_readable_verdicts(self, dump, capsys):
        assert main([str(dump), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["dumps"] == [str(dump)]
        seqs = [event["seq"] for event in payload["events"]]
        assert seqs == sorted(seqs)
        (verdict,) = payload["verdicts"]
        assert verdict["status"] == "reproduced"
        assert verdict["rule"] == "hot" and verdict["frame"] == 2

    def test_tenant_filter_drops_other_streams(self, dump, capsys):
        assert main([str(dump), "--tenant", "t01", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]
        assert all(
            stream_of(event) == "t01" for event in payload["events"]
        )
        kinds = {event["kind"] for event in payload["events"]}
        assert "rejection" in kinds and "alert" not in kinds

    def test_frames_filter_keeps_only_the_window(self, dump, capsys):
        assert main([str(dump), "--frames", "2:2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]
        assert all(frame_of(event) == 2 for event in payload["events"])
        kinds = {event["kind"] for event in payload["events"]}
        assert "alert" in kinds
        # The frame-1 log line and the un-attributed rejection drop out.
        assert "rejection" not in kinds
        assert all(
            event.get("event") != "incident.note"
            for event in payload["events"]
        )

    def test_empty_filter_result_says_so(self, dump, capsys):
        assert main([str(dump), "--tenant", "nobody", "--no-verify"]) == 0
        assert "(no events match the filters)" in capsys.readouterr().out

    @pytest.mark.parametrize("spec", ["oops", "3:1", "1:2:3x"])
    def test_bad_frames_spec_exits_two(self, dump, spec, capsys):
        assert main([str(dump), "--frames", spec]) == 2
        assert "error:" in capsys.readouterr().err

    def test_multiple_dumps_merge_with_prefixes(self, dump, tmp_path, capsys):
        other = write_dump(tmp_path, name="second", breach=False)
        assert main([str(dump), str(other)]) == 0
        out = capsys.readouterr().out
        assert "dump0 [seq" in out and "dump1 [seq" in out

    def test_tampered_dump_fails_replay_and_exits_three(
        self, dump, tmp_path, capsys
    ):
        doc = json.loads(dump.read_text(encoding="utf-8"))
        for record in doc["streams"]["t00"]["alerts"]:
            if record["kind"] == "alert":
                record["value"] *= 2.0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc), encoding="utf-8")
        assert main([str(tampered)]) == 3
        captured = capsys.readouterr()
        assert "hot @ frame 2: mismatch" in captured.out
        assert "failed replay verification" in captured.err
        # The json surface reports the same failure for scripting.
        assert main([str(tampered), "--format", "json"]) == 3
        assert json.loads(capsys.readouterr().out)["ok"] is False

    def test_corrupt_document_raises_value_error(self, dump, tmp_path):
        broken = tmp_path / "broken.json"
        doc = json.loads(dump.read_text(encoding="utf-8"))
        doc.pop("schema")
        broken.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(ValueError):
            main([str(broken), "--check"])
