"""Table 1 / Table 2 printer tests."""

from repro.experiments.config_tables import render_table1, render_table2
from repro.gpu.config import GPUConfig


class TestTable1:
    def test_lists_all_benchmarks(self):
        text = render_table1()
        for name in ("Captain America", "Crazy Snowboard", "Sleepy Jack",
                     "Temple Run"):
            assert name in text
        for alias in ("cap", "crazy", "sleepy", "temple"):
            assert alias in text


class TestTable2:
    def test_contains_paper_parameters(self):
        text = render_table2()
        assert "400 MHz" in text           # GPU frequency
        assert "800x480" in text           # WVGA
        assert "16x16" in text             # tile size
        assert "128 KB" in text            # L2
        assert "4 fragments/cycle" in text
        assert "1500 MHz" in text          # CPU frequency
        assert "32 nm" in text
        assert "8 KB" in text              # ZEB size (and texture cache)

    def test_reflects_custom_config(self):
        text = render_table2(GPUConfig().with_screen(320, 240))
        assert "320x240" in text
