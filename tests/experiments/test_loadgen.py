"""The loadgen CLI end to end: tenant plans, bench document, exits.

Runs ``repro.experiments.loadgen.main`` in-process at tiny resolutions
— closed-loop, open-loop and the saturation ramp — and hardens the
``rbcd-serve-bench`` validator with mutation tests against a
known-good document.
"""

import copy
import json
import threading
import time
from urllib.request import urlopen

import pytest

from repro.experiments.loadgen import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    history_line,
    main,
    plan_tenants,
    validate_serve_bench_document,
)
from repro.gpu.config import GPUConfig
from repro.observability.netutil import read_port_file
from repro.scenes.benchmarks import BENCHMARKS

TINY = ["--width", "96", "--height", "64", "--detail", "1"]
# Watchdog thresholds that cannot fire at smoke resolutions (the
# "crazy" scene legitimately breaches the paper's 1% activity envelope
# when the screen is this small).
NO_ALERTS = [
    "--max-activity-ratio", "-1",
    "--max-overflow-rate", "-1",
    "--max-joules-per-frame", "-1",
]
SMALL = TINY + NO_ALERTS + ["--tenants", "2", "--frames", "2"]


class TestTenantPlans:
    def test_round_robin_scenes_and_stable_ids(self):
        plans = plan_tenants(6, detail=1, seed=3)
        assert [p.scene for p in plans] == [
            BENCHMARKS[i % len(BENCHMARKS)] for i in range(6)
        ]
        assert [p.tenant for p in plans] == [
            f"t{i:02d}-{plans[i].scene}" for i in range(6)
        ]

    def test_same_seed_same_phases(self):
        first = plan_tenants(5, detail=1, seed=11)
        again = plan_tenants(5, detail=1, seed=11)
        other = plan_tenants(5, detail=1, seed=12)
        assert [p.phase for p in first] == [p.phase for p in again]
        assert [p.phase for p in first] != [p.phase for p in other]

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            plan_tenants(0, detail=1, seed=0)

    def test_frame_at_is_deterministic(self):
        config = GPUConfig().with_screen(96, 64)
        plan = plan_tenants(1, detail=1, seed=0)[0]
        a = plan.frame_at(3, config)
        b = plan.frame_at(3, config)
        assert len(a.draws) == len(b.draws)


class TestClosedLoopCli:
    def test_quick_run_serves_every_frame(self, capsys):
        assert main(SMALL + ["--fail-on-alert"]) == 0
        out = capsys.readouterr().out
        assert "serving http://127.0.0.1:" in out
        assert "served 4 frames for 2 tenants in 2 batches" in out

    def test_selfcheck_gated_sections_are_bit_identical(self, capsys):
        assert main(SMALL + ["--selfcheck"]) == 0
        assert "selfcheck OK" in capsys.readouterr().out

    def test_document_round_trips_through_check(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        assert main(SMALL + ["--output", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == SCHEMA_NAME
        assert doc["version"] == SCHEMA_VERSION
        assert doc["workload"]["frames_served"] == 4
        assert len(doc["workload"]["tenants"]) == 2
        assert doc["saturation"] is None
        validate_serve_bench_document(doc)
        assert main(["--check", str(out_path)]) == 0
        assert "valid rbcd-serve-bench" in capsys.readouterr().out

    def test_default_envelope_alerts_fail_the_run_when_asked(self, capsys):
        # Default watchdog bounds + the crazy scene at 96x64: alerts
        # fire, frames are still served (closed loop admits them), and
        # --fail-on-alert turns that into exit 1.
        code = main(TINY + [
            "--tenants", "2", "--frames", "2",
            "--max-joules-per-frame", "1e-12", "--fail-on-alert",
        ])
        assert code == 1
        assert "alert(s)" in capsys.readouterr().out

    def test_metrics_endpoint_is_scrapable_mid_run(self, tmp_path):
        port_file = tmp_path / "port"
        scraped = {}

        def scrape():
            # The port file lands before the workload starts, so poll
            # until the served tenants' labelled series show up.
            port = read_port_file(port_file, timeout_s=30.0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                with urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=10
                ) as response:
                    scraped["status"] = response.status
                    scraped["body"] = response.read().decode("utf-8")
                if 'tenant="t01-crazy"' in scraped["body"]:
                    return
                time.sleep(0.05)

        scraper = threading.Thread(target=scrape)
        scraper.start()
        try:
            code = main(SMALL + [
                "--port-file", str(port_file), "--linger", "2.0",
            ])
        finally:
            scraper.join(timeout=30.0)
        assert code == 0
        assert scraped["status"] == 200
        assert 'tenant="t00-cap"' in scraped["body"]
        assert 'tenant="t01-crazy"' in scraped["body"]


class TestHistoryAppend:
    def test_appended_line_round_trips_history_line(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        history = tmp_path / "hist" / "HISTORY.ndjson"
        argv = SMALL + [
            "--output", str(out_path), "--append-history", str(history),
        ]
        assert main(argv) == 0
        assert main(argv) == 0  # appends, never truncates
        assert "appended history line to" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert line == history_line(doc)
        record = json.loads(lines[0])
        assert record["schema"] == SCHEMA_NAME  # disambiguates bench lines
        assert record["version"] == SCHEMA_VERSION
        assert record["config"]["tenants"] == 2
        assert record["workload"]["frames_served"] == 4
        assert record["workload"]["pairs_total"] == sum(
            t["pairs_total"] for t in doc["workload"]["tenants"]
        )
        assert record["saturation"] is None

    def test_history_line_summarizes_saturation(self):
        doc = good_document()
        record = json.loads(history_line(doc))
        assert record["saturation"] == {
            "max_sustained_fps": 30.0, "steps": 2,
        }


class TestFlightRecorderCli:
    def test_forced_slo_breach_writes_exactly_one_dump(
        self, capsys, tmp_path
    ):
        """The CI postmortem-smoke recipe: an impossibly tight p95 SLO
        breaches on the first window, the closed loop still serves
        every frame, and the recorder writes exactly one valid dump."""
        from repro.experiments.postmortem import main as postmortem_main

        dump_dir = tmp_path / "black-box"
        code = main(SMALL + [
            "--max-frame-ms", "1e-6", "--fail-on-alert",
            "--flight-recorder", str(dump_dir),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "served 4 frames" in captured.out  # breach did not reject
        assert "loadgen: FAILING" in captured.err
        dumps = sorted(dump_dir.glob("postmortem-*.json"))
        assert len(dumps) == 1  # dump storm protection: one per run
        assert str(dumps[0]) in captured.err
        assert postmortem_main([str(dumps[0]), "--check"]) == 0
        assert postmortem_main([str(dumps[0])]) == 0
        out = capsys.readouterr().out
        assert "frame-latency-slo" in out
        assert "reproduced" in out

    def test_healthy_run_writes_no_dump(self, tmp_path):
        dump_dir = tmp_path / "black-box"
        code = main(SMALL + [
            "--fail-on-alert", "--flight-recorder", str(dump_dir),
        ])
        assert code == 0
        assert not list(dump_dir.glob("*.json")) if dump_dir.exists() else True


class TestOpenLoopAndSaturationCli:
    def test_open_loop_reports_throughput(self, capsys):
        assert main(SMALL + ["--rate", "50"]) == 0
        out = capsys.readouterr().out
        assert "open-loop at 50 Hz/tenant" in out
        assert "fps aggregate" in out

    def test_saturation_writes_a_valid_document(self, capsys, tmp_path):
        out_path = tmp_path / "saturation.json"
        code = main(SMALL + [
            "--saturation", "--rates", "5,10",
            "--max-frame-ms", "10000",
            "--output", str(out_path),
        ])
        assert code == 0
        assert "saturation: max sustained" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        validate_serve_bench_document(doc)
        steps = doc["saturation"]["steps"]
        assert 1 <= len(steps) <= 2
        assert doc["saturation"]["max_sustained_fps"] >= 0.0

    def test_saturation_requires_the_slo(self, capsys):
        assert main(SMALL + ["--saturation"]) == 2
        assert "--max-frame-ms" in capsys.readouterr().err

    def test_saturation_rejects_open_loop_rate(self, capsys):
        code = main(SMALL + [
            "--saturation", "--max-frame-ms", "100", "--rate", "10",
        ])
        assert code == 2
        assert "drop --rate" in capsys.readouterr().err

    def test_rates_must_ascend(self, capsys):
        code = main(SMALL + [
            "--saturation", "--max-frame-ms", "100",
            "--rates", "20,10",
        ])
        assert code == 2
        assert "ascending" in capsys.readouterr().err


def good_document():
    """A hand-built document the validator accepts (asserted below)."""
    def tenant(i, scene, pairs):
        return {
            "tenant": f"t{i:02d}-{scene}",
            "scene": scene,
            "phase": 3 * i,
            "frames": 2,
            "pairs_total": pairs,
            "counters": {"gpu.frames": 2.0, "energy.total_j": 0.25},
            "serve": {
                "serve.frames_submitted": 2,
                "serve.frames_completed": 2,
                "serve.frames_rejected": 0,
            },
        }

    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": {
            "tenants": 2, "frames": 2, "width": 96, "height": 64,
            "detail": 1, "workers": 1, "backend": "auto", "window": 8,
            "max_pending": 8, "seed": 0, "max_frame_ms": 100.0,
        },
        "workload": {
            "frames_served": 4,
            "batches": 2,
            "tenants": [tenant(0, "cap", 1), tenant(1, "crazy", 4)],
            "global_counters": {"gpu.frames": 4.0},
        },
        "timing": {"wall_s": 0.5},
        "saturation": {
            "steps": [
                {"offered_rate_hz": 10.0, "achieved_fps": 30.0,
                 "frames_served": 4, "frames_rejected": 0,
                 "p95_wall_ms_max": 5.0, "slo_alerts": 0,
                 "sustained": True},
                {"offered_rate_hz": 20.0, "achieved_fps": 25.0,
                 "frames_served": 3, "frames_rejected": 1,
                 "p95_wall_ms_max": 50.0, "slo_alerts": 1,
                 "sustained": False},
            ],
            "max_sustained_fps": 30.0,
        },
    }


class TestDocumentValidator:
    def test_accepts_known_good_document(self):
        validate_serve_bench_document(good_document())

    def test_accepts_null_saturation(self):
        doc = good_document()
        doc["saturation"] = None
        validate_serve_bench_document(doc)

    @pytest.mark.parametrize("mutate,expected", [
        (lambda d: d.__setitem__("schema", "rbcd-bench"), "schema"),
        (lambda d: d.__setitem__("version", 2), "version"),
        (lambda d: d["config"].__setitem__("tenants", 0), "config.tenants"),
        (lambda d: d["config"].__setitem__("frames", True), "config.frames"),
        (lambda d: d["workload"].__setitem__("frames_served", -1),
         "frames_served"),
        (lambda d: d["workload"]["tenants"].pop(), "expected 2 records"),
        (lambda d: d["workload"]["tenants"].__setitem__(
            1, copy.deepcopy(d["workload"]["tenants"][0])),
         "duplicate tenant"),
        (lambda d: d["workload"]["tenants"][0].__setitem__("scene", "nope"),
         "unknown scene"),
        (lambda d: d["workload"]["tenants"][0].__setitem__("frames", 3),
         "expected config.frames"),
        (lambda d: d["workload"]["tenants"][0]["serve"].__setitem__(
            "serve.frames_rejected", 1), "must admit every frame"),
        (lambda d: d["workload"]["tenants"][0].__setitem__("counters", {}),
         "counters"),
        (lambda d: d["workload"]["tenants"][0]["counters"].__setitem__(
            "gpu.frames", "two"), "expected a number"),
        (lambda d: d["workload"].__setitem__("global_counters", {}),
         "global_counters"),
        (lambda d: d["timing"].__setitem__("wall_s", -0.1), "timing.wall_s"),
        (lambda d: d["saturation"]["steps"][1].__setitem__(
            "offered_rate_hz", 10.0), "strictly increasing"),
        (lambda d: d["saturation"]["steps"][0].__setitem__(
            "sustained", False), "must end the ramp"),
        (lambda d: d["saturation"].__setitem__("max_sustained_fps", 99.0),
         "max over sustained steps"),
        (lambda d: d["saturation"].__setitem__("steps", []),
         "non-empty list"),
        (lambda d: d["saturation"]["steps"][0].__setitem__(
            "slo_alerts", 0.5), "expected an int"),
    ])
    def test_rejects_mutations(self, mutate, expected):
        doc = good_document()
        mutate(doc)
        with pytest.raises(ValueError, match="invalid rbcd-serve-bench") as e:
            validate_serve_bench_document(doc)
        assert expected in str(e.value)

    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            validate_serve_bench_document([1, 2, 3])

    def test_check_flag_rejects_invalid_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        doc = good_document()
        doc["workload"]["tenants"] = []
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="invalid rbcd-serve-bench"):
            main(["--check", str(bad)])
