"""Runner caching and table rendering tests."""

import pytest

from repro.experiments import tables
from repro.experiments.figures import FigureData
from repro.experiments.runner import _cached_run, run_all_benchmarks


class TestRunnerCache:
    def test_same_parameters_hit_cache(self):
        before = _cached_run.cache_info().hits
        first = run_all_benchmarks(width=96, height=64, frames=1, detail=1)
        second = run_all_benchmarks(width=96, height=64, frames=1, detail=1)
        assert _cached_run.cache_info().hits >= before + 4
        for a, b in zip(first, second):
            assert a is b  # identical cached objects

    def test_benchmark_order_stable(self):
        runs = run_all_benchmarks(width=96, height=64, frames=1, detail=1)
        assert [r.alias for r in runs] == ["cap", "crazy", "sleepy", "temple"]


class TestTables:
    def figure(self) -> FigureData:
        return FigureData(
            figure="9a",
            title="Normalized GPU rendering time",
            columns=["cap", "geo.mean"],
            series={"1 ZEB": {"cap": 1.054, "geo.mean": 1.03}},
            paper_reference={"1 ZEB": 1.054},
        )

    def test_format_value_ranges(self):
        assert tables.format_value(0) == "0"
        assert tables.format_value(0.123456) == "0.123"
        assert tables.format_value(42.3) == "42.3"
        assert tables.format_value(1234.6) == "1,235"  # thousands separator

    def test_render_figure_contains_everything(self):
        text = tables.render_figure(self.figure())
        assert "Figure 9a" in text
        assert "cap" in text and "geo.mean" in text
        assert "1.054" in text
        assert "paper geo.mean reference" in text

    def test_render_comparison(self):
        text = tables.render_comparison(self.figure())
        assert "measured geo.mean" in text
        assert "paper" in text

    def test_render_figure_without_reference(self):
        fig = self.figure()
        fig.paper_reference = {}
        assert "paper" not in tables.render_figure(fig)


class TestCLI:
    def test_main_quick_run(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["--width", "96", "--height", "64", "--frames", "1",
                     "--detail", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8a" in out
        assert "Table 3" in out
