"""End-to-end regression gating through the bench CLI.

The acceptance contract of the gate: a fresh run against a baseline of
the *same tree* exits 0, and a run against a baseline that the current
tree would "regress" (simulated by perturbing the stored baseline —
injecting a slowdown is equivalent to shrinking the baseline's numbers)
exits non-zero.
"""

import copy
import json

import pytest

from repro.experiments.bench import gate_against_baseline, main, run_bench


@pytest.fixture(scope="module")
def bench_doc():
    """One real 2-run tiny document, shared by every gate test."""
    return run_bench(["crazy"], width=64, height=32, frames=1, detail=1,
                     quick=False, runs=2)


@pytest.fixture()
def baseline_file(tmp_path, bench_doc):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(bench_doc))
    return path


def run_gate(tmp_path, baseline_path, *extra):
    return main([
        "--scenes", "crazy", "--width", "64", "--height", "32",
        "--frames", "1", "--detail", "1", "--runs", "2",
        "--output", str(tmp_path / "fresh.json"),
        "--baseline", str(baseline_path), "--gate",
        # Wall time on a loaded test machine jitters: gate it leniently
        # here, the deterministic metrics are the point of this test.
        "--wall-tol", "1000.0",
        *extra,
    ])


class TestGateAgainstBaseline:
    def test_document_gates_clean_against_itself(self, bench_doc):
        report = gate_against_baseline(bench_doc, copy.deepcopy(bench_doc))
        assert report.ok, report.render()
        assert len(report.comparisons) > 5

    def test_profiled_documents_are_refused(self, bench_doc):
        profiled = copy.deepcopy(bench_doc)
        profiled["config"]["profile"] = True
        report = gate_against_baseline(profiled, bench_doc)
        assert not report.ok
        assert any("--profile" in e for e in report.errors)

    def test_invalid_baseline_is_refused(self, bench_doc):
        report = gate_against_baseline(bench_doc, {"schema": "junk"})
        assert not report.ok
        assert any("baseline document invalid" in e for e in report.errors)

    def test_effective_cycles_are_gated(self, bench_doc):
        # tilecache.effective_gpu_cycles is a deterministic metric: a
        # baseline that spent fewer effective cycles fails the gate.
        better = copy.deepcopy(bench_doc)
        better["scenes"]["crazy"]["tilecache"]["effective_gpu_cycles"] *= 0.9
        report = gate_against_baseline(bench_doc, better)
        assert not report.ok
        assert any(
            c.metric == "tilecache.effective_gpu_cycles" and c.regressed
            for c in report.comparisons
        )

    def test_v4_baseline_gates_clean_against_cache_off_v5(self, bench_doc):
        # A stored pre-tile-cache baseline is implicitly cache-off: it
        # must keep gating against a cache-off v5 run of the same tree.
        v4 = copy.deepcopy(bench_doc)
        v4["version"] = 4
        del v4["config"]["tile_cache"]
        for scene in v4["scenes"].values():
            del scene["tilecache"]
        report = gate_against_baseline(bench_doc, v4)
        assert report.ok, report.render()

    def test_v4_baseline_refuses_cache_on_v5(self, bench_doc):
        # ... but never against a cache-on run: the documents were
        # measured under different configurations.
        v4 = copy.deepcopy(bench_doc)
        v4["version"] = 4
        del v4["config"]["tile_cache"]
        for scene in v4["scenes"].values():
            del scene["tilecache"]
        cached = copy.deepcopy(bench_doc)
        cached["config"]["tile_cache"] = True
        report = gate_against_baseline(cached, v4)
        assert not report.ok
        assert any("config.tile_cache" in e for e in report.errors)

    def test_cache_on_vs_cache_off_refused_both_ways(self, bench_doc):
        cached = copy.deepcopy(bench_doc)
        cached["config"]["tile_cache"] = True
        for first, second in ((bench_doc, cached), (cached, bench_doc)):
            report = gate_against_baseline(first, second)
            assert not report.ok
            assert any("config.tile_cache" in e for e in report.errors)


class TestGateCli:
    def test_unchanged_tree_exits_zero(self, tmp_path, baseline_file, capsys):
        assert run_gate(tmp_path, baseline_file) == 0
        out = capsys.readouterr().out
        assert "gate: ok" in out

    def test_injected_energy_bloat_exits_nonzero(self, tmp_path, bench_doc,
                                                 capsys):
        # A baseline with *less* energy than the tree produces is what a
        # real energy regression looks like to the gate.
        cheap = copy.deepcopy(bench_doc)
        scene = cheap["scenes"]["crazy"]
        for block in (scene["energy"], scene["energy"]["gpu"],
                      scene["energy"]["rbcd"]):
            for key, value in block.items():
                if isinstance(value, float):
                    block[key] = value * 0.5
        scene["counters"]["energy.total_j"] *= 0.5
        path = tmp_path / "cheap.json"
        path.write_text(json.dumps(cheap))

        assert run_gate(tmp_path, path) == 1
        captured = capsys.readouterr()
        assert "gate: FAILED" in captured.err
        assert "REGRESSION" in captured.out
        assert "energy.total_j" in captured.out

    def test_injected_cycle_slowdown_exits_nonzero(self, tmp_path, bench_doc,
                                                   capsys):
        fast = copy.deepcopy(bench_doc)
        scene = fast["scenes"]["crazy"]
        scene["totals"]["gpu_cycles"] *= 0.9
        for record in scene["stages"].values():
            record["cycles"] *= 0.9
        path = tmp_path / "fast.json"
        path.write_text(json.dumps(fast))

        assert run_gate(tmp_path, path) == 1
        assert "totals.gpu_cycles" in capsys.readouterr().out

    def test_without_gate_flag_regressions_are_informational(
            self, tmp_path, bench_doc, capsys):
        fast = copy.deepcopy(bench_doc)
        fast["scenes"]["crazy"]["totals"]["gpu_cycles"] *= 0.9
        path = tmp_path / "fast.json"
        path.write_text(json.dumps(fast))
        code = main([
            "--scenes", "crazy", "--width", "64", "--height", "32",
            "--frames", "1", "--detail", "1", "--runs", "2",
            "--output", str(tmp_path / "fresh.json"),
            "--baseline", str(path), "--wall-tol", "1000.0",
        ])
        assert code == 0
        assert "informational" in capsys.readouterr().out

    def test_config_mismatch_fails_gate(self, tmp_path, bench_doc, capsys):
        other = copy.deepcopy(bench_doc)
        other["config"]["width"] = 999
        path = tmp_path / "other.json"
        path.write_text(json.dumps(other))
        assert run_gate(tmp_path, path) == 1
        assert "not comparable" in capsys.readouterr().out

    def test_unreadable_baseline_fails(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert run_gate(tmp_path, path) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_committed_quick_baseline_gates_clean(self, tmp_path, capsys):
        """The acceptance command of this subsystem: the committed
        quick baseline must pass against the current tree."""
        from pathlib import Path

        baseline = (Path(__file__).resolve().parents[2]
                    / "benchmarks" / "baselines" / "BENCH_quick.json")
        assert baseline.exists(), "committed quick baseline missing"
        code = main([
            "--quick", "--runs", "3",
            "--output", str(tmp_path / "fresh.json"),
            "--baseline", str(baseline), "--gate",
            "--wall-tol", "1000.0",
        ])
        assert code == 0, capsys.readouterr().out


class TestTileProfileComparability:
    def test_profiled_vs_unprofiled_refused_both_ways(self, bench_doc):
        profiled = copy.deepcopy(bench_doc)
        profiled["config"]["tile_profile"] = True
        for first, second in ((bench_doc, profiled), (profiled, bench_doc)):
            report = gate_against_baseline(first, second)
            assert not report.ok
            assert any("config.tile_profile" in e for e in report.errors)

    def test_profile_off_vs_off_gates_clean(self, bench_doc):
        # Both sides off (the v6 default) is the normal CI path and
        # must stay comparable — including against stored v5 baselines
        # that predate the key entirely.
        v5 = copy.deepcopy(bench_doc)
        v5["version"] = 5
        del v5["config"]["tile_profile"]
        for scene in v5["scenes"].values():
            del scene["tile_profile"]
        report = gate_against_baseline(bench_doc, v5)
        assert report.ok, report.render()


class TestExplainOnFailure:
    def consistently_faster_baseline(self, bench_doc, tmp_path, factor=0.9):
        """A baseline whose rasterizer was cheaper, with every counter
        identity intact so the attribution engine's cross-checks pass."""
        fast = copy.deepcopy(bench_doc)
        scene = fast["scenes"]["crazy"]
        delta = scene["counters"]["gpu.raster.raster_pipeline_cycles"] * (1 - factor)
        for key in ("gpu.raster.raster_cycles",
                    "gpu.raster.raster_pipeline_cycles", "gpu.gpu_cycles"):
            scene["counters"][key] -= delta
        scene["totals"]["gpu_cycles"] -= delta
        scene["tilecache"]["effective_gpu_cycles"] -= delta
        path = tmp_path / "fast.json"
        path.write_text(json.dumps(fast))
        return path

    def test_gate_failure_emits_greppable_line(self, tmp_path, bench_doc,
                                               capsys):
        path = self.consistently_faster_baseline(bench_doc, tmp_path)
        assert run_gate(tmp_path, path) == 1
        err = capsys.readouterr().err
        line = next(l for l in err.splitlines() if l.startswith("GATE-FAIL"))
        assert "scene=crazy" in line
        assert "metric=" in line and "ratio=" in line

    def test_explain_names_the_regressed_stage(self, tmp_path, bench_doc,
                                               capsys):
        """The ISSUE acceptance: on a forced regression, --explain must
        attribute the gated delta to the right subtree (the injected
        slowdown lives entirely in the raster pipeline)."""
        path = self.consistently_faster_baseline(bench_doc, tmp_path)
        json_path = tmp_path / "attribution.json"
        assert run_gate(
            tmp_path, path, "--explain", "--explain-json", str(json_path)
        ) == 1
        err = capsys.readouterr().err
        assert "explain" in err
        assert "raster" in err
        # The machine artifact CI uploads on failure.
        data = json.loads(json_path.read_text())
        assert data["schema"] == "rbcd-attribution"
        assert data["ranked_causes"]
        top_paths = [c["path"] for c in data["ranked_causes"][:3]]
        assert any("raster" in p for p in top_paths), top_paths

    def test_explain_requires_baseline_flag(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--explain", "--output", str(tmp_path / "x.json")])
        assert "--baseline" in capsys.readouterr().err
