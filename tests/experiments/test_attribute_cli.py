"""CLI tests for ``python -m repro.experiments.attribute``."""

import copy
import json

import pytest

from repro.experiments.attribute import main, write_heatmaps
from repro.experiments.bench import run_bench
from repro.observability.attribution import attribute_documents
from repro.observability.tileprofile import GRID_NAMES


@pytest.fixture(scope="module")
def doc():
    return run_bench(
        ["crazy"], width=64, height=32, frames=1, detail=1,
        tile_profile=True,
    )


@pytest.fixture(scope="module")
def doc_path(doc, tmp_path_factory):
    path = tmp_path_factory.mktemp("attribute") / "base.json"
    path.write_text(json.dumps(doc))
    return path


@pytest.fixture(scope="module")
def other_path(doc, tmp_path_factory):
    """A consistently perturbed copy: the rasterizer got 100 cycles slower."""
    other = copy.deepcopy(doc)
    entry = other["scenes"]["crazy"]
    for key in ("gpu.raster.raster_cycles",
                "gpu.raster.raster_pipeline_cycles", "gpu.gpu_cycles"):
        entry["counters"][key] += 100.0
    entry["totals"]["gpu_cycles"] += 100.0
    entry["tilecache"]["effective_gpu_cycles"] += 100.0
    path = tmp_path_factory.mktemp("attribute") / "other.json"
    path.write_text(json.dumps(other))
    return path


class TestExitCodes:
    def test_zero_on_clean_attribution(self, doc_path, other_path, capsys):
        assert main([str(doc_path), str(other_path)]) == 0
        out = capsys.readouterr().out
        assert "raster" in out

    def test_check_zero_passes_on_self_diff(self, doc_path, capsys):
        assert main([str(doc_path), str(doc_path), "--check-zero"]) == 0
        assert "documents agree" in capsys.readouterr().out

    def test_check_zero_fails_on_differing_docs(
        self, doc_path, other_path, capsys
    ):
        assert main([str(doc_path), str(other_path), "--check-zero"]) == 1
        assert "documents differ" in capsys.readouterr().err

    def test_missing_file_exits_two(self, doc_path, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main([str(doc_path), str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, doc_path, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([str(bad), str(doc_path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_structurally_invalid_document_exits_two(
        self, doc_path, tmp_path, capsys
    ):
        bad = tmp_path / "empty.json"
        bad.write_text("{}")
        assert main([str(bad), str(doc_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_failed_cross_check_exits_two(
        self, doc, doc_path, tmp_path, capsys
    ):
        broken = copy.deepcopy(doc)
        broken["scenes"]["crazy"]["totals"]["gpu_cycles"] += 1.0
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(broken))
        assert main([str(doc_path), str(path)]) == 2
        assert "cross-check failed" in capsys.readouterr().err


class TestFormats:
    def test_json_format_round_trips(self, doc_path, other_path, capsys):
        assert main(
            [str(doc_path), str(other_path), "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "rbcd-attribution"
        assert data["ranked_causes"]

    def test_csv_format_has_header(self, doc_path, other_path, capsys):
        assert main(
            [str(doc_path), str(other_path), "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("scene,tree,path")
        assert len(lines) > 1

    def test_ascii_heatmap_prints_grid(self, doc_path, other_path, capsys):
        assert main(
            [str(doc_path), str(other_path), "--heatmap"]
        ) == 0
        assert "cycles delta" in capsys.readouterr().out


class TestHeatmapDir:
    def test_writes_one_csv_per_scene_grid(
        self, doc_path, other_path, tmp_path, capsys
    ):
        out = tmp_path / "heat"
        assert main(
            [str(doc_path), str(other_path), "--heatmap-dir", str(out)]
        ) == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == sorted(f"crazy_{g}.csv" for g in GRID_NAMES)
        assert f"wrote {len(GRID_NAMES)}" in capsys.readouterr().err
        # Each CSV is a tiles_y x tiles_x numeric grid.
        rows = out.joinpath("crazy_cycles.csv").read_text().splitlines()
        assert len(rows) == 2  # 64x32 screen -> 4x2 tiles
        assert all(len(row.split(",")) == 4 for row in rows)

    def test_write_heatmaps_skips_unprofiled_scenes(self, doc, tmp_path):
        bare = copy.deepcopy(doc)
        bare["scenes"]["crazy"]["tile_profile"] = {"enabled": False}
        report = attribute_documents(bare, bare)
        assert write_heatmaps(report, tmp_path / "none") == []
