"""Smoke coverage for the figure builders and ASCII table renderers,
plus assertions pinned to the committed ``BENCH_rbcd.json`` document.

The figure functions are pure transforms of :class:`WorkloadRun`; one
tiny two-scene run is enough to exercise every series/column code path
without re-testing the simulator (``test_systems.py`` owns the
headline shapes).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.bench import validate_bench_document
from repro.experiments.figures import (
    GEOMEAN,
    OverflowSweepResult,
    fig8a_speedup_broad,
    fig8b_energy_broad,
    fig8c_speedup_gjk,
    fig8d_energy_gjk,
    fig9a_normalized_time,
    fig9b_normalized_energy,
    fig10_time_breakdown,
    fig11_activity_factors,
    table3_overflow,
)
from repro.experiments.systems import run_workload
from repro.experiments.tables import render_comparison, render_figure
from repro.gpu.config import GPUConfig
from repro.observability.attribution import (
    attribute_documents,
    cross_check_document,
)
from repro.scenes.benchmarks import make_cap, make_crazy

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DOC = REPO_ROOT / "BENCH_rbcd.json"

FIGURE_BUILDERS = [
    fig8a_speedup_broad,
    fig8b_energy_broad,
    fig8c_speedup_gjk,
    fig8d_energy_gjk,
    fig9a_normalized_time,
    fig9b_normalized_energy,
    fig10_time_breakdown,
    fig11_activity_factors,
]


@pytest.fixture(scope="module")
def runs():
    config = GPUConfig().with_screen(64, 32)
    return [
        run_workload(make_cap(detail=1), config, frames=1),
        run_workload(make_crazy(detail=1), config, frames=1),
    ]


class TestFigureSmoke:
    @pytest.mark.parametrize(
        "builder", FIGURE_BUILDERS, ids=lambda b: b.__name__
    )
    def test_builder_produces_consistent_figure(self, runs, builder):
        data = builder(runs)
        assert data.figure and data.title
        assert data.columns[-1] == GEOMEAN
        assert set(data.columns[:-1]) == {"cap", "crazy"}
        assert data.series
        for label, values in data.series.items():
            assert set(values) == set(data.columns), label
            assert all(isinstance(v, float) for v in values.values())

    def test_values_are_finite_and_positive(self, runs):
        data = fig8a_speedup_broad(runs)
        for values in data.series.values():
            for value in values.values():
                assert value > 0.0

    def test_table3_from_sweep_results(self):
        sweep = OverflowSweepResult(
            alias="cap",
            m_values=(4, 8),
            overflow_rate={4: 0.25, 8: 0.0},
            pairs={4: [set()], 8: [{(1, 2)}]},
        )
        data = table3_overflow([sweep])
        assert "cap" in data.columns
        assert data.series


class TestTableRenderers:
    def test_render_figure_smoke(self, runs):
        text = render_figure(fig8a_speedup_broad(runs))
        assert "cap" in text and "crazy" in text
        assert GEOMEAN in text
        # Every series label appears as a row.
        assert len(text.splitlines()) >= 3

    def test_render_comparison_includes_paper_reference(self, runs):
        data = fig8a_speedup_broad(runs)
        text = render_comparison(data)
        assert GEOMEAN in text
        if data.paper_reference:
            assert "paper" in text.lower()


class TestCommittedBenchDocument:
    """The repo-root BENCH_rbcd.json is a contract artifact: CI checks
    it, the README points at it, and attribution self-diffs it."""

    @pytest.fixture(scope="class")
    def doc(self):
        return json.loads(BENCH_DOC.read_text())

    def test_document_validates(self, doc):
        validate_bench_document(doc)  # raises on any problem

    def test_counter_algebra_cross_checks_pass(self, doc):
        assert cross_check_document(doc, "BENCH_rbcd.json") == []

    def test_self_attribution_is_all_zero(self, doc):
        report = attribute_documents(doc, doc)
        assert report.ok
        assert report.all_zero

    def test_covers_all_quick_scenes(self, doc):
        assert set(doc["scenes"]) == {"cap", "crazy", "sleepy", "temple"}
        for entry in doc["scenes"].values():
            assert entry["totals"]["gpu_cycles"] > 0
            assert entry["energy"]["total_j"] > 0
