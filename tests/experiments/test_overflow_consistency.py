"""The M-sweep re-run path must match the pipeline's in-line RBCD run.

``overflow_sweep`` re-feeds saved fragment streams through fresh RBCD
units; if that path ever diverged from what the pipeline's own unit
computed, Table 3 would be measuring a different machine.
"""

import pytest

from repro.experiments.overflow import rerun_unit
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import make_sleepy

CFG = GPUConfig().with_screen(200, 120)


@pytest.fixture(scope="module")
def rendered_frames():
    workload = make_sleepy(detail=1)
    gpu = GPU(CFG, rbcd_enabled=True)
    results = []
    for t in workload.times(3):
        frame = workload.scene.frame_at(float(t), CFG)
        results.append(gpu.render_frame(frame, keep_fragments=True))
    return results


class TestRerunMatchesPipeline:
    def test_same_insertions(self, rendered_frames):
        for result in rendered_frames:
            unit = rerun_unit(result.fragments, CFG)
            assert unit.insertions == result.stats.zeb_insertions

    def test_same_overflow_events(self, rendered_frames):
        for result in rendered_frames:
            unit = rerun_unit(result.fragments, CFG)
            assert unit.overflow_events == result.stats.zeb_overflow_events

    def test_same_pairs(self, rendered_frames):
        for result in rendered_frames:
            unit = rerun_unit(result.fragments, CFG)
            assert unit.report.as_sorted_pairs() == (
                result.collisions.as_sorted_pairs()
            )

    def test_same_pair_records(self, rendered_frames):
        for result in rendered_frames:
            unit = rerun_unit(result.fragments, CFG)
            assert (
                unit.report.pair_records_written
                == result.stats.collision_pairs_emitted
            )

    def test_same_analysis_volume(self, rendered_frames):
        for result in rendered_frames:
            unit = rerun_unit(result.fragments, CFG)
            assert unit.lists_analyzed == result.stats.zeb_lists_analyzed
            assert unit.elements_read == result.stats.overlap_elements_read
