"""Bench harness tests: document generation, schema validation, CLI."""

import json

import pytest

from repro.experiments.bench import (
    REQUIRED_STAGES,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    main,
    run_bench,
    stage_summary,
    validate_bench_document,
)
from repro.observability.tracer import Tracer

from tests.observability.test_tracer import FakeClock


@pytest.fixture(scope="module")
def tiny_doc(tmp_path_factory):
    """One cheap traced run shared by every assertion in this module."""
    trace_dir = tmp_path_factory.mktemp("traces")
    return run_bench(
        ["crazy"], width=64, height=32, frames=1, detail=1,
        quick=True, trace_dir=trace_dir,
    ), trace_dir


class TestStageSummary:
    def test_medians_totals_cycles(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for wall, cycles in ((1.0, 10.0), (3.0, 20.0), (2.0, 30.0)):
            with tracer.span("stage") as span:
                clock.tick(wall)
            span.cycles = cycles
        summary = stage_summary(tracer)
        assert summary == {
            "stage": {
                "count": 3,
                "wall_ms_median": 2000.0,
                "wall_ms_total": 6000.0,
                "cycles": 60.0,
            }
        }


class TestRunBench:
    def test_document_is_schema_valid(self, tiny_doc):
        doc, _ = tiny_doc
        validate_bench_document(doc)  # must not raise
        assert doc["schema"] == SCHEMA_NAME
        assert doc["version"] == SCHEMA_VERSION
        assert set(doc["scenes"]) == {"crazy"}

    def test_scene_entry_contents(self, tiny_doc):
        doc, _ = tiny_doc
        entry = doc["scenes"]["crazy"]
        for stage in REQUIRED_STAGES:
            assert stage in entry["stages"]
        assert entry["stages"]["frame"]["count"] == 1
        assert entry["totals"]["fragments_produced"] > 0
        assert entry["totals"]["gpu_cycles"] > 0
        assert entry["throughput"]["wall_s"] > 0
        assert entry["throughput"]["fragments_per_s"] > 0
        # Counters carry the merged registry namespaces.
        assert entry["counters"]["gpu.frames"] == 1
        assert any(name.startswith("gpu.rbcd.") for name in entry["counters"])

    def test_trace_files_written(self, tiny_doc):
        _, trace_dir = tiny_doc
        ndjson = trace_dir / "trace_crazy.ndjson"
        chrome = trace_dir / "trace_crazy.json"
        assert ndjson.exists() and chrome.exists()
        first = json.loads(ndjson.read_text().splitlines()[0])
        assert first["name"] == "frame"
        chrome_doc = json.loads(chrome.read_text())
        assert chrome_doc["traceEvents"][0]["ph"] == "M"

    def test_document_round_trips_through_json(self, tiny_doc):
        doc, _ = tiny_doc
        validate_bench_document(json.loads(json.dumps(doc)))


class TestValidator:
    @staticmethod
    def valid_doc():
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "config": {"width": 64, "height": 32, "frames": 1,
                       "detail": 1, "quick": True},
            "scenes": {
                "crazy": {
                    "frames": 1,
                    "stages": {
                        stage: {"count": 1, "wall_ms_median": 1.0,
                                "wall_ms_total": 1.0, "cycles": 10.0}
                        for stage in REQUIRED_STAGES
                    },
                    "totals": {"fragments_produced": 5,
                               "pair_records_written": 1,
                               "gpu_cycles": 100.0, "colliding_pairs": 1},
                    "throughput": {"wall_s": 0.1, "fragments_per_s": 50.0,
                                   "pairs_per_s": 10.0},
                    "counters": {"gpu.frames": 1},
                }
            },
        }

    def test_accepts_valid(self):
        validate_bench_document(self.valid_doc())

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_bench_document([1, 2])

    @pytest.mark.parametrize("mutate,needle", [
        (lambda d: d.update(schema="other"), "schema"),
        (lambda d: d.update(version=99), "version"),
        (lambda d: d.pop("config"), "config"),
        (lambda d: d["config"].update(width=0), "config.width"),
        (lambda d: d["config"].update(quick="yes"), "config.quick"),
        (lambda d: d.update(scenes={}), "scenes"),
        (lambda d: d["scenes"]["crazy"]["stages"].pop("rbcd"), "rbcd"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(count=0),
         "count"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(
            wall_ms_median=-1.0), "wall_ms_median"),
        (lambda d: d["scenes"]["crazy"]["totals"].update(
            fragments_produced=1.5), "fragments_produced"),
        (lambda d: d["scenes"]["crazy"].pop("throughput"), "throughput"),
        (lambda d: d["scenes"]["crazy"].update(counters={}), "counters"),
        (lambda d: d["scenes"]["crazy"]["counters"].update(bad="x"),
         "counters.bad"),
    ])
    def test_rejects_each_mutation(self, mutate, needle):
        doc = self.valid_doc()
        mutate(doc)
        with pytest.raises(ValueError, match=needle):
            validate_bench_document(doc)

    def test_error_lists_all_problems(self):
        doc = self.valid_doc()
        doc["config"]["width"] = 0
        doc["scenes"]["crazy"]["frames"] = 0
        with pytest.raises(ValueError) as excinfo:
            validate_bench_document(doc)
        message = str(excinfo.value)
        assert "config.width" in message and "frames" in message


class TestCli:
    def test_check_mode_accepts_valid_file(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(TestValidator.valid_doc()))
        assert main(["--check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_mode_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "wrong"}))
        assert main(["--check", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_mode_rejects_missing_file(self, tmp_path):
        assert main(["--check", str(tmp_path / "absent.json")]) == 1

    def test_end_to_end_writes_valid_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_rbcd.json"
        code = main([
            "--scenes", "crazy", "--width", "64", "--height", "32",
            "--frames", "1", "--detail", "1", "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        validate_bench_document(doc)
        assert main(["--check", str(out)]) == 0
