"""Bench harness tests: document generation, schema validation, CLI."""

import json

import pytest

from repro.experiments.bench import (
    REQUIRED_STAGES,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    aggregate_stage_runs,
    main,
    run_bench,
    stage_summary,
    validate_bench_document,
)
from repro.observability.tracer import Tracer

from tests.observability.test_tracer import FakeClock


@pytest.fixture(scope="module")
def tiny_doc(tmp_path_factory):
    """One cheap traced 2-run bench shared by every assertion here."""
    trace_dir = tmp_path_factory.mktemp("traces")
    return run_bench(
        ["crazy"], width=64, height=32, frames=1, detail=1,
        quick=True, runs=2, trace_dir=trace_dir,
    ), trace_dir


class TestStageSummary:
    def test_counts_totals_cycles(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for wall, cycles in ((1.0, 10.0), (3.0, 20.0), (2.0, 30.0)):
            with tracer.span("stage") as span:
                clock.tick(wall)
            span.cycles = cycles
        summary = stage_summary(tracer)
        assert summary == {
            "stage": {
                "count": 3,
                "wall_ms_total": 6000.0,
                "cycles": 60.0,
            }
        }


class TestAggregateStageRuns:
    @staticmethod
    def run_record(wall, count=2, cycles=50.0):
        return {"stage": {"count": count, "cycles": cycles,
                          "wall_ms_total": wall}}

    def test_aggregates_samples_across_runs(self):
        runs = [self.run_record(w) for w in (3.0, 1.0, 2.0)]
        stages = aggregate_stage_runs(runs)
        record = stages["stage"]
        assert record["wall_ms_runs"] == [3.0, 1.0, 2.0]
        assert record["wall_ms_median"] == 2.0
        assert record["wall_ms_min"] == 1.0
        assert record["wall_ms_max"] == 3.0
        assert record["wall_ms_total"] == 6.0
        lo, hi = record["wall_ms_ci95"]
        assert 1.0 <= lo <= hi <= 3.0
        assert record["count"] == 2
        assert record["cycles"] == 50.0

    def test_rejects_cycle_drift_across_runs(self):
        runs = [self.run_record(1.0), self.run_record(1.0, cycles=51.0)]
        with pytest.raises(RuntimeError, match="nondeterministic"):
            aggregate_stage_runs(runs)

    def test_rejects_count_drift_across_runs(self):
        runs = [self.run_record(1.0), self.run_record(1.0, count=3)]
        with pytest.raises(RuntimeError, match="nondeterministic"):
            aggregate_stage_runs(runs)

    def test_rejects_missing_and_extra_stages(self):
        with pytest.raises(RuntimeError, match="missing"):
            aggregate_stage_runs([self.run_record(1.0), {}])
        extra = self.run_record(1.0)
        extra["ghost"] = {"count": 1, "cycles": 0.0, "wall_ms_total": 1.0}
        with pytest.raises(RuntimeError, match="ghost"):
            aggregate_stage_runs([self.run_record(1.0), extra])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_stage_runs([])


class TestRunBench:
    def test_document_is_schema_valid(self, tiny_doc):
        doc, _ = tiny_doc
        validate_bench_document(doc)  # must not raise
        assert doc["schema"] == SCHEMA_NAME
        assert doc["version"] == SCHEMA_VERSION
        assert set(doc["scenes"]) == {"crazy"}
        assert doc["config"]["runs"] == 2
        assert doc["config"]["profile"] is False
        # v4: the resolved kernel backend + broad phase are recorded.
        from repro.gpu.config import GPUConfig

        assert doc["config"]["kernel_backend"] == GPUConfig().kernel_backend
        assert doc["config"]["broad_phase"] == "lbvh"

    def test_explicit_kernel_backend_recorded(self):
        doc = run_bench(
            ["crazy"], width=64, height=32, frames=1, detail=1,
            kernel_backend="reference", broad_phase="bruteforce",
        )
        validate_bench_document(doc)
        assert doc["config"]["kernel_backend"] == "reference"
        assert doc["config"]["broad_phase"] == "bruteforce"

    def test_unknown_backend_or_broad_phase_fail_fast(self):
        with pytest.raises(ValueError, match="broad_phase"):
            run_bench(["crazy"], 64, 32, 1, 1, broad_phase="bogus")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            run_bench(["crazy"], 64, 32, 1, 1, kernel_backend="bogus")

    def test_scene_entry_contents(self, tiny_doc):
        doc, _ = tiny_doc
        entry = doc["scenes"]["crazy"]
        for stage in REQUIRED_STAGES:
            assert stage in entry["stages"]
        frame = entry["stages"]["frame"]
        assert frame["count"] == 1
        assert len(frame["wall_ms_runs"]) == 2
        assert frame["wall_ms_min"] <= frame["wall_ms_median"] <= frame["wall_ms_max"]
        lo, hi = frame["wall_ms_ci95"]
        assert lo <= hi
        assert entry["totals"]["fragments_produced"] > 0
        assert entry["totals"]["gpu_cycles"] > 0
        assert entry["throughput"]["wall_s"] > 0
        assert entry["throughput"]["fragments_per_s"] > 0
        # Counters carry the merged registry namespaces.
        assert entry["counters"]["gpu.frames"] == 1
        assert any(name.startswith("gpu.rbcd.") for name in entry["counters"])

    def test_energy_section(self, tiny_doc):
        doc, _ = tiny_doc
        entry = doc["scenes"]["crazy"]
        energy = entry["energy"]
        assert energy["total_j"] > 0
        assert energy["gpu"]["total_j"] > 0
        assert energy["rbcd"]["total_j"] > 0
        assert energy["edp_js"] == pytest.approx(
            energy["total_j"] * energy["delay_s"]
        )
        assert energy["total_j"] == pytest.approx(
            energy["gpu"]["total_j"] + energy["rbcd"]["total_j"]
        )
        # The merged counters expose the same numbers by name.
        assert entry["counters"]["energy.total_j"] == pytest.approx(
            energy["total_j"]
        )
        assert entry["counters"]["energy.gpu.fragment_j"] == pytest.approx(
            energy["gpu"]["fragment_j"]
        )

    def test_tile_cache_defaults_off_and_recorded(self, tiny_doc):
        doc, _ = tiny_doc
        entry = doc["scenes"]["crazy"]
        assert doc["config"]["tile_cache"] is False
        tilecache = entry["tilecache"]
        assert tilecache["enabled"] is False
        assert tilecache["lookups"] == 0
        assert tilecache["per_frame_hits"] == []
        # With the cache off the effective totals ARE the totals.
        assert tilecache["effective_gpu_cycles"] == entry["totals"]["gpu_cycles"]
        assert tilecache["effective_total_j"] == pytest.approx(
            entry["energy"]["total_j"]
        )
        assert not any(
            name.startswith("gpu.tilecache.") for name in entry["counters"]
        )

    def test_tile_cache_enabled_records_hits(self):
        # cap keeps four static collisionable props in view, so a
        # two-frame run is guaranteed cross-frame signature hits.
        doc = run_bench(
            ["cap"], width=160, height=96, frames=2, detail=1,
            runs=2, tile_cache=True,
        )
        validate_bench_document(doc)
        assert doc["config"]["tile_cache"] is True
        entry = doc["scenes"]["cap"]
        tilecache = entry["tilecache"]
        assert tilecache["enabled"] is True
        assert tilecache["hits"] > 0
        assert tilecache["lookups"] == tilecache["hits"] + tilecache["misses"]
        assert tilecache["collisions"] == 0
        assert len(tilecache["per_frame_hits"]) == 2
        assert tilecache["per_frame_hits"][0] == 0  # cold first frame
        assert sum(tilecache["per_frame_hits"]) == tilecache["hits"]
        # The modelled savings beat the signature overhead: cache-on
        # costs strictly fewer effective cycles and joules.
        assert tilecache["cycles_saved"] > tilecache["signature_cycles"]
        assert tilecache["effective_gpu_cycles"] < entry["totals"]["gpu_cycles"]
        assert tilecache["effective_total_j"] < entry["energy"]["total_j"]
        # The merged counters expose the gpu.tilecache.* namespace.
        assert entry["counters"]["gpu.tilecache.hits"] == tilecache["hits"]

    def test_tile_profile_defaults_off_and_recorded(self, tiny_doc):
        doc, _ = tiny_doc
        assert doc["config"]["tile_profile"] is False
        # Disabled runs carry the tiny sentinel block only: no grids.
        assert doc["scenes"]["crazy"]["tile_profile"] == {"enabled": False}

    def test_tile_profile_enabled_records_grids(self):
        doc = run_bench(
            ["crazy"], width=64, height=32, frames=1, detail=1,
            runs=2, tile_profile=True,
        )
        validate_bench_document(doc)
        assert doc["config"]["tile_profile"] is True
        entry = doc["scenes"]["crazy"]
        profile = entry["tile_profile"]
        assert profile["enabled"] is True
        tile_count = profile["tiles_x"] * profile["tiles_y"]
        for name in ("cycles", "energy_j", "activity", "hits", "lookups"):
            assert len(profile[name]) == tile_count
        # The grids are a spatial decomposition of frame totals: tile
        # cycles sum to the rbcd.tile stage, tile activity to the ZEB
        # insertion counter, and dynamic tile energy to the rbcd
        # component joules minus static leakage.
        assert sum(profile["cycles"]) == pytest.approx(
            entry["stages"]["rbcd.tile"]["cycles"]
        )
        assert sum(profile["activity"]) == pytest.approx(
            entry["counters"]["gpu.rbcd.zeb_insertions"]
        )
        rbcd_j = entry["energy"]["rbcd"]
        assert sum(profile["energy_j"]) == pytest.approx(
            rbcd_j["insertion_j"] + rbcd_j["overlap_j"] + rbcd_j["output_j"]
        )
        # Everything the v5 schema had is untouched by profiling: the
        # profiler is strictly observational.
        bare = run_bench(
            ["crazy"], width=64, height=32, frames=1, detail=1, runs=1,
        )
        assert bare["scenes"]["crazy"]["totals"] == entry["totals"]
        assert bare["scenes"]["crazy"]["counters"] == entry["counters"]

    def test_trace_files_written(self, tiny_doc):
        _, trace_dir = tiny_doc
        ndjson = trace_dir / "trace_crazy.ndjson"
        chrome = trace_dir / "trace_crazy.json"
        assert ndjson.exists() and chrome.exists()
        first = json.loads(ndjson.read_text().splitlines()[0])
        assert first["name"] == "frame"
        chrome_doc = json.loads(chrome.read_text())
        assert chrome_doc["traceEvents"][0]["ph"] == "M"

    def test_document_round_trips_through_json(self, tiny_doc):
        doc, _ = tiny_doc
        validate_bench_document(json.loads(json.dumps(doc)))


def valid_doc():
    """A minimal schema-valid v6 document for validator tests."""
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": {"width": 64, "height": 32, "frames": 1,
                   "detail": 1, "quick": True, "runs": 2, "profile": False,
                   "kernel_backend": "vectorized", "broad_phase": "lbvh",
                   "tile_cache": False, "tile_profile": False},
        "stats": {"bootstrap_resamples": 100, "confidence": 0.95},
        "scenes": {
            "crazy": {
                "frames": 1,
                "runs": 2,
                "stages": {
                    stage: {"count": 1, "cycles": 10.0,
                            "wall_ms_median": 1.0, "wall_ms_total": 2.0,
                            "wall_ms_min": 0.9, "wall_ms_max": 1.1,
                            "wall_ms_ci95": [0.9, 1.1],
                            "wall_ms_runs": [0.9, 1.1]}
                    for stage in REQUIRED_STAGES
                },
                "totals": {"fragments_produced": 5,
                           "pair_records_written": 1,
                           "gpu_cycles": 100.0, "colliding_pairs": 1},
                "throughput": {"wall_s": 0.1, "fragments_per_s": 50.0,
                               "pairs_per_s": 10.0},
                "counters": {"gpu.frames": 1, "energy.total_j": 1e-3},
                "energy": {
                    "gpu": {"geometry_j": 1e-4, "raster_j": 1e-4,
                            "fragment_j": 5e-4, "memory_j": 1e-4,
                            "static_j": 1e-4, "total_j": 9e-4},
                    "rbcd": {"insertion_j": 4e-5, "overlap_j": 4e-5,
                             "output_j": 1e-5, "static_j": 1e-5,
                             "total_j": 1e-4},
                    "total_j": 1e-3,
                    "delay_s": 1e-3,
                    "edp_js": 1e-6,
                },
                "cases": {"disjoint": 3, "crossing": 1, "nested": 0,
                          "self_filtered": 0, "evidence_records": 1},
                "tilecache": {"enabled": False, "lookups": 0, "hits": 0,
                              "misses": 0, "collisions": 0, "stores": 0,
                              "hit_rate": 0.0, "cycles_saved": 0.0,
                              "signature_cycles": 0.0, "joules_saved": 0.0,
                              "signature_j": 0.0,
                              "effective_gpu_cycles": 100.0,
                              "effective_total_j": 1e-3,
                              "per_frame_hits": [],
                              "per_frame_lookups": []},
                "tile_profile": {"enabled": False},
            }
        },
    }


def valid_doc_profiled():
    """The same document with an enabled 2x1 tile_profile block."""
    doc = valid_doc()
    doc["config"]["tile_profile"] = True
    doc["scenes"]["crazy"]["tile_profile"] = {
        "enabled": True, "tiles_x": 2, "tiles_y": 1, "frames": 1,
        "cycles": [8.0, 2.0], "energy_j": [1e-5, 2e-6],
        "activity": [5.0, 1.0], "hits": [0.0, 0.0], "lookups": [1.0, 1.0],
    }
    return doc


def valid_doc_v5():
    """The same document as a pre-tile-profile schema v5 baseline."""
    doc = valid_doc()
    doc["version"] = 5
    del doc["config"]["tile_profile"]
    del doc["scenes"]["crazy"]["tile_profile"]
    return doc


def valid_doc_v4():
    """The same document as a pre-tile-cache schema v4 baseline."""
    doc = valid_doc_v5()
    doc["version"] = 4
    del doc["config"]["tile_cache"]
    del doc["scenes"]["crazy"]["tilecache"]
    return doc


class TestValidator:
    def test_accepts_valid(self):
        validate_bench_document(valid_doc())

    def test_accepts_v4_document(self):
        # v5 is additive: stored v4 baselines must stay valid without
        # the tile_cache config key or the tilecache scene block.
        validate_bench_document(valid_doc_v4())

    def test_accepts_v5_document(self):
        # v6 is additive: stored v5 baselines must stay valid without
        # the tile_profile config key or the tile_profile scene block.
        validate_bench_document(valid_doc_v5())

    def test_accepts_enabled_tile_profile(self):
        validate_bench_document(valid_doc_profiled())

    @pytest.mark.parametrize("mutate,needle", [
        (lambda d: d["scenes"]["crazy"]["tile_profile"].update(tiles_x=0),
         "tile_profile.tiles_x"),
        (lambda d: d["scenes"]["crazy"]["tile_profile"].pop("frames"),
         "tile_profile.frames"),
        (lambda d: d["scenes"]["crazy"]["tile_profile"].update(
            cycles=[1.0]), "tile_profile.cycles"),
        (lambda d: d["scenes"]["crazy"]["tile_profile"].update(
            energy_j=[1e-5, "hot"]), r"tile_profile.energy_j\[1\]"),
        (lambda d: d["scenes"]["crazy"]["tile_profile"].update(
            hits="none"), "tile_profile.hits"),
    ])
    def test_rejects_bad_enabled_tile_profile(self, mutate, needle):
        doc = valid_doc_profiled()
        mutate(doc)
        with pytest.raises(ValueError, match=needle):
            validate_bench_document(doc)

    def test_accepts_unknown_extra_keys(self):
        # Additive schema growth must not invalidate older validators'
        # output — or this validator's own future documents.
        doc = valid_doc()
        doc["config"]["future_knob"] = 7
        doc["scenes"]["crazy"]["future_block"] = {"x": 1}
        validate_bench_document(doc)

    def test_v4_document_still_needs_v4_keys(self):
        doc = valid_doc_v4()
        del doc["scenes"]["crazy"]["energy"]
        with pytest.raises(ValueError, match="energy"):
            validate_bench_document(doc)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_bench_document([1, 2])

    @pytest.mark.parametrize("mutate,needle", [
        (lambda d: d.update(schema="other"), "schema"),
        (lambda d: d.update(version=1), "version"),
        (lambda d: d.pop("config"), "config"),
        (lambda d: d["config"].update(width=0), "config.width"),
        (lambda d: d["config"].update(quick="yes"), "config.quick"),
        (lambda d: d["config"].update(runs=0), "config.runs"),
        (lambda d: d["config"].pop("profile"), "config.profile"),
        (lambda d: d["config"].pop("kernel_backend"), "config.kernel_backend"),
        (lambda d: d["config"].update(kernel_backend=""),
         "config.kernel_backend"),
        (lambda d: d["config"].update(broad_phase=7), "config.broad_phase"),
        (lambda d: d.pop("stats"), "stats"),
        (lambda d: d["stats"].update(bootstrap_resamples=0),
         "bootstrap_resamples"),
        (lambda d: d["stats"].update(confidence=1.5), "confidence"),
        (lambda d: d.update(scenes={}), "scenes"),
        (lambda d: d["scenes"]["crazy"].pop("runs"), "runs"),
        (lambda d: d["scenes"]["crazy"]["stages"].pop("rbcd"), "rbcd"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(count=0),
         "count"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(
            wall_ms_median=-1.0), "wall_ms_median"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(
            wall_ms_ci95=[2.0, 1.0]), "wall_ms_ci95"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(
            wall_ms_ci95=[1.0]), "wall_ms_ci95"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(
            wall_ms_runs=[]), "wall_ms_runs"),
        (lambda d: d["scenes"]["crazy"]["stages"]["frame"].update(
            wall_ms_runs=[1.0]), "wall_ms_runs"),
        (lambda d: d["scenes"]["crazy"]["totals"].update(
            fragments_produced=1.5), "fragments_produced"),
        (lambda d: d["scenes"]["crazy"].pop("throughput"), "throughput"),
        (lambda d: d["scenes"]["crazy"].update(counters={}), "counters"),
        (lambda d: d["scenes"]["crazy"]["counters"].update(bad="x"),
         "counters.bad"),
        (lambda d: d["scenes"]["crazy"]["counters"].pop("energy.total_j"),
         "energy"),
        (lambda d: d["scenes"]["crazy"].pop("energy"), "energy"),
        (lambda d: d["scenes"]["crazy"].pop("cases"), "cases"),
        (lambda d: d["scenes"]["crazy"]["cases"].pop("crossing"),
         "cases.crossing"),
        (lambda d: d["scenes"]["crazy"]["cases"].update(nested=-1),
         "cases.nested"),
        (lambda d: d["scenes"]["crazy"]["energy"].pop("edp_js"), "edp_js"),
        (lambda d: d["scenes"]["crazy"]["energy"]["gpu"].pop("fragment_j"),
         "fragment_j"),
        (lambda d: d["scenes"]["crazy"]["energy"]["rbcd"].update(
            insertion_j="lots"), "insertion_j"),
        (lambda d: d["config"].pop("tile_cache"), "config.tile_cache"),
        (lambda d: d["config"].update(tile_cache="on"), "config.tile_cache"),
        (lambda d: d["scenes"]["crazy"].pop("tilecache"), "tilecache"),
        (lambda d: d["scenes"]["crazy"]["tilecache"].pop("enabled"),
         "tilecache.enabled"),
        (lambda d: d["scenes"]["crazy"]["tilecache"].update(hits=-1),
         "tilecache.hits"),
        (lambda d: d["scenes"]["crazy"]["tilecache"].update(hits=1.5),
         "tilecache.hits"),
        (lambda d: d["scenes"]["crazy"]["tilecache"].update(
            cycles_saved="many"), "tilecache.cycles_saved"),
        (lambda d: d["scenes"]["crazy"]["tilecache"].update(
            per_frame_hits=3), "tilecache.per_frame_hits"),
        (lambda d: d["scenes"]["crazy"]["tilecache"].update(
            per_frame_lookups=[1, -2]), r"tilecache.per_frame_lookups\[1\]"),
        (lambda d: d["config"].pop("tile_profile"), "config.tile_profile"),
        (lambda d: d["config"].update(tile_profile="on"),
         "config.tile_profile"),
        (lambda d: d["scenes"]["crazy"].pop("tile_profile"), "tile_profile"),
        (lambda d: d["scenes"]["crazy"]["tile_profile"].pop("enabled"),
         "tile_profile.enabled"),
    ])
    def test_rejects_each_mutation(self, mutate, needle):
        doc = valid_doc()
        mutate(doc)
        with pytest.raises(ValueError, match=needle):
            validate_bench_document(doc)

    def test_error_lists_all_problems(self):
        doc = valid_doc()
        doc["config"]["width"] = 0
        doc["scenes"]["crazy"]["frames"] = 0
        with pytest.raises(ValueError) as excinfo:
            validate_bench_document(doc)
        message = str(excinfo.value)
        assert "config.width" in message and "frames" in message


class TestCli:
    def test_check_mode_accepts_valid_file(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(valid_doc()))
        assert main(["--check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_mode_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "wrong"}))
        assert main(["--check", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_mode_rejects_missing_file(self, tmp_path):
        assert main(["--check", str(tmp_path / "absent.json")]) == 1

    def test_check_mode_rejects_v1_document(self, tmp_path):
        doc = valid_doc()
        doc["version"] = 1
        path = tmp_path / "bench_v1.json"
        path.write_text(json.dumps(doc))
        assert main(["--check", str(path)]) == 1

    def test_gate_requires_baseline(self, capsys):
        with pytest.raises(SystemExit):
            main(["--gate"])
        assert "--baseline" in capsys.readouterr().err

    def test_end_to_end_writes_valid_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_rbcd.json"
        code = main([
            "--scenes", "crazy", "--width", "64", "--height", "32",
            "--frames", "1", "--detail", "1", "--runs", "2",
            "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        validate_bench_document(doc)
        assert doc["config"]["tile_cache"] is False
        assert main(["--check", str(out)]) == 0

    def test_tile_cache_flag_threads_through(self, tmp_path, capsys):
        out = tmp_path / "BENCH_tc.json"
        code = main([
            "--scenes", "cap", "--width", "64", "--height", "32",
            "--frames", "2", "--detail", "1", "--tile-cache",
            "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["config"]["tile_cache"] is True
        assert doc["scenes"]["cap"]["tilecache"]["enabled"] is True
        assert "tilecache:" in capsys.readouterr().out

    def test_tile_cache_flags_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["--tile-cache", "--no-tile-cache"])

    def test_explain_requires_baseline(self, capsys):
        with pytest.raises(SystemExit):
            main(["--explain"])
        assert "--baseline" in capsys.readouterr().err

    def test_tile_profile_flag_threads_through(self, tmp_path, capsys):
        out = tmp_path / "BENCH_tp.json"
        code = main([
            "--scenes", "crazy", "--width", "64", "--height", "32",
            "--frames", "1", "--detail", "1", "--tile-profile",
            "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["config"]["tile_profile"] is True
        assert doc["scenes"]["crazy"]["tile_profile"]["enabled"] is True

    def test_append_history_writes_ndjson_line(self, tmp_path):
        out = tmp_path / "BENCH_h.json"
        history = tmp_path / "hist" / "HISTORY.ndjson"
        argv = [
            "--scenes", "crazy", "--width", "64", "--height", "32",
            "--frames", "1", "--detail", "1",
            "--output", str(out), "--append-history", str(history),
        ]
        assert main(argv) == 0
        assert main(argv) == 0  # appends, never truncates
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["schema"] == "rbcd-bench"  # tags lines in the
        assert record["version"] == SCHEMA_VERSION  # shared trend file
        assert record["config"]["width"] == 64
        scene = record["scenes"]["crazy"]
        doc = json.loads(out.read_text())
        entry = doc["scenes"]["crazy"]
        assert scene["gpu_cycles"] == entry["totals"]["gpu_cycles"]
        assert scene["total_j"] == entry["energy"]["total_j"]
        assert scene["effective_gpu_cycles"] == (
            entry["tilecache"]["effective_gpu_cycles"]
        )
