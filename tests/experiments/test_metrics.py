"""Equations 1-4 and geomean tests."""

import math

import pytest

from repro.experiments.metrics import (
    energy_reduction,
    geomean,
    normalized_energy,
    normalized_time,
    speedup,
)


class TestEquations:
    def test_speedup_definition(self):
        # t_cpu = 600, delta = 1 -> 600x (the paper's headline shape).
        assert speedup(600.0, 101.0, 100.0) == pytest.approx(600.0)

    def test_speedup_requires_positive_delta(self):
        with pytest.raises(ValueError):
            speedup(10.0, 100.0, 100.0)
        with pytest.raises(ValueError):
            speedup(10.0, 99.0, 100.0)

    def test_energy_reduction_definition(self):
        assert energy_reduction(448.0, 2.0, 1.0) == pytest.approx(448.0)

    def test_energy_reduction_requires_positive_delta(self):
        with pytest.raises(ValueError):
            energy_reduction(10.0, 1.0, 1.0)

    def test_normalized_time(self):
        assert normalized_time(103.0, 100.0) == pytest.approx(1.03)
        with pytest.raises(ValueError):
            normalized_time(1.0, 0.0)

    def test_normalized_energy(self):
        assert normalized_energy(105.0, 100.0) == pytest.approx(1.05)
        with pytest.raises(ValueError):
            normalized_energy(1.0, -1.0)


class TestGeomean:
    def test_equal_values(self):
        assert geomean([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    def test_known_value(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)

    def test_never_exceeds_max(self):
        values = [3.0, 7.0, 21.0, 100.0]
        assert geomean(values) <= max(values)
        assert geomean(values) >= min(values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_log_additivity(self):
        a = geomean([2.0, 8.0])
        assert math.log(a) == pytest.approx((math.log(2) + math.log(8)) / 2)
