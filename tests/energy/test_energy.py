"""GPU / RBCD energy model tests."""

import pytest

from repro.energy.components import ComponentEnergies
from repro.energy.gpu_power import GPUEnergyBreakdown, GPUEnergyModel, GPUEnergyParams
from repro.energy.rbcd_power import RBCDEnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats


def stats_with(**kwargs) -> GPUStats:
    stats = GPUStats()
    for key, value in kwargs.items():
        setattr(stats, key, value)
    return stats


class TestGPUEnergy:
    def test_zero_stats_zero_energy(self):
        assert GPUEnergyModel().total_j(GPUStats()) == 0.0

    def test_fragment_shading_dominates_matched_counts(self):
        """Per event, fragment shading must dominate (Section 3.3)."""
        params = GPUEnergyParams()
        assert params.fragment_shaded_j > params.fragment_rasterized_j
        assert params.fragment_shaded_j > params.vertex_shaded_j
        assert params.fragment_shaded_j > params.early_z_test_j

    def test_breakdown_sums_to_total(self):
        model = GPUEnergyModel()
        stats = stats_with(
            vertices_shaded=100, triangles_assembled=50, tile_cache_stores=60,
            tile_cache_loads=70, fragments_produced=1000, early_z_tests=900,
            fragments_shaded=800, texture_accesses=800, color_writes=400,
            vertex_cache_misses=5, gpu_cycles=1e6,
        )
        breakdown = model.breakdown(stats)
        parts = (
            breakdown.geometry_j + breakdown.raster_j + breakdown.fragment_j
            + breakdown.memory_j + breakdown.static_j
        )
        assert breakdown.total_j == pytest.approx(parts)
        assert breakdown.static_j > 0

    def test_static_scales_with_time(self):
        model = GPUEnergyModel()
        fast = model.breakdown(stats_with(gpu_cycles=1e6))
        slow = model.breakdown(stats_with(gpu_cycles=2e6))
        assert slow.static_j == pytest.approx(2 * fast.static_j)

    def test_breakdown_addition(self):
        a = GPUEnergyBreakdown(geometry_j=1, raster_j=2)
        b = GPUEnergyBreakdown(fragment_j=3, static_j=4)
        total = a + b
        assert total.total_j == pytest.approx(10)
        assert sum([a, b]).total_j == pytest.approx(10)


class TestRBCDEnergy:
    def make(self, **rbcd_kwargs) -> RBCDEnergyModel:
        config = GPUConfig().with_rbcd(**rbcd_kwargs) if rbcd_kwargs else GPUConfig()
        return RBCDEnergyModel(config)

    def test_insertion_energy_scales_with_m(self):
        small = self.make(list_length=4).insertion_energy_per_fragment_j()
        large = self.make(list_length=16).insertion_energy_per_fragment_j()
        assert large == pytest.approx(4 * small)

    def test_static_power_scales_with_zeb_count(self):
        one = self.make(zeb_count=1).static_power_w()
        two = self.make(zeb_count=2).static_power_w()
        assert two == pytest.approx(2 * one)

    def test_static_power_under_one_percent_of_gpu(self):
        """Section 5.3: two 8 KB ZEBs leak < 1 % of GPU static power."""
        model = self.make(zeb_count=2, list_length=8)
        assert model.static_power_w() < 0.01 * model.gpu_static_power_w

    def test_static_power_under_five_percent_with_m64(self):
        model = RBCDEnergyModel(
            GPUConfig().with_rbcd(list_length=64, z_bits=18, id_bits=13,
                                  element_bits=32)
        )
        assert model.static_power_w() < 0.05 * model.gpu_static_power_w

    def test_breakdown_components(self):
        model = self.make()
        stats = stats_with(
            zeb_insertions=1000, overlap_elements_read=800,
            collision_pairs_emitted=20, gpu_cycles=1e6,
        )
        breakdown = model.breakdown(stats)
        assert breakdown.insertion_j > 0
        assert breakdown.overlap_j > 0
        assert breakdown.output_j > 0
        assert breakdown.static_j > 0
        assert breakdown.total_j == pytest.approx(
            breakdown.insertion_j + breakdown.overlap_j
            + breakdown.output_j + breakdown.static_j
        )

    def test_unit_energy_tiny_vs_fragment_shading(self):
        """The RBCD events must be orders of magnitude below shading."""
        model = self.make()
        per_insertion = model.insertion_energy_per_fragment_j()
        assert per_insertion < GPUEnergyParams().fragment_shaded_j / 5


class TestComponentEnergies:
    def test_defaults_positive(self):
        c = ComponentEnergies()
        assert c.sram_word_read_j > 0
        assert c.lt_comparator_j > 0
        assert c.pair_record_write_j > 0
