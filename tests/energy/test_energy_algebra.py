"""Energy merge algebra: sharding invariance, linearity, executor parity.

The parallel tile-execution engine merges per-shard results in a
deterministic order, so anything carried through the merge must form a
commutative monoid.  These tests pin that down for the energy
breakdowns (satellite of the energy-accounting PR): randomized
shardings of the same work always price to the same joules, per-frame
reports sum to the priced sum of stats, and a 4-worker run reports
bit-identical energy to the serial one.
"""

import random
from types import SimpleNamespace

import pytest

from repro.energy.gpu_power import GPUEnergyBreakdown, GPUEnergyModel
from repro.energy.rbcd_power import RBCDEnergyBreakdown, RBCDEnergyModel
from repro.energy.report import EnergyAccount, FrameEnergyReport
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats

APPROX = dict(rel=1e-12, abs=1e-30)


def random_gpu_breakdown(rng):
    return GPUEnergyBreakdown(
        geometry_j=rng.uniform(0, 1e-3),
        raster_j=rng.uniform(0, 1e-3),
        fragment_j=rng.uniform(0, 1e-3),
        memory_j=rng.uniform(0, 1e-3),
        static_j=rng.uniform(0, 1e-3),
    )


def random_rbcd_breakdown(rng):
    return RBCDEnergyBreakdown(
        insertion_j=rng.uniform(0, 1e-4),
        overlap_j=rng.uniform(0, 1e-4),
        output_j=rng.uniform(0, 1e-4),
        static_j=rng.uniform(0, 1e-4),
    )


def random_shards(items, rng):
    """Partition ``items`` into 1..len contiguous shards, shuffled."""
    items = list(items)
    rng.shuffle(items)
    cuts = sorted(rng.sample(range(1, len(items)), rng.randint(0, len(items) - 1)))
    shards = []
    prev = 0
    for cut in cuts + [len(items)]:
        shards.append(items[prev:cut])
        prev = cut
    return [s for s in shards if s]


class TestBreakdownAlgebra:
    @pytest.mark.parametrize("factory", [random_gpu_breakdown,
                                         random_rbcd_breakdown])
    def test_commutative(self, factory):
        rng = random.Random(1)
        a, b = factory(rng), factory(rng)
        assert (a + b).as_dict() == (b + a).as_dict()

    @pytest.mark.parametrize("factory", [random_gpu_breakdown,
                                         random_rbcd_breakdown])
    def test_associative_within_float_noise(self, factory):
        rng = random.Random(2)
        a, b, c = (factory(rng) for _ in range(3))
        left = ((a + b) + c).as_dict()
        right = (a + (b + c)).as_dict()
        for key in left:
            assert left[key] == pytest.approx(right[key], **APPROX)

    @pytest.mark.parametrize("factory,cls", [
        (random_gpu_breakdown, GPUEnergyBreakdown),
        (random_rbcd_breakdown, RBCDEnergyBreakdown),
    ])
    def test_randomized_sharding_reaches_same_total(self, factory, cls):
        rng = random.Random(3)
        parts = [factory(rng) for _ in range(12)]
        reference = cls.sum(parts).total_j
        for trial in range(20):
            shards = random_shards(parts, rng)
            merged = cls.sum(cls.sum(shard) for shard in shards)
            assert merged.total_j == pytest.approx(reference, **APPROX)

    @pytest.mark.parametrize("factory", [random_gpu_breakdown,
                                         random_rbcd_breakdown])
    def test_sum_builtin_and_identity(self, factory):
        rng = random.Random(4)
        parts = [factory(rng) for _ in range(5)]
        via_builtin = sum(parts)          # exercises __radd__ with 0
        via_cls = type(parts[0]).sum(parts)
        assert via_builtin.as_dict() == via_cls.as_dict()

    @pytest.mark.parametrize("factory", [random_gpu_breakdown,
                                         random_rbcd_breakdown])
    def test_registry_merge_matches_breakdown_merge(self, factory):
        rng = random.Random(5)
        a, b = factory(rng), factory(rng)
        merged_reg = (a.registry() + b.registry()).as_dict()
        direct_reg = (a + b).registry().as_dict()
        assert set(merged_reg) == set(direct_reg)
        for name in direct_reg:
            assert merged_reg[name] == pytest.approx(direct_reg[name], **APPROX)


class TestPricingLinearity:
    """Energy is linear in the counters it is priced from, so the order
    of (sum, price) never matters — the property that lets per-frame
    and per-shard energy survive every merge in the system."""

    @staticmethod
    def random_stats(rng):
        return GPUStats(
            frames=1,
            vertices_shaded=rng.randint(0, 5000),
            vertex_cache_misses=rng.randint(0, 500),
            triangles_assembled=rng.randint(0, 2000),
            tile_cache_stores=rng.randint(0, 1000),
            tile_cache_store_misses=rng.randint(0, 100),
            tile_cache_loads=rng.randint(0, 1000),
            tile_cache_load_misses=rng.randint(0, 100),
            fragments_produced=rng.randint(0, 20000),
            early_z_tests=rng.randint(0, 20000),
            fragments_shaded=rng.randint(0, 10000),
            texture_accesses=rng.randint(0, 10000),
            color_writes=rng.randint(0, 10000),
            zeb_insertions=rng.randint(0, 8000),
            overlap_elements_read=rng.randint(0, 8000),
            collision_pairs_emitted=rng.randint(0, 400),
            gpu_cycles=rng.uniform(1e4, 1e6),
        )

    def test_sum_of_reports_equals_report_of_sum(self):
        rng = random.Random(6)
        config = GPUConfig().with_screen(64, 32)
        account = EnergyAccount(config)
        stats = [self.random_stats(rng) for _ in range(8)]
        per_frame = sum(account.frame_report(s) for s in stats)
        of_sum = account.frame_report(GPUStats.sum(stats))
        assert isinstance(per_frame, FrameEnergyReport)
        assert per_frame.total_j == pytest.approx(of_sum.total_j, **APPROX)
        assert per_frame.delay_s == pytest.approx(of_sum.delay_s, **APPROX)
        assert per_frame.gpu.as_dict().keys() == of_sum.gpu.as_dict().keys()
        for key, value in of_sum.gpu.as_dict().items():
            assert per_frame.gpu.as_dict()[key] == pytest.approx(value, **APPROX)
        for key, value in of_sum.rbcd.as_dict().items():
            assert per_frame.rbcd.as_dict()[key] == pytest.approx(value, **APPROX)

    def test_edp_accumulates_as_total_times_total_delay(self):
        config = GPUConfig().with_screen(64, 32)
        account = EnergyAccount(config)
        rng = random.Random(7)
        reports = [account.frame_report(self.random_stats(rng))
                   for _ in range(3)]
        run = sum(reports)
        assert run.edp_js == pytest.approx(run.total_j * run.delay_s, **APPROX)
        assert run.delay_s == pytest.approx(
            sum(r.delay_s for r in reports), **APPROX
        )

    def test_tile_shards_sum_to_frame_dynamic_energy(self):
        """Per-tile dynamic pricing (what the parallel executor ships)
        reassembles exactly into the frame breakdown minus static."""
        config = GPUConfig().with_screen(64, 32)
        model = RBCDEnergyModel(config)
        rng = random.Random(8)
        tiles = [
            SimpleNamespace(
                zeb=SimpleNamespace(insertions=rng.randint(0, 500)),
                analyzed_elements=rng.randint(0, 500),
                overlap=SimpleNamespace(pair_records=rng.randint(0, 50)),
            )
            for _ in range(16)
        ]
        frame_stats = GPUStats(
            zeb_insertions=sum(t.zeb.insertions for t in tiles),
            overlap_elements_read=sum(t.analyzed_elements for t in tiles),
            collision_pairs_emitted=sum(t.overlap.pair_records for t in tiles),
            gpu_cycles=1e5,
        )
        frame = model.breakdown(frame_stats)
        for trial in range(10):
            shards = random_shards(tiles, rng)
            merged = RBCDEnergyBreakdown.sum(
                RBCDEnergyBreakdown.sum(model.tile_breakdown(t) for t in shard)
                for shard in shards
            )
            assert merged.static_j == 0.0
            assert merged.insertion_j == pytest.approx(frame.insertion_j, **APPROX)
            assert merged.overlap_j == pytest.approx(frame.overlap_j, **APPROX)
            assert merged.output_j == pytest.approx(frame.output_j, **APPROX)
            assert merged.total_j == pytest.approx(
                frame.total_j - frame.static_j, **APPROX
            )

    def test_tile_energy_registry_names(self):
        from repro.gpu.parallel import tile_energy_registry

        config = GPUConfig().with_screen(64, 32)
        model = RBCDEnergyModel(config)
        tile = SimpleNamespace(
            zeb=SimpleNamespace(insertions=10),
            analyzed_elements=20,
            overlap=SimpleNamespace(pair_records=2),
        )
        reg = tile_energy_registry(tile, model).as_dict()
        assert reg["energy.rbcd.insertion_j"] == pytest.approx(
            10 * model.insertion_energy_per_fragment_j()
        )
        assert reg["energy.rbcd.static_j"] == 0.0
        assert reg["energy.rbcd.total_j"] > 0.0


class TestExecutorParity:
    def test_energy_bit_identical_across_worker_counts(self):
        """Satellite differential test: serial vs 4-way sharded
        execution must report the *same bits* for every energy field —
        the merge is ordered, so no float-reassociation escape hatch."""
        from repro.core import RBCDSystem
        from repro.scenes.benchmarks import workload_by_alias

        workload = workload_by_alias("crazy", detail=1)
        config = GPUConfig().with_screen(96, 48)
        frame = workload.scene.frame_at(0.5, config)

        reports = []
        for workers in (1, 4):
            with RBCDSystem(
                config=config, workers=workers, executor_backend="thread"
            ) as system:
                result = system.detect_frame(frame)
            assert result.energy is not None
            reports.append(result.energy)
        serial, sharded = reports
        assert serial.as_dict() == sharded.as_dict()
        assert serial.registry().as_dict() == sharded.registry().as_dict()
