"""Shared fixtures: small GPU configs and simple scenes.

Tests run at reduced resolutions — collision results are driven by
relative geometry, not absolute pixel counts, and the cycle model's
*structure* is what the tests assert, so small screens keep the suite
fast without weakening any check.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.primitives import make_box, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig


@pytest.fixture
def small_config() -> GPUConfig:
    """A 160x96 screen (10x6 tiles) with default Table-2 parameters."""
    return GPUConfig().with_screen(160, 96)


@pytest.fixture
def tiny_config() -> GPUConfig:
    """A 64x32 screen (4x2 tiles) for the cheapest pipeline tests."""
    return GPUConfig().with_screen(64, 32)


def simple_view() -> Mat4:
    return Mat4.look_at(Vec3(0.0, 0.0, 5.0), Vec3(0.0, 0.0, 0.0), Vec3(0.0, 1.0, 0.0))


def simple_projection(aspect: float) -> Mat4:
    return Mat4.perspective(math.radians(60.0), aspect, 0.1, 100.0)


def two_boxes_frame(config: GPUConfig, separation: float) -> Frame:
    """Two unit boxes ``separation`` apart along X, facing the camera.

    They intersect in 3-D iff ``separation < 1.0``.
    """
    box = make_box(Vec3(0.5, 0.5, 0.5))
    draws = (
        DrawCommand(box, Mat4.translation(Vec3(-separation / 2.0, 0.0, 0.0)),
                    object_id=1, color=(1.0, 0.0, 0.0)),
        DrawCommand(box, Mat4.translation(Vec3(separation / 2.0, 0.0, 0.0)),
                    object_id=2, color=(0.0, 1.0, 0.0)),
    )
    aspect = config.screen_width / config.screen_height
    return Frame(draws=draws, view=simple_view(), projection=simple_projection(aspect))


def sphere_pair_frame(config: GPUConfig, separation: float) -> Frame:
    """Two radius-0.5 spheres ``separation`` apart along X."""
    sphere = make_uv_sphere(0.5, rings=10, segments=14)
    draws = (
        DrawCommand(sphere, Mat4.translation(Vec3(-separation / 2.0, 0.0, 0.0)),
                    object_id=1),
        DrawCommand(sphere, Mat4.translation(Vec3(separation / 2.0, 0.0, 0.0)),
                    object_id=2),
    )
    aspect = config.screen_width / config.screen_height
    return Frame(draws=draws, view=simple_view(), projection=simple_projection(aspect))
