"""CPU cost-model tests."""

import pytest

from repro.cpu.model import CPUConfig, CPUCost, CPUModel
from repro.physics.counters import OpCounter


class TestPricing:
    def test_zero_ops_zero_cost(self):
        cost = CPUModel().price(OpCounter())
        assert cost.cycles == 0.0
        assert cost.seconds == 0.0
        assert cost.energy_j == 0.0

    def test_cycles_per_class(self):
        cfg = CPUConfig(issue_efficiency=1.0)
        model = CPUModel(cfg)
        assert model.cycles(OpCounter(flop=10)) == pytest.approx(10 * cfg.cycles_flop)
        assert model.cycles(OpCounter(mem=10)) == pytest.approx(10 * cfg.cycles_mem)

    def test_issue_efficiency_divides(self):
        ops = OpCounter(flop=120)
        slow = CPUModel(CPUConfig(issue_efficiency=1.0)).cycles(ops)
        fast = CPUModel(CPUConfig(issue_efficiency=2.0)).cycles(ops)
        assert fast == pytest.approx(slow / 2.0)

    def test_seconds_from_frequency(self):
        cfg = CPUConfig(issue_efficiency=1.0)
        cost = CPUModel(cfg).price(OpCounter(flop=cfg.frequency_hz))
        assert cost.seconds == pytest.approx(1.0)

    def test_energy_includes_static(self):
        cfg = CPUConfig(issue_efficiency=1.0)
        cost = CPUModel(cfg).price(OpCounter(flop=1.5e9))
        dynamic = 1.5e9 * (cfg.energy_flop_j + cfg.energy_per_cycle_j)
        assert cost.energy_j == pytest.approx(dynamic + cfg.static_power_w * 1.0)

    def test_mem_ops_cost_more_than_flops(self):
        model = CPUModel()
        assert (
            model.price(OpCounter(mem=1000)).energy_j
            > model.price(OpCounter(flop=1000)).energy_j
        )

    def test_monotone_in_ops(self):
        model = CPUModel()
        small = model.price(OpCounter(flop=100, mem=50))
        large = model.price(OpCounter(flop=200, mem=100))
        assert large.cycles > small.cycles
        assert large.energy_j > small.energy_j


class TestCPUCost:
    def test_addition(self):
        total = CPUCost(1, 2, 3) + CPUCost(10, 20, 30)
        assert (total.cycles, total.seconds, total.energy_j) == (11, 22, 33)

    def test_sum_builtin(self):
        costs = [CPUCost(1, 1, 1)] * 3
        assert sum(costs).cycles == 3


class TestValidation:
    def test_frequency_positive(self):
        with pytest.raises(ValueError):
            CPUConfig(frequency_hz=0)

    def test_issue_efficiency_positive(self):
        with pytest.raises(ValueError):
            CPUConfig(issue_efficiency=0)

    def test_table2_defaults(self):
        cfg = CPUConfig()
        assert cfg.frequency_hz == 1.5e9
        assert cfg.cores == 2
        assert cfg.l1_kb == 32
        assert cfg.l2_kb == 1024
