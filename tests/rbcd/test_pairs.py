"""Collision pair / report tests."""

import pytest

from repro.rbcd.pairs import (
    CollisionPair,
    CollisionReport,
    ContactPoint,
    canonical_pair,
)


class TestCollisionPair:
    def test_make_orders_ids(self):
        assert CollisionPair.make(5, 2) == CollisionPair(2, 5)

    def test_unordered_construction_rejected(self):
        with pytest.raises(ValueError):
            CollisionPair(5, 2)

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            CollisionPair.make(3, 3)

    def test_involves(self):
        pair = CollisionPair.make(1, 2)
        assert pair.involves(1) and pair.involves(2)
        assert not pair.involves(3)

    def test_canonical_pair(self):
        assert canonical_pair(9, 4) == (4, 9)

    def test_hashable(self):
        assert {CollisionPair.make(1, 2), CollisionPair.make(2, 1)} == {
            CollisionPair(1, 2)
        }


class TestCollisionReport:
    def contact(self, x=0, y=0):
        return ContactPoint(x, y, 0.25, 0.5)

    def test_add_and_query(self):
        report = CollisionReport()
        report.add(2, 1, self.contact())
        assert (1, 2) in report
        assert (2, 1) in report
        assert (1, 3) not in report
        assert report.contact_count(1, 2) == 1

    def test_records_counted_with_duplicates(self):
        report = CollisionReport()
        report.add(1, 2, self.contact(0, 0))
        report.add(1, 2, self.contact(1, 0))
        assert len(report) == 1
        assert report.pair_records_written == 2

    def test_merge(self):
        a = CollisionReport()
        a.add(1, 2, self.contact())
        b = CollisionReport()
        b.add(1, 2, self.contact(5, 5))
        b.add(3, 4, self.contact())
        a.merge(b)
        assert len(a) == 2
        assert a.contact_count(1, 2) == 2
        assert a.pair_records_written == 3

    def test_colliding_with(self):
        report = CollisionReport()
        report.add(1, 2, self.contact())
        report.add(1, 3, self.contact())
        report.add(4, 5, self.contact())
        assert report.colliding_with(1) == {2, 3}
        assert report.colliding_with(9) == set()

    def test_as_sorted_pairs(self):
        report = CollisionReport()
        report.add(5, 4, self.contact())
        report.add(1, 2, self.contact())
        assert report.as_sorted_pairs() == [(1, 2), (4, 5)]

    def test_contains_with_pair_object(self):
        report = CollisionReport()
        report.add(1, 2, self.contact())
        assert CollisionPair.make(1, 2) in report
