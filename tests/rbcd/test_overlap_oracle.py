"""Independent semantic oracle for the Z-Overlap Test.

The FF-Stack algorithm is the paper's *hardware* for answering a purely
geometric question: per pixel, do two objects' depth intervals overlap?
This oracle answers the same question directly — pair consecutive
front/back faces of each object into intervals, intersect the interval
sets — with none of the hardware's structure.  On well-formed lists
(every front eventually closed, properly nested arrivals from closed
meshes) the two must agree; property tests drive both with randomized
well-formed bracket sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import RBCDConfig
from repro.rbcd.overlap import analyze_pixel_list

CFG = RBCDConfig(ff_stack_entries=32, list_length=32, z_bits=18, id_bits=13)


def interval_oracle(z_codes, object_ids, is_front):
    """Ground truth: object depth intervals from front/back pairing.

    Each object's fronts are matched to its following backs in list
    order (nesting order for concave objects); two objects collide if
    any interval of one strictly or touching-overlaps any of the other.
    """
    intervals = {}
    open_stacks = {}
    for z, oid, front in zip(z_codes, object_ids, is_front):
        if front:
            open_stacks.setdefault(oid, []).append(z)
        else:
            stack = open_stacks.get(oid)
            if not stack:
                continue  # unmatched back face: ignored, as in hardware
            start = stack.pop(0)  # bottommost unmatched, like the FF-Stack
            intervals.setdefault(oid, []).append((start, z))
    pairs = set()
    ids = sorted(intervals)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            for lo1, hi1 in intervals[a]:
                for lo2, hi2 in intervals[b]:
                    if lo1 <= hi2 and lo2 <= hi1:
                        pairs.add((a, b))
    return pairs


def well_formed_lists(max_objects=3, max_intervals=3):
    """Strategy: sorted lists built from overlapping object intervals."""

    @st.composite
    def build(draw):
        events = []
        for oid in range(draw(st.integers(1, max_objects))):
            for _ in range(draw(st.integers(1, max_intervals))):
                lo = draw(st.integers(0, 40))
                hi = draw(st.integers(lo, 44))
                events.append((lo, 0, oid, True))   # front before back on tie
                events.append((hi, 1, oid, False))
        events.sort(key=lambda e: (e[0], e[1]))
        z = [e[0] for e in events]
        ids = [e[2] for e in events]
        fronts = [e[3] for e in events]
        return z, ids, fronts

    return build()


class TestOracleAgreement:
    @settings(max_examples=200, deadline=None)
    @given(well_formed_lists())
    def test_ffstack_matches_interval_oracle(self, data):
        z, ids, fronts = data
        result = analyze_pixel_list(z, ids, fronts, CFG)
        found = {
            tuple(sorted(p))
            for p in zip(result.pair_id_a.tolist(), result.pair_id_b.tolist())
        }
        expected = interval_oracle(z, ids, fronts)
        assert found == expected, (z, ids, fronts)

    def test_oracle_self_check_case2(self):
        # [A [B ]A ]B
        assert interval_oracle([0, 1, 2, 3], [1, 2, 1, 2],
                               [True, True, False, False]) == {(1, 2)}

    def test_oracle_self_check_disjoint(self):
        assert interval_oracle([0, 1, 2, 3], [1, 1, 2, 2],
                               [True, False, True, False]) == set()

    def test_oracle_touching_intervals(self):
        # ]A and [B at the same depth: closed intervals touch -> contact
        # ... but the list order decides for the hardware; build the
        # interleaved order where both agree.
        z = [0, 2, 2, 4]
        ids = [1, 2, 1, 2]
        fronts = [True, True, False, False]
        assert interval_oracle(z, ids, fronts) == {(1, 2)}
        result = analyze_pixel_list(z, ids, fronts, CFG)
        found = {tuple(sorted(p)) for p in zip(result.pair_id_a, result.pair_id_b)}
        assert found == {(1, 2)}
