"""Vectorized Z-Overlap Test vs the per-pixel hardware reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import RBCDConfig
from repro.rbcd.overlap import OverlapResult, analyze_pixel_list, analyze_tile
from repro.rbcd.zeb import build_zeb_tile


def tile_from_lists(lists, config):
    """Build a ZEBTile from explicit per-pixel (z, id, front) lists."""
    pixel, z, oid, front = [], [], [], []
    for pixel_index, elements in lists:
        for zc, o, f in elements:
            pixel.append(pixel_index)
            z.append(zc)
            oid.append(o)
            front.append(f)
    return build_zeb_tile(
        np.array(pixel, dtype=np.int64),
        np.array(z, dtype=np.int64),
        np.array(oid, dtype=np.int64),
        np.array(front, dtype=bool),
        config,
        depths_are_codes=True,
    )


def normalize_pairs(result: OverlapResult, row_to_pixel):
    return sorted(
        (int(row_to_pixel[r]), int(a), int(b), int(zf), int(zb))
        for r, a, b, zf, zb in zip(
            result.pair_row,
            result.pair_id_a,
            result.pair_id_b,
            result.pair_z_front,
            result.pair_z_back,
        )
    )


element_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),  # pixel
        st.integers(min_value=0, max_value=20),  # z
        st.integers(min_value=0, max_value=3),   # id
        st.booleans(),
    ),
    max_size=60,
)


class TestVectorizedEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(element_lists, st.integers(min_value=2, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_matches_reference(self, frags, m, t_entries):
        config = RBCDConfig(list_length=m, z_bits=18, id_bits=13,
                            ff_stack_entries=t_entries)
        if not frags:
            return
        pixel = np.array([f[0] for f in frags], dtype=np.int64)
        z = np.array([f[1] for f in frags], dtype=np.int64)
        oid = np.array([f[2] for f in frags], dtype=np.int64)
        front = np.array([f[3] for f in frags], dtype=bool)
        zeb = build_zeb_tile(pixel, z, oid, front, config, depths_are_codes=True)

        vec = analyze_tile(zeb, config)
        vec_pairs = normalize_pairs(vec, zeb.pixel_index)

        ref_pairs = []
        ref_elements = 0
        ref_overflows = 0
        ref_unmatched = 0
        for row in range(zeb.non_empty_lists):
            n = zeb.counts[row]
            ref = analyze_pixel_list(
                zeb.z_codes[row, :n],
                zeb.object_ids[row, :n],
                zeb.is_front[row, :n],
                config,
            )
            ref_pairs.extend(
                normalize_pairs(ref, {0: zeb.pixel_index[row]})
            )
            ref_elements += ref.elements_read
            ref_overflows += ref.stack_overflows
            ref_unmatched += ref.unmatched_backfaces

        assert vec_pairs == sorted(ref_pairs)
        assert vec.elements_read == ref_elements
        assert vec.stack_overflows == ref_overflows
        assert vec.unmatched_backfaces == ref_unmatched


class TestTileLevel:
    def test_independent_pixels(self):
        cfg = RBCDConfig()
        # Pixel 0: colliding A/B; pixel 5: disjoint A/B.
        tile = tile_from_lists(
            [
                (0, [(0, 1, True), (1, 2, True), (2, 1, False), (3, 2, False)]),
                (5, [(0, 1, True), (1, 1, False), (2, 2, True), (3, 2, False)]),
            ],
            cfg,
        )
        result = analyze_tile(tile, cfg)
        pairs = normalize_pairs(result, tile.pixel_index)
        assert len(pairs) == 1
        assert pairs[0][0] == 0  # only the colliding pixel reports

    def test_empty_tile(self):
        from repro.rbcd.zeb import ZEBTile

        result = analyze_tile(ZEBTile.empty(), RBCDConfig())
        assert result.pair_records == 0
        assert result.elements_read == 0

    def test_elements_read_counts_all(self):
        cfg = RBCDConfig()
        tile = tile_from_lists(
            [(0, [(0, 1, True), (1, 1, False)]), (3, [(0, 2, True)])], cfg
        )
        result = analyze_tile(tile, cfg)
        assert result.elements_read == 3

    def test_ragged_lists_handled(self):
        cfg = RBCDConfig()
        tile = tile_from_lists(
            [
                (0, [(0, 1, True)]),
                (1, [(0, 1, True), (1, 2, True), (2, 1, False), (3, 2, False)]),
            ],
            cfg,
        )
        result = analyze_tile(tile, cfg)
        assert result.pair_records == 1
