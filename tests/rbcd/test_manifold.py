"""World-space contact unprojection / manifold tests."""

import numpy as np
import pytest

from repro.core import RBCDSystem
from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4, Vec3
from repro.rbcd.manifold import ContactManifold, build_manifold, unproject_contacts
from repro.rbcd.pairs import ContactPoint
from repro.scenes.camera import Camera

CAMERA = Camera(eye=Vec3(0.0, 0.0, 6.0), target=Vec3.zero())
SYSTEM = RBCDSystem(resolution=(320, 320))


def detect(separation: float):
    box = make_box(Vec3(0.5, 0.5, 0.5))
    return SYSTEM.detect(
        [
            (1, box, Mat4.translation(Vec3(-separation / 2, 0, 0))),
            (2, box, Mat4.translation(Vec3(separation / 2, 0, 0))),
        ],
        CAMERA,
    )


class TestUnprojection:
    def test_roundtrip_of_projected_point(self):
        """Project a known world point, unproject the contact record,
        and land back on the original."""
        width = height = 320
        vp = CAMERA.projection(1.0) @ CAMERA.view()
        world = Vec3(0.25, -0.3, 0.4)
        clip = vp.transform_point(world)  # NDC after divide
        x = int((clip.x + 1.0) * 0.5 * width)
        y = int((1.0 - clip.y) * 0.5 * height)
        depth = (clip.z + 1.0) * 0.5
        contact = ContactPoint(x, y, depth, depth)
        ends = unproject_contacts([contact], vp, width, height)
        # Pixel-centre rounding bounds the error to about one pixel's
        # world footprint at this depth.
        assert np.linalg.norm(ends[0, 0] - world.to_array()) < 0.05

    def test_empty_contacts(self):
        vp = CAMERA.projection(1.0) @ CAMERA.view()
        assert unproject_contacts([], vp, 320, 320).shape == (0, 2, 3)

    def test_front_end_nearer_camera_than_back(self):
        result = detect(0.8)
        ends = result.world_contacts(1, 2)
        assert ends.shape[0] > 0
        eye = np.array([0.0, 0.0, 6.0])
        d_front = np.linalg.norm(ends[:, 0] - eye, axis=1)
        d_back = np.linalg.norm(ends[:, 1] - eye, axis=1)
        assert (d_front <= d_back + 1e-9).all()


class TestManifoldFromDetection:
    def test_centroid_in_overlap_region(self):
        # Boxes at +-0.4: overlap region x in [-0.1, 0.1].
        result = detect(0.8)
        manifold = result.manifold(1, 2)
        assert not manifold.is_degenerate()
        assert abs(manifold.centroid[0]) < 0.15
        assert abs(manifold.centroid[1]) < 0.55
        assert abs(manifold.centroid[2]) < 0.6

    def test_penetration_magnitude(self):
        # Overlap depth along x is 0.2; the per-pixel z interval spans
        # the boxes' overlap along the VIEW axis (z here), which is the
        # full box depth where both overlap: up to 1.0.  The mean sits
        # well inside (0, 1.1).
        result = detect(0.8)
        manifold = result.manifold(1, 2)
        assert 0.0 < manifold.penetration < 1.1

    def test_points_shape(self):
        result = detect(0.8)
        manifold = result.manifold(1, 2)
        assert manifold.points.shape == (manifold.point_count, 3)

    def test_degenerate_for_non_colliding_pair(self):
        result = detect(2.0)
        manifold = result.manifold(1, 2)
        assert manifold.is_degenerate()
        assert manifold.penetration == 0.0

    def test_normal_is_unit(self):
        result = detect(0.8)
        manifold = result.manifold(1, 2)
        assert np.linalg.norm(manifold.normal) == pytest.approx(1.0)


class TestManifoldConstruction:
    def test_single_contact_normal_along_interval(self):
        vp = CAMERA.projection(1.0) @ CAMERA.view()
        contact = ContactPoint(160, 160, 0.4, 0.6)
        manifold = build_manifold(1, 2, [contact], vp, 320, 320)
        assert manifold.point_count == 1
        # Interval runs along the view ray: normal ~ -z (into the scene).
        assert abs(manifold.normal[2]) > 0.9
