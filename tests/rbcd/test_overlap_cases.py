"""The Figure 5 interference truth table, case by case.

Lists are front-to-back sequences of ``[X`` (front face of object X)
and ``]X`` (back face); the paper's table prescribes exactly which
cases report the pair <A, B>.
"""

import pytest

from repro.gpu.config import RBCDConfig
from repro.rbcd.overlap import (
    CASE_CROSSING,
    CASE_DISJOINT,
    CASE_NAMES,
    CASE_NESTED,
    analyze_pixel_list,
)

CFG = RBCDConfig()

A, B, C = 1, 2, 3


def run(sequence):
    """``sequence`` is a list of (object_id, is_front) front-to-back;
    depths are assigned in list order."""
    z = list(range(len(sequence)))
    ids = [s[0] for s in sequence]
    fronts = [s[1] for s in sequence]
    result = analyze_pixel_list(z, ids, fronts, CFG)
    return sorted(
        {tuple(sorted(p)) for p in zip(result.pair_id_a, result.pair_id_b)}
    ), result


F, K = True, False  # front, back


class TestFigure5Cases:
    def test_case1_disjoint_a_before_b(self):
        # [A ]A [B ]B : no collision; both closures emit nothing.
        pairs, result = run([(A, F), (A, K), (B, F), (B, K)])
        assert pairs == []
        assert result.pair_case.tolist() == []
        assert result.disjoint_closures == 2

    def test_case2_a_contains_b_start(self):
        # [A [B ]A ]B : notify <A,B> at ]A, while [B is still
        # unmatched on the stack — the crossing signature.  The trailing
        # ]B closure emits nothing (it only sees tagged entries above
        # nothing), so it counts as one disjoint-closure event.
        pairs, result = run([(A, F), (B, F), (A, K), (B, K)])
        assert pairs == [(A, B)]
        assert result.pair_records == 1
        assert result.pair_case.tolist() == [CASE_CROSSING]
        assert result.pair_stack_depth.tolist() == [2]
        assert result.disjoint_closures == 1

    def test_case3_b_nested_in_a(self):
        # [A [B ]B ]A : notify <A,B> at ]A, after ]B already tagged its
        # front — the nested signature.  The inner ]B closure emits
        # nothing and counts as the disjoint-closure event.
        pairs, result = run([(A, F), (B, F), (B, K), (A, K)])
        assert pairs == [(A, B)]
        assert result.pair_records == 1
        assert result.pair_case.tolist() == [CASE_NESTED]
        assert result.pair_stack_depth.tolist() == [2]
        assert result.disjoint_closures == 1

    def test_case4_a_nested_in_b(self):
        # [B [A ]A ]B : same as case 3 with A, B interchanged.
        pairs, result = run([(B, F), (A, F), (A, K), (B, K)])
        assert pairs == [(A, B)]
        assert result.pair_case.tolist() == [CASE_NESTED]

    def test_case5_b_contains_a_start(self):
        # [B [A ]B ]A : same as case 2 interchanged.
        pairs, result = run([(B, F), (A, F), (B, K), (A, K)])
        assert pairs == [(A, B)]
        assert result.pair_case.tolist() == [CASE_CROSSING]

    def test_case6_disjoint_b_before_a(self):
        # [B ]B [A ]A : no collision.
        pairs, result = run([(B, F), (B, K), (A, F), (A, K)])
        assert pairs == []
        assert result.disjoint_closures == 2


class TestBeyondTwoObjects:
    def test_three_way_overlap(self):
        # [A [B [C ]A ]B ]C : A-B, A-C (interval of A contains B and C
        # starts), B-C.
        pairs, _ = run([(A, F), (B, F), (C, F), (A, K), (B, K), (C, K)])
        assert pairs == [(A, B), (A, C), (B, C)]

    def test_chain_without_triple(self):
        # [A [B ]A ]B [C ]C : A-B only.
        pairs, _ = run([(A, F), (B, F), (A, K), (B, K), (C, F), (C, K)])
        assert pairs == [(A, B)]

    def test_matched_front_still_seen_by_later_backs(self):
        # [A [B ]B ]A then another B layer: [A [B ]B [B ]B ]A.
        # Tagging (not popping) lets ]A still pair with both B layers'
        # fronts above it... and the B fronts pair against A's interval.
        pairs, _ = run([(A, F), (B, F), (B, K), (B, F), (B, K), (A, K)])
        assert pairs == [(A, B)]

    def test_concave_same_object_layers_do_not_self_collide(self):
        # A torus-like double layer of A: [A ]A [A ]A and nested variant.
        pairs, _ = run([(A, F), (A, K), (A, F), (A, K)])
        assert pairs == []
        pairs, _ = run([(A, F), (A, F), (A, K), (A, K)])
        assert pairs == []

    def test_interleaved_concave_object_pair(self):
        # A's two layers straddling B: [A ]A [B [A ]A ]B.
        pairs, _ = run([(A, F), (A, K), (B, F), (A, F), (A, K), (B, K)])
        assert pairs == [(A, B)]


class TestEdgeBehaviour:
    def test_unmatched_back_face_reports_nothing(self):
        # Front face lost (clipped or overflowed): ]A alone.
        pairs, result = run([(A, K)])
        assert pairs == []
        assert result.unmatched_backfaces == 1

    def test_unmatched_back_does_not_disturb_other_pairs(self):
        pairs, result = run([(C, K), (A, F), (B, F), (A, K), (B, K)])
        assert pairs == [(A, B)]
        assert result.unmatched_backfaces == 1

    def test_stack_overflow_drops_push(self):
        cfg = RBCDConfig(ff_stack_entries=2)
        seq = [(A, F), (B, F), (C, F)]
        result = analyze_pixel_list(
            list(range(3)), [s[0] for s in seq], [s[1] for s in seq], cfg
        )
        assert result.stack_overflows == 1

    def test_bottommost_match_selected(self):
        # Two unmatched A fronts; ]A must match the bottom one and
        # report everything above it (the second [A is filtered as a
        # self-pair, [B is reported).
        pairs, result = run([(A, F), (A, F), (B, F), (A, K), (B, K), (A, K)])
        assert pairs == [(A, B)]
        # <A,B> is found twice: once via ]A over [B, once via ]B over
        # the still-stacked fronts... count raw records:
        assert result.pair_records >= 2

    def test_empty_list(self):
        pairs, result = run([])
        assert pairs == []
        assert result.elements_read == 0

    def test_front_only_list(self):
        pairs, _ = run([(A, F), (B, F)])
        assert pairs == []

    def test_pair_depths_recorded(self):
        _, result = run([(A, F), (B, F), (A, K), (B, K)])
        # Pair found at ]A (z=2) against [B (z=1).
        assert result.pair_z_front.tolist() == [1]
        assert result.pair_z_back.tolist() == [2]

    def test_self_pair_filtering_is_counted(self):
        # Bottommost-match sequence from above: the second [A sits
        # inside the closing A interval and is suppressed exactly once.
        _, result = run([(A, F), (A, F), (B, F), (A, K), (B, K), (A, K)])
        assert result.self_pairs_filtered == 1
        # Concave single object: the inner-layer emission is filtered,
        # both closures end up pair-less.
        _, result = run([(A, F), (A, F), (A, K), (A, K)])
        assert result.self_pairs_filtered == 1
        assert result.disjoint_closures == 2


class TestFigure5CaseCoverage:
    """A crafted scene exercising every Figure-5 case id end to end.

    Three object pairs, separated along X so they cannot interact with
    each other, each arranged along the camera axis to produce one
    interference class at their shared pixels:

    * ids 1/2 — partially crossing depth intervals (cases 2/5);
    * ids 3/4 — box 4 fully nested inside box 3 (cases 3/4);
    * ids 5/6 — depth-disjoint but screen-overlapping (cases 1/6).

    The assertion that every case id in ``CASE_NAMES`` shows up (and no
    id outside it) is what catches a dead or mislabeled case branch.
    """

    def test_every_case_id_is_exercised(self):
        from repro.geometry.primitives import make_box
        from repro.geometry.vec import Mat4, Vec3
        from repro.gpu.commands import DrawCommand, Frame
        from repro.gpu.config import GPUConfig
        from repro.gpu.pipeline import GPU
        from repro.observability.provenance import ProvenanceRecorder
        from tests.conftest import simple_projection, simple_view

        config = GPUConfig().with_screen(160, 96)
        big = make_box(Vec3(0.5, 0.5, 0.5))
        small = make_box(Vec3(0.2, 0.2, 0.2))
        draws = (
            # Crossing pair: intervals [−0.5, 0.5] and [0.1, 1.1] in z.
            DrawCommand(big, Mat4.translation(Vec3(-2.5, 0.0, 0.0)),
                        object_id=1),
            DrawCommand(big, Mat4.translation(Vec3(-2.3, 0.0, 0.6)),
                        object_id=2),
            # Nested pair: the small box sits inside the big one.
            DrawCommand(big, Mat4.translation(Vec3(0.0, 0.0, 0.0)),
                        object_id=3),
            DrawCommand(small, Mat4.translation(Vec3(0.0, 0.0, 0.0)),
                        object_id=4),
            # Disjoint pair: same pixels, separated along the view axis.
            DrawCommand(big, Mat4.translation(Vec3(2.5, 0.0, 1.0)),
                        object_id=5),
            DrawCommand(big, Mat4.translation(Vec3(2.5, 0.0, -1.0)),
                        object_id=6),
        )
        aspect = config.screen_width / config.screen_height
        frame = Frame(
            draws=draws,
            view=simple_view(),
            projection=simple_projection(aspect),
        )
        recorder = ProvenanceRecorder()
        gpu = GPU(config, rbcd_enabled=True, provenance=recorder)
        try:
            result = gpu.render_frame(frame)
        finally:
            gpu.close()

        assert result.collisions.as_sorted_pairs() == [(1, 2), (3, 4)]
        # Every defined case id fires; no emission uses an unknown id.
        emitted_cases = {ev.case_id for ev in recorder.records}
        assert emitted_cases == {CASE_CROSSING, CASE_NESTED}
        assert recorder.case_counts[CASE_DISJOINT] > 0
        assert set(CASE_NAMES) == (
            emitted_cases | {CASE_DISJOINT}
        ), "a Figure-5 case id is defined but never exercised"
        # The crafted pairs exhibit their intended classes.  Silhouette
        # pixels rasterize thin side-face slivers whose tiny depth
        # intervals can nest inside the partner's, so the crossing pair
        # may carry a few nested emissions too — membership, not
        # exclusivity, is the stable property.
        assert CASE_CROSSING in {ev.case_id for ev in recorder.pairs_for(1, 2)}
        assert {ev.case_id for ev in recorder.pairs_for(3, 4)} == {
            CASE_NESTED
        }
