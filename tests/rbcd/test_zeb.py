"""ZEB sorted-insertion tests: hardware reference vs vectorized builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import RBCDConfig
from repro.rbcd.zeb import ZEBTile, build_zeb_tile, insert_sequential

TILE_PIXELS = 256


def build_both(fragments, config):
    """Run both implementations over the same arrival sequence."""
    seq = insert_sequential(fragments, config, TILE_PIXELS)
    if fragments:
        pixel, z, oid, front = map(np.array, zip(*fragments))
    else:
        pixel = z = oid = np.empty(0, dtype=np.int64)
        front = np.empty(0, dtype=bool)
    vec = build_zeb_tile(pixel, z, oid, np.array(front, dtype=bool), config,
                         depths_are_codes=True)
    return seq, vec


def assert_tiles_equal(a: ZEBTile, b: ZEBTile):
    assert a.pixel_index.tolist() == b.pixel_index.tolist()
    assert a.counts.tolist() == b.counts.tolist()
    for row in range(a.non_empty_lists):
        n = a.counts[row]
        assert a.z_codes[row, :n].tolist() == b.z_codes[row, :n].tolist()
        assert a.object_ids[row, :n].tolist() == b.object_ids[row, :n].tolist()
        assert a.is_front[row, :n].tolist() == b.is_front[row, :n].tolist()
    assert a.insertions == b.insertions
    assert a.overflow_events == b.overflow_events
    assert a.spare_allocations == b.spare_allocations


fragments_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),      # pixel (few: force conflicts)
        st.integers(min_value=0, max_value=30),     # z code (ties likely)
        st.integers(min_value=0, max_value=4),      # object id
        st.booleans(),                              # front face
    ),
    max_size=80,
)


class TestSortedInsertion:
    def test_single_insert(self):
        cfg = RBCDConfig()
        seq, vec = build_both([(3, 100, 1, True)], cfg)
        assert_tiles_equal(seq, vec)
        assert seq.counts.tolist() == [1]

    def test_sorted_order_maintained(self):
        cfg = RBCDConfig()
        frags = [(0, z, 1, True) for z in (50, 10, 30, 20, 40)]
        seq, _ = build_both(frags, cfg)
        assert seq.z_codes[0, :5].tolist() == [10, 20, 30, 40, 50]

    def test_ties_keep_arrival_order(self):
        cfg = RBCDConfig()
        frags = [(0, 10, 1, True), (0, 10, 2, False), (0, 10, 3, True)]
        seq, vec = build_both(frags, cfg)
        assert seq.object_ids[0, :3].tolist() == [1, 2, 3]
        assert_tiles_equal(seq, vec)

    def test_overflow_keeps_nearest(self):
        cfg = RBCDConfig().__class__(list_length=2, z_bits=18, id_bits=13)
        frags = [(0, 30, 1, True), (0, 10, 2, True), (0, 20, 3, True)]
        seq, vec = build_both(frags, cfg)
        assert seq.z_codes[0, :2].tolist() == [10, 20]
        assert seq.overflow_events == 1
        assert_tiles_equal(seq, vec)

    def test_overflow_drops_new_when_farthest(self):
        cfg = RBCDConfig(list_length=2, z_bits=18, id_bits=13)
        frags = [(0, 10, 1, True), (0, 20, 2, True), (0, 30, 3, True)]
        seq, vec = build_both(frags, cfg)
        assert seq.z_codes[0, :2].tolist() == [10, 20]
        assert seq.overflow_events == 1
        assert_tiles_equal(seq, vec)

    def test_insertions_count_attempts(self):
        cfg = RBCDConfig(list_length=1, z_bits=18, id_bits=13)
        frags = [(0, 10, 1, True)] * 5
        seq, vec = build_both(frags, cfg)
        assert seq.insertions == 5
        assert seq.overflow_events == 4
        assert_tiles_equal(seq, vec)

    def test_pixel_bounds_validated(self):
        cfg = RBCDConfig()
        with pytest.raises(ValueError):
            insert_sequential([(TILE_PIXELS, 0, 0, True)], cfg, TILE_PIXELS)

    def test_empty(self):
        seq, vec = build_both([], RBCDConfig())
        assert seq.non_empty_lists == vec.non_empty_lists == 0


class TestSpareEntries:
    def test_spares_extend_capacity(self):
        cfg = RBCDConfig(list_length=1, z_bits=18, id_bits=13,
                         spare_entries_per_tile=2)
        frags = [(0, 30, 1, True), (0, 10, 2, True), (0, 20, 3, True)]
        seq, vec = build_both(frags, cfg)
        assert seq.counts[0] == 3           # all kept via spares
        assert seq.spare_allocations == 2
        assert seq.overflow_events == 0
        assert_tiles_equal(seq, vec)

    def test_pool_exhaustion_falls_back_to_overflow(self):
        cfg = RBCDConfig(list_length=1, z_bits=18, id_bits=13,
                         spare_entries_per_tile=1)
        frags = [(0, 30, 1, True), (0, 20, 2, True), (0, 10, 3, True)]
        seq, vec = build_both(frags, cfg)
        assert seq.counts[0] == 2
        assert seq.spare_allocations == 1
        assert seq.overflow_events == 1
        assert seq.z_codes[0, :2].tolist() == [10, 20]
        assert_tiles_equal(seq, vec)

    def test_pool_shared_across_pixels_in_arrival_order(self):
        cfg = RBCDConfig(list_length=1, z_bits=18, id_bits=13,
                         spare_entries_per_tile=1)
        frags = [
            (0, 10, 1, True), (1, 10, 2, True),
            (0, 20, 3, True),  # takes the one spare
            (1, 20, 4, True),  # overflow: dropped (farther)
        ]
        seq, vec = build_both(frags, cfg)
        assert_tiles_equal(seq, vec)
        assert seq.counts.tolist() == [2, 1]


class TestEquivalenceProperty:
    @settings(max_examples=120, deadline=None)
    @given(fragments_strategy, st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=4))
    def test_vectorized_matches_hardware(self, frags, m, spares):
        cfg = RBCDConfig(list_length=m, z_bits=18, id_bits=13,
                         spare_entries_per_tile=spares)
        seq, vec = build_both(frags, cfg)
        assert_tiles_equal(seq, vec)
